// Example: concurrent longest-prefix-match routing over real 128-bit keys.
//
//   build/examples/ip_router
//
// The classic predecessor-query application, now on the wide key universe
// (Bytes16Traits, DESIGN.md §6): routes are genuine IPv6 prefixes plus
// IPv4-mapped ::ffff:a.b.c.d prefixes (RFC 4291), encoded order-preserving
// into 128-bit ikeys by common/key_codec.h, and a lookup is ONE predecessor
// query on a BasicSkipTrie<Bytes16Traits> — O(log log u + c) steps with
// u = 2^128.
//
// Longest-prefix match with *nested* prefixes is reduced to pure
// predecessor search by interval flattening: sort every route boundary
// (base and end of each prefix range), and for each elementary interval
// between consecutive boundaries record the deepest covering route (or a
// gap).  The interval starts tile the routed space, so
// predecessor(addr) -> interval start -> next hop, with a range check for
// the dynamic (disjoint, un-flattened) routes that flap concurrently.
//
// The example is self-checking: every static lookup is verified against a
// brute-force LPM scan over the route list, quiescently and *during* route
// flaps; any mismatch fails the process (it runs under ctest as
// example_ip_router).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <inttypes.h>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/key_codec.h"
#include "common/key_traits.h"
#include "common/random.h"
#include "core/skiptrie.h"

using namespace skiptrie;

namespace {

using WideTrie = BasicSkipTrie<Bytes16Traits>;

struct Route {
  u128 base;      // encoded address with host bits zero
  uint32_t plen;  // prefix length in the 128-bit space
  int nexthop;
};

u128 v6(uint16_t g0, uint16_t g1, uint16_t g2, uint16_t g3, uint16_t g4,
        uint16_t g5, uint16_t g6, uint16_t g7) {
  uint8_t b[16];
  const uint16_t g[8] = {g0, g1, g2, g3, g4, g5, g6, g7};
  for (int i = 0; i < 8; ++i) {
    b[2 * i] = static_cast<uint8_t>(g[i] >> 8);
    b[2 * i + 1] = static_cast<uint8_t>(g[i]);
  }
  return encode_ipv6(b);
}

u128 v4(uint32_t a, uint32_t b, uint32_t c, uint32_t d) {
  return encode_ipv4_mapped((a << 24) | (b << 16) | (c << 8) | d);
}

// A v4 /len is a /(96+len) in the mapped space.
constexpr uint32_t v4len(uint32_t len) { return 96 + len; }

u128 span_of(uint32_t plen) { return u128(1) << (128 - plen); }

std::string addr_str(u128 x) {
  char buf[64];
  if (is_ipv4_mapped(x)) {
    const uint32_t v = static_cast<uint32_t>(u128_lo(x));
    std::snprintf(buf, sizeof buf, "::ffff:%u.%u.%u.%u", (v >> 24) & 255,
                  (v >> 16) & 255, (v >> 8) & 255, v & 255);
  } else {
    uint8_t b[16];
    decode_ipv6(x, b);
    std::snprintf(buf, sizeof buf, "%x:%x:%x:%x:%x:%x:%x:%x",
                  (b[0] << 8) | b[1], (b[2] << 8) | b[3], (b[4] << 8) | b[5],
                  (b[6] << 8) | b[7], (b[8] << 8) | b[9], (b[10] << 8) | b[11],
                  (b[12] << 8) | b[13], (b[14] << 8) | b[15]);
  }
  return buf;
}

// Reference answer: scan all routes, keep the longest covering prefix.
int brute_force_lpm(const std::vector<Route>& routes, u128 addr) {
  int hop = -1;
  uint32_t best = 0;
  for (const Route& r : routes) {
    if (addr >= r.base && addr - r.base < span_of(r.plen) &&
        (hop == -1 || r.plen > best)) {
      hop = r.nexthop;
      best = r.plen;
    }
  }
  return hop;
}

// Route metadata lives beside the SkipTrie (which is a set of interval
// starts in the encoded 128-bit space).
struct RouteTable {
  WideTrie starts;
  std::mutex meta_mu;
  std::map<u128, std::pair<u128, int>> meta;  // start -> (end, nexthop)

  RouteTable()
      : starts([] {
          Config c;
          c.universe_bits = 128;
          return c;
        }()) {}

  // Flatten a static (possibly nested) route set into disjoint elementary
  // intervals, each tagged with its deepest covering route, and insert
  // every interval start.  Gap intervals get nexthop -1 so a predecessor
  // landing in them answers "no route" instead of leaking the previous
  // route's hop.
  void load_static(const std::vector<Route>& routes) {
    std::vector<u128> bounds;
    for (const Route& r : routes) {
      bounds.push_back(r.base);
      bounds.push_back(r.base + span_of(r.plen));
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    for (size_t i = 0; i + 1 < bounds.size(); ++i) {
      add_interval(bounds[i], bounds[i + 1],
                   brute_force_lpm(routes, bounds[i]));
    }
    if (!bounds.empty()) {
      // Everything at and above the last boundary is unrouted.
      add_interval(bounds.back(), Bytes16Traits::ikey_max() - u128(2), -1);
    }
  }

  void add_interval(u128 base, u128 end, int nexthop) {
    {
      std::lock_guard<std::mutex> lk(meta_mu);
      meta[base] = {end, nexthop};
    }
    starts.insert(base);
  }

  // Dynamic routes flap as whole prefixes; callers must keep them disjoint
  // from every static route (production would re-flatten or chain).
  void add_route(u128 base, uint32_t plen, int nexthop) {
    add_interval(base, base + span_of(plen), nexthop);
  }

  void del_route(u128 base) {
    starts.erase(base);
    std::lock_guard<std::mutex> lk(meta_mu);
    meta.erase(base);
  }

  // Lookup = one predecessor query + range check.
  int lookup(u128 addr) {
    const auto s = starts.predecessor(addr);
    if (!s) return -1;
    std::lock_guard<std::mutex> lk(meta_mu);
    auto it = meta.find(*s);
    if (it == meta.end() || addr >= it->second.first) return -1;
    return it->second.second;
  }
};

}  // namespace

int main() {
  RouteTable rt;

  // A static FIB with real nesting: the /48 sits inside the /32, the /56
  // inside the /48; the v4-mapped /16 sits inside the /8.  Flattening must
  // tile these into disjoint intervals with the deepest route winning.
  const std::vector<Route> fib = {
      {v6(0x2001, 0xdb8, 0, 0, 0, 0, 0, 0), 32, 1},
      {v6(0x2001, 0xdb8, 0xaaaa, 0, 0, 0, 0, 0), 48, 2},
      {v6(0x2001, 0xdb8, 0xaaaa, 0xbb00, 0, 0, 0, 0), 56, 3},
      {v6(0x2600, 0, 0, 0, 0, 0, 0, 0), 12, 4},
      {v4(10, 0, 0, 0), v4len(8), 5},
      {v4(10, 1, 0, 0), v4len(16), 6},
      {v4(192, 168, 1, 0), v4len(24), 7},
  };
  rt.load_static(fib);

  std::printf("one-shot lookups (nested static FIB):\n");
  const std::vector<u128> probes = {
      v6(0x2001, 0xdb8, 1, 2, 3, 4, 5, 6),          // /32 only      -> 1
      v6(0x2001, 0xdb8, 0xaaaa, 0x0001, 0, 0, 0, 9),// /48 beats /32 -> 2
      v6(0x2001, 0xdb8, 0xaaaa, 0xbb42, 0, 0, 0, 1),// /56 deepest   -> 3
      v6(0x2001, 0xdb9, 0, 0, 0, 0, 0, 0),          // outside /32   -> -1
      v6(0x2607, 0xf8b0, 0, 0, 0, 0, 0, 0x200e),    // 2600::/12     -> 4
      v4(10, 7, 3, 9),                              // 10/8          -> 5
      v4(10, 1, 200, 9),                            // 10.1/16 wins  -> 6
      v4(192, 168, 1, 77),                          // /24           -> 7
      v4(192, 168, 3, 1),                           // gap           -> -1
      v4(8, 8, 8, 8),                               // gap           -> -1
  };
  int mismatches = 0;
  for (const u128 a : probes) {
    const int got = rt.lookup(a);
    const int want = brute_force_lpm(fib, a);
    if (got != want) ++mismatches;
    std::printf("  %-28s -> nexthop %d%s\n", addr_str(a).c_str(), got,
                got == want ? "" : "  [MISMATCH]");
  }

  // Exhaustive self-check at every route corner: base-1, base, base+1,
  // mid, end-1, end for every prefix, plus a pseudo-random spray.
  std::vector<u128> checks;
  for (const Route& r : fib) {
    const u128 end = r.base + span_of(r.plen);
    checks.push_back(r.base - u128(1));
    checks.push_back(r.base);
    checks.push_back(r.base + u128(1));
    checks.push_back(r.base + (span_of(r.plen) >> 1));
    checks.push_back(end - u128(1));
    checks.push_back(end);
  }
  Xoshiro256 rng(7);
  for (int i = 0; i < 20000; ++i) {
    const Route& r = fib[rng.next_below(fib.size())];
    checks.push_back(r.base + (u128(rng.next()) % (span_of(r.plen) * 2)));
  }
  for (const u128 a : checks) {
    if (rt.lookup(a) != brute_force_lpm(fib, a)) ++mismatches;
  }
  std::printf("quiescent self-check: %zu probes, %d mismatches\n",
              checks.size(), mismatches);

  // Concurrent phase: dynamic v4-mapped /24 routes in 172.16/16 (disjoint
  // from the static FIB) flap while lookup threads hammer both the static
  // and dynamic spaces.  Static answers are verified against brute force
  // *during* the flaps — the static intervals never change, so every
  // static lookup must stay exact under full concurrency.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> lookups{0}, hits{0}, bad{0};
  std::thread flapper([&] {
    Xoshiro256 frng(1);
    while (!stop.load(std::memory_order_acquire)) {
      const uint32_t third = 10 + frng.next_below(200);
      const u128 base = v4(172, 16, third, 0);
      rt.add_route(base, v4len(24), static_cast<int>(third));
      if (frng.next() & 1) rt.del_route(base);
    }
  });
  std::vector<std::thread> lookers;
  const unsigned n_lookers =
      std::max(1u, std::thread::hardware_concurrency() - 1);
  for (unsigned i = 0; i < n_lookers; ++i) {
    lookers.emplace_back([&, i] {
      Xoshiro256 lrng(100 + i);
      for (int q = 0; q < 100000; ++q) {
        lookups.fetch_add(1, std::memory_order_relaxed);
        if (lrng.next() & 1) {
          // Dynamic space: a hit must name the flapper's encoding (hop ==
          // third octet); a miss is legal mid-flap.
          const uint32_t third = 10 + lrng.next_below(200);
          const int hop = rt.lookup(v4(172, 16, third, lrng.next_below(256)));
          if (hop >= 0) {
            hits.fetch_add(1, std::memory_order_relaxed);
            if (hop != static_cast<int>(third)) {
              bad.fetch_add(1, std::memory_order_relaxed);
            }
          }
        } else {
          // Static space: exact answer required even during flaps.
          const u128 a = checks[lrng.next_below(checks.size())];
          const int hop = rt.lookup(a);
          if (hop >= 0) hits.fetch_add(1, std::memory_order_relaxed);
          if (hop != brute_force_lpm(fib, a)) {
            bad.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& th : lookers) th.join();
  stop.store(true, std::memory_order_release);
  flapper.join();

  std::printf("\nconcurrent phase: %" PRIu64 " lookups, %" PRIu64
              " hits, %" PRIu64 " bad answers, during continuous route "
              "flaps\n",
              lookups.load(), hits.load(), bad.load());
  std::printf("table now holds %zu interval starts (128-bit universe, "
              "%u-bit keys)\n",
              rt.starts.size(), rt.starts.universe_bits());
  if (mismatches != 0 || bad.load() != 0) {
    std::printf("SELF-CHECK FAILED\n");
    return 1;
  }
  std::printf("self-check passed\n");
  return 0;
}
