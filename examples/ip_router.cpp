// Example: concurrent IP longest-prefix-match routing table.
//
//   build/examples/ip_router
//
// Classic predecessor-query application (and the kind of workload the
// paper's u=2^32 motivation describes): each route covers an address range
// [base, base + 2^(32-len)); storing range *starts* keyed by IPv4 address
// lets predecessor(addr) find the candidate route in O(log log u) steps,
// while route flaps (insert/erase) run concurrently with lookups.
//
// This simplified variant stores disjoint covering ranges (as produced by
// de-aggregated FIBs); a production LPM would chain to shorter prefixes on
// a range-end miss.
#include <atomic>
#include <cstdio>
#include <inttypes.h>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/skiptrie.h"

using namespace skiptrie;

namespace {

uint64_t ip(uint32_t a, uint32_t b, uint32_t c, uint32_t d) {
  return (static_cast<uint64_t>(a) << 24) | (b << 16) | (c << 8) | d;
}

std::string ip_str(uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u",
                static_cast<unsigned>(v >> 24) & 255,
                static_cast<unsigned>(v >> 16) & 255,
                static_cast<unsigned>(v >> 8) & 255,
                static_cast<unsigned>(v) & 255);
  return buf;
}

// Route metadata lives beside the SkipTrie (which is a set of range starts).
struct RouteTable {
  SkipTrie starts;
  std::mutex meta_mu;
  std::map<uint64_t, std::pair<uint64_t, int>> meta;  // start -> (end, nexthop)

  explicit RouteTable() : starts([] {
    Config c;
    c.universe_bits = 32;
    return c;
  }()) {}

  void add_route(uint64_t base, uint32_t plen, int nexthop) {
    const uint64_t span = 1ull << (32 - plen);
    {
      std::lock_guard<std::mutex> lk(meta_mu);
      meta[base] = {base + span, nexthop};
    }
    starts.insert(base);
  }

  void del_route(uint64_t base) {
    starts.erase(base);
    std::lock_guard<std::mutex> lk(meta_mu);
    meta.erase(base);
  }

  // Lookup = predecessor query + range check.
  int lookup(uint64_t addr) {
    const auto s = starts.predecessor(addr);
    if (!s) return -1;
    std::lock_guard<std::mutex> lk(meta_mu);
    auto it = meta.find(*s);
    if (it == meta.end() || addr >= it->second.first) return -1;
    return it->second.second;
  }
};

}  // namespace

int main() {
  RouteTable rt;

  // A small FIB: disjoint /16 and /24 ranges.
  rt.add_route(ip(10, 0, 0, 0), 16, 1);     // 10.0/16      -> if1
  rt.add_route(ip(10, 1, 0, 0), 16, 2);     // 10.1/16      -> if2
  rt.add_route(ip(192, 168, 1, 0), 24, 3);  // 192.168.1/24 -> if3
  rt.add_route(ip(192, 168, 2, 0), 24, 4);  // 192.168.2/24 -> if4

  std::printf("one-shot lookups:\n");
  for (uint64_t a : {ip(10, 0, 3, 7), ip(10, 1, 200, 9), ip(192, 168, 1, 77),
                     ip(192, 168, 3, 1), ip(8, 8, 8, 8)}) {
    std::printf("  %-16s -> nexthop %d\n", ip_str(a).c_str(), rt.lookup(a));
  }

  // Concurrent phase: route flaps while lookup threads hammer the table.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> lookups{0}, hits{0};
  std::thread flapper([&] {
    Xoshiro256 rng(1);
    while (!stop.load(std::memory_order_acquire)) {
      const uint32_t third = 10 + rng.next_below(200);
      const uint64_t base = ip(172, 16, third, 0);
      rt.add_route(base, 24, static_cast<int>(third));
      if (rng.next() & 1) rt.del_route(base);
    }
  });
  std::vector<std::thread> lookers;
  const unsigned n_lookers =
      std::max(1u, std::thread::hardware_concurrency() - 1);
  for (unsigned i = 0; i < n_lookers; ++i) {
    lookers.emplace_back([&, i] {
      Xoshiro256 rng(100 + i);
      for (int q = 0; q < 200000; ++q) {
        const uint64_t addr =
            (rng.next() & 1) ? ip(172, 16, 10 + rng.next_below(200),
                                  rng.next_below(256))
                             : ip(10, rng.next_below(2), rng.next_below(256),
                                  rng.next_below(256));
        lookups.fetch_add(1, std::memory_order_relaxed);
        if (rt.lookup(addr) >= 0) hits.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : lookers) th.join();
  stop.store(true, std::memory_order_release);
  flapper.join();

  std::printf("\nconcurrent phase: %" PRIu64 " lookups, %" PRIu64
              " hits, during continuous route flaps\n",
              lookups.load(), hits.load());
  std::printf("table now holds %zu range starts; structure intact\n",
              rt.starts.size());
  return 0;
}
