// Quickstart: the SkipTrie public API in one file.
//
//   build/examples/quickstart
//
// Creates a SkipTrie over a 32-bit key universe, performs the three core
// operations (insert, predecessor, delete) plus the convenience queries,
// and prints what the paper's complexity bounds mean for the structure.
#include <cstdio>
#include <inttypes.h>
#include <string>

#include "common/bitops.h"
#include "core/skiptrie.h"

int main() {
  using namespace skiptrie;

  // 1. Configure: the only required choice is the key universe [0, 2^B).
  Config cfg;
  cfg.universe_bits = 32;  // u = 2^32, so log log u = 5
  SkipTrie set(cfg);

  // 2. Insert keys.  insert() is lock-free and returns false on duplicates.
  for (uint64_t k : {300u, 100u, 200u, 400u, 150u}) {
    const bool fresh = set.insert(k);
    std::printf("insert(%3" PRIu64 ") -> %s\n", k, fresh ? "ok" : "duplicate");
  }

  // 3. Predecessor queries: the paper's headline operation, expected
  //    amortized O(log log u + c) steps.
  for (uint64_t q : {99u, 100u, 175u, 1000u}) {
    const auto p = set.predecessor(q);   // largest key <= q
    const auto s = set.successor(q);     // smallest key > q
    std::printf("predecessor(%4" PRIu64 ") = %-12s successor(%4" PRIu64
                ") = %s\n",
                q, p ? std::to_string(*p).c_str() : "(none)", q,
                s ? std::to_string(*s).c_str() : "(none)");
  }

  // 4. Membership and deletion.
  std::printf("contains(200) = %d\n", set.contains(200));
  std::printf("erase(200)    = %d\n", set.erase(200));
  std::printf("contains(200) = %d\n", set.contains(200));
  std::printf("predecessor(250) now = %" PRIu64 "\n", *set.predecessor(250));

  // 5. Structure introspection (used heavily by the benchmarks).
  const auto stats = set.structure_stats();
  std::printf("\nkeys=%zu, top-level keys=%zu, trie entries=%zu\n",
              stats.keys, stats.top_count, stats.trie_entries);
  std::printf("universe bits B=%u -> skiplist levels=%u (log log u + 1)\n",
              set.universe_bits(), ceil_log2(set.universe_bits()) + 1);
  return 0;
}
