// Example: bulk ingest and multi-get through the batch API (DESIGN.md §3.7).
//
//   build/examples/bulk_load
//
// A feed handler ingests a large sorted snapshot (bulk load), then serves
// multi-get membership checks for client request batches.  Both shapes are
// what insert_batch/contains_batch exist for: the keys are sorted, so one
// DescentCursor walk is amortized across each batch — every key after the
// first enters the descent at the lowest level where the cursor's bracket
// still holds, skipping the x-fast lowest_ancestor query entirely.  The
// example prints the cursor reuse rate and the per-key step counts against
// a per-key-loop control — including the modeled cache-line traffic per
// key (schema v7 bytes_touched, DESIGN.md §7.4), where the leaf-chunk
// index shows up as fewer level-0 lines per descent — and fails (nonzero
// exit) if the batched results ever disagree with the single-key API.
#include <cstdio>
#include <cstdlib>
#include <inttypes.h>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "core/skiptrie.h"

using namespace skiptrie;

namespace {

double per_key(uint64_t v, size_t n) {
  return n ? static_cast<double>(v) / static_cast<double>(n) : 0.0;
}

}  // namespace

int main() {
  constexpr size_t kSnapshot = 100000;  // sorted snapshot rows
  constexpr size_t kBatch = 512;        // ingest / multi-get batch size
  constexpr uint64_t kSpace = 1 << 18;

  // A sorted snapshot with gaps (every ~2.6th slot occupied).
  std::vector<uint64_t> snapshot;
  snapshot.reserve(kSnapshot);
  Xoshiro256 rng(42);
  for (uint64_t key = 0; snapshot.size() < kSnapshot && key < kSpace;
       key += 1 + rng.next_below(4)) {
    snapshot.push_back(key);
  }

  Config cfg;
  cfg.universe_bits = 18;
  SkipTrie batched(cfg), control(cfg);

  // --- Bulk load: sorted batches through insert_batch ---------------------
  tls_counters() = StepCounters{};
  for (size_t i = 0; i < snapshot.size(); i += kBatch) {
    const size_t n = std::min(kBatch, snapshot.size() - i);
    batched.insert_batch(snapshot.data() + i, n);
  }
  const StepCounters load = tls_counters();

  tls_counters() = StepCounters{};
  for (const uint64_t k : snapshot) control.insert(k);
  const StepCounters load_ctl = tls_counters();
  tls_counters() = StepCounters{};

  if (batched.size() != control.size()) {
    std::fprintf(stderr, "FAIL: bulk load size %zu != control %zu\n",
                 batched.size(), control.size());
    return 1;
  }
  const uint64_t warm = load.cursor_reuses + load.cursor_redescends;
  std::printf("bulk load: %zu keys in batches of %zu\n", snapshot.size(),
              kBatch);
  std::printf("  cursor reuse rate      %.1f%% (%" PRIu64 "/%" PRIu64
              " warm seeks)\n",
              warm ? 100.0 * static_cast<double>(load.cursor_reuses) /
                         static_cast<double>(warm)
                   : 0.0,
              load.cursor_reuses, warm);
  std::printf("  hops+probes per key    %.1f batched vs %.1f per-key "
              "(%.1fx)\n",
              per_key(load.node_hops + load.hash_probes, snapshot.size()),
              per_key(load_ctl.node_hops + load_ctl.hash_probes,
                      snapshot.size()),
              static_cast<double>(load_ctl.node_hops + load_ctl.hash_probes) /
                  static_cast<double>(load.node_hops + load.hash_probes));
  std::printf("  bytes touched per key  %.0f batched vs %.0f per-key "
              "(list+leaf lines, DESIGN.md \u00a77.4)\n",
              per_key(load.bytes_touched, snapshot.size()),
              per_key(load_ctl.bytes_touched, snapshot.size()));

  // --- Multi-get: client request batches through contains_batch -----------
  // Each round serves one client's request batch: keys concentrated in
  // that client's slice of the id space (the shape that makes multi-get
  // batches dense — a batch of 512 uniform keys over the whole 2^18 space
  // would leave ~200 snapshot rows between consecutive sorted keys, and
  // one amortized walk can't beat per-key descents at that spread).
  constexpr uint64_t kClientSpan = 8192;
  std::vector<uint64_t> req(kBatch);
  std::vector<uint8_t> got(kBatch);
  size_t checked = 0, mismatches = 0;
  tls_counters() = StepCounters{};
  StepCounters serve, serve_ctl;
  for (int round = 0; round < 64; ++round) {
    const uint64_t base = rng.next_below(kSpace - kClientSpan);
    for (auto& k : req) k = base + rng.next_below(kClientSpan);
    std::sort(req.begin(), req.end());
    tls_counters() = StepCounters{};
    batched.contains_batch(req, got.data());
    serve += tls_counters();
    tls_counters() = StepCounters{};
    for (size_t i = 0; i < req.size(); ++i) {
      if (static_cast<bool>(got[i]) != control.contains(req[i])) ++mismatches;
      ++checked;
    }
    serve_ctl += tls_counters();
  }
  tls_counters() = StepCounters{};
  if (mismatches != 0) {
    std::fprintf(stderr, "FAIL: %zu/%zu multi-get mismatches\n", mismatches,
                 checked);
    return 1;
  }
  std::printf("multi-get: %zu lookups in batches of %zu, all match the "
              "per-key API\n",
              checked, kBatch);
  std::printf("  hops+probes per key    %.1f batched vs %.1f per-key "
              "(%.1fx)\n",
              per_key(serve.node_hops + serve.hash_probes, checked),
              per_key(serve_ctl.node_hops + serve_ctl.hash_probes, checked),
              static_cast<double>(serve_ctl.node_hops + serve_ctl.hash_probes) /
                  static_cast<double>(serve.node_hops + serve.hash_probes));
  std::printf("  bytes touched per key  %.0f batched vs %.0f per-key "
              "(list+leaf lines, DESIGN.md \u00a77.4)\n",
              per_key(serve.bytes_touched, checked),
              per_key(serve_ctl.bytes_touched, checked));
  std::printf("bulk_load: OK\n");
  return 0;
}
