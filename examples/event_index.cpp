// Example: time-series event index ("latest reading at or before t").
//
//   build/examples/event_index
//
// Sensors append timestamped readings; dashboards ask "what was the value
// at time t?" — a pure predecessor query over 64-bit timestamps.  This
// exercises the SkipTrie at its largest universe (B = 64, log log u = 6)
// with monotonically increasing inserts from several writers, a pattern
// that degenerates balanced-tree rebalancing but is harmless here (no
// rebalancing exists to degenerate — the paper's titular point).
#include <atomic>
#include <cstdio>
#include <inttypes.h>
#include <thread>
#include <vector>

#include "common/bitops.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/skiptrie.h"

using namespace skiptrie;

int main() {
  Config cfg;
  cfg.universe_bits = 64;
  SkipTrie index(cfg);

  // Timestamps: nanoseconds since epoch, interleaved from 3 sensors with
  // distinct low bits so they never collide.
  constexpr uint64_t kBase = 1'760'000'000'000'000'000ull;  // ~2025 in ns
  constexpr int kSensors = 3;
  constexpr uint64_t kEventsPerSensor = 50'000;

  std::vector<std::thread> writers;
  for (int s = 0; s < kSensors; ++s) {
    writers.emplace_back([&, s] {
      Xoshiro256 rng(s + 1);
      uint64_t t = kBase + s;
      for (uint64_t i = 0; i < kEventsPerSensor; ++i) {
        t += (1000 + rng.next_below(9000)) * kSensors;  // 1-10us cadence
        index.insert(t);
      }
    });
  }
  // Dashboards query while ingest runs.
  std::atomic<uint64_t> answered{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256 rng(100 + r);
      for (int q = 0; q < 100'000; ++q) {
        const uint64_t t = kBase + rng.next_below(kEventsPerSensor * 15'000);
        const auto at = index.predecessor(t);
        if (at && *at <= t) answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : writers) w.join();
  for (auto& r : readers) r.join();

  std::printf("ingested %zu events from %d sensors (monotone timestamps)\n",
              index.size(), kSensors);
  std::printf("answered %" PRIu64 " point-in-time queries during ingest\n",
              answered.load());

  // Point-in-time reconstruction after ingest, with step accounting.
  tls_counters() = StepCounters{};
  Xoshiro256 rng(7);
  uint64_t found = 0;
  const int kQueries = 50'000;
  for (int q = 0; q < kQueries; ++q) {
    const uint64_t t = kBase + rng.next_below(kEventsPerSensor * 15'000);
    if (index.predecessor(t)) found++;
  }
  const auto& c = tls_counters();
  std::printf("quiescent: %d queries, %.1f search steps/query "
              "(log log u = %u for B=64), %.2f hash probes/query\n",
              kQueries,
              static_cast<double>(c.search_steps()) / kQueries,
              ceil_log2(64),
              static_cast<double>(c.hash_probes) / kQueries);
  std::printf("coverage: %.1f%% of query times had a reading\n",
              100.0 * static_cast<double>(found) / kQueries);
  return 0;
}
