// Example: limit order book price levels on a SkipTrie.
//
//   build/examples/orderbook
//
// A matching engine keeps two sets of price levels.  The hot queries are
// exactly the SkipTrie's strengths:
//   best bid            = predecessor(+inf) on the bid set
//   best ask            = successor(0) on the ask set
//   marketable check    = predecessor/successor against the incoming price
// Price levels churn heavily (levels empty out and reappear), and prices
// live in a small fixed universe (ticks), so u is tiny and log log u beats
// log m structurally.  Quantities are tracked per level beside the trie.
#include <atomic>
#include <cstdio>
#include <inttypes.h>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/skiptrie.h"

using namespace skiptrie;

namespace {

constexpr uint32_t kTickBits = 24;  // prices are ticks in [0, 2^24)
constexpr uint64_t kMid = 8'000'000;

Config cfg() {
  Config c;
  c.universe_bits = kTickBits;
  return c;
}

struct Book {
  SkipTrie bids{cfg()};
  SkipTrie asks{cfg()};
  // Per-level open quantity; sized for the whole tick universe region we
  // trade in (demo simplification; a real book shards this).
  std::vector<std::atomic<int64_t>> qty;

  Book() : qty(1 << 20) {}

  std::atomic<int64_t>& level(uint64_t px) { return qty[px % qty.size()]; }

  void add_bid(uint64_t px, int64_t q) {
    if (level(px).fetch_add(q) == 0 || !bids.contains(px)) bids.insert(px);
  }
  void add_ask(uint64_t px, int64_t q) {
    if (level(px).fetch_add(q) == 0 || !asks.contains(px)) asks.insert(px);
  }
  void drain_level(SkipTrie& side, uint64_t px, int64_t q) {
    if (level(px).fetch_sub(q) - q <= 0) side.erase(px);
  }

  std::optional<uint64_t> best_bid() { return bids.predecessor(~0u >> 8); }
  std::optional<uint64_t> best_ask() { return asks.successor(0); }
};

}  // namespace

int main() {
  Book book;

  // Seed a book around the mid price.
  for (int i = 1; i <= 50; ++i) {
    book.add_bid(kMid - i, 100 * i);
    book.add_ask(kMid + i, 100 * i);
  }
  std::printf("seeded book: best bid %" PRIu64 ", best ask %" PRIu64
              ", spread %" PRIu64 " ticks\n",
              *book.best_bid(), *book.best_ask(),
              *book.best_ask() - *book.best_bid());

  // Concurrent order flow: makers add liquidity at random depths, takers
  // lift the touch, queries watch the spread.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> crossings{0}, quotes{0};
  std::thread maker([&] {
    Xoshiro256 rng(1);
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t depth = 1 + rng.next_below(100);
      if (rng.next() & 1) {
        book.add_bid(kMid - depth, 100);
      } else {
        book.add_ask(kMid + depth, 100);
      }
    }
  });
  std::thread taker([&] {
    Xoshiro256 rng(2);
    for (int i = 0; i < 200000; ++i) {
      if (rng.next() & 1) {
        if (auto b = book.best_bid()) book.drain_level(book.bids, *b, 100);
      } else {
        if (auto a = book.best_ask()) book.drain_level(book.asks, *a, 100);
      }
    }
    stop.store(true, std::memory_order_release);
  });
  std::thread watcher([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto b = book.best_bid();
      const auto a = book.best_ask();
      quotes.fetch_add(1, std::memory_order_relaxed);
      if (b && a && *b >= *a) crossings.fetch_add(1, std::memory_order_relaxed);
    }
  });
  maker.join();
  taker.join();
  watcher.join();

  std::printf("after flow: best bid %s, best ask %s\n",
              book.best_bid() ? std::to_string(*book.best_bid()).c_str()
                              : "(empty)",
              book.best_ask() ? std::to_string(*book.best_ask()).c_str()
                              : "(empty)");
  std::printf("%" PRIu64 " spread snapshots taken concurrently; %" PRIu64
              " transient crossed observations (expected under concurrent\n"
              "updates of two independent sets)\n",
              quotes.load(), crossings.load());
  std::printf("bid levels: %zu, ask levels: %zu\n", book.bids.size(),
              book.asks.size());
  return 0;
}
