// Workload-driver and distribution-generator behavior.
#include <gtest/gtest.h>

#include <map>

#include "core/skiptrie.h"
#include "workload/driver.h"

namespace skiptrie {
namespace {

TEST(Workload, OpMixFractionsRespected) {
  Config c;
  c.universe_bits = 16;
  SkipTrie t(c);
  WorkloadConfig wc;
  wc.threads = 2;
  wc.ops_per_thread = 30000;
  wc.mix = OpMix{0.2, 0.1, 0.4};  // remainder 0.3 -> contains
  wc.key_space = 1u << 12;
  const auto r = run_workload(t, wc);
  const double n = static_cast<double>(r.total_ops);
  EXPECT_NEAR(r.inserts / n, 0.2, 0.02);
  EXPECT_NEAR(r.erases / n, 0.1, 0.02);
  EXPECT_NEAR(r.preds / n, 0.4, 0.02);
  EXPECT_NEAR(r.lookups / n, 0.3, 0.02);
}

TEST(Workload, PrefillHappensBeforeTiming) {
  Config c;
  c.universe_bits = 20;
  SkipTrie t(c);
  WorkloadConfig wc;
  wc.threads = 1;
  wc.ops_per_thread = 100;
  wc.mix = OpMix::read_only();
  wc.prefill = 5000;
  wc.key_space = 1u << 16;
  const auto r = run_workload(t, wc);
  EXPECT_GE(t.size(), 4000u);            // prefill landed
  EXPECT_EQ(r.total_ops, 100u);          // but wasn't counted
  EXPECT_GT(r.pred_hits, 0u);            // and queries can see it
}

TEST(Workload, DeterministicAcrossRunsSameSeed) {
  WorkloadConfig wc;
  wc.threads = 1;
  wc.ops_per_thread = 20000;
  wc.key_space = 1u << 10;
  wc.seed = 77;

  Config c;
  c.universe_bits = 16;
  SkipTrie a(c), b(c);
  const auto ra = run_workload(a, wc);
  const auto rb = run_workload(b, wc);
  EXPECT_EQ(ra.insert_hits, rb.insert_hits);
  EXPECT_EQ(ra.erase_hits, rb.erase_hits);
  EXPECT_EQ(ra.pred_hits, rb.pred_hits);
  EXPECT_EQ(a.size(), b.size());
}

TEST(Workload, StepsAggregateAcrossThreads) {
  Config c;
  c.universe_bits = 16;
  SkipTrie t(c);
  WorkloadConfig wc;
  wc.threads = 4;
  wc.ops_per_thread = 5000;
  wc.prefill = 1000;
  wc.key_space = 1u << 12;
  const auto r = run_workload(t, wc);
  // Every op does at least one hop; the aggregate must reflect all threads.
  EXPECT_GE(r.steps.node_hops, r.total_ops);
}

TEST(Workload, ClusteredKeysStayInClusters) {
  KeyGenerator gen(KeyDist::kClustered, 1u << 20, 5, 0.99, 4, 64);
  std::map<uint64_t, int> buckets;  // cluster base -> hits
  for (int i = 0; i < 10000; ++i) {
    buckets[gen.next() / 4096]++;
  }
  // 4 clusters of span 64 -> at most ~8 distinct 4K-buckets (clusters can
  // straddle a boundary or wrap).
  EXPECT_LE(buckets.size(), 8u);
}

TEST(Workload, ZipfSeedsGiveDistinctStreams) {
  KeyGenerator a(KeyDist::kZipf, 1u << 16, 1);
  KeyGenerator b(KeyDist::kZipf, 1u << 16, 2);
  int diff = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() != b.next()) diff++;
  }
  EXPECT_GT(diff, 50);
}

}  // namespace
}  // namespace skiptrie
