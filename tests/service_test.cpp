// Service front-end tests (DESIGN.md §4.3): correctness of the queue /
// split / merge machinery, then a concurrent stress harness against a
// mutex-guarded std::map reference model with per-op linearization checks.
//
// The stress design makes exact per-op checking possible under concurrency:
//
//  * Striped phase — each client owns a disjoint *contiguous* key stripe
//    and submits one request at a time (bounded history per stripe).  Every
//    write answer is exact: insert/erase/contains are key-local and only
//    the owner touches the stripe.  Predecessor answers are exact whenever
//    the stripe-local model has a predecessor p for the query q: any key
//    strictly between p and q would lie inside [stripe_lo, stripe_hi] and
//    therefore be owned (and tracked) by this client — foreign keys cannot
//    interpose.  When the local model has *no* in-stripe predecessor the
//    answer may come from a lower stripe and only its range is checked.
//
//  * Shared phase — all clients hammer one small key set with bursty
//    async requests; per-key atomic tallies of *successful* inserts/erases
//    give the linearization invariant at quiescence: a key is present iff
//    successes(insert) == successes(erase) + 1 (every success strictly
//    alternates per key).
//
// Histories are bounded and seed-stable; the suite must pass under
// -DSKIPTRIE_SANITIZE=asan and tsan (CI runs all three configs).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "service/service.h"
#include "workload/client_sim.h"

namespace skiptrie {
namespace {

constexpr uint32_t kBits = 20;

ServiceConfig service_cfg(uint32_t shards, size_t queue_cap = 1024) {
  ServiceConfig cfg;
  cfg.shards = shards;
  cfg.trie.universe_bits = kBits;
  cfg.queue_capacity = queue_cap;
  return cfg;
}

// --- Sequential correctness through the queue machinery ----------------------

// At shards=1 a single worker replays each request in exact input order, so
// every op of a mixed request — predecessor included — checks exactly
// against an input-order replay on the model.
TEST(ServiceBasic, SequentialRequestsMatchReferenceModel) {
  Service svc(service_cfg(1));
  std::set<uint64_t> model;
  Xoshiro256 rng(0x5e11ce);
  for (int round = 0; round < 50; ++round) {
    const size_t n = 1 + rng.next_below(48);
    std::vector<ServiceOpItem> ops;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t key = rng.next_below(1ull << 12);  // dense: collisions
      const auto op = static_cast<ServiceOp>(rng.next_below(4));
      ops.push_back({op, key});
    }
    const std::vector<ServiceOpItem> sent = ops;  // submit() moves the batch
    const ServiceResult res = svc.submit(std::move(ops)).get();
    ASSERT_EQ(res.results.size(), sent.size());
    for (size_t i = 0; i < sent.size(); ++i) {
      const uint64_t k = sent[i].key;
      const OpResult& r = res.results[i];
      switch (sent[i].op) {
        case ServiceOp::kInsert:
          EXPECT_EQ(r.ok, model.insert(k).second) << "op " << i;
          break;
        case ServiceOp::kErase:
          EXPECT_EQ(r.ok, model.erase(k) > 0) << "op " << i;
          break;
        case ServiceOp::kContains:
          EXPECT_EQ(r.ok, model.count(k) > 0) << "op " << i;
          break;
        case ServiceOp::kPredecessor: {
          auto it = model.upper_bound(k);
          if (it == model.begin()) {
            EXPECT_FALSE(r.ok) << "op " << i;
          } else {
            ASSERT_TRUE(r.ok) << "op " << i;
            EXPECT_EQ(*r.value, *std::prev(it)) << "op " << i;
          }
          break;
        }
      }
    }
  }
  svc.stop();
  EXPECT_EQ(svc.engine().size(), model.size());
}

// Multi-shard variant: a request's subtasks run on different workers
// concurrently, so mixed read/write requests are not input-order checkable
// across shards (a predecessor's cross-shard fallback may race the same
// request's writes elsewhere).  Alternating write-only and read-only
// requests — each awaited before the next — keeps every answer exact while
// exercising the split/merge across all four shards.
TEST(ServiceBasic, CrossShardRequestsMatchReferenceModelWhenPhased) {
  Service svc(service_cfg(4));
  std::set<uint64_t> model;
  Xoshiro256 rng(0xcafe01);
  for (int round = 0; round < 40; ++round) {
    // Write phase: keys spread over every shard; insert/erase are key-local
    // so results check exactly in input order even across workers.
    const size_t n = 1 + rng.next_below(64);
    std::vector<ServiceOpItem> writes;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t key = rng.next_below(1ull << kBits);
      writes.push_back({rng.next_below(3) == 0 ? ServiceOp::kErase
                                               : ServiceOp::kInsert,
                        key});
    }
    const std::vector<ServiceOpItem> sentw = writes;
    const ServiceResult resw = svc.submit(std::move(writes)).get();
    for (size_t i = 0; i < sentw.size(); ++i) {
      if (sentw[i].op == ServiceOp::kInsert) {
        EXPECT_EQ(resw.results[i].ok, model.insert(sentw[i].key).second);
      } else {
        EXPECT_EQ(resw.results[i].ok, model.erase(sentw[i].key) > 0);
      }
    }
    // Read phase against the now-quiescent engine: predecessor answers
    // (cross-shard fallback included) must be exact.
    std::vector<ServiceOpItem> reads;
    for (size_t i = 0; i < 32; ++i) {
      reads.push_back({ServiceOp::kPredecessor, rng.next_below(1ull << kBits)});
    }
    const std::vector<ServiceOpItem> sentr = reads;
    const ServiceResult resr = svc.submit(std::move(reads)).get();
    for (size_t i = 0; i < sentr.size(); ++i) {
      auto it = model.upper_bound(sentr[i].key);
      if (it == model.begin()) {
        EXPECT_FALSE(resr.results[i].ok);
      } else {
        ASSERT_TRUE(resr.results[i].ok);
        EXPECT_EQ(*resr.results[i].value, *std::prev(it));
      }
    }
  }
  svc.stop();
  EXPECT_EQ(svc.engine().size(), model.size());
}

TEST(ServiceBasic, EmptyRequestAndCallbackFlavor) {
  Service svc(service_cfg(2));
  // Empty request: completes immediately, empty results.
  EXPECT_TRUE(svc.submit({}).get().results.empty());
  // Callback flavor: invoked exactly once with the results.
  std::atomic<int> called{0};
  std::vector<ServiceOpItem> ops = {{ServiceOp::kInsert, 7},
                                    {ServiceOp::kContains, 7}};
  std::promise<void> done;
  svc.submit(std::move(ops), [&](ServiceResult r) {
    EXPECT_EQ(r.results.size(), 2u);
    EXPECT_TRUE(r.results[0].ok);
    EXPECT_TRUE(r.results[1].ok);
    called.fetch_add(1);
    done.set_value();
  });
  done.get_future().wait();
  EXPECT_EQ(called.load(), 1);
}

TEST(ServiceBasic, QueueAttributionCountersFlow) {
  std::thread probe([] {
    // Tiny queue so bursts must block; counters are per-thread, so probe
    // from a fresh thread with clean counters.
    Service svc(service_cfg(2, /*queue_cap=*/2));
    tls_counters() = StepCounters{};
    std::vector<std::future<ServiceResult>> fs;
    for (int r = 0; r < 64; ++r) {
      std::vector<ServiceOpItem> ops;
      for (uint64_t i = 0; i < 32; ++i) {
        ops.push_back({ServiceOp::kInsert, (r * 37 + i * 131) % (1ull << kBits)});
      }
      fs.push_back(svc.submit(std::move(ops)));
    }
    for (auto& f : fs) f.get();
    const StepCounters& c = tls_counters();
    EXPECT_EQ(c.service_requests, 64u);
    EXPECT_GE(c.service_subtasks, 64u);   // >= one per request
    EXPECT_LE(c.service_subtasks, 128u);  // <= shards per request
    EXPECT_GT(c.queue_depth_sum, 0u);
    svc.stop();
    // Worker-side counters landed in the service's fold, not here.
    EXPECT_EQ(c.queue_wait_ns, 0u);
    EXPECT_GT(svc.worker_counters().queue_wait_ns, 0u);
    EXPECT_GT(svc.worker_counters().shard_batches, 0u);
    EXPECT_GT(svc.worker_counters().node_hops, 0u);
    tls_counters() = StepCounters{};
  });
  probe.join();
}

// --- Concurrent stress: striped exact phase ----------------------------------

TEST(ServiceStress, StripedClientsExactPerOpLinearization) {
  constexpr uint32_t kClients = 4;
  constexpr uint32_t kRequests = 120;  // bounded history
  constexpr uint32_t kOpsPerRequest = 24;
  constexpr uint64_t kStripe = (1ull << kBits) / kClients;

  Service svc(service_cfg(4, /*queue_cap=*/16));
  std::atomic<uint64_t> violations{0};
  std::vector<std::thread> clients;
  for (uint32_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      const uint64_t lo = t * kStripe;
      Xoshiro256 rng(0x1234 + t);
      std::set<uint64_t> model;  // this stripe's reference content
      for (uint32_t r = 0; r < kRequests; ++r) {
        std::vector<ServiceOpItem> ops;
        for (uint32_t i = 0; i < kOpsPerRequest; ++i) {
          // Dense sub-range so duplicates and hits are common.
          const uint64_t key = lo + rng.next_below(1024) * (kStripe / 1024);
          ops.push_back({static_cast<ServiceOp>(rng.next_below(4)), key});
        }
        const std::vector<ServiceOpItem> sent = ops;
        const ServiceResult res = svc.submit(std::move(ops)).get();
        for (size_t i = 0; i < sent.size(); ++i) {
          const uint64_t k = sent[i].key;
          const OpResult& out = res.results[i];
          bool ok = true;
          switch (sent[i].op) {
            case ServiceOp::kInsert:
              ok = out.ok == model.insert(k).second;
              break;
            case ServiceOp::kErase:
              ok = out.ok == (model.erase(k) > 0);
              break;
            case ServiceOp::kContains:
              ok = out.ok == (model.count(k) > 0);
              break;
            case ServiceOp::kPredecessor: {
              auto it = model.upper_bound(k);
              if (it != model.begin()) {
                // In-stripe predecessor exists: exact (see header proof).
                ok = out.ok && *out.value == *std::prev(it);
              } else {
                // Answer, if any, must come from a lower stripe.
                ok = !out.ok || *out.value < lo;
              }
              break;
            }
          }
          if (!ok) violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // Quiescent stripe reconciliation: the engine holds exactly the
      // model's keys inside this stripe.
      for (uint64_t probe = 0; probe < 1024; ++probe) {
        const uint64_t key = lo + probe * (kStripe / 1024);
        if (svc.engine().contains(key) != (model.count(key) > 0)) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : clients) th.join();
  EXPECT_EQ(violations.load(), 0u);
}

// --- Concurrent stress: shared-key phase --------------------------------------

TEST(ServiceStress, SharedKeysSuccessCountsLinearize) {
  constexpr uint32_t kClients = 4;
  constexpr uint32_t kRequests = 100;
  constexpr uint32_t kOpsPerRequest = 16;
  constexpr uint64_t kSharedKeys = 32;  // all clients fight over these
  constexpr uint64_t kKeyStride = (1ull << kBits) / kSharedKeys;  // all shards

  Service svc(service_cfg(4, /*queue_cap=*/8));
  std::atomic<uint64_t> succ_ins[kSharedKeys] = {};
  std::atomic<uint64_t> succ_era[kSharedKeys] = {};

  std::vector<std::thread> clients;
  for (uint32_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      Xoshiro256 rng(0xfeed + t);
      std::vector<std::future<ServiceResult>> inflight;
      std::vector<std::vector<ServiceOpItem>> sent;
      const auto drain = [&] {
        for (size_t r = 0; r < inflight.size(); ++r) {
          const ServiceResult res = inflight[r].get();
          for (size_t i = 0; i < sent[r].size(); ++i) {
            if (!res.results[i].ok) continue;
            const uint64_t slot = sent[r][i].key / kKeyStride;
            if (sent[r][i].op == ServiceOp::kInsert) {
              succ_ins[slot].fetch_add(1, std::memory_order_relaxed);
            } else if (sent[r][i].op == ServiceOp::kErase) {
              succ_era[slot].fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        inflight.clear();
        sent.clear();
      };
      for (uint32_t r = 0; r < kRequests; ++r) {
        std::vector<ServiceOpItem> ops;
        for (uint32_t i = 0; i < kOpsPerRequest; ++i) {
          const uint64_t key = rng.next_below(kSharedKeys) * kKeyStride;
          // Writes only: the success-count invariant needs every answer.
          const auto op = rng.next_below(2) == 0 ? ServiceOp::kInsert
                                                 : ServiceOp::kErase;
          ops.push_back({op, key});
        }
        sent.push_back(ops);
        inflight.push_back(svc.submit(std::move(ops)));
        if (inflight.size() >= 4) drain();  // bursty but bounded
      }
      drain();
    });
  }
  for (auto& th : clients) th.join();

  // Linearizability at quiescence: per key, successful inserts and erases
  // strictly alternate (an insert succeeds only on an absent key, an erase
  // only on a present one), so presence == (inserts - erases == 1).
  for (uint64_t s = 0; s < kSharedKeys; ++s) {
    const uint64_t ins = succ_ins[s].load();
    const uint64_t era = succ_era[s].load();
    ASSERT_TRUE(ins == era || ins == era + 1) << "key slot " << s;
    EXPECT_EQ(svc.engine().contains(s * kKeyStride), ins == era + 1)
        << "key slot " << s;
  }
}

// --- Client simulator smoke ---------------------------------------------------

TEST(ClientSim, RunsDeterministicRequestCountsAndQuiesces) {
  Service svc(service_cfg(4, /*queue_cap=*/32));
  ClientSimConfig cfg;
  cfg.clients = 3;
  cfg.requests_per_client = 40;
  cfg.ops_per_request = 16;
  cfg.burst = 6;
  cfg.tenants = 32;
  cfg.key_space = 1ull << kBits;
  cfg.seed = 99;
  cfg.prefill = 500;
  const ClientSimResult r = run_client_sim(svc, cfg);
  EXPECT_EQ(r.requests, 3u * 40u);
  EXPECT_EQ(r.ops, 3u * 40u * 16u);
  uint64_t by_type = 0;
  for (size_t k = 0; k < kOpTypeCount; ++k) by_type += r.op_counts[k];
  EXPECT_EQ(by_type, r.ops);
  EXPECT_EQ(r.client_steps.service_requests, r.requests);
  EXPECT_GE(r.client_steps.service_subtasks, r.requests);
  svc.stop();
  EXPECT_GT(svc.worker_counters().shard_batches, 0u);
  EXPECT_GT(svc.engine().size(), 0u);
}

}  // namespace
}  // namespace skiptrie
