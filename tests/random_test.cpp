#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace skiptrie {
namespace {

TEST(Random, SplitmixDeterministic) {
  uint64_t a = 42, b = 42;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(splitmix64(a), splitmix64(b));
  }
}

TEST(Random, SplitmixAdvancesState) {
  uint64_t s = 42;
  const uint64_t v1 = splitmix64(s);
  const uint64_t v2 = splitmix64(s);
  EXPECT_NE(v1, v2);
}

TEST(Random, Mix64AvalanchesLowBits) {
  // Consecutive inputs should produce wildly different outputs.
  int differing_high_bits = 0;
  for (uint64_t i = 0; i < 64; ++i) {
    if ((mix64(i) >> 32) != (mix64(i + 1) >> 32)) differing_high_bits++;
  }
  EXPECT_GE(differing_high_bits, 60);
}

TEST(Random, XoshiroDeterministicPerSeed) {
  Xoshiro256 a(7), b(7), c(8);
  bool any_diff = false;
  for (int i = 0; i < 50; ++i) {
    const uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Random, NextBelowRespectsBound) {
  Xoshiro256 rng(123);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Random, NextDoubleInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Random, NextBelowRoughlyUniform) {
  Xoshiro256 rng(99);
  std::vector<int> buckets(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) buckets[rng.next_below(10)]++;
  for (int b : buckets) {
    EXPECT_GT(b, n / 10 - n / 50);
    EXPECT_LT(b, n / 10 + n / 50);
  }
}

TEST(Random, GeometricHeightMatchesHalving) {
  // P(h >= k) should be ~2^-k: this is the paper's tower-height coin.
  Xoshiro256 rng(2026);
  const int n = 200000;
  std::vector<int> at_least(8, 0);
  for (int i = 0; i < n; ++i) {
    const uint32_t h = rng.geometric_height(16);
    for (uint32_t k = 0; k < 8; ++k) {
      if (h >= k) at_least[k]++;
    }
  }
  for (uint32_t k = 1; k < 8; ++k) {
    const double p = static_cast<double>(at_least[k]) / n;
    const double expect = std::pow(0.5, k);
    EXPECT_NEAR(p, expect, expect * 0.2) << "k=" << k;
  }
}

TEST(Random, GeometricHeightRespectsCap) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LE(rng.geometric_height(3), 3u);
  }
  // Cap 0 always returns 0.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.geometric_height(0), 0u);
  }
}

TEST(Random, TopLevelRiseProbabilityIsOneOverLogU) {
  // For B = 32 (top = 5): P(height == 5) should be ~1/32, the paper's
  // 1/log u trie-insertion rate.
  Xoshiro256 rng(77);
  const int n = 400000;
  int tops = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.geometric_height(5) == 5) tops++;
  }
  const double p = static_cast<double>(tops) / n;
  EXPECT_NEAR(p, 1.0 / 32.0, 0.006);
}

}  // namespace
}  // namespace skiptrie
