// Batched bulk-operation tests (DESIGN.md §3.7).
//
// Covers sequential equivalence against the single-key operations (sorted,
// unsorted and duplicate-bearing inputs, results reported in input order),
// the empty batch, the cursor-reuse attribution sums (schema v4 counters),
// the Config::use_cursor_batching ablation, the baseline's batch API, and
// — the regression PR 5 pinned — a concurrent erase retiring a node
// the batch cursor is parked on: the reuse screen must reject it and fall
// back without ever reading reclaimed-and-unmapped memory (run under
// -DSKIPTRIE_SANITIZE=address|thread).
//
// The sequential suites are TYPED_TESTs over {U64Traits, Bytes16Traits}
// (DESIGN.md §6): under the sanitizer builds that is what certifies the
// wide instantiation's batch path end to end.  Wide keys are spread across
// both machine words (monotonically) so sorting, cursor brackets and
// predecessor arithmetic exercise genuine 128-bit compares.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "baseline/lockfree_skiplist.h"
#include "common/key_traits.h"
#include "common/stats.h"
#include "core/skiptrie.h"

namespace skiptrie {
namespace {

template <typename Traits>
class TypedBatchTest : public ::testing::Test {
 protected:
  using Trie = BasicSkipTrie<Traits>;
  using K = typename Traits::key_type;

  // A universe wide enough that spread keys genuinely overflow 64 bits on
  // the wide traits; the u64 instantiation keeps the seed default (32).
  static Config cfg() {
    Config c;
    if constexpr (Traits::kMaxBits > 64) c.universe_bits = 120;
    return c;
  }

  // Strictly monotone embedding of a small test key into the universe.
  static K key(uint64_t k) {
    if constexpr (Traits::kMaxBits > 64) {
      return (K(k) << 56) | K(k);
    } else {
      return K(k);
    }
  }
  static std::vector<K> lift(const std::vector<uint64_t>& v) {
    std::vector<K> out;
    out.reserve(v.size());
    for (const uint64_t k : v) out.push_back(key(k));
    return out;
  }
  static std::vector<uint64_t> keys_mod(size_t n, uint64_t mul, uint64_t mod) {
    std::vector<uint64_t> k(n);
    for (size_t i = 0; i < n; ++i) k[i] = (i * mul) % mod;
    return k;
  }
};

using BatchTraits = ::testing::Types<U64Traits, Bytes16Traits>;
TYPED_TEST_SUITE(TypedBatchTest, BatchTraits);

TYPED_TEST(TypedBatchTest, SortedEquivalenceAgainstPerKeyOps) {
  using Fix = TypedBatchTest<TypeParam>;
  using K = typename Fix::K;
  typename Fix::Trie batched(Fix::cfg()), plain(Fix::cfg());
  std::vector<K> keys(1024);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = Fix::key(i * 37);

  std::vector<uint8_t> r_ins(keys.size());
  EXPECT_EQ(batched.insert_batch(keys, r_ins.data()), keys.size());
  for (const K& k : keys) EXPECT_TRUE(plain.insert(k));
  for (size_t i = 0; i < keys.size(); ++i) EXPECT_TRUE(r_ins[i]) << i;
  EXPECT_EQ(batched.size(), plain.size());

  // Membership and predecessor agree key for key, including misses.
  std::vector<K> probes(2048);
  for (size_t i = 0; i < probes.size(); ++i) probes[i] = Fix::key(i * 19 + 7);
  std::vector<uint8_t> r_has(probes.size());
  std::vector<std::optional<K>> r_pred(probes.size());
  batched.contains_batch(probes, r_has.data());
  batched.predecessor_batch(probes, r_pred.data());
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(static_cast<bool>(r_has[i]), plain.contains(probes[i])) << i;
    EXPECT_TRUE(r_pred[i] == plain.predecessor(probes[i])) << i;
  }

  // Erase every third key through the batch API, the rest per key.
  std::vector<K> third;
  for (size_t i = 0; i < keys.size(); i += 3) third.push_back(keys[i]);
  std::vector<uint8_t> r_er(third.size());
  EXPECT_EQ(batched.erase_batch(third, r_er.data()), third.size());
  for (const K& k : third) EXPECT_TRUE(plain.erase(k));
  for (size_t i = 0; i < third.size(); ++i) EXPECT_TRUE(r_er[i]) << i;
  EXPECT_EQ(batched.size(), plain.size());
  for (const K& k : keys) {
    EXPECT_EQ(batched.contains(k), plain.contains(k));
  }
}

TYPED_TEST(TypedBatchTest, UnsortedAndDuplicateInputsReportInInputOrder) {
  using Fix = TypedBatchTest<TypeParam>;
  using K = typename Fix::K;
  typename Fix::Trie t(Fix::cfg());
  // Unsorted with duplicates: 40 appears at indices 1 and 3, 10 at 2 and 5.
  const std::vector<K> keys = Fix::lift({90, 40, 10, 40, 70, 10, 0});
  std::vector<uint8_t> r(keys.size());
  EXPECT_EQ(t.insert_batch(keys, r.data()), 5u);
  // First occurrence of each duplicate wins (stable sort).
  EXPECT_TRUE(r[0]);
  EXPECT_TRUE(r[1]);
  EXPECT_TRUE(r[2]);
  EXPECT_FALSE(r[3]);
  EXPECT_TRUE(r[4]);
  EXPECT_FALSE(r[5]);
  EXPECT_TRUE(r[6]);
  EXPECT_EQ(t.size(), 5u);

  std::vector<std::optional<K>> pred(keys.size());
  EXPECT_EQ(t.predecessor_batch(keys, pred.data()), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(pred[i].has_value()) << i;
    EXPECT_TRUE(*pred[i] == keys[i]) << i;  // every key is present
  }
  // Strictly-below-minimum probe has no predecessor and must say so in
  // input order even though it sorts first.
  const std::vector<K> probes = Fix::lift({95, 40, 5, 0});
  std::vector<std::optional<K>> p2(probes.size());
  EXPECT_EQ(t.predecessor_batch(probes, p2.data()), probes.size());
  EXPECT_TRUE(*p2[0] == Fix::key(90));
  EXPECT_TRUE(*p2[1] == Fix::key(40));
  EXPECT_TRUE(*p2[2] == Fix::key(0));
  EXPECT_TRUE(*p2[3] == Fix::key(0));

  // Duplicate erases: one success, reported on the first occurrence.
  const std::vector<K> er = Fix::lift({40, 40, 90});
  std::vector<uint8_t> re(er.size());
  EXPECT_EQ(t.erase_batch(er, re.data()), 2u);
  EXPECT_TRUE(re[0]);
  EXPECT_FALSE(re[1]);
  EXPECT_TRUE(re[2]);
  EXPECT_EQ(t.size(), 3u);
}

TYPED_TEST(TypedBatchTest, EmptyBatchIsANoOp) {
  using Fix = TypedBatchTest<TypeParam>;
  typename Fix::Trie t(Fix::cfg());
  t.insert(Fix::key(5));
  tls_counters() = StepCounters{};
  EXPECT_EQ(t.insert_batch(nullptr, 0), 0u);
  EXPECT_EQ(t.erase_batch(nullptr, 0), 0u);
  EXPECT_EQ(t.contains_batch(nullptr, 0), 0u);
  EXPECT_EQ(t.predecessor_batch(nullptr, 0), 0u);
  EXPECT_EQ(tls_counters().batch_ops, 0u);
  EXPECT_EQ(tls_counters().batch_keys, 0u);
  EXPECT_TRUE(t.contains(Fix::key(5)));
  tls_counters() = StepCounters{};
}

TYPED_TEST(TypedBatchTest, CursorReuseAttributionSums) {
  using Fix = TypedBatchTest<TypeParam>;
  using K = typename Fix::K;
  // A fresh thread pins the accounting: tls cursors and fingers are
  // thread-local, so the first seek of the first batch is deterministically
  // cold (counts neither reuse nor redescend).
  std::thread probe([] {
    typename Fix::Trie t(Fix::cfg());
    for (uint64_t k = 0; k < 512; ++k) t.insert(Fix::key(k * 4));

    const std::vector<K> batch = Fix::lift(Fix::keys_mod(256, 4, 2048));
    std::vector<K> sorted = batch;
    std::sort(sorted.begin(), sorted.end());

    tls_counters() = StepCounters{};
    t.contains_batch(sorted);
    StepCounters c = tls_counters();
    EXPECT_EQ(c.batch_ops, 1u);
    EXPECT_EQ(c.batch_keys, sorted.size());
    // Every warm seek is exactly one of reuse / redescend; the cold first
    // seek is neither.
    EXPECT_EQ(c.cursor_reuses + c.cursor_redescends, sorted.size() - 1);
    // A dense sorted sweep must actually reuse (the amortization claim).
    EXPECT_GT(c.cursor_reuses, sorted.size() / 2);

    // The thread's cursor persists across batch calls: the second batch has
    // no cold seek at all.
    tls_counters() = StepCounters{};
    t.contains_batch(sorted);
    c = tls_counters();
    EXPECT_EQ(c.cursor_reuses + c.cursor_redescends, sorted.size());

    // Write batches follow the same ledger.
    const std::vector<uint64_t> fresh = Fix::keys_mod(128, 4, 8192);
    std::vector<K> ins;
    for (const uint64_t k : fresh) ins.push_back(Fix::key(k + 2048 * 4));
    tls_counters() = StepCounters{};
    t.insert_batch(ins);
    t.erase_batch(ins);
    c = tls_counters();
    EXPECT_EQ(c.batch_ops, 2u);
    EXPECT_EQ(c.batch_keys, 2 * ins.size());
    EXPECT_EQ(c.cursor_reuses + c.cursor_redescends, 2 * ins.size());
    tls_counters() = StepCounters{};
  });
  probe.join();
}

TYPED_TEST(TypedBatchTest, SingleKeyOpsProduceNoBatchCounters) {
  using Fix = TypedBatchTest<TypeParam>;
  typename Fix::Trie t(Fix::cfg());
  tls_counters() = StepCounters{};
  for (uint64_t k = 0; k < 256; ++k) t.insert(Fix::key(k * 3));
  for (uint64_t k = 0; k < 256; ++k) t.contains(Fix::key(k * 3));
  for (uint64_t k = 0; k < 64; ++k) t.erase(Fix::key(k * 3));
  const StepCounters& c = tls_counters();
  EXPECT_EQ(c.batch_ops, 0u);
  EXPECT_EQ(c.batch_keys, 0u);
  EXPECT_EQ(c.cursor_reuses, 0u);
  EXPECT_EQ(c.cursor_redescends, 0u);
  tls_counters() = StepCounters{};
}

TYPED_TEST(TypedBatchTest, AblationMatchesResultsAndStaysCold) {
  using Fix = TypedBatchTest<TypeParam>;
  using K = typename Fix::K;
  Config off_cfg = Fix::cfg();
  off_cfg.use_cursor_batching = false;
  typename Fix::Trie off(off_cfg);
  typename Fix::Trie on(Fix::cfg());

  const std::vector<K> keys = Fix::lift(Fix::keys_mod(777, 7919, 16384));
  std::vector<uint8_t> ra(keys.size()), rb(keys.size());
  EXPECT_EQ(off.insert_batch(keys, ra.data()), on.insert_batch(keys, rb.data()));
  EXPECT_EQ(ra, rb);

  const std::vector<K> probes = Fix::lift(Fix::keys_mod(999, 31, 16384));
  std::vector<uint8_t> ha(probes.size()), hb(probes.size());
  EXPECT_EQ(off.contains_batch(probes, ha.data()),
            on.contains_batch(probes, hb.data()));
  EXPECT_EQ(ha, hb);
  std::vector<std::optional<K>> pa(probes.size()), pb(probes.size());
  EXPECT_EQ(off.predecessor_batch(probes, pa.data()),
            on.predecessor_batch(probes, pb.data()));
  EXPECT_TRUE(pa == pb);

  std::vector<uint8_t> ea(keys.size()), eb(keys.size());
  EXPECT_EQ(off.erase_batch(keys, ea.data()), on.erase_batch(keys, eb.data()));
  EXPECT_EQ(ea, eb);
  EXPECT_EQ(off.size(), on.size());

  // The ablated structure's batches never touch the cursor.
  tls_counters() = StepCounters{};
  off.insert_batch(keys);
  EXPECT_EQ(tls_counters().cursor_reuses, 0u);
  EXPECT_EQ(tls_counters().cursor_redescends, 0u);
  EXPECT_GT(tls_counters().batch_ops, 0u);  // API-level counters still tally
  tls_counters() = StepCounters{};
}

std::vector<uint64_t> keys_mod(size_t n, uint64_t mul, uint64_t mod) {
  std::vector<uint64_t> k(n);
  for (size_t i = 0; i < n; ++i) k[i] = (i * mul) % mod;
  return k;
}

TEST(BatchTest, BaselineBatchMatchesPerKeyOps) {
  LockFreeSkipList batched(12), plain(12);
  const std::vector<uint64_t> keys = keys_mod(600, 2654435761u, 100000);
  std::vector<uint8_t> r(keys.size());
  const size_t inserted = batched.insert_batch(keys, r.data());
  EXPECT_EQ(inserted, batched.size());
  for (const uint64_t k : keys) plain.insert(k);
  EXPECT_EQ(batched.size(), plain.size());

  const std::vector<uint64_t> probes = keys_mod(500, 131, 100000);
  std::vector<uint8_t> h(probes.size());
  std::vector<std::optional<uint64_t>> p(probes.size());
  batched.contains_batch(probes, h.data());
  batched.predecessor_batch(probes, p.data());
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(static_cast<bool>(h[i]), plain.contains(probes[i])) << i;
    EXPECT_EQ(p[i], plain.predecessor(probes[i])) << i;
  }

  // Ablation setter mirrors Config::use_cursor_batching.
  LockFreeSkipList abl(12);
  abl.set_cursor_batching(false);
  std::vector<uint8_t> r2(keys.size());
  EXPECT_EQ(abl.insert_batch(keys, r2.data()), plain.size());
  EXPECT_EQ(r, r2);
  EXPECT_EQ(abl.erase_batch(keys), plain.size());
  EXPECT_EQ(abl.size(), 0u);
}

// --- The batch-vs-delete regression ----------------------------------------
//
// Thread A streams batched reads over a hot sorted range, so its persistent
// cursor keeps brackets onto the hot nodes between EBR pins (each batch key
// re-pins).  Thread B erases and reinserts exactly those keys while
// churning a cold range hard enough to drive grace periods, so the nodes
// A's cursor retains are retired, poisoned and recycled under A's feet.
// A's batches must stay correct (the reuse screen rejects dead rows and
// falls back) and the sanitizers must see no invalid access.

TEST(BatchInvalidationTest, ConcurrentEraseRetiresCursorNodes) {
  SkipTrie t;
  constexpr uint64_t kHot = 128;  // hot keys: 0, 8, .., 1016
  constexpr uint64_t kColdBase = 1 << 16;
  for (uint64_t k = 0; k < kHot; ++k) t.insert(k * 8);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad{0};

  std::thread reader([&] {
    std::vector<uint64_t> batch(kHot);
    for (uint64_t k = 0; k < kHot; ++k) batch[k] = k * 8 + 3;
    std::vector<std::optional<uint64_t>> pred(batch.size());
    std::vector<uint8_t> has(batch.size());
    while (!stop.load(std::memory_order_relaxed)) {
      t.predecessor_batch(batch, pred.data());
      for (size_t i = 0; i < batch.size(); ++i) {
        // Hot keys churn, but any answer must be a plausible predecessor:
        // <= the probe, and aligned with some key ever inserted.
        if (pred[i].has_value() &&
            (*pred[i] > batch[i] ||
             (*pred[i] % 8 != 0 && *pred[i] < kColdBase))) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
      t.contains_batch(batch, has.data());
      for (size_t i = 0; i < batch.size(); ++i) {
        if (has[i]) bad.fetch_add(1, std::memory_order_relaxed);  // +3 keys
      }
    }
  });

  std::thread churner([&] {
    // Delete/reinsert the hot keys (retiring exactly the nodes the
    // reader's cursor retains) and churn a cold range to push epochs
    // forward so retired nodes actually get poisoned and recycled.
    std::vector<uint64_t> half;
    for (uint64_t k = 0; k < kHot; k += 2) half.push_back(k * 8);
    for (int round = 0; round < 300; ++round) {
      t.erase_batch(half);
      for (uint64_t i = 0; i < 256; ++i) {
        t.insert(kColdBase + (round * 256 + i) % 4096);
        t.erase(kColdBase + (round * 256 + i + 2048) % 4096);
      }
      t.insert_batch(half);
    }
    stop.store(true, std::memory_order_relaxed);
  });

  churner.join();
  reader.join();
  EXPECT_EQ(bad.load(), 0u);

  // Quiesced: all hot keys are present again and batched queries are exact.
  std::vector<uint64_t> batch(kHot);
  for (uint64_t k = 0; k < kHot; ++k) batch[k] = k * 8;
  std::vector<uint8_t> has(batch.size());
  EXPECT_EQ(t.contains_batch(batch, has.data()), kHot);
  for (size_t i = 0; i < batch.size(); ++i) EXPECT_TRUE(has[i]) << i;
}

}  // namespace
}  // namespace skiptrie
