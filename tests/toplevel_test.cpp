// Top-level doubly-linked list tests, including a deterministic
// reproduction of the paper's Figure 2 scenario.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "skiplist/engine.h"

namespace skiptrie {
namespace {

class TopLevelTest : public ::testing::Test {
 protected:
  TopLevelTest()
      : arena_(sizeof(Node), kCacheLine, 1024),
        ctx_{&ebr_, DcssMode::kDcss},
        eng_(ctx_, arena_, 2) {}  // small engine; top level = 2

  static uint64_t ik(uint64_t k) { return k + 1; }

  Node* insert_top(uint64_t k) {
    const auto r = eng_.insert(ik(k), eng_.head(2), 2);
    EXPECT_TRUE(r.inserted);
    EXPECT_NE(r.top, nullptr);
    return r.top;
  }

  // Linear scan for the key's live node at `lvl` (nullptr if absent).
  Node* find_at(uint64_t k, uint32_t lvl) {
    for (Node* n = eng_.first_at(lvl); n != nullptr; n = eng_.next_at(n)) {
      if (n->ikey() == ik(k)) return n;
    }
    return nullptr;
  }

  SlabArena arena_;
  EbrDomain ebr_;
  DcssContext ctx_;
  SkipListEngine eng_;
};

TEST_F(TopLevelTest, FixPrevInstallsPredecessor) {
  EbrDomain::Guard g(ebr_);
  Node* a = insert_top(10);
  Node* b = insert_top(20);
  // insert() already ran fixPrev; b.prev must be a, a.prev must be head.
  EXPECT_EQ(unpack_ptr<Node>(b->prevw.load()), a);
  EXPECT_EQ(unpack_ptr<Node>(a->prevw.load()), eng_.head(2));
  EXPECT_TRUE(a->ready());
  EXPECT_TRUE(b->ready());
}

TEST_F(TopLevelTest, Figure2Scenario) {
  // Paper Fig. 2: list contains 1 and 7; insert(5) links forward but is
  // "preempted" before fixing 7.prev; then 2 and 3 are inserted.  The
  // backwards chain must still name node 1, the forward chain must be
  // complete, and completing insert(5)'s fixPrev must repair 7.prev.
  EbrDomain::Guard g(ebr_);
  Node* n1 = insert_top(1);
  Node* n7 = insert_top(7);
  ASSERT_EQ(unpack_ptr<Node>(n7->prevw.load()), n1);

  // Hand-link node 5 at the top level the way insert() would, but stop
  // before fixPrev (the "preempted" thread).
  const auto r5 = [&] {
    // Build the tower below top manually through the engine: height 1 then
    // raise by linking a top node without fix_prev.
    auto res = eng_.insert(ik(5), eng_.head(2), 1);
    EXPECT_TRUE(res.inserted);
    Node* below = eng_.first_at(1);
    while (below != nullptr && below->ikey() != ik(5)) {
      below = eng_.next_at(below);
    }
    EXPECT_NE(below, nullptr);
    Node* top5 = eng_.make_node(ik(5), 2, 2, below, res.root);
    auto b = eng_.list_search(ik(5), eng_.head(2), 2);
    top5->next.store(pack_ptr(b.right), std::memory_order_relaxed);
    EXPECT_TRUE(counted_cas(b.left->next, pack_ptr(b.right), pack_ptr(top5)));
    return top5;
  }();

  // 7.prev still points at 1: the Fig. 2 gap.
  ASSERT_EQ(unpack_ptr<Node>(n7->prevw.load()), n1);

  // Concurrent inserts of 2 and 3 complete fully (their fixPrev touches
  // 2.prev/3.prev, not 7.prev).
  Node* n2 = insert_top(2);
  Node* n3 = insert_top(3);
  EXPECT_EQ(unpack_ptr<Node>(n2->prevw.load()), n1);
  EXPECT_EQ(unpack_ptr<Node>(n3->prevw.load()), n2);
  // The backward gap persists: 7.prev == 1 while the forward chain is
  // 1 -> 2 -> 3 -> 5 -> 7.
  EXPECT_EQ(unpack_ptr<Node>(n7->prevw.load()), n1);
  Node* fwd = n1;
  for (uint64_t expect : {2, 3, 5, 7}) {
    fwd = unpack_ptr<Node>(dcss_read(fwd->next));
    ASSERT_NE(fwd, nullptr);
    EXPECT_EQ(fwd->ikey(), ik(expect));
  }

  // A query from node 7 searching for 6 must still find 5 by walking
  // forward from 7.prev (the paper's recovery): bracket via walk_left.
  Node* start = eng_.walk_left(ik(6), n7);
  EXPECT_LT(start->ikey(), ik(6));
  auto b = eng_.list_search(ik(6), start, 2);
  EXPECT_EQ(b.left->ikey(), ik(5));
  EXPECT_EQ(b.right->ikey(), ik(7));

  // insert(5) resumes: fixPrev repairs 7.prev and 5.prev.
  eng_.fix_prev(n3, r5);
  EXPECT_EQ(unpack_ptr<Node>(r5->prevw.load()), n3);
  eng_.fix_prev(r5, n7);
  EXPECT_EQ(unpack_ptr<Node>(n7->prevw.load()), r5);
}

TEST_F(TopLevelTest, DeleteRepairsSuccessorPrev) {
  EbrDomain::Guard g(ebr_);
  Node* a = insert_top(10);
  Node* b = insert_top(20);
  Node* c = insert_top(30);
  ASSERT_EQ(unpack_ptr<Node>(c->prevw.load()), b);
  auto r = eng_.erase(ik(20), eng_.head(2));
  ASSERT_TRUE(r.erased);
  EXPECT_EQ(r.top, b);
  // Successor's prev must no longer point at the deleted node.
  EXPECT_EQ(unpack_ptr<Node>(c->prevw.load()), a);
  // Deleted node's prev word carries the mirrored mark.
  EXPECT_TRUE(is_marked(b->prevw.load()));
  eng_.retire_owned(r);
}

TEST_F(TopLevelTest, MakeDonePropagatesMark) {
  EbrDomain::Guard g(ebr_);
  Node* a = insert_top(10);
  Node* b = insert_top(20);
  // Mark b's next by hand (mid-deletion state) without updating prevw.
  uint64_t w = b->next.load();
  b->back.store(a);
  ASSERT_TRUE(b->next.compare_exchange_strong(w, with_mark(w)));
  ASSERT_FALSE(is_marked(b->prevw.load()));
  eng_.make_done(a, b);
  EXPECT_TRUE(is_marked(b->prevw.load()));
}

TEST_F(TopLevelTest, MakeDoneRepairsPrevOfLiveNode) {
  EbrDomain::Guard g(ebr_);
  Node* a = insert_top(10);
  Node* b = insert_top(20);
  // Corrupt b.prev to head (stale guide), then make_done must repair it.
  b->prevw.store(pack_ptr(eng_.head(2)));
  eng_.make_done(a, b);
  EXPECT_EQ(unpack_ptr<Node>(b->prevw.load()), a);
}

TEST_F(TopLevelTest, FixPrevOnMarkedNodeGivesUpButSetsReady) {
  EbrDomain::Guard g(ebr_);
  Node* a = insert_top(10);
  Node* b = insert_top(20);
  uint64_t w = b->next.load();
  b->back.store(a);
  ASSERT_TRUE(b->next.compare_exchange_strong(w, with_mark(w)));
  b->meta.fetch_and(~Node::kReadyBit);
  eng_.fix_prev(a, b);  // must terminate without touching prev
  EXPECT_TRUE(b->ready());
}

TEST_F(TopLevelTest, WalkLeftCrossesMarkedViaBack) {
  EbrDomain::Guard g(ebr_);
  Node* a = insert_top(10);
  Node* b = insert_top(20);
  insert_top(30);
  // Mark b; its back points to a.
  uint64_t w = b->next.load();
  b->back.store(a);
  ASSERT_TRUE(b->next.compare_exchange_strong(w, with_mark(w)));
  // Walking left from b for a bound below b must use back, not prev.
  Node* res = eng_.walk_left(ik(15), b);
  EXPECT_EQ(res, a);
}

// --- Adaptive promotion / demotion at the engine seam (DESIGN.md §8.2) -----

TEST_F(TopLevelTest, PromoteTowerRaisesRootOnlyTowerToTop) {
  EbrDomain::Guard g(ebr_);
  insert_top(10);
  insert_top(50);
  const auto r = eng_.insert(ik(30), eng_.head(2), 0);  // root-only tower
  ASSERT_TRUE(r.inserted);
  ASSERT_EQ(r.top, nullptr);
  ASSERT_EQ(find_at(30, 1), nullptr);

  const auto pr = eng_.promote_tower(ik(30), r.root, 2);
  EXPECT_TRUE(pr.raised);
  EXPECT_EQ(pr.new_height, 2u);
  ASSERT_NE(pr.top, nullptr);
  EXPECT_EQ(pr.undone_top, nullptr);
  EXPECT_NE(find_at(30, 1), nullptr);
  EXPECT_EQ(find_at(30, 2), pr.top);
  EXPECT_EQ(pr.top->root(), r.root);
  // Promotion ran fix_prev for the new top node (successor prev stays a
  // hint, exactly as for insert — Fig. 2 tolerates the gap).
  EXPECT_TRUE(pr.top->ready());
  EXPECT_EQ(unpack_ptr<Node>(pr.top->prevw.load())->ikey(), ik(10));
}

TEST_F(TopLevelTest, PromoteTowerBailsOnErasedTower) {
  EbrDomain::Guard g(ebr_);
  const auto r = eng_.insert(ik(30), eng_.head(2), 0);
  ASSERT_TRUE(r.inserted);
  auto er = eng_.erase(ik(30), eng_.head(2));
  ASSERT_TRUE(er.erased);
  // The root is marked (and claimed); promotion must refuse to touch it.
  const auto pr = eng_.promote_tower(ik(30), r.root, 2);
  EXPECT_FALSE(pr.raised);
  EXPECT_EQ(pr.top, nullptr);
  EXPECT_EQ(pr.undone_top, nullptr);
  eng_.retire_owned(er);
}

TEST_F(TopLevelTest, DemoteTowerSweepsUpperLevelsKeepsLevelZero) {
  EbrDomain::Guard g(ebr_);
  insert_top(10);
  Node* t20 = insert_top(20);
  insert_top(30);
  const auto before = eng_.list_search(ik(20), eng_.head(0), 0);
  ASSERT_EQ(before.right->ikey(), ik(20));
  Node* root = before.right;

  auto dr = eng_.demote_tower(ik(20), root, 0);
  EXPECT_TRUE(dr.erased);
  EXPECT_EQ(dr.top, t20);  // this call won the top mark, so it owns the sweep
  EXPECT_GT(dr.owned_count, 0u);
  // Levels 1..top no longer carry the key; level 0 still does, unmarked —
  // the key never left the set (DESIGN.md §8.2: demotion is not deletion).
  EXPECT_EQ(find_at(20, 1), nullptr);
  EXPECT_EQ(find_at(20, 2), nullptr);
  const auto after = eng_.list_search(ik(20), eng_.head(0), 0);
  EXPECT_EQ(after.right, root);
  EXPECT_FALSE(is_marked(dcss_read(root->next)));
  // Successor prev repair ran: 30.prev skips the demoted node.
  EXPECT_EQ(unpack_ptr<Node>(find_at(30, 2)->prevw.load())->ikey(), ik(10));
  eng_.retire_owned(dr);
}

TEST_F(TopLevelTest, DemoteTowerToIntermediateLevelStopsThere) {
  EbrDomain::Guard g(ebr_);
  insert_top(20);
  const auto b = eng_.list_search(ik(20), eng_.head(0), 0);
  auto dr = eng_.demote_tower(ik(20), b.right, 1);
  EXPECT_TRUE(dr.erased);
  EXPECT_EQ(find_at(20, 2), nullptr);
  EXPECT_NE(find_at(20, 1), nullptr);  // floor level survives
  eng_.retire_owned(dr);
}

TEST_F(TopLevelTest, DemoteTowerAfterEraseOwnsNothing) {
  EbrDomain::Guard g(ebr_);
  insert_top(20);
  const auto b = eng_.list_search(ik(20), eng_.head(0), 0);
  Node* root = b.right;
  auto er = eng_.erase(ik(20), eng_.head(2));
  ASSERT_TRUE(er.erased);
  // The erase won every mark; a late demotion must not claim ownership of
  // anything (no double retirement) and must not report a top win.
  auto dr = eng_.demote_tower(ik(20), root, 0);
  EXPECT_FALSE(dr.erased);
  EXPECT_EQ(dr.top, nullptr);
  EXPECT_EQ(dr.owned_count, 0u);
  eng_.retire_owned(er);
}

TEST_F(TopLevelTest, DemoteRacingEraseEachNodeRetiredOnce) {
  // The mark-CAS ownership protocol must hand every tower node to exactly
  // one of a racing {demote, erase} pair; double retirement would corrupt
  // the arena (caught by asan CI legs, asserted here by owned-set
  // disjointness).
  constexpr uint64_t kKeys = 200;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    EbrDomain::Guard g(ebr_);
    insert_top(k * 3);
  }
  std::atomic<uint64_t> demote_owned{0}, erase_owned{0}, top_wins{0};
  std::thread demoter([&] {
    EbrDomain::Guard g(ebr_);
    for (uint64_t k = 1; k <= kKeys; ++k) {
      const auto b = eng_.list_search(ik(k * 3), eng_.head(0), 0);
      if (b.right->ikey() != ik(k * 3)) continue;
      auto dr = eng_.demote_tower(ik(k * 3), b.right, 0);
      demote_owned += dr.owned_count;
      if (dr.top != nullptr) top_wins++;
      eng_.retire_owned(dr);
    }
  });
  std::thread eraser([&] {
    EbrDomain::Guard g(ebr_);
    for (uint64_t k = 1; k <= kKeys; ++k) {
      auto er = eng_.erase(ik(k * 3), eng_.head(2));
      erase_owned += er.owned_count;
      if (er.top != nullptr) top_wins++;
      eng_.retire_owned(er);
    }
  });
  demoter.join();
  eraser.join();
  // Every erase eventually succeeds (demotion never removes level 0), every
  // key is gone, and each top node was won exactly once across both sides.
  EbrDomain::Guard g(ebr_);
  EXPECT_EQ(eng_.first_at(0), nullptr);
  EXPECT_EQ(eng_.first_at(2), nullptr);
  EXPECT_EQ(top_wins.load(), kKeys);
  // 3 nodes per tower (levels 0..2); level-0 nodes are only ever owned by
  // the erase side, upper nodes by exactly one side each.
  EXPECT_EQ(demote_owned.load() + erase_owned.load(), kKeys * 3);
}

TEST_F(TopLevelTest, ConcurrentInsertsKeepPrevChainConsistent) {
  constexpr int kThreads = 4;
  constexpr uint64_t kPer = 300;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      EbrDomain::Guard g(ebr_);
      for (uint64_t i = 0; i < kPer; ++i) {
        eng_.insert(ik(1 + i * kThreads + t), eng_.head(2), 2);
      }
    });
  }
  for (auto& th : ts) th.join();
  // Quiescent check: every top-level node's prev names its exact live
  // predecessor OR an earlier node (guides may lag but never lie forward).
  EbrDomain::Guard g(ebr_);
  Node* prev = nullptr;
  for (Node* n = eng_.first_at(2); n != nullptr; n = eng_.next_at(n)) {
    Node* p = unpack_ptr<Node>(n->prevw.load());
    if (p != nullptr) {
      EXPECT_LT(p->ikey(), n->ikey());
    }
    if (prev != nullptr) {
      EXPECT_LT(prev->ikey(), n->ikey());
    }
    prev = n;
  }
}

}  // namespace
}  // namespace skiptrie
