// Regression stress for the x-fast trie's prefix-maintenance races
// (DESIGN.md §3.5(3) and the coverage-monotonicity invariant of §3.4).
//
// Multi-threaded insert/erase churn over a small key range drives the
// Alg. 6 (bottom-up cover) / Alg. 7 (top-down sweep) crossing hard:
// re-inserted keys meet their previous incarnation's in-flight sweep, and
// entry kill/recreate cycles meet concurrent child-pointer installs.  Each
// round then validates the full quiescent structure.  The seed tree had
// three distinct bugs here — a marked candidate accepted as coverage, a
// lost install into an entry that was concurrently compareAndDelete'd, and
// a marked candidate overwritten with a less-extreme key — each of which
// this test catches within a few dozen rounds.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/random.h"
#include "core/skiptrie.h"
#include "core/validate.h"

namespace skiptrie {
namespace {

void churn_rounds(DcssMode mode, int rounds, uint64_t seed_base) {
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned kThreads = hw >= 4 ? 4 : (hw >= 2 ? hw : 2);
  for (int round = 0; round < rounds; ++round) {
    Config c;
    c.universe_bits = 24;
    c.dcss_mode = mode;
    c.seed = seed_base + round * 977 + 1;
    SkipTrie t(c);
    std::vector<std::thread> ts;
    for (unsigned w = 0; w < kThreads; ++w) {
      ts.emplace_back([&, w] {
        Xoshiro256 rng(w * 31 + round + seed_base + 1);
        for (int i = 0; i < 8000; ++i) {
          const uint64_t k = rng.next_below(1u << 12);
          if (rng.next() & 1) {
            t.insert(k);
          } else {
            t.erase(k);
          }
        }
      });
    }
    for (auto& th : ts) th.join();
    const auto errors = validate_structure(t);
    ASSERT_TRUE(errors.empty())
        << "round " << round << ": " << errors.size()
        << " violations, first: " << errors.front();
  }
}

TEST(XFastChurn, CoverageSurvivesReinsertChurnDcss) {
  churn_rounds(DcssMode::kDcss, 25, 0);
}

TEST(XFastChurn, CoverageSurvivesReinsertChurnCasFallback) {
  churn_rounds(DcssMode::kCasFallback, 25, 50000);
}

}  // namespace
}  // namespace skiptrie
