#include "reclaim/hazard.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace skiptrie {
namespace {

struct Tracked {
  explicit Tracked(std::atomic<int>& c, int v = 0) : counter(c), value(v) {
    counter.fetch_add(1);
  }
  ~Tracked() { counter.fetch_sub(1); }
  std::atomic<int>& counter;
  int value;
};

TEST(Hazard, UnprotectedRetireReclaimsOnScan) {
  std::atomic<int> live{0};
  HazardDomain dom;
  dom.retire_delete(new Tracked(live));
  dom.scan();
  EXPECT_EQ(live.load(), 0);
}

TEST(Hazard, ProtectedPointerSurvivesScan) {
  std::atomic<int> live{0};
  HazardDomain dom;
  auto* obj = new Tracked(live);
  std::atomic<Tracked*> src{obj};

  std::atomic<bool> protected_flag{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    Tracked* p = dom.protect(0, src);
    EXPECT_EQ(p, obj);
    protected_flag.store(true);
    while (!release.load()) std::this_thread::yield();
    dom.clear(0);
  });
  while (!protected_flag.load()) std::this_thread::yield();

  src.store(nullptr);
  dom.retire_delete(obj);
  dom.scan();
  EXPECT_EQ(live.load(), 1);  // protected: must survive

  release.store(true);
  reader.join();
  dom.scan();
  EXPECT_EQ(live.load(), 0);
}

TEST(Hazard, ProtectReReadsUntilStable) {
  std::atomic<int> live{0};
  HazardDomain dom;
  auto* a = new Tracked(live, 1);
  auto* b = new Tracked(live, 2);
  std::atomic<Tracked*> src{a};
  // Swap source concurrently; protect must return a value that was in src
  // at publication time.
  std::thread w([&] {
    for (int i = 0; i < 1000; ++i) src.store(i % 2 ? a : b);
  });
  for (int i = 0; i < 1000; ++i) {
    Tracked* p = dom.protect(0, src);
    ASSERT_TRUE(p == a || p == b);
  }
  w.join();
  dom.clear_all();
  delete a;
  delete b;
}

TEST(Hazard, ClearAllReleasesEverySlot) {
  std::atomic<int> live{0};
  HazardDomain dom;
  std::vector<Tracked*> objs;
  for (uint32_t s = 0; s < HazardDomain::kSlotsPerThread; ++s) {
    objs.push_back(new Tracked(live));
    dom.set(s, objs.back());
  }
  for (auto* o : objs) dom.retire_delete(o);
  dom.scan();
  EXPECT_EQ(live.load(), static_cast<int>(objs.size()));  // all protected
  dom.clear_all();
  dom.scan();
  EXPECT_EQ(live.load(), 0);
}

TEST(Hazard, DomainDestructorReclaimsOrphans) {
  std::atomic<int> live{0};
  {
    HazardDomain dom;
    std::thread t([&] {
      for (int i = 0; i < 100; ++i) dom.retire_delete(new Tracked(live));
    });
    t.join();
  }
  EXPECT_EQ(live.load(), 0);
}

TEST(Hazard, ConcurrentReadersAndReclaimersStress) {
  std::atomic<int> live{0};
  std::atomic<bool> stop{false};
  std::atomic<long> reads{0};
  {
    HazardDomain dom;
    std::atomic<Tracked*> shared{new Tracked(live, 0)};

    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
      readers.emplace_back([&] {
        while (!stop.load(std::memory_order_acquire)) {
          Tracked* p = dom.protect(0, shared);
          if (p != nullptr) {
            // Dereference under protection: must never be freed memory.
            reads.fetch_add(p->value >= 0 ? 1 : 0);
          }
          dom.clear(0);
        }
      });
    }

    std::thread writer([&] {
      for (int i = 1; i <= 3000; ++i) {
        auto* fresh = new Tracked(live, i);
        Tracked* old = shared.exchange(fresh);
        if (old != nullptr) dom.retire_delete(old);
      }
      stop.store(true, std::memory_order_release);
    });

    writer.join();
    for (auto& r : readers) r.join();
    Tracked* last = shared.exchange(nullptr);
    delete last;
  }
  EXPECT_EQ(live.load(), 0);
  EXPECT_GT(reads.load(), 0);
}

}  // namespace
}  // namespace skiptrie
