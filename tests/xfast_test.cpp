#include "xfast/xfast_trie.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/bitops.h"
#include "common/key_traits.h"

namespace skiptrie {
namespace {

// Fixture: B = 8 (small universe so prefix structure is easy to enumerate),
// engine top level = ceil(log2 8) = 3.  TYPED over both shipped key traits
// (DESIGN.md §6): the prefix walks, encodes and pointer swings run in the
// traits' ikey word, so the same assertions pin the 64-bit fast path and
// the 128-bit wide path.
template <typename Traits>
class XFastTest : public ::testing::Test {
 protected:
  using Ikey = typename Traits::ikey_type;
  using Node_t = NodeT<Ikey>;
  static constexpr uint32_t kBits = 8;

  XFastTest()
      : arena_(sizeof(Node_t), kCacheLine, 1024),
        ctx_{&ebr_, DcssMode::kDcss},
        eng_(ctx_, arena_, ceil_log2(kBits)),
        trie_(ctx_, eng_, kBits) {}

  static Ikey ik(uint64_t k) { return Ikey(k + 1); }

  // Insert a key at full height and register its prefixes.
  Node_t* add(uint64_t k) {
    EbrDomain::Guard g(ebr_);
    const auto r = eng_.insert(ik(k), eng_.head(eng_.top_level()),
                               eng_.top_level());
    EXPECT_TRUE(r.inserted);
    EXPECT_NE(r.top, nullptr);
    trie_.insert_prefixes(Ikey(k), r.top);
    return r.top;
  }

  void remove(uint64_t k) {
    EbrDomain::Guard g(ebr_);
    auto r = eng_.erase(ik(k), eng_.head(eng_.top_level()));
    ASSERT_TRUE(r.erased);
    ASSERT_NE(r.top, nullptr);
    trie_.remove_prefixes(Ikey(k), r.top, r.top_left);
    eng_.retire_owned(r);
  }

  SlabArena arena_;
  EbrDomain ebr_;
  DcssContext ctx_;
  BasicSkipListEngine<Traits> eng_;
  BasicXFastTrie<Traits> trie_;
};

using XfTraits = ::testing::Types<U64Traits, Bytes16Traits>;
TYPED_TEST_SUITE(XFastTest, XfTraits);

TYPED_TEST(XFastTest, EmptyTrieHasOnlyRoot) {
  EXPECT_EQ(this->trie_.entry_count(), 1u);  // the permanent epsilon entry
  EbrDomain::Guard g(this->ebr_);
  auto* s = this->trie_.pred_start(typename TestFixture::Ikey(100),
                                   this->ik(100));
  // falls back to the head
  EXPECT_EQ(s, this->eng_.head(this->eng_.top_level()));
}

TYPED_TEST(XFastTest, InsertAddsAllPrefixLevels) {
  this->add(0b10110100);
  // Every proper prefix (lengths 0..7) must now exist: root + 7 more.
  EXPECT_EQ(this->trie_.entry_count(), 1u + (TestFixture::kBits - 1));
}

TYPED_TEST(XFastTest, SharedPrefixesAreNotDuplicated) {
  this->add(0b10110100);
  this->add(0b10110111);  // shares first 6 bits
  // lcp = 6: entries = root + 7 (first key) + 1 (second key's length-7).
  EXPECT_EQ(this->trie_.entry_count(), 1u + 7u + 1u);
}

TYPED_TEST(XFastTest, PredStartLandsAtOrBeforeKey) {
  using Ikey = typename TestFixture::Ikey;
  this->add(10);
  this->add(100);
  this->add(200);
  EbrDomain::Guard g(this->ebr_);
  for (uint64_t q : {5, 10, 50, 100, 150, 200, 255}) {
    auto* s = this->trie_.pred_start(Ikey(q), this->ik(q));
    ASSERT_NE(s, nullptr);
    EXPECT_TRUE(s->ikey() < this->ik(q)) << "query " << q;
  }
  // A query above every key should land on the largest key (200), not just
  // the head: the trie must actually be useful.
  auto* s = this->trie_.pred_start(Ikey(255), this->ik(255));
  EXPECT_TRUE(s->ikey() == this->ik(200));
}

TYPED_TEST(XFastTest, PredStartUsesClosestCandidate) {
  using Ikey = typename TestFixture::Ikey;
  this->add(100);
  this->add(101);
  this->add(102);
  EbrDomain::Guard g(this->ebr_);
  auto* s = this->trie_.pred_start(Ikey(102), this->ik(102));
  // The binary search should land exactly on 101 (predecessor of 102 among
  // top nodes), not a distant key.
  EXPECT_TRUE(s->ikey() == this->ik(101));
}

TYPED_TEST(XFastTest, RemoveDeletesPrefixesOfLoneKey) {
  using Ikey = typename TestFixture::Ikey;
  this->add(0b10110100);
  ASSERT_EQ(this->trie_.entry_count(), 1u + 7u);
  this->remove(0b10110100);
  EXPECT_EQ(this->trie_.entry_count(), 1u);  // only the root remains
  // Root pointers must no longer reference the removed key.
  EbrDomain::Guard g(this->ebr_);
  auto* s = this->trie_.pred_start(Ikey(0xff), this->ik(0xff));
  EXPECT_EQ(s, this->eng_.head(this->eng_.top_level()));
}

TYPED_TEST(XFastTest, RemoveKeepsSharedPrefixes) {
  using Ikey = typename TestFixture::Ikey;
  this->add(0b10110100);
  this->add(0b10110111);
  this->remove(0b10110111);
  // All of key A's prefixes must survive and still cover A.
  EXPECT_EQ(this->trie_.entry_count(), 1u + 7u);
  EbrDomain::Guard g(this->ebr_);
  auto* s = this->trie_.pred_start(Ikey(0b10110110), this->ik(0b10110110));
  EXPECT_TRUE(s->ikey() == this->ik(0b10110100));
}

TYPED_TEST(XFastTest, ReAddAfterRemoveRestoresCoverage) {
  using Ikey = typename TestFixture::Ikey;
  this->add(42);
  this->remove(42);
  this->add(42);
  EbrDomain::Guard g(this->ebr_);
  auto* s = this->trie_.pred_start(Ikey(43), this->ik(43));
  EXPECT_TRUE(s->ikey() == this->ik(42));
}

TYPED_TEST(XFastTest, InsertPrefixesStopsForMarkedNode) {
  using Ikey = typename TestFixture::Ikey;
  EbrDomain::Guard g(this->ebr_);
  const auto r = this->eng_.insert(this->ik(7),
                                   this->eng_.head(this->eng_.top_level()),
                                   this->eng_.top_level());
  ASSERT_NE(r.top, nullptr);
  // Mark the node before registering prefixes: nothing may be added.
  uint64_t w = r.top->next.load();
  r.top->back.store(this->eng_.head(this->eng_.top_level()));
  ASSERT_TRUE(r.top->next.compare_exchange_strong(w, with_mark(w)));
  const size_t before = this->trie_.entry_count();
  this->trie_.insert_prefixes(Ikey(7), r.top);
  EXPECT_EQ(this->trie_.entry_count(), before);
}

TYPED_TEST(XFastTest, PointersCoverExtremes) {
  using Ikey = typename TestFixture::Ikey;
  using Node_t = typename TestFixture::Node_t;
  // pointers[0] of a prefix must reach the LARGEST key in the 0-subtree,
  // pointers[1] the SMALLEST in the 1-subtree.  Keys 0b10 and 0b11 share
  // the length-7 prefix 0000001 and split on the final bit.
  this->add(0b00000010);
  this->add(0b00000011);
  EbrDomain::Guard g(this->ebr_);
  const auto found = this->trie_.map().lookup(
      TypeParam::encode_prefix(Ikey(0b00000010), 7, TestFixture::kBits));
  ASSERT_TRUE(found.has_value());
  auto* tn = reinterpret_cast<TreeNode*>(*found);
  Node_t* p0 = unpack_ptr<Node_t>(tn->ptrs[0].load());
  Node_t* p1 = unpack_ptr<Node_t>(tn->ptrs[1].load());
  ASSERT_NE(p0, nullptr);
  ASSERT_NE(p1, nullptr);
  EXPECT_TRUE(p0->ikey() == this->ik(0b00000010));
  EXPECT_TRUE(p1->ikey() == this->ik(0b00000011));

  // One level up (length 6, prefix 000000) both keys sit in the 1-subtree:
  // pointers[1] must name the SMALLEST of them.
  const auto found6 = this->trie_.map().lookup(
      TypeParam::encode_prefix(Ikey(0b00000010), 6, TestFixture::kBits));
  ASSERT_TRUE(found6.has_value());
  auto* tn6 = reinterpret_cast<TreeNode*>(*found6);
  Node_t* q1 = unpack_ptr<Node_t>(tn6->ptrs[1].load());
  ASSERT_NE(q1, nullptr);
  EXPECT_TRUE(q1->ikey() == this->ik(0b00000010));
}

TYPED_TEST(XFastTest, ManyKeysPredStartIsValidAndDescendsToTruth) {
  using Ikey = typename TestFixture::Ikey;
  std::vector<uint64_t> keys = {3, 17, 45, 46, 99, 128, 129, 200, 254};
  for (uint64_t k : keys) this->add(k);
  EbrDomain::Guard g(this->ebr_);
  for (uint64_t q = 0; q < 256; ++q) {
    const Ikey x = this->ik(q) + Ikey(1);  // inclusive bound
    auto* s = this->trie_.pred_start(Ikey(q), x);
    // Expected: the largest key <= q, or head (ikey 0) when none exists.
    Ikey expect_ik = Ikey(0);
    for (uint64_t k : keys) {
      if (k <= q) expect_ik = this->ik(k);
    }
    // The start is a guide: it must be at or before the true predecessor
    // (prev pointers may lag, paper §3), never beyond it.
    EXPECT_TRUE(s->ikey() <= expect_ik) << "q=" << q;
    EXPECT_TRUE(s->ikey() < x);
    // And descending from it must land exactly on the true predecessor.
    const auto b = this->eng_.descend(x, s);
    EXPECT_TRUE(b.left->ikey() == expect_ik) << "q=" << q;
  }
}

TYPED_TEST(XFastTest, EntryCountReturnsToRootAfterFullChurn) {
  for (uint64_t k = 0; k < 64; ++k) this->add(k * 4);
  for (uint64_t k = 0; k < 64; ++k) this->remove(k * 4);
  EXPECT_EQ(this->trie_.entry_count(), 1u);
}

}  // namespace
}  // namespace skiptrie
