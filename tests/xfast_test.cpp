#include "xfast/xfast_trie.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/bitops.h"

namespace skiptrie {
namespace {

// Fixture: B = 8 (small universe so prefix structure is easy to enumerate),
// engine top level = ceil(log2 8) = 3.
class XFastTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kBits = 8;

  XFastTest()
      : arena_(sizeof(Node), kCacheLine, 1024),
        ctx_{&ebr_, DcssMode::kDcss},
        eng_(ctx_, arena_, ceil_log2(kBits)),
        trie_(ctx_, eng_, kBits) {}

  static uint64_t ik(uint64_t k) { return k + 1; }

  // Insert a key at full height and register its prefixes.
  Node* add(uint64_t k) {
    EbrDomain::Guard g(ebr_);
    const auto r = eng_.insert(ik(k), eng_.head(eng_.top_level()),
                               eng_.top_level());
    EXPECT_TRUE(r.inserted);
    EXPECT_NE(r.top, nullptr);
    trie_.insert_prefixes(k, r.top);
    return r.top;
  }

  void remove(uint64_t k) {
    EbrDomain::Guard g(ebr_);
    auto r = eng_.erase(ik(k), eng_.head(eng_.top_level()));
    ASSERT_TRUE(r.erased);
    ASSERT_NE(r.top, nullptr);
    trie_.remove_prefixes(k, r.top, r.top_left);
    eng_.retire_owned(r);
  }

  SlabArena arena_;
  EbrDomain ebr_;
  DcssContext ctx_;
  SkipListEngine eng_;
  XFastTrie trie_;
};

TEST_F(XFastTest, EmptyTrieHasOnlyRoot) {
  EXPECT_EQ(trie_.entry_count(), 1u);  // the permanent epsilon entry
  EbrDomain::Guard g(ebr_);
  Node* s = trie_.pred_start(100, ik(100));
  EXPECT_EQ(s, eng_.head(eng_.top_level()));  // falls back to the head
}

TEST_F(XFastTest, InsertAddsAllPrefixLevels) {
  add(0b10110100);
  // Every proper prefix (lengths 0..7) must now exist: root + 7 more.
  EXPECT_EQ(trie_.entry_count(), 1u + (kBits - 1));
}

TEST_F(XFastTest, SharedPrefixesAreNotDuplicated) {
  add(0b10110100);
  add(0b10110111);  // shares first 6 bits
  // lcp = 6: entries = root + 7 (first key) + 1 (second key's length-7).
  EXPECT_EQ(trie_.entry_count(), 1u + 7u + 1u);
}

TEST_F(XFastTest, PredStartLandsAtOrBeforeKey) {
  add(10);
  add(100);
  add(200);
  EbrDomain::Guard g(ebr_);
  for (uint64_t q : {5, 10, 50, 100, 150, 200, 255}) {
    Node* s = trie_.pred_start(q, ik(q));
    ASSERT_NE(s, nullptr);
    EXPECT_LT(s->ikey(), ik(q)) << "query " << q;
  }
  // A query above every key should land on the largest key (200), not just
  // the head: the trie must actually be useful.
  Node* s = trie_.pred_start(255, ik(255));
  EXPECT_EQ(s->ikey(), ik(200));
}

TEST_F(XFastTest, PredStartUsesClosestCandidate) {
  add(100);
  add(101);
  add(102);
  EbrDomain::Guard g(ebr_);
  Node* s = trie_.pred_start(102, ik(102));
  // The binary search should land exactly on 101 (predecessor of 102 among
  // top nodes), not a distant key.
  EXPECT_EQ(s->ikey(), ik(101));
}

TEST_F(XFastTest, RemoveDeletesPrefixesOfLoneKey) {
  add(0b10110100);
  ASSERT_EQ(trie_.entry_count(), 1u + 7u);
  remove(0b10110100);
  EXPECT_EQ(trie_.entry_count(), 1u);  // only the root remains
  // Root pointers must no longer reference the removed key.
  EbrDomain::Guard g(ebr_);
  Node* s = trie_.pred_start(0xff, ik(0xff));
  EXPECT_EQ(s, eng_.head(eng_.top_level()));
}

TEST_F(XFastTest, RemoveKeepsSharedPrefixes) {
  add(0b10110100);
  add(0b10110111);
  remove(0b10110111);
  // All of key A's prefixes must survive and still cover A.
  EXPECT_EQ(trie_.entry_count(), 1u + 7u);
  EbrDomain::Guard g(ebr_);
  Node* s = trie_.pred_start(0b10110110, ik(0b10110110));
  EXPECT_EQ(s->ikey(), ik(0b10110100));
}

TEST_F(XFastTest, ReAddAfterRemoveRestoresCoverage) {
  add(42);
  remove(42);
  add(42);
  EbrDomain::Guard g(ebr_);
  Node* s = trie_.pred_start(43, ik(43));
  EXPECT_EQ(s->ikey(), ik(42));
}

TEST_F(XFastTest, InsertPrefixesStopsForMarkedNode) {
  EbrDomain::Guard g(ebr_);
  const auto r = eng_.insert(ik(7), eng_.head(eng_.top_level()),
                             eng_.top_level());
  ASSERT_NE(r.top, nullptr);
  // Mark the node before registering prefixes: nothing may be added.
  uint64_t w = r.top->next.load();
  r.top->back.store(eng_.head(eng_.top_level()));
  ASSERT_TRUE(r.top->next.compare_exchange_strong(w, with_mark(w)));
  const size_t before = trie_.entry_count();
  trie_.insert_prefixes(7, r.top);
  EXPECT_EQ(trie_.entry_count(), before);
}

TEST_F(XFastTest, PointersCoverExtremes) {
  // pointers[0] of a prefix must reach the LARGEST key in the 0-subtree,
  // pointers[1] the SMALLEST in the 1-subtree.  Keys 0b10 and 0b11 share
  // the length-7 prefix 0000001 and split on the final bit.
  add(0b00000010);
  add(0b00000011);
  EbrDomain::Guard g(ebr_);
  const auto found = trie_.map().lookup(encode_prefix(0b00000010, 7, kBits));
  ASSERT_TRUE(found.has_value());
  auto* tn = reinterpret_cast<TreeNode*>(*found);
  Node* p0 = unpack_ptr<Node>(tn->ptrs[0].load());
  Node* p1 = unpack_ptr<Node>(tn->ptrs[1].load());
  ASSERT_NE(p0, nullptr);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(p0->ikey(), ik(0b00000010));
  EXPECT_EQ(p1->ikey(), ik(0b00000011));

  // One level up (length 6, prefix 000000) both keys sit in the 1-subtree:
  // pointers[1] must name the SMALLEST of them.
  const auto found6 = trie_.map().lookup(encode_prefix(0b00000010, 6, kBits));
  ASSERT_TRUE(found6.has_value());
  auto* tn6 = reinterpret_cast<TreeNode*>(*found6);
  Node* q1 = unpack_ptr<Node>(tn6->ptrs[1].load());
  ASSERT_NE(q1, nullptr);
  EXPECT_EQ(q1->ikey(), ik(0b00000010));
}

TEST_F(XFastTest, ManyKeysPredStartIsValidAndDescendsToTruth) {
  std::vector<uint64_t> keys = {3, 17, 45, 46, 99, 128, 129, 200, 254};
  for (uint64_t k : keys) add(k);
  EbrDomain::Guard g(ebr_);
  for (uint64_t q = 0; q < 256; ++q) {
    const uint64_t x = ik(q) + 1;  // inclusive bound
    Node* s = trie_.pred_start(q, x);
    // Expected: the largest key <= q, or head (ikey 0) when none exists.
    uint64_t expect_ik = 0;
    for (uint64_t k : keys) {
      if (k <= q) expect_ik = ik(k);
    }
    // The start is a guide: it must be at or before the true predecessor
    // (prev pointers may lag, paper §3), never beyond it.
    EXPECT_LE(s->ikey(), expect_ik) << "q=" << q;
    EXPECT_LT(s->ikey(), x);
    // And descending from it must land exactly on the true predecessor.
    const auto b = eng_.descend(x, s);
    EXPECT_EQ(b.left->ikey(), expect_ik) << "q=" << q;
  }
}

TEST_F(XFastTest, EntryCountReturnsToRootAfterFullChurn) {
  for (uint64_t k = 0; k < 64; ++k) add(k * 4);
  for (uint64_t k = 0; k < 64; ++k) remove(k * 4);
  EXPECT_EQ(trie_.entry_count(), 1u);
}

}  // namespace
}  // namespace skiptrie
