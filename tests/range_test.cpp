// Ordered iteration / range queries / min-max (API extensions built on the
// level-0 list — the SkipTrie keeps keys sorted, so these come for free).
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/skiptrie.h"

namespace skiptrie {
namespace {

Config cfg16() {
  Config c;
  c.universe_bits = 16;
  return c;
}

TEST(Range, EmptyStructure) {
  SkipTrie t(cfg16());
  EXPECT_EQ(t.min_key(), std::nullopt);
  EXPECT_EQ(t.max_key_present(), std::nullopt);
  EXPECT_EQ(t.count_range(0, 65535), 0u);
  size_t visits = 0;
  t.for_each_in_range(0, 65535, [&](uint64_t) { ++visits; });
  EXPECT_EQ(visits, 0u);
}

TEST(Range, MinMaxTrackContents) {
  SkipTrie t(cfg16());
  t.insert(500);
  EXPECT_EQ(t.min_key().value(), 500u);
  EXPECT_EQ(t.max_key_present().value(), 500u);
  t.insert(100);
  t.insert(900);
  EXPECT_EQ(t.min_key().value(), 100u);
  EXPECT_EQ(t.max_key_present().value(), 900u);
  t.erase(100);
  EXPECT_EQ(t.min_key().value(), 500u);
  t.erase(900);
  EXPECT_EQ(t.max_key_present().value(), 500u);
}

TEST(Range, KeyZeroAndMaxAreVisible) {
  SkipTrie t(cfg16());
  t.insert(0);
  t.insert(t.max_key());
  EXPECT_EQ(t.min_key().value(), 0u);
  EXPECT_EQ(t.max_key_present().value(), t.max_key());
  EXPECT_EQ(t.count_range(0, t.max_key()), 2u);
}

TEST(Range, VisitsExactlyTheRangeInOrder) {
  SkipTrie t(cfg16());
  for (uint64_t k = 0; k < 100; ++k) t.insert(k * 10);
  std::vector<uint64_t> seen;
  t.for_each_in_range(95, 305, [&](uint64_t k) { seen.push_back(k); });
  ASSERT_EQ(seen.size(), 21u);  // 100, 110, ..., 300
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 100 + i * 10);
  }
}

TEST(Range, InclusiveBoundaries) {
  SkipTrie t(cfg16());
  t.insert(10);
  t.insert(20);
  t.insert(30);
  EXPECT_EQ(t.count_range(10, 30), 3u);
  EXPECT_EQ(t.count_range(11, 29), 1u);
  EXPECT_EQ(t.count_range(10, 10), 1u);
  EXPECT_EQ(t.count_range(31, 40), 0u);
  EXPECT_EQ(t.count_range(30, 10), 0u);  // inverted range
}

TEST(Range, MatchesReferenceOnRandomSets) {
  SkipTrie t(cfg16());
  std::set<uint64_t> ref;
  Xoshiro256 rng(12);
  for (int i = 0; i < 3000; ++i) {
    const uint64_t k = rng.next_below(4096);
    if (rng.next() & 1) {
      t.insert(k);
      ref.insert(k);
    } else {
      t.erase(k);
      ref.erase(k);
    }
  }
  for (int round = 0; round < 50; ++round) {
    uint64_t lo = rng.next_below(4096);
    uint64_t hi = rng.next_below(4096);
    if (lo > hi) std::swap(lo, hi);
    std::vector<uint64_t> ours;
    t.for_each_in_range(lo, hi, [&](uint64_t k) { ours.push_back(k); });
    std::vector<uint64_t> expect(ref.lower_bound(lo), ref.upper_bound(hi));
    ASSERT_EQ(ours, expect) << "range [" << lo << "," << hi << "]";
  }
}

TEST(Range, SkipsLogicallyDeletedKeys) {
  SkipTrie t(cfg16());
  for (uint64_t k = 0; k < 50; ++k) t.insert(k);
  for (uint64_t k = 0; k < 50; k += 2) t.erase(k);
  std::vector<uint64_t> seen;
  t.for_each_in_range(0, 49, [&](uint64_t k) { seen.push_back(k); });
  ASSERT_EQ(seen.size(), 25u);
  for (uint64_t k : seen) EXPECT_EQ(k % 2, 1u);
}

TEST(Range, WeaklyConsistentUnderConcurrentChurn) {
  SkipTrie t(cfg16());
  // Stable anchors must always be observed; churned keys may or may not be.
  for (uint64_t a = 0; a < 10; ++a) t.insert(a * 1000);
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    Xoshiro256 rng(3);
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t k = rng.next_below(9000) + 1;
      if (k % 1000 == 0) continue;
      if (rng.next() & 1) {
        t.insert(k);
      } else {
        t.erase(k);
      }
    }
  });
  for (int round = 0; round < 500; ++round) {
    std::vector<uint64_t> anchors;
    t.for_each_in_range(0, 9000, [&](uint64_t k) {
      if (k % 1000 == 0) anchors.push_back(k);
    });
    ASSERT_EQ(anchors.size(), 10u) << "round " << round;
    for (size_t i = 0; i < anchors.size(); ++i) {
      ASSERT_EQ(anchors[i], i * 1000);
    }
  }
  stop.store(true, std::memory_order_release);
  churn.join();
}

TEST(Range, ChurnedTraversalStaysSortedAndInRange) {
  // Hammers for_each_in_range while two writers churn a dense key block.
  // Regression for the double-read of a node's next word: a hop taken from
  // a second read (after the node got marked) could pair a reported key
  // with a traversal step it never validated.  Every report must be
  // strictly ascending, inside the requested range, and from the churned
  // universe; stable anchors must always appear.
  SkipTrie t(cfg16());
  constexpr uint64_t kLo = 100, kHi = 1100;
  for (uint64_t a = kLo; a <= kHi; a += 100) t.insert(a);  // anchors
  std::atomic<bool> stop{false};
  std::vector<std::thread> churn;
  for (int w = 0; w < 2; ++w) {
    churn.emplace_back([&t, &stop, w] {
      Xoshiro256 rng(17 + w);
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t k = kLo + rng.next_below(kHi - kLo + 1);
        if (k % 100 == 0) continue;  // leave anchors alone
        if (rng.next() & 1) {
          t.insert(k);
        } else {
          t.erase(k);
        }
      }
    });
  }
  for (int round = 0; round < 400; ++round) {
    std::vector<uint64_t> seen;
    t.for_each_in_range(kLo, kHi, [&](uint64_t k) { seen.push_back(k); });
    size_t anchors = 0;
    uint64_t prev = 0;
    for (size_t i = 0; i < seen.size(); ++i) {
      ASSERT_GE(seen[i], kLo) << "round " << round;
      ASSERT_LE(seen[i], kHi) << "round " << round;
      if (i > 0) ASSERT_GT(seen[i], prev) << "round " << round;
      prev = seen[i];
      if (seen[i] % 100 == 0) ++anchors;
    }
    ASSERT_EQ(anchors, (kHi - kLo) / 100 + 1) << "round " << round;
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : churn) th.join();
}

TEST(Range, LargeUniverseRange) {
  Config c;
  c.universe_bits = 64;
  SkipTrie t(c);
  const uint64_t base = 0x0123456789abcdefull;
  for (uint64_t i = 0; i < 100; ++i) t.insert(base + i * 3);
  EXPECT_EQ(t.count_range(base, base + 297), 100u);
  EXPECT_EQ(t.count_range(base + 1, base + 2), 0u);
  EXPECT_EQ(t.min_key().value(), base);
  EXPECT_EQ(t.max_key_present().value(), base + 297);
}

// Range scans crossing leaf-chunk boundaries (DESIGN.md §7): the scan runs
// on the authoritative level-0 list, so chunk seams must be invisible.  A
// dense run wide enough for many chunks is scanned at every alignment
// around each seam — starting on a chunk's last key, its successor chunk's
// base, one key before and one past — and after a draining erase pattern
// that forces merges, the same windows must stay exact.
TEST(Range, ChunkBoundaryScans) {
  SkipTrie t(cfg16());
  ASSERT_NE(t.engine().leaf_chunks(), nullptr);
  constexpr uint64_t kKeys = 600;  // dozens of chunks at K = 16
  for (uint64_t k = 0; k < kKeys; ++k) ASSERT_TRUE(t.insert(k));

  // Collect the chunk base keys (ikey = key + 1) while quiescent.
  std::vector<uint64_t> bases;
  t.engine().leaf_chunks()->for_each_chunk([&](const auto& ch) {
    if (ch.base.load() != 0) bases.push_back(ch.base.load() - 1);
  });
  ASSERT_GT(bases.size(), 4u) << "expected many chunks over " << kKeys
                              << " dense keys";

  auto window = [&](uint64_t lo, uint64_t hi) {
    std::vector<uint64_t> got;
    t.for_each_in_range(lo, hi, [&](uint64_t k) { got.push_back(k); });
    return got;
  };
  for (const uint64_t b : bases) {
    for (const uint64_t lo : {b > 1 ? b - 2 : 0, b > 0 ? b - 1 : 0, b}) {
      const uint64_t hi = b + 2 < kKeys ? b + 2 : kKeys - 1;
      std::vector<uint64_t> expect;
      for (uint64_t k = lo; k <= hi; ++k)
        if (k < kKeys) expect.push_back(k);
      EXPECT_EQ(window(lo, hi), expect) << "seam at " << b;
    }
  }

  // Drain to every 16th key (forces merges), then re-check a full scan and
  // the windows around the old seams.
  for (uint64_t k = 0; k < kKeys; ++k)
    if (k % 16 != 0) ASSERT_TRUE(t.erase(k));
  EXPECT_EQ(t.count_range(0, kKeys - 1), (kKeys + 15) / 16);
  for (const uint64_t b : bases) {
    const uint64_t lo = b > 17 ? b - 17 : 0;
    const uint64_t hi = b + 17 < kKeys ? b + 17 : kKeys - 1;
    std::vector<uint64_t> expect;
    for (uint64_t k = lo; k <= hi; ++k)
      if (k % 16 == 0) expect.push_back(k);
    EXPECT_EQ(window(lo, hi), expect) << "post-merge seam at " << b;
  }
}

}  // namespace
}  // namespace skiptrie
