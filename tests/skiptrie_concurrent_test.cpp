// Concurrency stress tests: exactness on disjoint keys, invariant
// preservation under shared-key churn, and query sanity during mutation.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/spin_barrier.h"
#include "core/skiptrie.h"
#include "core/validate.h"

namespace skiptrie {
namespace {

Config cfg(uint32_t bits, DcssMode mode = DcssMode::kDcss) {
  Config c;
  c.universe_bits = bits;
  c.dcss_mode = mode;
  return c;
}

unsigned worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 4 ? 4 : (hw >= 2 ? hw : 2);
}

TEST(SkipTrieConcurrent, DisjointKeyRangesAreExact) {
  SkipTrie t(cfg(24));
  const unsigned kThreads = worker_count();
  const uint64_t kPer = 4000;
  SpinBarrier barrier(kThreads);
  std::vector<std::thread> ts;
  for (unsigned w = 0; w < kThreads; ++w) {
    ts.emplace_back([&, w] {
      barrier.arrive_and_wait();
      const uint64_t base = w * 1000000ull;
      // Insert everything, erase the odd ones, re-check.
      for (uint64_t i = 0; i < kPer; ++i) {
        ASSERT_TRUE(t.insert(base + i));
      }
      for (uint64_t i = 1; i < kPer; i += 2) {
        ASSERT_TRUE(t.erase(base + i));
      }
      for (uint64_t i = 0; i < kPer; ++i) {
        ASSERT_EQ(t.contains(base + i), i % 2 == 0) << base + i;
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(t.size(), kThreads * (kPer / 2));
  const auto errors = validate_structure(t);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
}

TEST(SkipTrieConcurrent, InsertRaceExactlyOneWinner) {
  SkipTrie t(cfg(16));
  const unsigned kThreads = worker_count();
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> wins{0};
    SpinBarrier barrier(kThreads);
    std::vector<std::thread> ts;
    for (unsigned w = 0; w < kThreads; ++w) {
      ts.emplace_back([&] {
        barrier.arrive_and_wait();
        if (t.insert(round)) wins.fetch_add(1);
      });
    }
    for (auto& th : ts) th.join();
    ASSERT_EQ(wins.load(), 1) << "round " << round;
  }
}

TEST(SkipTrieConcurrent, EraseRaceExactlyOneWinner) {
  SkipTrie t(cfg(16));
  const unsigned kThreads = worker_count();
  for (int round = 0; round < 200; ++round) {
    ASSERT_TRUE(t.insert(round));
    std::atomic<int> wins{0};
    SpinBarrier barrier(kThreads);
    std::vector<std::thread> ts;
    for (unsigned w = 0; w < kThreads; ++w) {
      ts.emplace_back([&] {
        barrier.arrive_and_wait();
        if (t.erase(round)) wins.fetch_add(1);
      });
    }
    for (auto& th : ts) th.join();
    ASSERT_EQ(wins.load(), 1) << "round " << round;
    ASSERT_FALSE(t.contains(round));
  }
}

TEST(SkipTrieConcurrent, InsertEraseSameKeyToggleStress) {
  // Threads hammer the SAME small key set with inserts and erases; the
  // structure must stay valid and every op must report a coherent result.
  SkipTrie t(cfg(16));
  const unsigned kThreads = worker_count();
  std::atomic<int64_t> net{0};
  std::vector<std::thread> ts;
  for (unsigned w = 0; w < kThreads; ++w) {
    ts.emplace_back([&, w] {
      Xoshiro256 rng(w + 1);
      int64_t local = 0;
      for (int i = 0; i < 8000; ++i) {
        const uint64_t k = rng.next_below(16);  // extreme contention
        if (rng.next() & 1) {
          if (t.insert(k)) local++;
        } else {
          if (t.erase(k)) local--;
        }
      }
      net.fetch_add(local);
    });
  }
  for (auto& th : ts) th.join();
  // Net successful inserts minus erases equals the surviving key count.
  int64_t remaining = 0;
  for (uint64_t k = 0; k < 16; ++k) remaining += t.contains(k) ? 1 : 0;
  EXPECT_EQ(net.load(), remaining);
  const auto errors = validate_structure(t);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
}

TEST(SkipTrieConcurrent, QueriesDuringChurnReturnSaneAnswers) {
  SkipTrie t(cfg(20));
  // Anchor keys that are never touched: queries between anchors must always
  // see them.
  for (uint64_t a = 0; a <= 10; ++a) ASSERT_TRUE(t.insert(a * 100000));
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> checked{0};
  std::thread churn([&] {
    Xoshiro256 rng(404);
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t k = rng.next_below(9) * 100000 + 1 + rng.next_below(99998);
      if (rng.next() & 1) {
        t.insert(k);
      } else {
        t.erase(k);
      }
    }
  });
  std::vector<std::thread> readers;
  for (unsigned w = 0; w < worker_count() - 1; ++w) {
    readers.emplace_back([&, w] {
      Xoshiro256 rng(w * 7 + 1);
      for (int i = 0; i < 20000; ++i) {
        const uint64_t anchor = rng.next_below(10);
        // predecessor(anchor*100000 + 0) must be exactly the anchor.
        const auto p = t.predecessor(anchor * 100000);
        ASSERT_TRUE(p.has_value());
        ASSERT_EQ(*p, anchor * 100000);
        // successor just below the next anchor must be <= next anchor and
        // > this anchor.
        const auto s = t.successor(anchor * 100000);
        ASSERT_TRUE(s.has_value());
        ASSERT_GT(*s, anchor * 100000);
        ASSERT_LE(*s, (anchor + 1) * 100000);
        checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true, std::memory_order_release);
  churn.join();
  EXPECT_GT(checked.load(), 0u);
  const auto errors = validate_structure(t);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
}

class ConcurrentModePressure
    : public ::testing::TestWithParam<DcssMode> {};

TEST_P(ConcurrentModePressure, MixedChurnKeepsInvariants) {
  SkipTrie t(cfg(24, GetParam()));
  const unsigned kThreads = worker_count();
  std::vector<std::thread> ts;
  for (unsigned w = 0; w < kThreads; ++w) {
    ts.emplace_back([&, w] {
      Xoshiro256 rng(w * 13 + 5);
      for (int i = 0; i < 15000; ++i) {
        const uint64_t k = rng.next_below(1u << 12);
        switch (rng.next_below(4)) {
          case 0: t.insert(k); break;
          case 1: t.erase(k); break;
          case 2: t.contains(k); break;
          default: t.predecessor(k); break;
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  const auto errors = validate_structure(t);
  EXPECT_TRUE(errors.empty())
      << errors.size() << " violations, first: "
      << (errors.empty() ? "" : errors.front());
  // And the structure still behaves after the storm.
  t.insert(99999);
  EXPECT_TRUE(t.contains(99999));
  EXPECT_EQ(t.predecessor(99999).value(), 99999u);
}

INSTANTIATE_TEST_SUITE_P(BothModes, ConcurrentModePressure,
                         ::testing::Values(DcssMode::kDcss,
                                           DcssMode::kCasFallback),
                         [](const auto& info) {
                           return info.param == DcssMode::kDcss ? "Dcss"
                                                                : "CasFallback";
                         });

TEST(SkipTrieConcurrent, MemoryIsRecycledUnderChurn) {
  SkipTrie t(cfg(20));
  // Repeated insert/erase of the same keys must not grow the arena without
  // bound: recycled nodes get reused.
  for (uint64_t k = 0; k < 2000; ++k) t.insert(k);
  for (uint64_t k = 0; k < 2000; ++k) t.erase(k);
  const size_t after_warmup = t.structure_stats().arena_bytes;
  for (int round = 0; round < 20; ++round) {
    for (uint64_t k = 0; k < 2000; ++k) t.insert(k);
    for (uint64_t k = 0; k < 2000; ++k) t.erase(k);
  }
  const size_t after_churn = t.structure_stats().arena_bytes;
  EXPECT_LE(after_churn, after_warmup * 3 + (1u << 20));
}

}  // namespace
}  // namespace skiptrie
