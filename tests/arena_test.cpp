#include "reclaim/arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>
#include <vector>

namespace skiptrie {
namespace {

TEST(Arena, BlockSizeRoundedToAlignment) {
  SlabArena a(40, 64, 16);
  EXPECT_EQ(a.block_size(), 64u);
  SlabArena b(64, 64, 16);
  EXPECT_EQ(b.block_size(), 64u);
  SlabArena c(65, 64, 16);
  EXPECT_EQ(c.block_size(), 128u);
}

TEST(Arena, FreshFlagOnFirstUseOnly) {
  SlabArena a(64, 64, 16);
  bool fresh = false;
  void* p = a.allocate(&fresh);
  EXPECT_TRUE(fresh);
  a.recycle(p);
  bool fresh2 = true;
  void* q = a.allocate(&fresh2);
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(q, p);  // thread cache returns the recycled block
}

TEST(Arena, AlignmentHonored) {
  SlabArena a(64, 64, 16);
  for (int i = 0; i < 100; ++i) {
    void* p = a.allocate();
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u);
  }
}

TEST(Arena, DistinctLiveBlocks) {
  SlabArena a(64, 64, 8);  // small slabs: force multiple slabs
  std::set<void*> seen;
  for (int i = 0; i < 1000; ++i) {
    void* p = a.allocate();
    EXPECT_TRUE(seen.insert(p).second) << "duplicate live block";
  }
  EXPECT_EQ(a.live_blocks(), 1000);
}

TEST(Arena, BytesReservedGrowsBySlab) {
  SlabArena a(64, 64, 8);
  EXPECT_EQ(a.bytes_reserved(), 0u);
  a.allocate();
  EXPECT_EQ(a.bytes_reserved(), 64u * 8u);
  for (int i = 0; i < 8; ++i) a.allocate();
  EXPECT_EQ(a.bytes_reserved(), 2u * 64u * 8u);
}

TEST(Arena, RecycleKeepsStorageMapped) {
  // Type stability: recycled blocks stay readable (the whole point for
  // stale guide pointers).
  SlabArena a(64, 64, 16);
  char* p = static_cast<char*>(a.allocate());
  std::memset(p, 0xAB, 64);
  a.recycle(p);
  // Reading after recycle is defined behavior for the arena (the block is
  // never unmapped while the arena lives).
  EXPECT_EQ(static_cast<unsigned char>(p[0]), 0xAB);
}

TEST(Arena, CrossThreadRecycleIsReusable) {
  SlabArena a(64, 64, 16);
  std::vector<void*> blocks;
  for (int i = 0; i < 400; ++i) blocks.push_back(a.allocate());
  std::thread t([&] {
    for (void* p : blocks) a.recycle(p);  // spills to the global list
  });
  t.join();
  // This thread should be able to reuse spilled blocks without growing the
  // arena (allow one extra slab of slack for cache-residency effects).
  const size_t reserved = a.bytes_reserved();
  for (int i = 0; i < 300; ++i) a.allocate();
  EXPECT_LE(a.bytes_reserved(), reserved + 64u * 16u);
}

TEST(Arena, ConcurrentAllocRecycleStress) {
  SlabArena a(64, 64, 256);
  std::vector<std::thread> ts;
  std::atomic<bool> failed{false};
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&] {
      std::vector<void*> mine;
      for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 64; ++i) {
          void* p = a.allocate();
          if (p == nullptr) failed.store(true);
          mine.push_back(p);
        }
        for (void* p : mine) a.recycle(p);
        mine.clear();
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(a.live_blocks(), 0);
}

}  // namespace
}  // namespace skiptrie
