// Concurrent stress on the skiplist engine in isolation (below the trie):
// races between raising inserts, claiming deletes and traversals, at a
// small truncation height to maximize tower collisions.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/spin_barrier.h"
#include "skiplist/engine.h"

namespace skiptrie {
namespace {

class EngineConcurrent : public ::testing::TestWithParam<DcssMode> {
 protected:
  EngineConcurrent()
      : arena_(sizeof(Node), kCacheLine, 4096),
        ctx_{&ebr_, GetParam()},
        eng_(ctx_, arena_, 3) {}

  static uint64_t ik(uint64_t k) { return k + 1; }

  SlabArena arena_;
  EbrDomain ebr_;
  DcssContext ctx_;
  SkipListEngine eng_;
};

TEST_P(EngineConcurrent, InsertEraseSameKeySingleWinnerEachRound) {
  for (int round = 0; round < 150; ++round) {
    std::atomic<int> ins_wins{0};
    SpinBarrier barrier(4);
    std::vector<std::thread> ts;
    for (int w = 0; w < 4; ++w) {
      ts.emplace_back([&, w] {
        EbrDomain::Guard g(ebr_);
        barrier.arrive_and_wait();
        const auto r = eng_.insert(ik(round), eng_.head(3), w % 4u);
        if (r.inserted) ins_wins.fetch_add(1);
      });
    }
    for (auto& th : ts) th.join();
    ASSERT_EQ(ins_wins.load(), 1) << round;
    EbrDomain::Guard g(ebr_);
    auto er = eng_.erase(ik(round), eng_.head(3));
    ASSERT_TRUE(er.erased);
    eng_.retire_owned(er);
  }
}

TEST_P(EngineConcurrent, RaisersVsDeletersNeverStrandTowers) {
  // Writers insert full-height towers while deleters chase them; at the
  // end every level must be empty (no orphaned tower nodes), in both DCSS
  // and CAS-fallback modes (the fallback exercises the undo path).
  const int kKeys = 64;
  std::atomic<bool> stop{false};
  std::thread inserter([&] {
    Xoshiro256 rng(1);
    while (!stop.load(std::memory_order_acquire)) {
      EbrDomain::Guard g(ebr_);
      eng_.insert(ik(rng.next_below(kKeys)), eng_.head(3), 3);
    }
  });
  std::thread deleter([&] {
    Xoshiro256 rng(2);
    while (!stop.load(std::memory_order_acquire)) {
      EbrDomain::Guard g(ebr_);
      auto r = eng_.erase(ik(rng.next_below(kKeys)), eng_.head(3));
      if (r.erased) eng_.retire_owned(r);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true, std::memory_order_release);
  inserter.join();
  deleter.join();

  // Drain the survivors.
  EbrDomain::Guard g(ebr_);
  for (uint64_t k = 0; k < kKeys; ++k) {
    auto r = eng_.erase(ik(k), eng_.head(3));
    if (r.erased) eng_.retire_owned(r);
  }
  for (uint32_t l = 0; l <= 3; ++l) {
    EXPECT_EQ(eng_.first_at(l), nullptr) << "stranded node at level " << l;
  }
}

TEST_P(EngineConcurrent, TraversalsDuringChurnStayBracketed) {
  std::atomic<bool> stop{false};
  // Anchors at multiples of 1000 are immutable.
  {
    EbrDomain::Guard g(ebr_);
    for (uint64_t a = 0; a <= 8; ++a) {
      ASSERT_TRUE(eng_.insert(ik(a * 1000), eng_.head(3), 3).inserted);
    }
  }
  std::thread churn([&] {
    Xoshiro256 rng(5);
    while (!stop.load(std::memory_order_acquire)) {
      EbrDomain::Guard g(ebr_);
      const uint64_t k = 1 + rng.next_below(7999);
      if (k % 1000 == 0) continue;
      if (rng.next() & 1) {
        eng_.insert(ik(k), eng_.head(3), rng.geometric_height(3));
      } else {
        auto r = eng_.erase(ik(k), eng_.head(3));
        if (r.erased) eng_.retire_owned(r);
      }
    }
  });
  Xoshiro256 rng(6);
  for (int i = 0; i < 30000; ++i) {
    EbrDomain::Guard g(ebr_);
    const uint64_t anchor = rng.next_below(8);
    // Bracket exactly at an anchor: left must be < anchor, right == anchor.
    const auto b = eng_.descend(ik(anchor * 1000), eng_.head(3));
    ASSERT_EQ(b.right->ikey(), ik(anchor * 1000));
    ASSERT_LT(b.left->ikey(), ik(anchor * 1000));
  }
  stop.store(true, std::memory_order_release);
  churn.join();
}

TEST_P(EngineConcurrent, DisjointRangesExactUnderParallelism) {
  SpinBarrier barrier(4);
  std::vector<std::thread> ts;
  for (int w = 0; w < 4; ++w) {
    ts.emplace_back([&, w] {
      EbrDomain::Guard g(ebr_);
      barrier.arrive_and_wait();
      const uint64_t base = static_cast<uint64_t>(w) * 100000;
      Xoshiro256 rng(w);
      for (uint64_t i = 0; i < 1500; ++i) {
        ASSERT_TRUE(
            eng_.insert(ik(base + i), eng_.head(3), rng.geometric_height(3))
                .inserted);
      }
      for (uint64_t i = 0; i < 1500; i += 3) {
        auto r = eng_.erase(ik(base + i), eng_.head(3));
        ASSERT_TRUE(r.erased);
        eng_.retire_owned(r);
      }
      for (uint64_t i = 0; i < 1500; ++i) {
        const auto b = eng_.descend(ik(base + i), eng_.head(3));
        ASSERT_EQ(b.right->ikey() == ik(base + i), i % 3 != 0) << base + i;
      }
    });
  }
  for (auto& th : ts) th.join();
}

INSTANTIATE_TEST_SUITE_P(BothModes, EngineConcurrent,
                         ::testing::Values(DcssMode::kDcss,
                                           DcssMode::kCasFallback),
                         [](const auto& info) {
                           return info.param == DcssMode::kDcss
                                      ? "Dcss"
                                      : "CasFallback";
                         });

}  // namespace
}  // namespace skiptrie
