// Cross-module integration: the workload driver against every set type,
// counter plumbing, and post-run structural validation.
#include <gtest/gtest.h>

#include <map>

#include "baseline/lockfree_skiplist.h"
#include "baseline/locked_map.h"
#include "core/skiptrie.h"
#include "core/validate.h"
#include "reclaim/hazard.h"
#include "workload/driver.h"

namespace skiptrie {
namespace {

WorkloadConfig quick_cfg() {
  WorkloadConfig cfg;
  cfg.threads = 2;
  cfg.ops_per_thread = 20000;
  cfg.key_space = 1u << 14;
  cfg.prefill = 4000;
  return cfg;
}

TEST(Integration, WorkloadOnSkipTrieBalancedMix) {
  Config c;
  c.universe_bits = 24;
  SkipTrie t(c);
  WorkloadConfig cfg = quick_cfg();
  cfg.mix = OpMix::balanced();
  const WorkloadResult r = run_workload(t, cfg);
  EXPECT_EQ(r.total_ops, cfg.threads * cfg.ops_per_thread);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.steps.node_hops, 0u);
  EXPECT_GT(r.steps.hash_probes, 0u);  // trie is being consulted
  EXPECT_GT(r.inserts, 0u);
  EXPECT_GT(r.preds, 0u);
  const auto errors = validate_structure(t);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
}

TEST(Integration, WorkloadReadOnlyMakesNoStructuralWrites) {
  Config c;
  c.universe_bits = 24;
  // With adaptive heights on, hot reads *do* write (promotion raises run
  // CAS/DCSS on behalf of queries — DESIGN.md §8.1; adaptive_test covers
  // that side).  This test pins the classic read-only contract.
  c.adaptive_heights = false;
  SkipTrie t(c);
  WorkloadConfig cfg = quick_cfg();
  cfg.mix = OpMix::read_only();
  const WorkloadResult r = run_workload(t, cfg);
  EXPECT_EQ(r.preds, r.total_ops);
  // The first read pass may lazily initialize hash buckets left
  // uninitialized by table growth during prefill (a one-time, amortized
  // cost: at most a couple of CASes per directory bucket), but never more.
  const size_t buckets = t.trie().map().bucket_count();
  EXPECT_LE(r.steps.cas_attempts, 2 * buckets);
  EXPECT_EQ(r.steps.dcss_attempts, 0u);

  // Once warmed, queries never write: no CAS/DCSS attempts at all.
  cfg.prefill = 0;
  const WorkloadResult r2 = run_workload(t, cfg);
  EXPECT_EQ(r2.preds, r2.total_ops);
  EXPECT_EQ(r2.steps.cas_attempts, 0u);
  EXPECT_EQ(r2.steps.dcss_attempts, 0u);
}

TEST(Integration, WorkloadOnBaselines) {
  LockFreeSkipList s(16);
  WorkloadConfig cfg = quick_cfg();
  const WorkloadResult r1 = run_workload(s, cfg);
  EXPECT_EQ(r1.total_ops, cfg.threads * cfg.ops_per_thread);
  EXPECT_GT(r1.steps.node_hops, 0u);
  EXPECT_EQ(r1.steps.hash_probes, 0u);  // no trie in the baseline

  LockedMap m;
  const WorkloadResult r2 = run_workload(m, cfg);
  EXPECT_EQ(r2.total_ops, cfg.threads * cfg.ops_per_thread);
}

TEST(Integration, StepCountersSeparateSearchFromUpdateCost) {
  Config c;
  c.universe_bits = 32;
  // Adaptive promotion writes on the read path; pin it off so "warmed
  // read-only makes no updates" stays a meaningful separation.
  c.adaptive_heights = false;
  SkipTrie t(c);
  WorkloadConfig cfg = quick_cfg();
  cfg.threads = 1;
  cfg.mix = OpMix::write_heavy();
  const WorkloadResult w = run_workload(t, cfg);

  SkipTrie t2(c);
  cfg.mix = OpMix::read_only();
  run_workload(t2, cfg);  // warm-up pass: may initialize hash buckets
  cfg.prefill = 0;
  const WorkloadResult r = run_workload(t2, cfg);
  // Write-heavy runs must record update work; warmed read-only must not.
  EXPECT_GT(w.steps.cas_attempts + w.steps.dcss_attempts, 0u);
  EXPECT_EQ(r.steps.cas_attempts + r.steps.dcss_attempts, 0u);
}

TEST(Integration, DistributionsProduceInRangeKeys) {
  for (KeyDist d : {KeyDist::kUniform, KeyDist::kZipf, KeyDist::kClustered,
                    KeyDist::kSequential}) {
    KeyGenerator gen(d, 10000, 42);
    for (int i = 0; i < 5000; ++i) {
      ASSERT_LT(gen.next(), 10000u) << key_dist_name(d);
    }
  }
}

TEST(Integration, ZipfIsSkewed) {
  KeyGenerator gen(KeyDist::kZipf, 1u << 20, 7);
  std::map<uint64_t, int> freq;
  for (int i = 0; i < 50000; ++i) freq[gen.next()]++;
  // The most frequent key should be dramatically over-represented vs the
  // uniform expectation of ~0.05 hits per key.
  int max_freq = 0;
  for (const auto& [k, f] : freq) max_freq = std::max(max_freq, f);
  EXPECT_GT(max_freq, 500);
}

TEST(Integration, SequentialDistributionIsDeterministic) {
  KeyGenerator a(KeyDist::kSequential, 100, 1);
  KeyGenerator b(KeyDist::kSequential, 100, 2);  // seed must not matter
  for (int i = 0; i < 250; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Integration, WorkloadResultSummaryIsHumanReadable) {
  Config c;
  c.universe_bits = 16;
  SkipTrie t(c);
  WorkloadConfig cfg = quick_cfg();
  cfg.ops_per_thread = 2000;
  const WorkloadResult r = run_workload(t, cfg);
  const std::string s = r.summary();
  EXPECT_NE(s.find("Mops/s"), std::string::npos);
  EXPECT_NE(s.find("steps/op"), std::string::npos);
}

TEST(Integration, HazardDomainInteroperatesWithWorkload) {
  // The hazard domain is an independent substrate; ensure it coexists with
  // EBR-based structures in one process (separate thread registries).
  HazardDomain hp;
  Config c;
  c.universe_bits = 16;
  SkipTrie t(c);
  std::atomic<int> live{0};
  struct Obj {
    std::atomic<int>& c;
    explicit Obj(std::atomic<int>& c) : c(c) { c.fetch_add(1); }
    ~Obj() { c.fetch_sub(1); }
  };
  for (int i = 0; i < 100; ++i) {
    t.insert(i);
    hp.retire_delete(new Obj(live));
  }
  hp.scan();
  EXPECT_EQ(live.load(), 0);
  EXPECT_EQ(t.size(), 100u);
}

}  // namespace
}  // namespace skiptrie
