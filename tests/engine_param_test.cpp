// Parameterized engine sweeps: the same tower/list invariants must hold for
// every truncation height (the SkipTrie uses 3..7 levels, the baseline up
// to ~40), for both synchronization modes, and — since the key-traits
// refactor (DESIGN.md §6) — for both shipped key universes.  The sweeps are
// TYPED_TESTs over {U64Traits, Bytes16Traits}; each test iterates the
// (top, mode) grid internally.  The 128-bit ikeys are spread across both
// machine words so the comparisons genuinely exercise wide arithmetic.
#include <gtest/gtest.h>

#include <set>

#include "common/key_traits.h"
#include "common/random.h"
#include "common/stats.h"
#include "skiplist/engine.h"

namespace skiptrie {
namespace {

constexpr uint32_t kTops[] = {1u, 2u, 3u, 5u, 6u, 10u, 20u};
constexpr DcssMode kModes[] = {DcssMode::kDcss, DcssMode::kCasFallback};

template <typename Traits>
class EngineSweep : public ::testing::Test {
 protected:
  using Ikey = typename Traits::ikey_type;
  using Node_t = NodeT<Ikey>;
  using Engine = BasicSkipListEngine<Traits>;

  struct Rig {
    SlabArena arena;
    EbrDomain ebr;
    DcssContext ctx;
    Engine eng;
    Rig(uint32_t top, DcssMode mode)
        : arena(sizeof(Node_t), kCacheLine, 1024),
          ctx{&ebr, mode},
          eng(ctx, arena, top) {}
  };

  // Strictly monotone key -> ikey embedding.  For the wide universe the
  // value lands in both 64-bit halves, so ordering decisions can't be
  // satisfied by the low word alone.
  static Ikey ik(uint64_t k) {
    if constexpr (Traits::kMaxBits > 64) {
      return (Ikey(k + 1) << 64) | Ikey(k + 1);
    } else {
      return Ikey(k + 1);
    }
  }
};

using SweepTraits = ::testing::Types<U64Traits, Bytes16Traits>;
TYPED_TEST_SUITE(EngineSweep, SweepTraits);

TYPED_TEST(EngineSweep, FullHeightTowerSpansAllLevels) {
  using Fix = EngineSweep<TypeParam>;
  for (const uint32_t top : kTops) {
    for (const DcssMode mode : kModes) {
      typename Fix::Rig r(top, mode);
      EbrDomain::Guard g(r.ebr);
      ASSERT_TRUE(r.eng.insert(Fix::ik(42), r.eng.head(top), top).inserted);
      for (uint32_t l = 0; l <= top; ++l) {
        auto* n = r.eng.first_at(l);
        ASSERT_NE(n, nullptr) << "top " << top << " level " << l;
        EXPECT_TRUE(n->ikey() == Fix::ik(42));
      }
    }
  }
}

TYPED_TEST(EngineSweep, EraseAtEveryHeightCleansAllLevels) {
  using Fix = EngineSweep<TypeParam>;
  for (const uint32_t top : kTops) {
    for (const DcssMode mode : kModes) {
      typename Fix::Rig r(top, mode);
      EbrDomain::Guard g(r.ebr);
      for (uint32_t h = 0; h <= top; ++h) {
        const uint64_t key = 100 + h;
        ASSERT_TRUE(r.eng.insert(Fix::ik(key), r.eng.head(top), h).inserted);
        auto res = r.eng.erase(Fix::ik(key), r.eng.head(top));
        ASSERT_TRUE(res.erased) << "top " << top << " height " << h;
        EXPECT_EQ(res.top != nullptr, h == top) << "height " << h;
        r.eng.retire_owned(res);
        for (uint32_t l = 0; l <= top; ++l) {
          EXPECT_EQ(r.eng.first_at(l), nullptr)
              << "top " << top << " h=" << h << " level " << l;
        }
      }
    }
  }
}

TYPED_TEST(EngineSweep, InterleavedChurnMatchesReference) {
  using Fix = EngineSweep<TypeParam>;
  for (const uint32_t top : kTops) {
    for (const DcssMode mode : kModes) {
      typename Fix::Rig r(top, mode);
      EbrDomain::Guard g(r.ebr);
      Xoshiro256 rng(top * 7 + 1);
      std::set<uint64_t> ref;
      for (int i = 0; i < 1500; ++i) {
        const uint64_t k = rng.next_below(128);
        if (rng.next() & 1) {
          const bool ours =
              r.eng.insert(Fix::ik(k), r.eng.head(top),
                           rng.geometric_height(top))
                  .inserted;
          ASSERT_EQ(ours, ref.insert(k).second);
        } else {
          auto res = r.eng.erase(Fix::ik(k), r.eng.head(top));
          ASSERT_EQ(res.erased, ref.erase(k) > 0);
          if (res.erased) r.eng.retire_owned(res);
        }
      }
      size_t count = 0;
      for (auto* n = r.eng.first_at(0); n != nullptr; n = r.eng.next_at(n)) {
        ++count;
      }
      EXPECT_EQ(count, ref.size()) << "top " << top;
    }
  }
}

TYPED_TEST(EngineSweep, BracketsAlwaysSortedAndTight) {
  using Fix = EngineSweep<TypeParam>;
  for (const uint32_t top : kTops) {
    for (const DcssMode mode : kModes) {
      typename Fix::Rig r(top, mode);
      EbrDomain::Guard g(r.ebr);
      Xoshiro256 rng(9);
      std::set<uint64_t> ref;
      for (int i = 0; i < 500; ++i) {
        const uint64_t k = rng.next_below(100000);
        if (ref.insert(k).second) {
          ASSERT_TRUE(r.eng
                          .insert(Fix::ik(k), r.eng.head(top),
                                  rng.geometric_height(top))
                          .inserted);
        }
      }
      for (int i = 0; i < 500; ++i) {
        const uint64_t q = rng.next_below(100000);
        const auto b = r.eng.descend(Fix::ik(q), r.eng.head(top));
        // left < ik(q) <= right, and they are adjacent in the reference too.
        EXPECT_TRUE(b.left->ikey() < Fix::ik(q));
        EXPECT_TRUE(b.right->ikey() >= Fix::ik(q));
        auto it = ref.lower_bound(q);
        if (it == ref.begin()) {
          EXPECT_EQ(b.left->kind(), NodeKind::kHead);
        } else {
          EXPECT_TRUE(b.left->ikey() == Fix::ik(*std::prev(it)));
        }
        if (it == ref.end()) {
          EXPECT_EQ(b.right->kind(), NodeKind::kTail);
        } else {
          EXPECT_TRUE(b.right->ikey() == Fix::ik(*it));
        }
      }
    }
  }
}

// Guide-pointer hardening: traversals must survive poisoned storage.  Runs
// on the u64 alias — the poison/recycle machinery is byte-level and
// key-width independent.
class GuideHardening : public ::testing::Test {
 protected:
  GuideHardening()
      : arena_(sizeof(Node), kCacheLine, 256),
        ctx_{&ebr_, DcssMode::kDcss},
        eng_(ctx_, arena_, 3) {}
  SlabArena arena_;
  EbrDomain ebr_;
  DcssContext ctx_;
  SkipListEngine eng_;
};

TEST_F(GuideHardening, WalkLeftFromPoisonedNodeFallsBackToHead) {
  EbrDomain::Guard g(ebr_);
  ASSERT_TRUE(eng_.insert(100, eng_.head(3), 3).inserted);
  Node* poisoned = eng_.make_node(999, 2, 2, nullptr, nullptr);
  poisoned->poison();
  Node* res = eng_.walk_left(50, poisoned);
  EXPECT_EQ(res, eng_.head(3));
  arena_.recycle(poisoned);
}

TEST_F(GuideHardening, ListSearchFromPoisonedStartRecovers) {
  EbrDomain::Guard g(ebr_);
  ASSERT_TRUE(eng_.insert(100, eng_.head(3), 1).inserted);
  Node* poisoned = eng_.make_node(999, 1, 1, nullptr, nullptr);
  poisoned->poison();
  const auto b = eng_.list_search(100, poisoned, 1);
  EXPECT_EQ(b.right->ikey(), 100u);
  arena_.recycle(poisoned);
}

TEST_F(GuideHardening, DescendFromWrongLevelNodeStillCorrect) {
  EbrDomain::Guard g(ebr_);
  for (uint64_t k = 1; k <= 50; ++k) {
    ASSERT_TRUE(eng_.insert(k * 2, eng_.head(3), k % 4).inserted);
  }
  // Use a level-0 node as the descend start (simulates a recycled guide
  // that now lives at a different level): result must still be exact.
  Node* low = eng_.first_at(0);
  ASSERT_NE(low, nullptr);
  const auto b = eng_.descend(77, low);
  EXPECT_EQ(b.left->ikey(), 76u);
  EXPECT_EQ(b.right->ikey(), 78u);
}

TEST_F(GuideHardening, WalkLeftFallbackIsAttributedDistinctly) {
  // A dead-ended guide walk (poisoned start) must count walk_fallbacks, not
  // just a generic restart: discarding the trie hint costs a full top-level
  // rescan and ROADMAP tracks it separately.
  EbrDomain::Guard g(ebr_);
  ASSERT_TRUE(eng_.insert(100, eng_.head(3), 3).inserted);
  Node* poisoned = eng_.make_node(999, 2, 2, nullptr, nullptr);
  poisoned->poison();
  tls_counters() = StepCounters{};
  Node* res = eng_.walk_left(50, poisoned);
  EXPECT_EQ(res, eng_.head(3));
  EXPECT_EQ(tls_counters().walk_fallbacks, 1u);
  EXPECT_EQ(tls_counters().restarts, 1u);
  arena_.recycle(poisoned);

  // A healthy walk from a usable node attributes no fallback.
  Node* top = eng_.first_at(3);
  ASSERT_NE(top, nullptr);
  tls_counters() = StepCounters{};
  EXPECT_EQ(eng_.walk_left(200, top), top);
  EXPECT_EQ(tls_counters().walk_fallbacks, 0u);
  tls_counters() = StepCounters{};
}

TEST_F(GuideHardening, WalkLeftLimitFromAdversarialStaleHint) {
  // Regression for the silent kWalkLimit restart: an adversarially bad
  // (stale) start hint — a top-level node more than kWalkLimit prev-hops to
  // the right of the search bound — must give up, fall back to the head,
  // and say so in walk_fallbacks instead of hiding the cost in restarts.
  EbrDomain::Guard g(ebr_);
  constexpr uint64_t kNodes = 4200;  // > kWalkLimit (4096)
  Node* stale_hint = nullptr;
  for (uint64_t k = 1; k <= kNodes; ++k) {
    const auto r = eng_.insert(k * 2, stale_hint == nullptr
                                          ? eng_.head(3)
                                          : stale_hint,
                               3);
    ASSERT_TRUE(r.inserted);
    stale_hint = r.top;  // rightmost top-level node so far
  }
  ASSERT_NE(stale_hint, nullptr);
  tls_counters() = StepCounters{};
  // Search bound 1 sits left of every node: the walk must follow ~kNodes
  // prev pointers, exceed the limit, and restart from the head.
  Node* res = eng_.walk_left(1, stale_hint);
  EXPECT_EQ(res, eng_.head(3));
  EXPECT_EQ(tls_counters().walk_fallbacks, 1u);
  EXPECT_GT(tls_counters().prev_steps, 4000u);
  tls_counters() = StepCounters{};
}

TEST_F(GuideHardening, WalkLeftNullFromPoisonBackPointer) {
  EbrDomain::Guard g(ebr_);
  ASSERT_TRUE(eng_.insert(10, eng_.head(3), 3).inserted);
  Node* n = eng_.first_at(3);
  ASSERT_NE(n, nullptr);
  // Mark with a null back pointer: the walk must fall back to the head
  // rather than dereference null.
  uint64_t w = n->next.load();
  ASSERT_TRUE(n->next.compare_exchange_strong(w, with_mark(w)));
  n->back.store(nullptr);
  Node* res = eng_.walk_left(5, n);
  EXPECT_EQ(res, eng_.head(3));
}

}  // namespace
}  // namespace skiptrie
