#include "skiplist/engine.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/random.h"

namespace skiptrie {
namespace {

// Fixture: a truncated engine like the SkipTrie's for B=32 (top level 5).
class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : arena_(sizeof(Node), kCacheLine, 1024),
        ctx_{&ebr_, DcssMode::kDcss},
        eng_(ctx_, arena_, 5) {}

  // ikey helpers: user key k -> internal key k+1.
  static uint64_t ik(uint64_t k) { return k + 1; }

  SlabArena arena_;
  EbrDomain ebr_;
  DcssContext ctx_;
  SkipListEngine eng_;
};

TEST_F(EngineTest, EmptyBracketsHeadToTail) {
  EbrDomain::Guard g(ebr_);
  const auto b = eng_.descend(ik(100), eng_.head(eng_.top_level()));
  EXPECT_EQ(b.left, eng_.head(0));
  EXPECT_EQ(b.right, eng_.tail());
}

TEST_F(EngineTest, InsertAtHeightZeroOnlyLevelZero) {
  EbrDomain::Guard g(ebr_);
  const auto r = eng_.insert(ik(10), eng_.head(5), 0);
  ASSERT_TRUE(r.inserted);
  EXPECT_EQ(r.top, nullptr);
  EXPECT_NE(eng_.first_at(0), nullptr);
  EXPECT_EQ(eng_.first_at(1), nullptr);
}

TEST_F(EngineTest, InsertAtFullHeightReachesTop) {
  EbrDomain::Guard g(ebr_);
  const auto r = eng_.insert(ik(10), eng_.head(5), 5);
  ASSERT_TRUE(r.inserted);
  ASSERT_NE(r.top, nullptr);
  EXPECT_EQ(r.top->level(), 5u);
  EXPECT_EQ(r.top->ikey(), ik(10));
  for (uint32_t l = 0; l <= 5; ++l) {
    ASSERT_NE(eng_.first_at(l), nullptr) << l;
    EXPECT_EQ(eng_.first_at(l)->ikey(), ik(10));
  }
}

TEST_F(EngineTest, TowerLinksAreConsistent) {
  EbrDomain::Guard g(ebr_);
  const auto r = eng_.insert(ik(10), eng_.head(5), 3);
  ASSERT_TRUE(r.inserted);
  Node* n = eng_.first_at(3);
  ASSERT_NE(n, nullptr);
  for (int l = 3; l > 0; --l) {
    EXPECT_EQ(n->level(), static_cast<uint32_t>(l));
    EXPECT_EQ(n->root(), r.root);
    n = n->down();
    ASSERT_NE(n, nullptr);
  }
  EXPECT_EQ(n, r.root);
}

TEST_F(EngineTest, DuplicateInsertRejected) {
  EbrDomain::Guard g(ebr_);
  ASSERT_TRUE(eng_.insert(ik(10), eng_.head(5), 2).inserted);
  const auto r = eng_.insert(ik(10), eng_.head(5), 4);
  EXPECT_FALSE(r.inserted);
  EXPECT_EQ(r.root, nullptr);
}

TEST_F(EngineTest, BracketSeparatesNeighbors) {
  EbrDomain::Guard g(ebr_);
  for (uint64_t k : {10, 20, 30}) {
    ASSERT_TRUE(eng_.insert(ik(k), eng_.head(5), 1).inserted);
  }
  const auto b = eng_.descend(ik(25), eng_.head(5));
  EXPECT_EQ(b.left->ikey(), ik(20));
  EXPECT_EQ(b.right->ikey(), ik(30));
  const auto b2 = eng_.descend(ik(20), eng_.head(5));
  EXPECT_EQ(b2.left->ikey(), ik(10));
  EXPECT_EQ(b2.right->ikey(), ik(20));  // x <= right.ikey: exact hit on right
}

TEST_F(EngineTest, EraseRemovesEveryLevel) {
  EbrDomain::Guard g(ebr_);
  ASSERT_TRUE(eng_.insert(ik(10), eng_.head(5), 5).inserted);
  auto r = eng_.erase(ik(10), eng_.head(5));
  ASSERT_TRUE(r.erased);
  EXPECT_NE(r.top, nullptr);
  EXPECT_GT(r.owned_count, 0u);
  for (uint32_t l = 0; l <= 5; ++l) {
    EXPECT_EQ(eng_.first_at(l), nullptr) << "level " << l;
  }
  eng_.retire_owned(r);
}

TEST_F(EngineTest, EraseAbsentKeyFails) {
  EbrDomain::Guard g(ebr_);
  EXPECT_FALSE(eng_.erase(ik(10), eng_.head(5)).erased);
  ASSERT_TRUE(eng_.insert(ik(10), eng_.head(5), 1).inserted);
  EXPECT_FALSE(eng_.erase(ik(11), eng_.head(5)).erased);
}

TEST_F(EngineTest, SecondEraseLosesTheClaim) {
  EbrDomain::Guard g(ebr_);
  ASSERT_TRUE(eng_.insert(ik(10), eng_.head(5), 2).inserted);
  auto r1 = eng_.erase(ik(10), eng_.head(5));
  EXPECT_TRUE(r1.erased);
  auto r2 = eng_.erase(ik(10), eng_.head(5));
  EXPECT_FALSE(r2.erased);
  eng_.retire_owned(r1);
}

TEST_F(EngineTest, ReinsertAfterEraseWorks) {
  EbrDomain::Guard g(ebr_);
  ASSERT_TRUE(eng_.insert(ik(10), eng_.head(5), 5).inserted);
  auto r = eng_.erase(ik(10), eng_.head(5));
  ASSERT_TRUE(r.erased);
  eng_.retire_owned(r);
  const auto r2 = eng_.insert(ik(10), eng_.head(5), 3);
  EXPECT_TRUE(r2.inserted);
  const auto b = eng_.descend(ik(10), eng_.head(5));
  EXPECT_EQ(b.right->ikey(), ik(10));
}

TEST_F(EngineTest, StopFlagHaltsRaising) {
  EbrDomain::Guard g(ebr_);
  // Insert, then set stop manually before re-raising another key's tower —
  // direct check: claim the stop word of a fresh root mid-construction by
  // inserting height 0, claiming, and verifying erase still works.
  const auto r = eng_.insert(ik(10), eng_.head(5), 0);
  ASSERT_TRUE(r.inserted);
  uint64_t expect = 0;
  EXPECT_TRUE(r.root->stopw.compare_exchange_strong(expect, 1));
  // The tower is claimed; a direct erase must now fail to claim...
  EXPECT_FALSE(eng_.erase(ik(10), eng_.head(5)).erased);
  // ...so complete the deletion manually the way erase would.
  expect = 1;
  EXPECT_EQ(r.root->stopw.load(), 1u);
}

TEST_F(EngineTest, ListSearchUnlinksMarkedNodes) {
  EbrDomain::Guard g(ebr_);
  ASSERT_TRUE(eng_.insert(ik(10), eng_.head(5), 0).inserted);
  ASSERT_TRUE(eng_.insert(ik(20), eng_.head(5), 0).inserted);
  Node* n10 = eng_.first_at(0);
  ASSERT_EQ(n10->ikey(), ik(10));
  // Manually mark 10 (simulating a stalled deleter) and verify a search
  // physically unlinks it.
  uint64_t w = n10->next.load();
  ASSERT_FALSE(is_marked(w));
  n10->back.store(eng_.head(0));
  ASSERT_TRUE(n10->next.compare_exchange_strong(w, with_mark(w)));
  const auto b = eng_.descend(ik(15), eng_.head(5));
  EXPECT_EQ(b.left, eng_.head(0));  // 10 is gone
  EXPECT_EQ(b.right->ikey(), ik(20));
  EXPECT_EQ(eng_.first_at(0)->ikey(), ik(20));
}

TEST_F(EngineTest, SearchFromStaleHintFallsBackToHead) {
  EbrDomain::Guard g(ebr_);
  ASSERT_TRUE(eng_.insert(ik(50), eng_.head(5), 1).inserted);
  // A hint whose key is >= x is unusable; list_search must restart and
  // still return the correct bracket.
  Node* n50 = eng_.first_at(0);
  const auto b = eng_.list_search(ik(20), n50, 0);
  EXPECT_EQ(b.left, eng_.head(0));
  EXPECT_EQ(b.right->ikey(), ik(50));
}

TEST_F(EngineTest, WalkLeftStopsBelowBound) {
  EbrDomain::Guard g(ebr_);
  for (uint64_t k : {10, 20, 30, 40}) {
    ASSERT_TRUE(eng_.insert(ik(k), eng_.head(5), 5).inserted);
  }
  Node* n40 = eng_.first_at(5);
  while (n40 != nullptr && n40->ikey() != ik(40)) n40 = eng_.next_at(n40);
  ASSERT_NE(n40, nullptr);
  Node* w = eng_.walk_left(ik(25), n40);
  EXPECT_LT(w->ikey(), ik(25));
}

TEST_F(EngineTest, ManyKeysSortedAtEveryLevel) {
  EbrDomain::Guard g(ebr_);
  Xoshiro256 rng(3);
  std::set<uint64_t> keys;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t k = rng.next_below(1u << 20);
    const uint32_t h = rng.geometric_height(5);
    if (keys.insert(k).second) {
      ASSERT_TRUE(eng_.insert(ik(k), eng_.head(5), h).inserted);
    }
  }
  for (uint32_t l = 0; l <= 5; ++l) {
    uint64_t prev = 0;
    size_t count = 0;
    for (Node* n = eng_.first_at(l); n != nullptr; n = eng_.next_at(n)) {
      ASSERT_GT(n->ikey(), prev) << "level " << l;
      prev = n->ikey();
      ++count;
    }
    if (l == 0) {
      EXPECT_EQ(count, keys.size());
    } else {
      EXPECT_LT(count, keys.size());  // truncation thins levels
    }
  }
}

TEST_F(EngineTest, RandomInsertEraseMatchesReferenceSet) {
  EbrDomain::Guard g(ebr_);
  Xoshiro256 rng(8);
  std::set<uint64_t> ref;
  for (int i = 0; i < 6000; ++i) {
    const uint64_t k = rng.next_below(256);  // dense: plenty of collisions
    if (rng.next() & 1) {
      const bool ours = eng_.insert(ik(k), eng_.head(5),
                                    rng.geometric_height(5)).inserted;
      EXPECT_EQ(ours, ref.insert(k).second) << "insert " << k;
    } else {
      auto r = eng_.erase(ik(k), eng_.head(5));
      EXPECT_EQ(r.erased, ref.erase(k) > 0) << "erase " << k;
      if (r.erased) eng_.retire_owned(r);
    }
  }
  // Final contents at level 0 match the reference exactly.
  std::vector<uint64_t> ours;
  for (Node* n = eng_.first_at(0); n != nullptr; n = eng_.next_at(n)) {
    ours.push_back(n->ikey() - 1);
  }
  EXPECT_EQ(ours.size(), ref.size());
  auto it = ref.begin();
  for (size_t i = 0; i < ours.size() && it != ref.end(); ++i, ++it) {
    EXPECT_EQ(ours[i], *it);
  }
}

TEST_F(EngineTest, NodeRecyclingReusesArenaStorage) {
  const int64_t before = arena_.live_blocks();
  {
    EbrDomain::Guard g(ebr_);
    for (int round = 0; round < 500; ++round) {
      ASSERT_TRUE(eng_.insert(ik(round), eng_.head(5), 5).inserted);
      auto r = eng_.erase(ik(round), eng_.head(5));
      ASSERT_TRUE(r.erased);
      eng_.retire_owned(r);
    }
  }
  ebr_.drain();
  // All towers retired and recycled: the arena's live count returns close
  // to the baseline (sentinels only).
  EXPECT_LE(arena_.live_blocks(), before + 8);
}

}  // namespace
}  // namespace skiptrie
