#include "baseline/lockfree_skiplist.h"

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "baseline/locked_map.h"
#include "common/random.h"

namespace skiptrie {
namespace {

TEST(LockFreeSkipList, BasicSemantics) {
  LockFreeSkipList s(12);
  EXPECT_FALSE(s.contains(5));
  EXPECT_TRUE(s.insert(5));
  EXPECT_FALSE(s.insert(5));
  EXPECT_TRUE(s.contains(5));
  EXPECT_EQ(s.predecessor(5).value(), 5u);
  EXPECT_EQ(s.predecessor(4), std::nullopt);
  EXPECT_TRUE(s.erase(5));
  EXPECT_FALSE(s.erase(5));
}

TEST(LockFreeSkipList, ModelCheck) {
  LockFreeSkipList s(16);
  std::set<uint64_t> ref;
  Xoshiro256 rng(3);
  for (int i = 0; i < 15000; ++i) {
    const uint64_t k = rng.next_below(2048);
    switch (rng.next_below(4)) {
      case 0: ASSERT_EQ(s.insert(k), ref.insert(k).second); break;
      case 1: ASSERT_EQ(s.erase(k), ref.erase(k) > 0); break;
      case 2: ASSERT_EQ(s.contains(k), ref.count(k) > 0); break;
      default: {
        auto it = ref.upper_bound(k);
        std::optional<uint64_t> expect;
        if (it != ref.begin()) expect = *std::prev(it);
        ASSERT_EQ(s.predecessor(k), expect);
      }
    }
  }
  EXPECT_EQ(s.size(), ref.size());
}

TEST(LockFreeSkipList, ConcurrentDisjointExactness) {
  LockFreeSkipList s(18);
  const int kThreads = 4;
  const uint64_t kPer = 3000;
  std::vector<std::thread> ts;
  for (int w = 0; w < kThreads; ++w) {
    ts.emplace_back([&, w] {
      const uint64_t base = static_cast<uint64_t>(w) << 32;
      for (uint64_t i = 0; i < kPer; ++i) ASSERT_TRUE(s.insert(base + i));
      for (uint64_t i = 0; i < kPer; i += 2) ASSERT_TRUE(s.erase(base + i));
      for (uint64_t i = 0; i < kPer; ++i) {
        ASSERT_EQ(s.contains(base + i), i % 2 == 1);
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(s.size(), kThreads * kPer / 2);
}

TEST(LockFreeSkipList, SuccessorWorks) {
  LockFreeSkipList s(12);
  s.insert(10);
  s.insert(20);
  EXPECT_EQ(s.successor(0).value(), 10u);
  EXPECT_EQ(s.successor(10).value(), 20u);
  EXPECT_EQ(s.successor(20), std::nullopt);
}

TEST(LockedMap, BasicSemantics) {
  LockedMap m;
  EXPECT_TRUE(m.insert(5));
  EXPECT_FALSE(m.insert(5));
  EXPECT_TRUE(m.contains(5));
  EXPECT_EQ(m.predecessor(7).value(), 5u);
  EXPECT_EQ(m.predecessor(5).value(), 5u);
  EXPECT_EQ(m.predecessor(4), std::nullopt);
  EXPECT_EQ(m.successor(5), std::nullopt);
  EXPECT_TRUE(m.erase(5));
  EXPECT_EQ(m.size(), 0u);
}

TEST(LockedMap, ConcurrentSmoke) {
  LockedMap m;
  std::vector<std::thread> ts;
  for (int w = 0; w < 4; ++w) {
    ts.emplace_back([&, w] {
      for (uint64_t i = 0; i < 2000; ++i) {
        m.insert(w * 10000 + i);
        m.predecessor(w * 10000 + i);
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(m.size(), 4u * 2000u);
}

TEST(Baselines, AgreeWithEachOtherOnRandomStream) {
  LockFreeSkipList a(16);
  LockedMap b;
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t k = rng.next_below(1024);
    switch (rng.next_below(3)) {
      case 0: ASSERT_EQ(a.insert(k), b.insert(k)); break;
      case 1: ASSERT_EQ(a.erase(k), b.erase(k)); break;
      default: ASSERT_EQ(a.predecessor(k), b.predecessor(k)); break;
    }
  }
}

}  // namespace
}  // namespace skiptrie
