// Codec pins for the 128-bit key universe (DESIGN.md §6).
//
// The bytes16 codec's whole contract is three properties: order
// preservation (encode(a) < encode(b) iff a < b bytewise), injectivity +
// exact round-trip, and bounded length (<= 15 bytes with the length byte in
// the low 8 bits).  The IPv6 codec must be the identity order on address
// bytes, with IPv4-mapped addresses ordered like their v4 values.
#include "common/key_codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/key_traits.h"

namespace skiptrie {
namespace {

TEST(KeyCodecTest, RoundTripAllLengths) {
  for (size_t len = 0; len <= kBytes16MaxLen; ++len) {
    std::string s;
    for (size_t i = 0; i < len; ++i) s.push_back(static_cast<char>(0x41 + i));
    const u128 e = encode_bytes16(s);
    EXPECT_EQ(decode_bytes16_str(e), s) << "len " << len;
    // Length sits exactly in the low byte.
    EXPECT_EQ(u128_lo(e) & 0xffull, static_cast<uint64_t>(len));
  }
}

TEST(KeyCodecTest, RoundTripBinaryBytes) {
  // NUL bytes, 0xff bytes and high-bit content all survive.
  const std::vector<std::string> cases = {
      std::string("\x00", 1),
      std::string("\x00\x00\x01", 3),
      std::string("\xff\xfe\xfd", 3),
      std::string("a\x00z", 3),
      std::string(15, '\xff'),
      std::string(15, '\x00'),
  };
  for (const std::string& s : cases) {
    EXPECT_EQ(decode_bytes16_str(encode_bytes16(s)), s);
  }
}

TEST(KeyCodecTest, OrderPreservation) {
  // A deliberately adversarial set: shared prefixes, NUL-padding ties (the
  // case the length byte must break), boundary lengths 8/9 (the hi/lo word
  // seam), and extreme byte values.
  std::vector<std::string> keys = {
      "",
      std::string("\x00", 1),
      std::string("\x00\x00", 2),
      std::string("\x00\x01", 2),
      "a",
      std::string("a\x00", 2),
      std::string("a\x00\x00", 3),
      "aa",
      "ab",
      "abcdefgh",        // exactly the hi word
      "abcdefghi",       // first byte into the lo word
      "abcdefghijklmno", // max length
      "b",
      std::string("\x7f", 1),
      std::string("\x80", 1),  // sign-bit byte must sort above 0x7f
      std::string("\xff", 1),
      std::string("\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"
                  "\xff",
                  15),
  };
  std::sort(keys.begin(), keys.end());
  for (size_t i = 0; i + 1 < keys.size(); ++i) {
    const u128 a = encode_bytes16(keys[i]);
    const u128 b = encode_bytes16(keys[i + 1]);
    EXPECT_TRUE(a < b) << "\"" << keys[i] << "\" vs \"" << keys[i + 1] << "\"";
  }
}

TEST(KeyCodecTest, OrderPreservationExhaustiveShortStrings) {
  // All strings of length <= 2 over a 4-byte alphabet that brackets the
  // interesting values: every pair must order identically to bytewise order.
  const uint8_t alpha[] = {0x00, 0x01, 0x7f, 0xff};
  std::vector<std::string> keys = {""};
  for (uint8_t a : alpha) {
    keys.push_back(std::string(1, static_cast<char>(a)));
    for (uint8_t b : alpha) {
      std::string s;
      s.push_back(static_cast<char>(a));
      s.push_back(static_cast<char>(b));
      keys.push_back(s);
    }
  }
  for (const std::string& a : keys) {
    for (const std::string& b : keys) {
      EXPECT_EQ(encode_bytes16(a) < encode_bytes16(b), a < b)
          << "a.size=" << a.size() << " b.size=" << b.size();
    }
  }
}

TEST(KeyCodecTest, EncodingsFitTheBytes16Universe) {
  // Every encoding must be a valid Bytes16Traits key: strictly below the
  // trie's max_key so ikey = key + 1 never wraps into the tail sentinel.
  const u128 top = encode_bytes16(std::string(15, '\xff'));
  EXPECT_TRUE(top < Bytes16Traits::ikey_max() - u128(2));
  // The length byte occupies bits the payload never touches: a max-length
  // string's encoding has low byte 15.
  EXPECT_EQ(u128_lo(top) & 0xffull, 15u);
}

TEST(KeyCodecTest, Ipv6RoundTripAndOrder) {
  uint8_t a[16] = {0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0,
                   0,    0,    0,    0,    0, 0, 0, 1};
  uint8_t b[16] = {0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0,
                   0,    0,    0,    0,    0, 0, 0, 2};
  const u128 ea = encode_ipv6(a);
  const u128 eb = encode_ipv6(b);
  EXPECT_TRUE(ea < eb);

  uint8_t out[16];
  decode_ipv6(ea, out);
  EXPECT_EQ(std::memcmp(out, a, 16), 0);

  // Byte position dominance: differing at byte 0 outweighs every later byte.
  uint8_t c[16] = {0x20, 0x02, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_TRUE(eb < encode_ipv6(c));
}

TEST(KeyCodecTest, Ipv4MappedOrderAndDetection) {
  const u128 lo = encode_ipv4_mapped(0x0a000001u);   // 10.0.0.1
  const u128 hi = encode_ipv4_mapped(0xc0a80101u);   // 192.168.1.1
  EXPECT_TRUE(lo < hi);
  EXPECT_TRUE(is_ipv4_mapped(lo));
  EXPECT_TRUE(is_ipv4_mapped(hi));

  // A native v6 address is not v4-mapped, and v4-mapped space sits below
  // the 2000::/3 global unicast block.
  uint8_t g[16] = {0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0,
                   0,    0,    0,    0,    0, 0, 0, 1};
  const u128 eg = encode_ipv6(g);
  EXPECT_FALSE(is_ipv4_mapped(eg));
  EXPECT_TRUE(hi < eg);

  // The mapped form equals the hand-built RFC 4291 byte layout.
  uint8_t m[16] = {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 10, 0, 0, 1};
  EXPECT_TRUE(encode_ipv6(m) == lo);
}

}  // namespace
}  // namespace skiptrie
