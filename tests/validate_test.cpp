// Tests for the structural validator itself: it must accept every legal
// state and reject each class of corruption it claims to detect.
#include "core/validate.h"

#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/random.h"
#include "xfast/tree_node.h"

namespace skiptrie {
namespace {

Config cfg(uint32_t bits = 16) {
  Config c;
  c.universe_bits = bits;
  return c;
}

TEST(Validate, EmptyStructureIsValid) {
  SkipTrie t(cfg());
  EXPECT_TRUE(validate_structure(t).empty());
}

TEST(Validate, PopulatedStructureIsValid) {
  SkipTrie t(cfg());
  Xoshiro256 rng(1);
  for (int i = 0; i < 5000; ++i) t.insert(rng.next_below(1u << 14));
  EXPECT_TRUE(validate_structure(t).empty());
}

TEST(Validate, DetectsOutOfOrderLevelList) {
  SkipTrie t(cfg());
  t.insert(100);
  t.insert(200);
  // Corrupt: swap the level-0 ordering by editing a key in place.
  EbrDomain::Guard g(t.ebr());
  Node* first = t.engine().first_at(0);
  ASSERT_NE(first, nullptr);
  first->ikey_.store(500 + 1, std::memory_order_relaxed);
  const auto errors = validate_structure(t);
  EXPECT_FALSE(errors.empty());
  // Repair so teardown walks a sane structure.
  first->ikey_.store(100 + 1, std::memory_order_relaxed);
}

TEST(Validate, DetectsBrokenTowerRootLink) {
  SkipTrie t(cfg());
  // Force a tall tower by inserting until one reaches level >= 1.
  Xoshiro256 rng(3);
  for (int i = 0; i < 64; ++i) t.insert(i);
  EbrDomain::Guard g(t.ebr());
  Node* n1 = t.engine().first_at(1);
  ASSERT_NE(n1, nullptr);
  Node* saved = n1->root();
  n1->root_.store(n1, std::memory_order_relaxed);  // bogus self-root
  EXPECT_FALSE(validate_structure(t).empty());
  n1->root_.store(saved, std::memory_order_relaxed);
  EXPECT_TRUE(validate_structure(t).empty());
}

TEST(Validate, DetectsDanglingTriePointer) {
  SkipTrie t(cfg(8));
  // Fill the whole 8-bit universe so some keys certainly reach the top
  // level and populate the trie.
  for (uint64_t k = 0; k < 256; ++k) t.insert(k);
  ASSERT_TRUE(validate_structure(t).empty());
  // Corrupt some entry's non-null pointer to the tail sentinel (never a
  // valid trie target).
  EbrDomain::Guard g(t.ebr());
  std::atomic<uint64_t>* victim = nullptr;
  uint64_t saved = 0;
  t.trie().map().for_each([&](uint64_t enc, uint64_t v) {
    if (victim != nullptr || enc == 1) return;  // skip the root entry
    auto* tn = reinterpret_cast<TreeNode*>(v);
    for (int d = 0; d < 2; ++d) {
      const uint64_t w = tn->ptrs[d].load();
      if (w != 0) {
        victim = &tn->ptrs[d];
        saved = w;
        return;
      }
    }
  });
  ASSERT_NE(victim, nullptr);
  victim->store(pack_ptr(t.engine().tail()));
  EXPECT_FALSE(validate_structure(t).empty());
  victim->store(saved);
  EXPECT_TRUE(validate_structure(t).empty());
}

TEST(Validate, DetectsMissingPrefixCoverage) {
  SkipTrie t(cfg(8));
  for (uint64_t k = 0; k < 256; ++k) t.insert(k);
  ASSERT_TRUE(validate_structure(t).empty());
  // Remove a top key's prefix entry behind the structure's back: the
  // coverage sweep must notice the gap.
  EbrDomain::Guard g(t.ebr());
  Node* topnode = t.engine().first_at(t.engine().top_level());
  ASSERT_NE(topnode, nullptr);
  const uint64_t key = topnode->ikey() - 1;
  auto& map = const_cast<SplitOrderedMap&>(t.trie().map());
  const uint64_t enc = encode_prefix(key, 7, 8);
  const auto found = map.lookup(enc);
  ASSERT_TRUE(found.has_value());
  ASSERT_TRUE(map.compare_and_delete(enc, *found));
  EXPECT_FALSE(validate_structure(t).empty());
  // The entry was removed behind the structure's back, so its TreeNode is
  // orphaned from teardown's for_each walk: this test owns it.
  delete reinterpret_cast<TreeNode*>(*found);
}

TEST(Validate, AcceptsBothDcssModesAfterChurn) {
  for (const DcssMode mode : {DcssMode::kDcss, DcssMode::kCasFallback}) {
    Config c = cfg();
    c.dcss_mode = mode;
    SkipTrie t(c);
    Xoshiro256 rng(7);
    for (int i = 0; i < 4000; ++i) {
      const uint64_t k = rng.next_below(2048);
      if (rng.next() & 1) {
        t.insert(k);
      } else {
        t.erase(k);
      }
    }
    EXPECT_TRUE(validate_structure(t).empty());
  }
}

}  // namespace
}  // namespace skiptrie
