// Property-based parameterized sweeps: model agreement and the paper's
// structural expectations across universes, seeds and modes.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <tuple>

#include "common/bitops.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/skiptrie.h"
#include "core/validate.h"

namespace skiptrie {
namespace {

// ---------------------------------------------------------------------
// Property 1: full model agreement (insert/erase/contains/pred/succ) for
// every universe size and several seeds.
// ---------------------------------------------------------------------
class ModelAgreement
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>> {};

TEST_P(ModelAgreement, RandomOpsMatchStdSet) {
  const auto [bits, seed] = GetParam();
  Config c;
  c.universe_bits = bits;
  SkipTrie t(c);
  std::set<uint64_t> ref;
  Xoshiro256 rng(seed);
  const uint64_t space =
      bits >= 16 ? (1ull << 14) : (universe_mask(bits) + 1);

  for (int i = 0; i < 8000; ++i) {
    const uint64_t k = rng.next_below(space);
    switch (rng.next_below(5)) {
      case 0:
        ASSERT_EQ(t.insert(k), ref.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(t.erase(k), ref.erase(k) > 0);
        break;
      case 2:
        ASSERT_EQ(t.contains(k), ref.count(k) > 0);
        break;
      case 3: {
        auto it = ref.upper_bound(k);
        std::optional<uint64_t> expect;
        if (it != ref.begin()) expect = *std::prev(it);
        ASSERT_EQ(t.predecessor(k), expect);
        break;
      }
      default: {
        auto it = ref.upper_bound(k);
        std::optional<uint64_t> expect;
        if (it != ref.end()) expect = *it;
        ASSERT_EQ(t.successor(k), expect);
        break;
      }
    }
  }
  const auto errors = validate_structure(t);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
}

INSTANTIATE_TEST_SUITE_P(
    UniverseBySeed, ModelAgreement,
    ::testing::Combine(::testing::Values(4u, 8u, 12u, 16u, 32u, 48u, 64u),
                       ::testing::Values(1ull, 77ull, 20260610ull)),
    [](const auto& info) {
      return "B" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Property 2: structural expectations from the paper (Fig. 1): top-level
// density ~ m/log u, geometric level thinning, trie covers top keys.
// ---------------------------------------------------------------------
class StructureShape : public ::testing::TestWithParam<uint32_t> {};

TEST_P(StructureShape, TopDensityTracksOneOverLogU) {
  const uint32_t bits = GetParam();
  Config c;
  c.universe_bits = bits;
  c.seed = 1234;
  SkipTrie t(c);
  Xoshiro256 rng(42);
  const size_t n = 16000;
  size_t inserted = 0;
  while (inserted < n) {
    if (t.insert(rng.next() & universe_mask(bits) & ~1ull)) inserted++;
  }
  const auto s = t.structure_stats();
  ASSERT_EQ(s.keys, n);
  const double expect_top = static_cast<double>(n) / bits;
  EXPECT_GT(static_cast<double>(s.top_count), expect_top * 0.5) << bits;
  EXPECT_LT(static_cast<double>(s.top_count), expect_top * 2.0) << bits;
  // Levels thin geometrically: each level has fewer nodes than below.
  const uint32_t top = ceil_log2(bits);
  for (uint32_t l = 1; l <= top; ++l) {
    EXPECT_LE(s.level_counts[l], s.level_counts[l - 1]) << "level " << l;
  }
  // Space: arena is O(m) — nodes per key ~ sum of level survival < 2.
  const double nodes_per_key =
      static_cast<double>(t.engine().approx_bytes()) / sizeof(Node) /
      static_cast<double>(n);
  EXPECT_LT(nodes_per_key, 4.0);
}

// B >= 16 so the universe comfortably holds the 16k sample (B=8 has only
// 256 possible keys).
INSTANTIATE_TEST_SUITE_P(Universes, StructureShape,
                         ::testing::Values(16u, 32u, 64u));

// ---------------------------------------------------------------------
// Property 3: the expected gap between top-level keys is O(log u)
// (the paper's implicit "bucket" size).
// ---------------------------------------------------------------------
class GapShape : public ::testing::TestWithParam<uint32_t> {};

TEST_P(GapShape, AverageTopGapNearLogU) {
  const uint32_t bits = GetParam();
  Config c;
  c.universe_bits = bits;
  SkipTrie t(c);
  Xoshiro256 rng(7);
  const size_t n = 20000;
  size_t inserted = 0;
  while (inserted < n) {
    if (t.insert(rng.next() & universe_mask(bits))) inserted++;
  }
  const auto s = t.structure_stats();
  // avg gap = keys between consecutive top nodes ~ log u = bits.
  EXPECT_GT(s.avg_top_gap, bits * 0.4) << bits;
  EXPECT_LT(s.avg_top_gap, bits * 2.5) << bits;
}

INSTANTIATE_TEST_SUITE_P(Universes, GapShape,
                         ::testing::Values(16u, 32u, 64u));

// ---------------------------------------------------------------------
// Property 4: sequential and adversarial key patterns keep all invariants
// (no rebalancing pathologies — the paper's central design claim).
// ---------------------------------------------------------------------
struct PatternCase {
  const char* name;
  uint64_t (*key_of)(uint64_t i);
};

class KeyPatterns : public ::testing::TestWithParam<PatternCase> {};

TEST_P(KeyPatterns, InsertEraseHalfValidate) {
  Config c;
  c.universe_bits = 32;
  SkipTrie t(c);
  const auto& pc = GetParam();
  const uint64_t n = 6000;
  std::set<uint64_t> ref;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t k = pc.key_of(i) & universe_mask(32);
    ASSERT_EQ(t.insert(k), ref.insert(k).second);
  }
  uint64_t idx = 0;
  for (uint64_t k : ref) {
    if (idx++ % 2 == 0) {
      ASSERT_TRUE(t.erase(k));
    }
  }
  idx = 0;
  for (uint64_t k : ref) {
    ASSERT_EQ(t.contains(k), idx++ % 2 == 1) << k;
  }
  const auto errors = validate_structure(t);
  EXPECT_TRUE(errors.empty())
      << pc.name << ": " << (errors.empty() ? "" : errors.front());
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, KeyPatterns,
    ::testing::Values(
        PatternCase{"sequential", [](uint64_t i) { return i; }},
        PatternCase{"reverse", [](uint64_t i) { return 100000 - i; }},
        PatternCase{"strided", [](uint64_t i) { return i * 4097; }},
        PatternCase{"clustered",
                    [](uint64_t i) { return (i / 64) * 1000000 + i % 64; }},
        PatternCase{"bitreversed",
                    [](uint64_t i) { return mix64(i); }}),
    [](const auto& info) { return std::string(info.param.name); });

// ---------------------------------------------------------------------
// Property 5: predecessor step counts stay near log log u, not log m
// (the headline claim, checked loosely as a test; exact curves are in the
// benchmarks).
// ---------------------------------------------------------------------
TEST(StepComplexity, PredecessorHashProbesAreLogLogU) {
  Config c;
  c.universe_bits = 32;
  SkipTrie t(c);
  Xoshiro256 rng(11);
  for (int i = 0; i < 30000; ++i) t.insert(rng.next() & universe_mask(32));

  tls_counters() = StepCounters{};
  const int q = 2000;
  for (int i = 0; i < q; ++i) t.predecessor(rng.next() & universe_mask(32));
  const double probes_per_query =
      static_cast<double>(tls_counters().hash_probes) / q;
  // Binary search over prefix lengths: <= ~log2(32) lookups, each a probe
  // or two in the hash list (dummies); generous upper bound of 6x.
  EXPECT_LT(probes_per_query, 6.0 * ceil_log2(32));
  EXPECT_GT(probes_per_query, 1.0);
  tls_counters() = StepCounters{};
}

}  // namespace
}  // namespace skiptrie
