// ShardedEngine property tests (DESIGN.md §4.1, §4.3).
//
// Pins the three contracts the sharded engine makes: (1) routing is a
// bijection between keys and (shard, low) pairs, with the shard index equal
// to the key's top bits; (2) every batch operation — duplicates, empty,
// unsorted inputs included — returns byte-identical results (values and
// input order) to the unsharded engine run over the same (key, op)
// sequence; (3) per-shard structure stats sum to the unsharded totals, and
// shards=1 reproduces the unsharded engine's step counts exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "core/skiptrie.h"
#include "shard/sharded_engine.h"

namespace skiptrie {
namespace {

constexpr uint32_t kBits = 20;

Config small_cfg() {
  Config cfg;
  cfg.universe_bits = kBits;
  return cfg;
}

// --- Routing ----------------------------------------------------------------

TEST(ShardRouting, BijectionOnKeyPrefixes) {
  for (uint32_t shards : {1u, 2u, 4u, 16u}) {
    ShardedEngine e(shards, small_cfg());
    ASSERT_EQ(e.shard_count(), shards);
    const uint32_t low_bits = kBits - e.shard_bits();
    Xoshiro256 rng(0xb1d5eed + shards);
    for (int i = 0; i < 4096; ++i) {
      const uint64_t k = rng.next_below(1ull << kBits);
      const uint32_t s = e.shard_of(k);
      const uint64_t low = e.low_of(k);
      // The shard is exactly the top log2(N) bits; low is the rest.
      EXPECT_EQ(s, static_cast<uint32_t>(k >> low_bits));
      EXPECT_LT(s, shards);
      EXPECT_LT(low, 1ull << low_bits);
      // Round trip: (shard, low) identifies the key uniquely.
      EXPECT_EQ(e.global_key(s, low), k);
    }
    // Every shard is reachable: the prefix map is onto [0, N).
    for (uint32_t s = 0; s < shards; ++s) {
      EXPECT_EQ(e.shard_of(e.global_key(s, 0)), s);
    }
  }
}

TEST(ShardRouting, RoutedKeysLandInTheirShardOnly) {
  ShardedEngine e(8, small_cfg());
  Xoshiro256 rng(42);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 512; ++i) keys.push_back(rng.next_below(1ull << kBits));
  for (uint64_t k : keys) e.insert(k);
  size_t total = 0;
  for (uint32_t s = 0; s < e.shard_count(); ++s) {
    const size_t n = e.shard(s).size();
    total += n;
    // Each shard holds exactly the keys whose prefix routes to it.
    size_t expect = 0;
    std::sort(keys.begin(), keys.end());
    for (size_t i = 0; i < keys.size(); ++i) {
      if ((i == 0 || keys[i] != keys[i - 1]) && e.shard_of(keys[i]) == s) {
        ++expect;
      }
    }
    EXPECT_EQ(n, expect) << "shard " << s;
  }
  EXPECT_EQ(total, e.size());
}

// --- Single-key cross-shard queries -----------------------------------------

TEST(ShardQueries, CrossShardFallbacksMatchUnsharded) {
  ShardedEngine sharded(8, small_cfg());
  SkipTrie flat(small_cfg());
  // Sparse keys leaving several shards empty, so predecessor/successor must
  // scan across empty shards.
  const std::vector<uint64_t> keys = {3,       (1ull << 17) + 5,
                                      1 << 18, (3ull << 17) + 1234,
                                      7 << 16, (1ull << kBits) - 1};
  for (uint64_t k : keys) {
    EXPECT_TRUE(sharded.insert(k));
    EXPECT_TRUE(flat.insert(k));
  }
  EXPECT_EQ(sharded.min_key(), flat.min_key());
  EXPECT_EQ(sharded.max_key_present(), flat.max_key_present());
  Xoshiro256 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t q = rng.next_below(1ull << kBits);
    EXPECT_EQ(sharded.predecessor(q), flat.predecessor(q)) << q;
    EXPECT_EQ(sharded.strict_predecessor(q), flat.strict_predecessor(q)) << q;
    EXPECT_EQ(sharded.successor(q), flat.successor(q)) << q;
    EXPECT_EQ(sharded.contains(q), flat.contains(q)) << q;
  }
  // Empty-engine edge.
  ShardedEngine empty(4, small_cfg());
  EXPECT_FALSE(empty.predecessor(123).has_value());
  EXPECT_FALSE(empty.successor(123).has_value());
  EXPECT_FALSE(empty.min_key().has_value());
  EXPECT_FALSE(empty.max_key_present().has_value());
}

// --- Batch equivalence ------------------------------------------------------

// Runs the same scripted (op, batch) sequence against a sharded and an
// unsharded engine and requires byte-identical result arrays.
void run_batch_equivalence(uint32_t shards, uint64_t seed) {
  ShardedEngine sharded(shards, small_cfg());
  SkipTrie flat(small_cfg());
  Xoshiro256 rng(seed);

  for (int round = 0; round < 60; ++round) {
    // Batch shapes: empty, tiny, large; sorted, unsorted; with duplicates.
    const size_t n = static_cast<size_t>(rng.next_below(97));
    std::vector<uint64_t> keys;
    keys.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      uint64_t k = rng.next_below(1ull << kBits);
      if (!keys.empty() && rng.next_below(4) == 0) {
        k = keys[rng.next_below(keys.size())];  // forced duplicate
      }
      keys.push_back(k);
    }
    if (rng.next_below(3) == 0) std::sort(keys.begin(), keys.end());

    const uint32_t op = static_cast<uint32_t>(rng.next_below(4));
    if (op == 3) {
      std::vector<std::optional<uint64_t>> rs(n), rf(n);
      const size_t hs = sharded.predecessor_batch(keys.data(), n, rs.data());
      const size_t hf = flat.predecessor_batch(keys.data(), n, rf.data());
      EXPECT_EQ(hs, hf) << "round " << round;
      EXPECT_EQ(rs, rf) << "round " << round;
    } else {
      std::vector<uint8_t> rs(n, 0xee), rf(n, 0xee);
      size_t hs = 0, hf = 0;
      switch (op) {
        case 0:
          hs = sharded.insert_batch(keys.data(), n, rs.data());
          hf = flat.insert_batch(keys.data(), n, rf.data());
          break;
        case 1:
          hs = sharded.erase_batch(keys.data(), n, rs.data());
          hf = flat.erase_batch(keys.data(), n, rf.data());
          break;
        case 2:
          hs = sharded.contains_batch(keys.data(), n, rs.data());
          hf = flat.contains_batch(keys.data(), n, rf.data());
          break;
      }
      EXPECT_EQ(hs, hf) << "round " << round;
      EXPECT_EQ(rs, rf) << "round " << round;  // values AND input order
    }
  }
  EXPECT_EQ(sharded.size(), flat.size());
}

TEST(ShardBatch, ByteIdenticalToUnshardedAt2Shards) {
  run_batch_equivalence(2, 0xfeed0001);
}
TEST(ShardBatch, ByteIdenticalToUnshardedAt8Shards) {
  run_batch_equivalence(8, 0xfeed0002);
}
TEST(ShardBatch, ByteIdenticalToUnshardedAt1Shard) {
  run_batch_equivalence(1, 0xfeed0003);
}

TEST(ShardBatch, EmptyAndNullResultBatches) {
  ShardedEngine e(4, small_cfg());
  EXPECT_EQ(e.insert_batch(nullptr, 0, nullptr), 0u);
  EXPECT_EQ(e.predecessor_batch(nullptr, 0, nullptr), 0u);
  // results == nullptr still returns the hit count.
  std::vector<uint64_t> keys = {5, 9, 5, (1ull << 19) + 3};
  EXPECT_EQ(e.insert_batch(keys.data(), keys.size(), nullptr), 3u);
  EXPECT_EQ(e.contains_batch(keys.data(), keys.size(), nullptr), 4u);
  // Predecessor hit count includes cross-shard fallbacks.
  std::vector<uint64_t> qs = {(1ull << 19) + 1, 4};
  EXPECT_EQ(e.predecessor_batch(qs.data(), qs.size(), nullptr), 1u);
}

// --- Stats ------------------------------------------------------------------

TEST(ShardStats, PerShardStatsSumToUnshardedTotals) {
  ShardedEngine sharded(8, small_cfg());
  SkipTrie flat(small_cfg());
  Xoshiro256 rng(0x57a7);
  for (int i = 0; i < 3000; ++i) {
    const uint64_t k = rng.next_below(1ull << kBits);
    sharded.insert(k);
    flat.insert(k);
  }
  for (int i = 0; i < 1000; ++i) {
    const uint64_t k = rng.next_below(1ull << kBits);
    sharded.erase(k);
    flat.erase(k);
  }
  // Key-population invariants must agree exactly; distribution-shaped
  // fields (tower heights, trie entries) depend on each shard's narrower
  // universe, so only the additive key counts are compared.
  EXPECT_EQ(sharded.size(), flat.size());
  const SkipTrie::StructureStats agg = sharded.structure_stats();
  const SkipTrie::StructureStats one = flat.structure_stats();
  EXPECT_EQ(agg.keys, one.keys);
  size_t shard_key_sum = 0, shard_size_sum = 0;
  for (uint32_t s = 0; s < sharded.shard_count(); ++s) {
    shard_key_sum += sharded.shard(s).structure_stats().keys;
    shard_size_sum += sharded.shard(s).size();
  }
  EXPECT_EQ(shard_key_sum, agg.keys);
  EXPECT_EQ(shard_size_sum, sharded.size());
}

TEST(ShardStats, ShardBatchCounterCountsSubBatches) {
  std::thread probe([] {
    ShardedEngine e(4, small_cfg());
    tls_counters() = StepCounters{};
    // Keys spanning 3 distinct shards -> exactly 3 sub-batches.
    std::vector<uint64_t> keys = {1, 2, (1ull << 18) + 1, (3ull << 18) + 7};
    e.insert_batch(keys.data(), keys.size(), nullptr);
    EXPECT_EQ(tls_counters().shard_batches, 3u);
    EXPECT_EQ(tls_counters().batch_ops, 3u);  // one engine batch per shard
    EXPECT_EQ(tls_counters().batch_keys, keys.size());
    tls_counters() = StepCounters{};
  });
  probe.join();
}

// --- shards=1 step reproduction ---------------------------------------------
//
// The acceptance bar: a ShardedEngine at shards=1 must report exactly the
// unsharded engine's per-op step counts on the same stream.  Fresh threads
// give both engines cold thread-local finger/cursor state; seed-stable
// tower heights make the structures identical; so every search counter must
// match to the step.
TEST(ShardStats, ShardsEqualOneReproducesUnshardedStepCounts) {
  const auto run = [](auto& engine) {
    StepCounters out;
    std::thread probe([&] {
      Xoshiro256 rng(0xabc123);
      tls_counters() = StepCounters{};
      std::vector<uint64_t> batch;
      for (int round = 0; round < 40; ++round) {
        batch.clear();
        for (int i = 0; i < 64; ++i) {
          batch.push_back(rng.next_below(1ull << kBits));
        }
        engine.insert_batch(batch.data(), batch.size(), nullptr);
        engine.predecessor_batch(batch.data(), batch.size(), nullptr);
        for (int i = 0; i < 16; ++i) {
          engine.predecessor(rng.next_below(1ull << kBits));
          engine.contains(rng.next_below(1ull << kBits));
        }
        engine.erase_batch(batch.data(), batch.size() / 2, nullptr);
      }
      out = tls_counters();
      tls_counters() = StepCounters{};
    });
    probe.join();
    return out;
  };

  SkipTrie flat(small_cfg());
  ShardedEngine one(1, small_cfg());
  const StepCounters cf = run(flat);
  const StepCounters cs = run(one);
  EXPECT_EQ(cs.node_hops, cf.node_hops);
  EXPECT_EQ(cs.hops_top, cf.hops_top);
  EXPECT_EQ(cs.hops_descent, cf.hops_descent);
  EXPECT_EQ(cs.hash_probes, cf.hash_probes);
  EXPECT_EQ(cs.probes_lookup, cf.probes_lookup);
  EXPECT_EQ(cs.probes_chain, cf.probes_chain);
  EXPECT_EQ(cs.probes_binsearch, cf.probes_binsearch);
  EXPECT_EQ(cs.search_steps(), cf.search_steps());
  EXPECT_EQ(cs.total_steps(), cf.total_steps());
  EXPECT_EQ(cs.batch_ops, cf.batch_ops);
  EXPECT_EQ(cs.batch_keys, cf.batch_keys);
  // The only divergence allowed: the pass-through's event counter.
  EXPECT_GT(cs.shard_batches, 0u);
  EXPECT_EQ(cf.shard_batches, 0u);
  EXPECT_EQ(one.size(), flat.size());
}

}  // namespace
}  // namespace skiptrie
