#include "reclaim/ebr.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace skiptrie {
namespace {

struct Tracked {
  explicit Tracked(std::atomic<int>& c) : counter(c) { counter.fetch_add(1); }
  ~Tracked() { counter.fetch_sub(1); }
  std::atomic<int>& counter;
};

TEST(Ebr, RetireIsDeferredUntilDrain) {
  std::atomic<int> live{0};
  EbrDomain dom;
  {
    EbrDomain::Guard g(dom);
    dom.retire_delete(new Tracked(live));
    EXPECT_EQ(live.load(), 1);  // not reclaimed while pinned
  }
  dom.drain();
  EXPECT_EQ(live.load(), 0);
}

TEST(Ebr, DomainDestructorReclaimsEverything) {
  std::atomic<int> live{0};
  {
    EbrDomain dom;
    {
      EbrDomain::Guard g(dom);
      for (int i = 0; i < 100; ++i) dom.retire_delete(new Tracked(live));
    }
  }
  EXPECT_EQ(live.load(), 0);
}

TEST(Ebr, NestedGuardsShareOnePin) {
  EbrDomain dom;
  std::atomic<int> live{0};
  {
    EbrDomain::Guard g1(dom);
    {
      EbrDomain::Guard g2(dom);
      dom.retire_delete(new Tracked(live));
    }
    // Still pinned by g1: the object must not be reclaimed even if epochs
    // advance.
    dom.drain();
    EXPECT_EQ(live.load(), 1);
  }
  dom.drain();
  EXPECT_EQ(live.load(), 0);
}

TEST(Ebr, PinnedReaderBlocksReclamation) {
  EbrDomain dom;
  std::atomic<int> live{0};
  std::atomic<bool> reader_pinned{false};
  std::atomic<bool> release_reader{false};

  std::thread reader([&] {
    EbrDomain::Guard g(dom);
    reader_pinned.store(true);
    while (!release_reader.load()) std::this_thread::yield();
  });
  while (!reader_pinned.load()) std::this_thread::yield();

  {
    EbrDomain::Guard g(dom);
    dom.retire_delete(new Tracked(live));
  }
  // The reader pinned an epoch <= the retire epoch; drain must not reclaim.
  dom.drain();
  EXPECT_EQ(live.load(), 1);

  release_reader.store(true);
  reader.join();
  dom.drain();
  EXPECT_EQ(live.load(), 0);
}

TEST(Ebr, EpochAdvancesWhenQuiescent) {
  EbrDomain dom;
  const uint64_t e0 = dom.global_epoch();
  {
    EbrDomain::Guard g(dom);
    for (int i = 0; i < 200; ++i) {
      dom.retire(
          nullptr, [](void*, void*) {}, nullptr);
    }
  }
  dom.drain();
  EXPECT_GT(dom.global_epoch(), e0);
}

TEST(Ebr, ManyThreadsRetireConcurrently) {
  std::atomic<int> live{0};
  {
    EbrDomain dom;
    std::vector<std::thread> ts;
    for (int t = 0; t < 8; ++t) {
      ts.emplace_back([&] {
        for (int i = 0; i < 2000; ++i) {
          EbrDomain::Guard g(dom);
          dom.retire_delete(new Tracked(live));
        }
      });
    }
    for (auto& th : ts) th.join();
  }
  EXPECT_EQ(live.load(), 0);
}

TEST(Ebr, ExitedThreadsOrphansAreAdopted) {
  std::atomic<int> live{0};
  EbrDomain dom;
  std::thread t([&] {
    EbrDomain::Guard g(dom);
    for (int i = 0; i < 10; ++i) dom.retire_delete(new Tracked(live));
  });
  t.join();  // thread exits with retirements possibly pending
  dom.drain();
  EXPECT_EQ(live.load(), 0);
}

TEST(Ebr, GuardAllowsConcurrentReadersProgress) {
  // Smoke test that pin/unpin from many threads doesn't deadlock or crash.
  EbrDomain dom;
  std::atomic<uint64_t> total{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < 8; ++t) {
    ts.emplace_back([&] {
      uint64_t local = 0;
      for (int i = 0; i < 5000; ++i) {
        EbrDomain::Guard g(dom);
        local++;
      }
      total.fetch_add(local);
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(total.load(), 8u * 5000u);
}

}  // namespace
}  // namespace skiptrie
