// Leaf-chunk subsystem tests (DESIGN.md §7).
//
// Covers the chunk layout invariants in isolation (split at the median,
// merge into the predecessor, sorted-prefix occupancy bitmap), the
// chunking-on/off ablation equivalence the design promises by construction
// (§7.2: chunks are a hint index over the authoritative level-0 list, so
// every observable result must be identical either way — checked over a
// 50k-op mixed workload for both key-traits instantiations), and the two
// races the maintenance protocol must survive: a split racing concurrent
// erases of the keys being moved, and merges racing predecessor queries
// that may be scanning the victim chunk.  Run under
// -DSKIPTRIE_SANITIZE=address|thread; the concurrent cases are the tsan
// targets.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "common/key_traits.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/skiptrie.h"
#include "core/validate.h"
#include "skiplist/leaf.h"

namespace skiptrie {
namespace {

template <typename Traits>
class TypedLeafChunkTest : public ::testing::Test {
 protected:
  using Trie = BasicSkipTrie<Traits>;
  using K = typename Traits::key_type;
  using Chunk = LeafChunkT<Traits>;

  static Config cfg(bool chunking = true) {
    Config c;
    c.leaf_chunking = chunking;
    if constexpr (Traits::kMaxBits > 64) c.universe_bits = 120;
    return c;
  }

  // Strictly monotone embedding; the wide instantiation spreads the key
  // across both machine words so chunk ordering exercises u128 compares.
  static K key(uint64_t k) {
    if constexpr (Traits::kMaxBits > 64) {
      return (K(k) << 56) | K(k);
    } else {
      return K(k);
    }
  }

  // Walk the chunk list and assert every structural invariant validate.cpp
  // checks, plus exact key membership against `expect` (quiescent callers
  // only: chunk contents lag writers only while writers are in flight).
  static void check_chunks_exact(const Trie& t,
                                 const std::set<uint64_t>& expect) {
    const auto* cm = t.engine().leaf_chunks();
    ASSERT_NE(cm, nullptr);
    std::set<uint64_t> indexed;
    uint64_t chunks = 0;
    cm->for_each_chunk([&](const Chunk& ch) {
      ++chunks;
      const uint64_t occ = ch.occ.load(std::memory_order_relaxed);
      const uint32_t n = static_cast<uint32_t>(std::popcount(occ));
      // Sorted-prefix bitmap: occupied slots are exactly 0..n-1.
      EXPECT_EQ(occ, n == 0 ? 0 : (uint64_t(1) << n) - 1);
      for (uint32_t i = 0; i + 1 < n; ++i) {
        EXPECT_TRUE(ch.keys[i].load() < ch.keys[i + 1].load())
            << "chunk " << ch.id << " slots " << i << "," << i + 1;
      }
      for (uint32_t i = 0; i < n; ++i) {
        EXPECT_TRUE(ch.keys[i].load() >= ch.base.load());
        auto* node = ch.nodes[i].load(std::memory_order_relaxed);
        ASSERT_NE(node, nullptr);
        EXPECT_TRUE(node->ikey() == ch.keys[i].load());
        indexed.insert(Traits::low_u64(ch.keys[i].load()));
      }
    });
    EXPECT_EQ(chunks, t.leaf_live_stats().chunks);
    // Quiescent completeness: every present key is indexed, nothing extra.
    std::set<uint64_t> expect_ik;
    for (const uint64_t k : expect)
      expect_ik.insert(Traits::low_u64(typename Traits::ikey_type(
          key(k) + typename Traits::ikey_type(1))));
    EXPECT_EQ(indexed, expect_ik);
  }
};

using LeafTraits = ::testing::Types<U64Traits, Bytes16Traits>;
TYPED_TEST_SUITE(TypedLeafChunkTest, LeafTraits);

// Enough sequential inserts split the head chunk repeatedly; every chunk
// stays sorted with sorted-prefix occupancy and exact membership.
TYPED_TEST(TypedLeafChunkTest, SplitKeepsOrderingAndOccupancy) {
  using Fix = TypedLeafChunkTest<TypeParam>;
  typename Fix::Trie t(Fix::cfg());
  const uint64_t before = tls_counters().chunk_splits;
  std::set<uint64_t> present;
  for (uint64_t k = 0; k < 400; ++k) {
    ASSERT_TRUE(t.insert(Fix::key(k * 7)));
    present.insert(k * 7);
  }
  EXPECT_GT(tls_counters().chunk_splits, before);
  EXPECT_GT(t.leaf_live_stats().chunks, 400 / Fix::Chunk::kKeys / 2);
  Fix::check_chunks_exact(t, present);
  EXPECT_TRUE(validate_structure(t).empty());
}

// Draining a populated structure merges chunks away; survivors keep every
// invariant and the chunk count falls back toward one.
TYPED_TEST(TypedLeafChunkTest, MergeDrainsIntoPredecessor) {
  using Fix = TypedLeafChunkTest<TypeParam>;
  typename Fix::Trie t(Fix::cfg());
  std::set<uint64_t> present;
  for (uint64_t k = 0; k < 400; ++k) {
    ASSERT_TRUE(t.insert(Fix::key(k)));
    present.insert(k);
  }
  const uint64_t chunks_full = t.leaf_live_stats().chunks;
  const uint64_t before = tls_counters().chunk_merges;
  for (uint64_t k = 0; k < 400; ++k) {
    if (k % 16 != 0) {
      ASSERT_TRUE(t.erase(Fix::key(k)));
      present.erase(k);
    }
  }
  EXPECT_GT(tls_counters().chunk_merges, before);
  EXPECT_LT(t.leaf_live_stats().chunks, chunks_full);
  Fix::check_chunks_exact(t, present);
  EXPECT_TRUE(validate_structure(t).empty());
}

// The ablation contract (DESIGN.md §7.2): chunks are a hint index, so a
// chunking-on and a chunking-off instance fed the same 50k-op mixed stream
// must agree on every single result.
TYPED_TEST(TypedLeafChunkTest, AblationEquivalenceMixedWorkload) {
  using Fix = TypedLeafChunkTest<TypeParam>;
  typename Fix::Trie on(Fix::cfg(true));
  typename Fix::Trie off(Fix::cfg(false));
  ASSERT_NE(on.engine().leaf_chunks(), nullptr);
  ASSERT_EQ(off.engine().leaf_chunks(), nullptr);
  Xoshiro256 rng(0x1eafc4a11eafc4a1ull);
  constexpr uint64_t kSpace = 1u << 14;
  for (int i = 0; i < 50000; ++i) {
    const uint64_t k = rng.next() % kSpace;
    const auto x = Fix::key(k);
    switch (rng.next() % 8) {
      case 0:
      case 1:
        ASSERT_EQ(on.insert(x), off.insert(x)) << "op " << i;
        break;
      case 2:
        ASSERT_EQ(on.erase(x), off.erase(x)) << "op " << i;
        break;
      case 3:
      case 4:
        ASSERT_EQ(on.contains(x), off.contains(x)) << "op " << i;
        break;
      default:
        ASSERT_EQ(on.predecessor(x), off.predecessor(x)) << "op " << i;
        break;
    }
  }
  EXPECT_EQ(on.size(), off.size());
  EXPECT_TRUE(validate_structure(on).empty());
}

// --- Concurrent races (the tsan targets) -----------------------------------

// Splits racing erases: one thread inserts an ascending run (forcing splits
// of the same chunks over and over) while another erases keys that may be
// mid-move between split halves.  Afterwards the surviving set must be
// exactly {inserted} \ {erased} and the chunk index must validate.
TEST(LeafChunkConcurrentTest, SplitDuringErase) {
  SkipTrie t;
  constexpr uint64_t kKeys = 20000;
  for (uint64_t k = 0; k < kKeys; k += 2) ASSERT_TRUE(t.insert(k));
  std::atomic<bool> go{false};
  std::thread inserter([&] {
    while (!go.load(std::memory_order_acquire)) {}
    for (uint64_t k = 1; k < kKeys; k += 2) t.insert(k);
  });
  std::thread eraser([&] {
    while (!go.load(std::memory_order_acquire)) {}
    for (uint64_t k = 0; k < kKeys; k += 4) t.erase(k);
  });
  go.store(true, std::memory_order_release);
  inserter.join();
  eraser.join();
  EXPECT_TRUE(validate_structure(t).empty());
  for (uint64_t k = 0; k < kKeys; ++k) {
    const bool expect = (k % 2 == 1) || (k % 4 == 2);
    ASSERT_EQ(t.contains(k), expect) << "key " << k;
  }
}

// Merges racing predecessor queries: an eraser drains dense runs (forcing
// merges that unlink chunks a reader may be scanning) while readers issue
// predecessor queries across the draining region.  Every answer must be a
// key that was plausibly present (never-erased keys must always be found;
// answers are exact against the monotone erase frontier).
TEST(LeafChunkConcurrentTest, MergeDuringPredecessor) {
  SkipTrie t;
  constexpr uint64_t kKeys = 20000;
  constexpr uint64_t kKeep = 512;  // keys 0..kKeep-1 are never erased
  for (uint64_t k = 0; k < kKeys; ++k) ASSERT_TRUE(t.insert(k));
  std::atomic<bool> done{false};
  std::thread eraser([&] {
    for (uint64_t k = kKeys - 1; k >= kKeep; --k) t.erase(k);
    done.store(true, std::memory_order_release);
  });
  std::thread reader([&] {
    Xoshiro256 rng(42);
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t q = rng.next() % kKeys;
      const auto p = t.predecessor(q);
      ASSERT_TRUE(p.has_value());
      ASSERT_LE(*p, q);
      // Keys below the protected prefix are never erased, so a query there
      // must answer exactly; above it the answer is still a real key.
      if (q < kKeep) ASSERT_EQ(*p, q);
    }
  });
  eraser.join();
  reader.join();
  EXPECT_TRUE(validate_structure(t).empty());
  EXPECT_EQ(t.size(), kKeep);
  for (uint64_t k = 0; k < kKeep; ++k) ASSERT_TRUE(t.contains(k));
}

}  // namespace
}  // namespace skiptrie
