#include "common/stats.h"

#include <gtest/gtest.h>

#include <thread>

namespace skiptrie {
namespace {

TEST(Stats, AccumulateAndSubtract) {
  StepCounters a;
  a.node_hops = 10;
  a.hops_top = 4;
  a.hops_descent = 6;
  a.hash_probes = 3;
  a.probes_lookup = 2;
  a.probes_chain = 1;
  a.finger_hits = 7;
  StepCounters b;
  b.node_hops = 4;
  b.hops_top = 1;
  b.hops_descent = 3;
  b.hash_probes = 1;
  b.cas_attempts = 2;
  b.probes_binsearch = 5;
  b.walk_fallbacks = 1;
  b.finger_hits = 2;
  b.finger_misses = 3;
  b.hops_finger_saved = 9;
  a.cursor_reuses = 6;
  a.batch_keys = 32;
  b.cursor_reuses = 4;
  b.cursor_redescends = 2;
  b.batch_ops = 1;
  b.batch_keys = 8;
  a.shard_batches = 3;
  a.service_requests = 5;
  a.queue_depth_sum = 11;
  b.shard_batches = 2;
  b.service_subtasks = 7;
  b.queue_full_waits = 1;
  b.queue_wait_ns = 1500;

  StepCounters sum = a;
  sum += b;
  EXPECT_EQ(sum.node_hops, 14u);
  EXPECT_EQ(sum.hops_top, 5u);
  EXPECT_EQ(sum.hops_descent, 9u);
  EXPECT_EQ(sum.hash_probes, 4u);
  EXPECT_EQ(sum.cas_attempts, 2u);
  EXPECT_EQ(sum.probes_lookup, 2u);
  EXPECT_EQ(sum.probes_chain, 1u);
  EXPECT_EQ(sum.probes_binsearch, 5u);
  EXPECT_EQ(sum.walk_fallbacks, 1u);
  EXPECT_EQ(sum.finger_hits, 9u);
  EXPECT_EQ(sum.finger_misses, 3u);
  EXPECT_EQ(sum.hops_finger_saved, 9u);
  EXPECT_EQ(sum.cursor_reuses, 10u);
  EXPECT_EQ(sum.cursor_redescends, 2u);
  EXPECT_EQ(sum.batch_ops, 1u);
  EXPECT_EQ(sum.batch_keys, 40u);
  EXPECT_EQ(sum.shard_batches, 5u);
  EXPECT_EQ(sum.service_requests, 5u);
  EXPECT_EQ(sum.service_subtasks, 7u);
  EXPECT_EQ(sum.queue_full_waits, 1u);
  EXPECT_EQ(sum.queue_depth_sum, 11u);
  EXPECT_EQ(sum.queue_wait_ns, 1500u);

  const StepCounters diff = sum - b;
  EXPECT_EQ(diff.node_hops, a.node_hops);
  EXPECT_EQ(diff.hops_top, a.hops_top);
  EXPECT_EQ(diff.hops_descent, a.hops_descent);
  EXPECT_EQ(diff.hash_probes, a.hash_probes);
  EXPECT_EQ(diff.cas_attempts, 0u);
  EXPECT_EQ(diff.probes_binsearch, 0u);
  EXPECT_EQ(diff.walk_fallbacks, 0u);
  EXPECT_EQ(diff.probes_lookup, a.probes_lookup);
  EXPECT_EQ(diff.finger_hits, a.finger_hits);
  EXPECT_EQ(diff.finger_misses, 0u);
  EXPECT_EQ(diff.hops_finger_saved, 0u);
  EXPECT_EQ(diff.cursor_reuses, a.cursor_reuses);
  EXPECT_EQ(diff.cursor_redescends, 0u);
  EXPECT_EQ(diff.batch_ops, 0u);
  EXPECT_EQ(diff.batch_keys, a.batch_keys);
  EXPECT_EQ(diff.shard_batches, a.shard_batches);
  EXPECT_EQ(diff.service_requests, a.service_requests);
  EXPECT_EQ(diff.service_subtasks, 0u);
  EXPECT_EQ(diff.queue_full_waits, 0u);
  EXPECT_EQ(diff.queue_depth_sum, a.queue_depth_sum);
  EXPECT_EQ(diff.queue_wait_ns, 0u);
}

// Schema-v5 counters are queue/routing events, not shared-memory steps:
// they must never leak into the paper-bound sums (a ShardedEngine at
// shards=1 has to report exactly the unsharded step counts).
TEST(Stats, ShardAndServiceCountersAreNotSteps) {
  StepCounters c;
  c.node_hops = 5;
  c.hash_probes = 2;
  const uint64_t search = c.search_steps();
  const uint64_t total = c.total_steps();
  c.shard_batches = 100;
  c.service_requests = 100;
  c.service_subtasks = 100;
  c.queue_full_waits = 100;
  c.queue_depth_sum = 100;
  c.queue_wait_ns = 100;
  EXPECT_EQ(c.search_steps(), search);
  EXPECT_EQ(c.total_steps(), total);
}

TEST(Stats, SearchStepsDefinition) {
  StepCounters c;
  c.node_hops = 5;
  c.hash_probes = 2;
  c.back_steps = 1;
  c.prev_steps = 1;
  c.cas_attempts = 100;  // writes are not search steps
  // Attribution counters decompose hash_probes / node_hops / restarts;
  // adding them to the sums would double count (DESIGN.md §5.1, §5.2).
  c.probes_lookup = 2;
  c.probes_chain = 1;
  c.probes_binsearch = 2;
  c.walk_fallbacks = 3;
  c.hops_top = 2;
  c.hops_descent = 3;
  c.finger_hits = 1;
  c.finger_misses = 1;
  c.hops_finger_saved = 4;
  EXPECT_EQ(c.search_steps(), 9u);
  EXPECT_GT(c.total_steps(), c.search_steps());
  EXPECT_EQ(c.total_steps(), 109u);
}

TEST(Stats, ThreadLocalIsolation) {
  tls_counters().node_hops = 0;
  tls_counters().node_hops += 7;
  uint64_t other_thread_value = 1;
  std::thread t([&] { other_thread_value = tls_counters().node_hops; });
  t.join();
  EXPECT_EQ(other_thread_value, 0u);
  EXPECT_EQ(tls_counters().node_hops, 7u);
  tls_counters() = StepCounters{};
}

TEST(Stats, SnapshotDelta) {
  tls_counters() = StepCounters{};
  const StepCounters before = snapshot_counters();
  tls_counters().node_hops += 3;
  tls_counters().restarts += 1;
  const StepCounters delta = snapshot_counters() - before;
  EXPECT_EQ(delta.node_hops, 3u);
  EXPECT_EQ(delta.restarts, 1u);
  tls_counters() = StepCounters{};
}

}  // namespace
}  // namespace skiptrie
