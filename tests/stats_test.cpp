#include "common/stats.h"

#include <gtest/gtest.h>

#include <thread>

namespace skiptrie {
namespace {

TEST(Stats, AccumulateAndSubtract) {
  StepCounters a;
  a.node_hops = 10;
  a.hash_probes = 3;
  StepCounters b;
  b.node_hops = 4;
  b.hash_probes = 1;
  b.cas_attempts = 2;

  StepCounters sum = a;
  sum += b;
  EXPECT_EQ(sum.node_hops, 14u);
  EXPECT_EQ(sum.hash_probes, 4u);
  EXPECT_EQ(sum.cas_attempts, 2u);

  const StepCounters diff = sum - b;
  EXPECT_EQ(diff.node_hops, a.node_hops);
  EXPECT_EQ(diff.hash_probes, a.hash_probes);
  EXPECT_EQ(diff.cas_attempts, 0u);
}

TEST(Stats, SearchStepsDefinition) {
  StepCounters c;
  c.node_hops = 5;
  c.hash_probes = 2;
  c.back_steps = 1;
  c.prev_steps = 1;
  c.cas_attempts = 100;  // writes are not search steps
  EXPECT_EQ(c.search_steps(), 9u);
  EXPECT_GT(c.total_steps(), c.search_steps());
}

TEST(Stats, ThreadLocalIsolation) {
  tls_counters().node_hops = 0;
  tls_counters().node_hops += 7;
  uint64_t other_thread_value = 1;
  std::thread t([&] { other_thread_value = tls_counters().node_hops; });
  t.join();
  EXPECT_EQ(other_thread_value, 0u);
  EXPECT_EQ(tls_counters().node_hops, 7u);
  tls_counters() = StepCounters{};
}

TEST(Stats, SnapshotDelta) {
  tls_counters() = StepCounters{};
  const StepCounters before = snapshot_counters();
  tls_counters().node_hops += 3;
  tls_counters().restarts += 1;
  const StepCounters delta = snapshot_counters() - before;
  EXPECT_EQ(delta.node_hops, 3u);
  EXPECT_EQ(delta.restarts, 1u);
  tls_counters() = StepCounters{};
}

}  // namespace
}  // namespace skiptrie
