// Black-box SkipTrie API tests, including model checking against std::set.
#include "core/skiptrie.h"

#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "common/bitops.h"
#include "common/random.h"
#include "core/validate.h"

namespace skiptrie {
namespace {

Config small_cfg(uint32_t bits = 16) {
  Config c;
  c.universe_bits = bits;
  return c;
}

TEST(SkipTrie, EmptyBehaviour) {
  SkipTrie t(small_cfg());
  EXPECT_FALSE(t.contains(0));
  EXPECT_FALSE(t.contains(12345));
  EXPECT_FALSE(t.predecessor(9999).has_value());
  EXPECT_FALSE(t.successor(0).has_value());
  EXPECT_FALSE(t.erase(7));
  EXPECT_EQ(t.size(), 0u);
}

TEST(SkipTrie, InsertContainsErase) {
  SkipTrie t(small_cfg());
  EXPECT_TRUE(t.insert(42));
  EXPECT_TRUE(t.contains(42));
  EXPECT_FALSE(t.insert(42));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.erase(42));
  EXPECT_FALSE(t.contains(42));
  EXPECT_FALSE(t.erase(42));
  EXPECT_EQ(t.size(), 0u);
}

TEST(SkipTrie, PredecessorInclusiveSemantics) {
  SkipTrie t(small_cfg());
  t.insert(10);
  t.insert(20);
  t.insert(30);
  EXPECT_EQ(t.predecessor(5), std::nullopt);
  EXPECT_EQ(t.predecessor(10).value(), 10u);   // inclusive
  EXPECT_EQ(t.predecessor(15).value(), 10u);
  EXPECT_EQ(t.predecessor(20).value(), 20u);
  EXPECT_EQ(t.predecessor(25).value(), 20u);
  EXPECT_EQ(t.predecessor(30).value(), 30u);
  EXPECT_EQ(t.predecessor(65535).value(), 30u);
}

TEST(SkipTrie, StrictPredecessor) {
  SkipTrie t(small_cfg());
  t.insert(10);
  t.insert(20);
  EXPECT_EQ(t.strict_predecessor(10), std::nullopt);
  EXPECT_EQ(t.strict_predecessor(11).value(), 10u);
  EXPECT_EQ(t.strict_predecessor(20).value(), 10u);
  EXPECT_EQ(t.strict_predecessor(21).value(), 20u);
}

TEST(SkipTrie, SuccessorSemantics) {
  SkipTrie t(small_cfg());
  t.insert(10);
  t.insert(20);
  EXPECT_EQ(t.successor(0).value(), 10u);
  EXPECT_EQ(t.successor(9).value(), 10u);
  EXPECT_EQ(t.successor(10).value(), 20u);  // strictly greater
  EXPECT_EQ(t.successor(20), std::nullopt);
}

TEST(SkipTrie, BoundaryKeys) {
  SkipTrie t(small_cfg(16));
  const uint64_t kMax = t.max_key();
  EXPECT_EQ(kMax, 0xffffu);
  EXPECT_TRUE(t.insert(0));
  EXPECT_TRUE(t.insert(kMax));
  EXPECT_TRUE(t.contains(0));
  EXPECT_TRUE(t.contains(kMax));
  EXPECT_EQ(t.predecessor(0).value(), 0u);
  EXPECT_EQ(t.predecessor(kMax).value(), kMax);
  EXPECT_EQ(t.strict_predecessor(kMax).value(), 0u);
  EXPECT_EQ(t.successor(0).value(), kMax);
  EXPECT_TRUE(t.erase(0));
  EXPECT_TRUE(t.erase(kMax));
}

TEST(SkipTrie, DenseRange) {
  SkipTrie t(small_cfg());
  for (uint64_t k = 100; k < 200; ++k) EXPECT_TRUE(t.insert(k));
  EXPECT_EQ(t.size(), 100u);
  for (uint64_t k = 100; k < 200; ++k) {
    EXPECT_TRUE(t.contains(k));
    EXPECT_EQ(t.predecessor(k).value(), k);
    if (k > 100) {
      EXPECT_EQ(t.strict_predecessor(k).value(), k - 1);
    }
  }
  for (uint64_t k = 100; k < 200; k += 2) EXPECT_TRUE(t.erase(k));
  for (uint64_t k = 100; k < 200; ++k) {
    EXPECT_EQ(t.contains(k), k % 2 == 1);
  }
  EXPECT_EQ(t.predecessor(150).value(), 149u);
}

TEST(SkipTrie, StructureValidatesAfterChurn) {
  SkipTrie t(small_cfg());
  Xoshiro256 rng(17);
  for (int i = 0; i < 4000; ++i) {
    const uint64_t k = rng.next_below(1u << 12);
    if (rng.next() & 1) {
      t.insert(k);
    } else {
      t.erase(k);
    }
  }
  const auto errors = validate_structure(t);
  EXPECT_TRUE(errors.empty()) << errors.size() << " violations, first: "
                              << (errors.empty() ? "" : errors.front());
}

TEST(SkipTrie, ModelCheckAgainstStdSet) {
  SkipTrie t(small_cfg());
  std::set<uint64_t> ref;
  Xoshiro256 rng(23);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t k = rng.next_below(1u << 10);
    switch (rng.next_below(4)) {
      case 0:
        ASSERT_EQ(t.insert(k), ref.insert(k).second) << "insert " << k;
        break;
      case 1:
        ASSERT_EQ(t.erase(k), ref.erase(k) > 0) << "erase " << k;
        break;
      case 2:
        ASSERT_EQ(t.contains(k), ref.count(k) > 0) << "contains " << k;
        break;
      default: {
        auto it = ref.upper_bound(k);
        std::optional<uint64_t> expect;
        if (it != ref.begin()) expect = *std::prev(it);
        ASSERT_EQ(t.predecessor(k), expect) << "pred " << k;
        break;
      }
    }
  }
  EXPECT_EQ(t.size(), ref.size());
}

TEST(SkipTrie, SizeTracksInsertErase) {
  SkipTrie t(small_cfg());
  for (uint64_t k = 0; k < 500; ++k) t.insert(k * 3);
  EXPECT_EQ(t.size(), 500u);
  for (uint64_t k = 0; k < 250; ++k) t.erase(k * 3);
  EXPECT_EQ(t.size(), 250u);
}

TEST(SkipTrie, StructureStatsSaneAfterFill) {
  SkipTrie t(small_cfg(32));
  Xoshiro256 rng(5);
  const size_t n = 20000;
  std::set<uint64_t> keys;
  while (keys.size() < n) {
    const uint64_t k = rng.next_below(1ull << 32);
    if (keys.insert(k).second) t.insert(k);
  }
  const auto s = t.structure_stats();
  EXPECT_EQ(s.keys, n);
  // Truncated levels thin by ~1/2 per level.
  for (uint32_t l = 1; l <= ceil_log2(32); ++l) {
    EXPECT_LT(s.level_counts[l], s.level_counts[l - 1]);
  }
  // Top density ~ n/32; allow generous slack (binomial tails).
  EXPECT_GT(s.top_count, n / 32 / 2);
  EXPECT_LT(s.top_count, n / 32 * 2);
  // Trie entries exist for every top key; space is O(m).
  EXPECT_GE(s.trie_entries, s.top_count);
  EXPECT_GT(s.arena_bytes, n * sizeof(Node) / 2);
}

TEST(SkipTrie, CasFallbackModeFullSemantics) {
  Config c = small_cfg();
  c.dcss_mode = DcssMode::kCasFallback;
  SkipTrie t(c);
  std::set<uint64_t> ref;
  Xoshiro256 rng(31);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t k = rng.next_below(1u << 10);
    if (rng.next() & 1) {
      ASSERT_EQ(t.insert(k), ref.insert(k).second);
    } else {
      ASSERT_EQ(t.erase(k), ref.erase(k) > 0);
    }
  }
  const auto errors = validate_structure(t);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
}

TEST(SkipTrie, UniverseBits64) {
  Config c = small_cfg(64);
  SkipTrie t(c);
  const uint64_t big = 0xfedcba9876543210ull;
  EXPECT_TRUE(t.insert(big));
  EXPECT_TRUE(t.insert(1));
  EXPECT_TRUE(t.contains(big));
  EXPECT_EQ(t.predecessor(big).value(), big);
  EXPECT_EQ(t.strict_predecessor(big).value(), 1u);
  EXPECT_EQ(t.predecessor(t.max_key()).value(), big);
}

TEST(SkipTrie, MinimalUniverse) {
  Config c = small_cfg(4);  // keys 0..15
  SkipTrie t(c);
  for (uint64_t k = 0; k < 16; ++k) EXPECT_TRUE(t.insert(k));
  for (uint64_t k = 0; k < 16; ++k) EXPECT_TRUE(t.contains(k));
  for (uint64_t k = 1; k < 16; ++k) {
    EXPECT_EQ(t.strict_predecessor(k).value(), k - 1);
  }
  const auto errors = validate_structure(t);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
}

}  // namespace
}  // namespace skiptrie
