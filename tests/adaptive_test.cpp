// Distribution-adaptive tower heights (DESIGN.md §8).
//
// Three layers of coverage:
//   1. AdaptiveHeightManager unit tests — sketch counting/decay/aging, the
//      threshold math (§8.2), the striped latches and the promotion
//      registry's record/scan/drop cycle.
//   2. Policy-through-structure tests on BasicSkipTrie — promotions observed
//      under a skewed read stream, demotions under hot-set drift, the
//      structural validator staying green throughout, and batch queries
//      staying correct while a concurrent reader drives height changes.
//   3. The ablation contract: with identical operation streams, adaptive on
//      and off return identical results operation for operation (50k mixed
//      ops, both KeyTraits) — adaptation is a layout policy, never a
//      semantic change.
//
// Everything here is deterministic per thread (fixed LCG seeds, fixed
// sampling cadence); the concurrent tests assert invariants, not schedules,
// and are certified under -DSKIPTRIE_SANITIZE=address|thread by CI.
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "common/key_traits.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/skiptrie.h"
#include "core/validate.h"
#include "skiplist/adaptive.h"

namespace skiptrie {
namespace {

// --- 1. Manager unit tests --------------------------------------------------

TEST(AdaptiveManager, NoteCountsAndCountOfReads) {
  AdaptiveHeightManager m;
  const uint64_t fp = (7ull << 32) | 5;  // tag 7, slot 5
  EXPECT_EQ(m.count_of(fp), 0u);
  for (uint32_t i = 1; i <= 10; ++i) EXPECT_EQ(m.note(fp), i);
  EXPECT_EQ(m.count_of(fp), 10u);
  EXPECT_EQ(m.total(), 10u);
}

TEST(AdaptiveManager, ConflictingTagsDecayThenTakeOver) {
  AdaptiveHeightManager m;
  const uint64_t a = (1ull << 32) | 9;  // tag 1, slot 9
  const uint64_t b = (2ull << 32) | 9;  // tag 2, same slot
  m.note(a);
  m.note(a);                  // a: 2
  EXPECT_EQ(m.note(b), 0u);   // decays a to 1, b not resident yet
  EXPECT_EQ(m.count_of(a), 1u);
  EXPECT_EQ(m.count_of(b), 0u);
  EXPECT_EQ(m.note(b), 1u);   // a reaches 0: slot taken over
  EXPECT_EQ(m.count_of(b), 1u);
  EXPECT_EQ(m.count_of(a), 0u);
}

TEST(AdaptiveManager, AgingHalvesCountsAndTotalAtCap) {
  AdaptiveHeightManager m;
  const uint64_t hot = (7ull << 32) | 5;     // slot 5
  const uint64_t filler = (9ull << 32) | 6;  // slot 6, never collides
  for (int i = 0; i < 100; ++i) m.note(hot);
  const uint64_t to_cap = AdaptiveHeightManager::kAgeCap - 100;
  for (uint64_t i = 0; i < to_cap; ++i) m.note(filler);
  // The note that reached kAgeCap aged the sketch: everything halved.
  EXPECT_EQ(m.count_of(hot), 50u);
  EXPECT_EQ(m.total(), AdaptiveHeightManager::kAgeCap / 2);
}

TEST(AdaptiveManager, DesiredHeightThresholdMath) {
  using M = AdaptiveHeightManager;
  // Below the absolute floor nothing promotes, whatever the total.
  EXPECT_EQ(M::desired_height(M::kMinCount - 1, 0, 0, 5), 0u);
  // At the floor with a tiny total, the top threshold (total >> 8 == 0) is
  // met: straight to the top.
  EXPECT_EQ(M::desired_height(M::kMinCount, 0, 0, 5), 5u);
  // theta(l) = 2^-(8 + top - l): with total = 2^12 and top = 5 the level
  // thresholds are 16 (l=5), 8 (l=4), 4 (l=3), ...
  const uint64_t total = 1ull << 12;
  EXPECT_EQ(M::desired_height(16, total, 0, 5), 5u);
  EXPECT_EQ(M::desired_height(8, total, 0, 5), 4u);
  EXPECT_EQ(M::desired_height(4, total, 0, 5), 3u);
  // base_h floors the answer (an already-mid tower never "demotes" here).
  EXPECT_EQ(M::desired_height(4, total, 4, 5), 4u);
}

TEST(AdaptiveManager, IsColdAppliesHysteresis) {
  using M = AdaptiveHeightManager;
  // keep = total >> (8 + (top - cur_h) + 2); cur_h = top = 5, total = 2^12:
  // keep = 4.  kMinCount is an independent floor.
  const uint64_t total = 1ull << 12;
  EXPECT_TRUE(M::is_cold(3, total, 5, 5));    // below kMinCount
  EXPECT_FALSE(M::is_cold(4, total, 5, 5));   // meets keep exactly
  EXPECT_TRUE(M::is_cold(5, 1ull << 13, 5, 5));   // keep = 8
  EXPECT_FALSE(M::is_cold(16, 1ull << 13, 5, 5));
}

TEST(AdaptiveManager, LatchStripesExcludeAndRelease) {
  AdaptiveHeightManager m;
  const uint64_t fp = 42;
  EXPECT_TRUE(m.try_latch(fp));
  EXPECT_FALSE(m.try_latch(fp));  // same stripe busy
  m.unlatch(fp);
  EXPECT_TRUE(m.try_latch(fp));
  m.unlatch(fp);
}

TEST(AdaptiveManager, RegistryRecordScanDrop) {
  AdaptiveHeightManager m;
  int dummy = 0;
  AdaptiveHeightManager::Promoted out;
  // Empty registry: a full sweep finds nothing.
  EXPECT_FALSE(m.next_demote_candidate(&out, 2048));
  m.record_promoted(0xabcdef0123ull, &dummy, 2);
  ASSERT_TRUE(m.next_demote_candidate(&out, 2048));
  EXPECT_EQ(out.fp, 0xabcdef0123ull);
  EXPECT_EQ(out.root, &dummy);
  EXPECT_EQ(out.base_h, 2u);
  m.drop_promoted(&dummy);
  EXPECT_FALSE(m.next_demote_candidate(&out, 2048));
}

// --- 2. Policy through the structure ----------------------------------------

// Deterministic mixed-congruential stream (not std::rand: reproducible).
struct Lcg {
  uint64_t s;
  explicit Lcg(uint64_t seed) : s(seed) {}
  uint64_t next() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s >> 16;
  }
};

TEST(AdaptiveTrie, SkewedReadsPromoteHotKeysAndStayValid) {
  Config c;
  c.universe_bits = 20;
  c.adaptive_heights = true;  // explicit: the noadapt CI legs flip the default
  SkipTrie t(c);
  for (uint64_t k = 0; k < 1024; ++k) ASSERT_TRUE(t.insert(k * 3));
  const uint64_t hot = 501 * 3;
  // ~2^12 reads => ~2^8 samples of the hot fingerprint; the promotion
  // threshold (max(total >> 8, kMinCount)) falls within the first hundred.
  for (int i = 0; i < 4096; ++i) ASSERT_TRUE(t.contains(hot));
  const StructureLiveStats s = t.structure_live_stats();
  EXPECT_GE(s.promotions, 1u);
  EXPECT_EQ(s.keys, 1024u);
  // The structure stays fully legal after promotion (tower contiguity,
  // trie coverage of every top node, prev-chain sanity ...).
  EXPECT_TRUE(validate_structure(t).empty());
  // And the promoted key still answers queries exactly.
  EXPECT_TRUE(t.contains(hot));
  EXPECT_FALSE(t.contains(hot + 1));
  ASSERT_TRUE(t.predecessor(hot + 1).has_value());
  EXPECT_EQ(*t.predecessor(hot + 1), hot);
  EXPECT_EQ(*t.successor(hot), hot + 3);
}

TEST(AdaptiveTrie, HotSetDriftEventuallyDemotes) {
  Config c;
  c.universe_bits = 22;
  c.adaptive_heights = true;
  SkipTrie t(c);
  for (uint64_t k = 0; k < 4096; ++k) ASSERT_TRUE(t.insert(k));
  // Rotate the hot set: each phase hammers 48 fresh keys until they promote;
  // each promotion pays for a 2-probe registry scan, so earlier phases' now-
  // cold toppers are found and demoted as the cursor sweeps the registry
  // (bounded amortized rotation, DESIGN.md §8.1).  Earlier-phase counts decay
  // by sketch aging, so the is_cold hysteresis eventually passes.
  AdaptiveHeightManager* am = t.adaptive();
  ASSERT_NE(am, nullptr);
  for (int phase = 0; phase < 24 && am->demotions() == 0; ++phase) {
    for (int j = 0; j < 48; ++j) {
      const uint64_t k = static_cast<uint64_t>(phase) * 48 + j;
      for (int r = 0; r < 512; ++r) ASSERT_TRUE(t.contains(k));
    }
  }
  const StructureLiveStats s = t.structure_live_stats();
  EXPECT_GT(s.promotions, 0u);
  EXPECT_GT(s.demotions, 0u);
  EXPECT_TRUE(validate_structure(t).empty());
}

TEST(AdaptiveTrie, PromotionsRaceEraseAndReinsertWithoutCorruption) {
  // The invariant under concurrent erase (DESIGN.md §8.3): promotion raises
  // are DCSS-guarded on the stop word and validated by pointer identity, so
  // a promote racing an erase either completes before the claim or dies
  // cleanly — never resurrects an erased key.  asan/tsan CI legs certify the
  // reclamation side.
  Config c;
  c.universe_bits = 20;
  c.adaptive_heights = true;
  SkipTrie t(c);
  constexpr uint64_t kHot = 16;
  for (uint64_t k = 0; k < 512; ++k) ASSERT_TRUE(t.insert(k));
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (uint64_t k = 0; k < kHot; ++k) t.contains(k * 7);
    }
  });
  std::thread writer([&] {
    for (int round = 0; round < 400; ++round) {
      for (uint64_t k = 0; k < kHot; ++k) t.erase(k * 7);
      for (uint64_t k = 0; k < kHot; ++k) ASSERT_TRUE(t.insert(k * 7));
    }
    stop.store(true, std::memory_order_relaxed);
  });
  reader.join();
  writer.join();
  // Writer's last action reinserted every hot key.
  for (uint64_t k = 0; k < kHot; ++k) EXPECT_TRUE(t.contains(k * 7));
  EXPECT_EQ(t.structure_live_stats().keys, 512u);
  EXPECT_TRUE(validate_structure(t).empty());
}

TEST(AdaptiveTrie, BatchBracketsSurviveConcurrentHeightChanges) {
  // Batched queries park a DescentCursor between keys; a concurrent
  // promotion/demotion changes tower heights under it.  The cursor's reuse
  // screen must keep every answer exact regardless (DESIGN.md §8.3).
  Config c;
  c.universe_bits = 20;
  c.adaptive_heights = true;
  SkipTrie t(c);
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 2048; ++k) keys.push_back(k * 5 + 2);
  for (const uint64_t k : keys) ASSERT_TRUE(t.insert(k));
  std::vector<uint64_t> probes;  // alternating hits and misses
  for (uint64_t k = 0; k < 2048; ++k) {
    probes.push_back(k * 5 + 2);
    probes.push_back(k * 5 + 3);
  }
  std::atomic<bool> stop{false};
  std::thread heater([&] {
    Lcg rng(0xc0ffee);
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t hot = keys[rng.next() & 15];  // 16-key hot set
      for (int i = 0; i < 64; ++i) t.contains(hot);
    }
  });
  std::vector<uint8_t> has(probes.size());
  std::vector<std::optional<uint64_t>> pred(probes.size());
  for (int round = 0; round < 50; ++round) {
    t.contains_batch(probes, has.data());
    t.predecessor_batch(probes, pred.data());
    for (size_t i = 0; i < probes.size(); ++i) {
      ASSERT_EQ(static_cast<bool>(has[i]), (probes[i] - 2) % 5 == 0) << i;
      const uint64_t expect = probes[i] - ((probes[i] - 2) % 5 == 0 ? 0 : 1);
      ASSERT_TRUE(pred[i].has_value()) << i;
      ASSERT_EQ(*pred[i], expect) << i;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  heater.join();
  EXPECT_GT(t.structure_live_stats().promotions, 0u);
  EXPECT_TRUE(validate_structure(t).empty());
}

// --- 3. Ablation equivalence (both KeyTraits) -------------------------------

template <typename Traits>
class TypedAblationTest : public ::testing::Test {
 protected:
  using Trie = BasicSkipTrie<Traits>;
  using K = typename Traits::key_type;

  static Config cfg(bool adaptive) {
    Config c;
    if constexpr (Traits::kMaxBits > 64) c.universe_bits = 120;
    c.adaptive_heights = adaptive;
    return c;
  }
  // Strictly monotone embedding (wide keys overflow 64 bits, like
  // batch_test).
  static K key(uint64_t k) {
    if constexpr (Traits::kMaxBits > 64) {
      return (K(k) << 56) | K(k);
    } else {
      return K(k);
    }
  }
};

using AblationTraits = ::testing::Types<U64Traits, Bytes16Traits>;
TYPED_TEST_SUITE(TypedAblationTest, AblationTraits);

TYPED_TEST(TypedAblationTest, FiftyKOpReplayMatchesAdaptiveOff) {
  // The ablation contract from ISSUE/DESIGN.md §8: identical op streams
  // return identical results with adaptation on and off.  The stream is
  // skewed (1-in-4 ops target a 16-key hot set) so the adaptive run really
  // does promote, and includes inserts/erases so promoted towers get torn
  // down mid-run.
  using Fix = TypedAblationTest<TypeParam>;
  using K = typename Fix::K;
  typename Fix::Trie on(Fix::cfg(true)), off(Fix::cfg(false));
  constexpr uint64_t kSpace = 4096;
  Lcg rng(0x5eed5eed);
  uint64_t hot_hits = 0;
  for (int i = 0; i < 50000; ++i) {
    const uint64_t r = rng.next();
    const uint64_t idx =
        (r & 3) == 0 ? ((r >> 8) & 15) * 7 : (r >> 8) % kSpace;
    const K k = Fix::key(idx);
    switch ((r >> 4) & 15) {
      case 0:
      case 1:
      case 2: {  // 3/16 insert
        ASSERT_EQ(on.insert(k), off.insert(k)) << "op " << i;
        break;
      }
      case 3:
      case 4: {  // 2/16 erase
        ASSERT_EQ(on.erase(k), off.erase(k)) << "op " << i;
        break;
      }
      case 5:
      case 6:
      case 7: {  // 3/16 predecessor
        ASSERT_TRUE(on.predecessor(k) == off.predecessor(k)) << "op " << i;
        break;
      }
      default: {  // 8/16 contains
        const bool a = on.contains(k), b = off.contains(k);
        ASSERT_EQ(a, b) << "op " << i;
        if (a && (r & 3) == 0) ++hot_hits;
        break;
      }
    }
  }
  // The skew actually exercised the policy: the adaptive run promoted, the
  // control run could not have.
  EXPECT_GT(hot_hits, 0u);
  EXPECT_GT(on.structure_live_stats().promotions, 0u);
  EXPECT_EQ(off.structure_live_stats().promotions, 0u);
  EXPECT_EQ(on.size(), off.size());
  EXPECT_TRUE(validate_structure(on).empty());
  EXPECT_TRUE(validate_structure(off).empty());
}

}  // namespace
}  // namespace skiptrie
