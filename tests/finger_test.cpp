// Fingered-descent subsystem tests (DESIGN.md §3.6).
//
// Covers the SearchFinger bracket cache in isolation (record / try_start /
// validation / eviction), the tls registry's owner-id keying, the engine's
// fingered entry points end to end (hit-rate and probe-skip behaviour on
// repeated targets, hop attribution bookkeeping), the ablation switch, and
// — the regression this PR must pin — a concurrent delete retiring a
// fingered node mid-workload: the finger must fall back to the trie/head
// path without ever dereferencing reclaimed-and-unmapped memory (run under
// -DSKIPTRIE_SANITIZE=address|thread).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "baseline/lockfree_skiplist.h"
#include "core/skiptrie.h"
#include "skiplist/cursor.h"
#include "skiplist/engine.h"
#include "skiplist/finger.h"

namespace skiptrie {
namespace {

// --- SearchFinger in isolation ---------------------------------------------

class FingerUnitTest : public ::testing::Test {
 protected:
  FingerUnitTest()
      : arena_(sizeof(Node), kCacheLine, 1024),
        ctx_{&ebr_, DcssMode::kDcss},
        eng_(ctx_, arena_, 3) {}

  static uint64_t ik(uint64_t k) { return k + 1; }

  SlabArena arena_;
  EbrDomain ebr_;
  DcssContext ctx_;
  SkipListEngine eng_;
};

TEST_F(FingerUnitTest, RecordThenHitAtLowestLevel) {
  EbrDomain::Guard g(ebr_);
  ASSERT_TRUE(eng_.insert(ik(10), eng_.head(3), 3).inserted);
  ASSERT_TRUE(eng_.insert(ik(20), eng_.head(3), 3).inserted);
  Node* n10 = eng_.first_at(0);
  ASSERT_NE(n10, nullptr);
  ASSERT_EQ(n10->ikey(), ik(10));
  Node* n10_top = eng_.first_at(3);
  ASSERT_EQ(n10_top->ikey(), ik(10));

  SearchFinger f;
  f.reset(1, 3);
  f.record(0, n10, ik(10), ik(20), 5);
  f.record(3, n10_top, ik(10), ik(20), 5);

  // x = 15 is inside the (10, 20] bracket at both levels: the lowest wins.
  Node* start = nullptr;
  EXPECT_EQ(f.try_start(ik(15), 0, 5, &start), 0);
  EXPECT_EQ(start, n10);
  // min_level masks the low entry.
  EXPECT_EQ(f.try_start(ik(15), 2, 5, &start), 3);
  EXPECT_EQ(start, n10_top);
  // min_level above every entry: miss.
  EXPECT_EQ(f.try_start(ik(15), 4, 5, &start), SearchFinger::kMiss);
  // Outside the bracket on either side: miss.
  EXPECT_EQ(f.try_start(ik(10), 0, 5, &start), SearchFinger::kMiss);
  EXPECT_EQ(f.try_start(ik(25), 0, 5, &start), SearchFinger::kMiss);
}

TEST_F(FingerUnitTest, ValidationRejectsStaleEntries) {
  EbrDomain::Guard g(ebr_);
  ASSERT_TRUE(eng_.insert(ik(10), eng_.head(3), 1).inserted);
  Node* n10 = eng_.first_at(0);
  ASSERT_NE(n10, nullptr);

  SearchFinger f;
  f.reset(1, 3);
  Node* start = nullptr;

  // Epoch too old: the entry is screened out before any node read.
  f.record(0, n10, ik(10), ik(20), 5);
  EXPECT_EQ(f.try_start(ik(15), 0, 5 + SearchFinger::kMaxEpochLag + 1, &start),
            SearchFinger::kMiss);
  EXPECT_EQ(f.try_start(ik(15), 0, 5, &start), 0);  // fresh again

  // Wrong level: the recorded node is a level-0 node filed at level 2.
  f.invalidate();
  f.record(2, n10, ik(10), ik(20), 5);
  EXPECT_EQ(f.try_start(ik(15), 0, 5, &start), SearchFinger::kMiss);

  // ikey mismatch (models a recycled-to-another-key node).
  f.invalidate();
  f.record(0, n10, ik(11), ik(20), 5);
  EXPECT_EQ(f.try_start(ik(15), 0, 5, &start), SearchFinger::kMiss);

  // Marked node: erase 10, keeping the storage alive (not yet retired).
  f.invalidate();
  f.record(0, n10, ik(10), ik(20), 5);
  auto r = eng_.erase(ik(10), eng_.head(3));
  ASSERT_TRUE(r.erased);
  EXPECT_EQ(f.try_start(ik(15), 0, 5, &start), SearchFinger::kMiss);
  eng_.retire_owned(r);

  // Poisoned storage (after drain the node is recycled in place).
  ebr_.drain();
  EXPECT_EQ(f.try_start(ik(15), 0, 5, &start), SearchFinger::kMiss);
}

TEST_F(FingerUnitTest, ClockEvictionKeepsReferencedEntries) {
  EbrDomain::Guard g(ebr_);
  ASSERT_TRUE(eng_.insert(ik(10), eng_.head(3), 0).inserted);
  Node* n10 = eng_.first_at(0);
  ASSERT_NE(n10, nullptr);

  SearchFinger f;
  f.reset(1, 3);
  f.record(0, n10, ik(10), ik(1000), 5);
  Node* start = nullptr;
  ASSERT_EQ(f.try_start(ik(500), 0, 5, &start), 0);  // sets the ref bit

  // Flood the row with more distinct brackets than it has ways; the
  // referenced hot entry must survive one full clock revolution.
  for (uint64_t i = 0; i < SearchFinger::kWays; ++i) {
    f.record(0, n10, ik(2000 + i), ik(2000 + i + 1), 5);
  }
  EXPECT_EQ(f.try_start(ik(500), 0, 5, &start), 0)
      << "referenced entry was evicted by one revolution of cold traffic";
}

TEST_F(FingerUnitTest, TlsFingerIsKeyedByOwnerId) {
  SearchFinger& a = tls_finger<U64Traits>(1001, 3);
  SearchFinger& b = tls_finger<U64Traits>(1002, 3);
  EXPECT_NE(&a, &b);
  EXPECT_EQ(&a, &tls_finger<U64Traits>(1001, 3));
  EXPECT_EQ(a.owner(), 1001u);
  EXPECT_EQ(b.owner(), 1002u);

  // Distinct threads get distinct fingers for the same owner.
  SearchFinger* other = nullptr;
  std::thread t([&] { other = &tls_finger<U64Traits>(1001, 3); });
  t.join();
  EXPECT_NE(other, &a);
}

// --- Engine-level behaviour -------------------------------------------------

TEST(FingerEngineTest, RepeatedQueriesHitAndSkipTheFallback) {
  // Repeated queries to one key are exactly what the adaptive-height
  // policy promotes on; its promotion descent would inject hash probes
  // into the window this test pins at zero, so pin the policy off.
  Config cfg;
  cfg.adaptive_heights = false;
  SkipTrie t(cfg);
  for (uint64_t k = 0; k < 512; ++k) t.insert(k * 16);

  // A fresh thread starts with a cold finger (fingers are thread-local),
  // making the first-query miss deterministic; on the main thread the
  // insert pass above may already have seeded servable brackets.
  std::thread probe([&] {
    tls_counters() = StepCounters{};
    EXPECT_EQ(t.predecessor(1000).value(), 992u);
    EXPECT_EQ(tls_counters().finger_hits, 0u);
    EXPECT_EQ(tls_counters().finger_misses, 1u);

    // Warm the same target; with kRecordDepth-deep recording per descent
    // the bracket sinks one cacheable row per repeat, after which every
    // query must hit at level 0 without a single hash probe.
    for (int i = 0; i < 16; ++i) t.predecessor(1000);
    tls_counters() = StepCounters{};
    for (int i = 0; i < 64; ++i) EXPECT_EQ(t.predecessor(1000).value(), 992u);
    const StepCounters& c = tls_counters();
    EXPECT_EQ(c.finger_hits, 64u);
    EXPECT_EQ(c.finger_misses, 0u);
    EXPECT_EQ(c.hash_probes, 0u) << "finger hits must skip lowest_ancestor";
    // A level-0 hit is adjacency-validated: ~1 hop per query.
    EXPECT_LE(c.node_hops, 2u * 64u);
    tls_counters() = StepCounters{};
  });
  probe.join();
}

TEST(FingerEngineTest, HopAttributionSumsToNodeHops) {
  SkipTrie t;
  tls_counters() = StepCounters{};
  for (uint64_t k = 0; k < 2000; ++k) t.insert((k * 2654435761u) % 100000);
  for (uint64_t k = 0; k < 2000; ++k) t.predecessor(k * 50 % 100000);
  for (uint64_t k = 0; k < 500; ++k) t.erase((k * 2654435761u) % 100000);
  const StepCounters& c = tls_counters();
  EXPECT_GT(c.node_hops, 0u);
  EXPECT_EQ(c.node_hops, c.hops_top + c.hops_descent);
  tls_counters() = StepCounters{};
}

TEST(FingerEngineTest, DisabledFingerMatchesResultsAndStaysCold) {
  Config cfg_off;
  cfg_off.use_finger = false;
  SkipTrie off(cfg_off);
  SkipTrie on;
  EXPECT_FALSE(off.engine().finger_enabled());
  EXPECT_TRUE(on.engine().finger_enabled());

  tls_counters() = StepCounters{};
  for (uint64_t k = 0; k < 800; ++k) {
    const uint64_t key = (k * 7919) % 4096;
    EXPECT_EQ(off.insert(key), on.insert(key));
  }
  for (uint64_t q = 0; q < 2000; ++q) {
    const uint64_t key = (q * 31) % 4096;
    EXPECT_EQ(off.predecessor(key), on.predecessor(key)) << key;
    EXPECT_EQ(off.contains(key), on.contains(key)) << key;
  }
  for (uint64_t k = 0; k < 800; k += 3) {
    const uint64_t key = (k * 7919) % 4096;
    EXPECT_EQ(off.erase(key), on.erase(key));
  }
  EXPECT_EQ(off.size(), on.size());

  // The disabled structure must not have produced finger traffic; the
  // enabled one ran the same stream, so any hits/misses came from it alone.
  Config cfg_probe;
  cfg_probe.use_finger = false;
  SkipTrie probe(cfg_probe);
  tls_counters() = StepCounters{};
  probe.insert(1);
  probe.predecessor(1);
  EXPECT_EQ(tls_counters().finger_hits + tls_counters().finger_misses, 0u);
  tls_counters() = StepCounters{};
}

TEST(FingerEngineTest, BaselineSkiplistFingersRepeatedReads) {
  LockFreeSkipList s(12);
  for (uint64_t k = 0; k < 1000; ++k) s.insert(k * 8);
  for (int i = 0; i < 16; ++i) s.predecessor(4000);
  tls_counters() = StepCounters{};
  for (int i = 0; i < 64; ++i) EXPECT_EQ(s.predecessor(4000).value(), 4000u);
  EXPECT_GT(tls_counters().finger_hits, 48u);
  tls_counters() = StepCounters{};

  // The ablation flag must reach the baseline too: an unfingered SkipTrie
  // compared against a fingered baseline would conflate the finger's
  // benefit with the trie's.
  LockFreeSkipList off(12, DcssMode::kDcss, 0x5eed5eed5eed5eedull,
                       /*use_finger=*/false);
  for (uint64_t k = 0; k < 100; ++k) off.insert(k * 8);
  tls_counters() = StepCounters{};
  for (int i = 0; i < 8; ++i) EXPECT_EQ(off.predecessor(400).value(), 400u);
  EXPECT_EQ(tls_counters().finger_hits + tls_counters().finger_misses, 0u);
  tls_counters() = StepCounters{};
}

// --- Registry aliasing regression (DESIGN.md §4.2) ---------------------------
//
// The PR 4/5 registries held a fixed 4 slots per thread and recycled them
// round-robin, rebinding the SearchFinger / DescentCursor objects in place.
// One thread touching more than 4 engines — the steady state of a sharded
// split batch — silently retargeted references an outer frame still held
// (aliasing) and reset every finger to cold on each cycle.  These tests pin
// the replacement contract: one stable object per live owner, distinct
// across owners, swept only when the owner's engine is destroyed.

TEST(RegistryAliasingTest, FingersStayDistinctAndStableAcrossManyOwners) {
  std::thread probe([] {
    constexpr int kOwners = 8;  // more than the old registry could hold
    uint64_t owners[kOwners];
    SearchFinger* fingers[kOwners];
    for (int i = 0; i < kOwners; ++i) {
      owners[i] = new_finger_owner();
      fingers[i] = &tls_finger<U64Traits>(owners[i], 3);
    }
    for (int i = 0; i < kOwners; ++i) {
      for (int j = i + 1; j < kOwners; ++j) {
        EXPECT_NE(fingers[i], fingers[j]) << i << "," << j;
      }
    }
    // Re-fetching in any interleaving returns the same object still bound
    // to the same owner — the old registry failed exactly here, handing
    // finger[i]'s storage to another owner once i fell 4 fetches behind.
    for (int round = 0; round < 3; ++round) {
      for (int i = kOwners - 1; i >= 0; --i) {
        SearchFinger& f = tls_finger<U64Traits>(owners[i], 3);
        EXPECT_EQ(&f, fingers[i]) << i;
        EXPECT_EQ(f.owner(), owners[i]);
      }
    }
    for (int i = 0; i < kOwners; ++i) release_finger_owner(owners[i]);
  });
  probe.join();
}

TEST(RegistryAliasingTest, CursorsStayDistinctAndStableAcrossManyOwners) {
  SlabArena arena(sizeof(Node), kCacheLine, 1024);
  EbrDomain ebr;
  DcssContext ctx{&ebr, DcssMode::kDcss};
  constexpr int kEngines = 8;
  std::vector<std::unique_ptr<SkipListEngine>> engines;
  for (int i = 0; i < kEngines; ++i) {
    engines.push_back(std::make_unique<SkipListEngine>(ctx, arena, 3));
  }
  std::thread probe([&] {
    DescentCursor* cursors[kEngines];
    for (int i = 0; i < kEngines; ++i) cursors[i] = &engines[i]->cursor();
    for (int i = 0; i < kEngines; ++i) {
      for (int j = i + 1; j < kEngines; ++j) {
        EXPECT_NE(cursors[i], cursors[j]) << i << "," << j;
      }
    }
    // A split batch visits shards round-robin; every revisit must find the
    // shard's own cursor (stream state intact), not a recycled slot.
    for (int round = 0; round < 3; ++round) {
      for (int i = kEngines - 1; i >= 0; --i) {
        EXPECT_EQ(&engines[i]->cursor(), cursors[i]) << i;
      }
    }
  });
  probe.join();
}

TEST(RegistryAliasingTest, DeadOwnersAreSweptFromBothRegistries) {
  std::thread probe([] {
    const size_t f0 = tls_finger_registry_size();
    const size_t c0 = tls_cursor_registry_size();
    {
      SlabArena arena(sizeof(Node), kCacheLine, 2048);
      EbrDomain ebr;
      DcssContext ctx{&ebr, DcssMode::kDcss};
      std::vector<std::unique_ptr<SkipListEngine>> engines;
      for (int i = 0; i < 6; ++i) {
        engines.push_back(std::make_unique<SkipListEngine>(ctx, arena, 3));
        engines.back()->finger();
        engines.back()->cursor();
      }
      EXPECT_EQ(tls_finger_registry_size(), f0 + 6);
      EXPECT_EQ(tls_cursor_registry_size(), c0 + 6);
    }
    // Engine destructors journaled the owners; the next lookup (which the
    // size hooks share) must have dropped every slot.
    EXPECT_EQ(tls_finger_registry_size(), f0);
    EXPECT_EQ(tls_cursor_registry_size(), c0);
  });
  probe.join();
}

// --- The invalidation regression --------------------------------------------
//
// Thread A repeatedly queries a small hot range, so its finger brackets the
// hot keys at low levels.  Thread B erases and reinserts exactly those keys
// while churning a cold range hard enough to drive EBR grace periods, so
// the nodes A's finger remembers are retired, poisoned and recycled under
// A's feet.  A's queries must stay correct (fall back to the trie path on
// validation failure) and the sanitizers must see no invalid access.  A
// single-threaded deterministic variant pins the fall-back accounting.

TEST(FingerInvalidationTest, DeterministicRetireForcesFallback) {
  SkipTrie t;
  std::thread probe([&] {
    for (uint64_t k = 0; k < 64; ++k) t.insert(k * 100);

    // Warm the finger until the level-0 bracket (300, 400] serves hits.
    for (int i = 0; i < 16; ++i) t.predecessor(350);
    tls_counters() = StepCounters{};
    ASSERT_EQ(t.predecessor(350).value(), 300u);
    ASSERT_GE(tls_counters().finger_hits, 1u);

    // Retire every key this thread's finger can have bracketed and force
    // reclamation, so each remembered interior node is poisoned, recycled
    // storage.  Queries must reject them all (validation), fall back to
    // the trie/head path, and stay correct — under asan this also proves
    // no read ever leaves still-valid storage.
    for (uint64_t k = 0; k < 64; ++k) ASSERT_TRUE(t.erase(k * 100));
    t.ebr().drain();
    ASSERT_TRUE(t.insert(50));
    tls_counters() = StepCounters{};
    EXPECT_EQ(t.predecessor(350).value(), 50u);
    EXPECT_EQ(t.predecessor(6300).value(), 50u);
    // Level-0 / low-row entries all name dead interiors, so no query may
    // enter below the top cacheable row; head-anchored top-row brackets
    // may legitimately still serve.  What is pinned here: the answers are
    // exact and at least one query had to take the fallback path.
    EXPECT_GE(tls_counters().finger_misses + tls_counters().finger_hits, 2u);
    EXPECT_EQ(tls_counters().hops_descent + tls_counters().hops_top,
              tls_counters().node_hops);
    tls_counters() = StepCounters{};
  });
  probe.join();
}

TEST(FingerInvalidationTest, ConcurrentDeleteOfFingeredNodes) {
  SkipTrie t;
  constexpr uint64_t kHot = 64;        // hot keys: 0, 8, .., 504
  constexpr uint64_t kColdBase = 1 << 16;
  for (uint64_t k = 0; k < kHot; ++k) t.insert(k * 8);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad{0};

  std::thread reader([&] {
    // Hammer the hot range so the finger holds level-0 brackets there.
    uint64_t q = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t key = (q++ % kHot) * 8 + 3;
      const std::optional<uint64_t> p = t.predecessor(key);
      // The hot keys churn, but every answer must be a plausible
      // predecessor: <= key, and aligned with some key ever inserted.
      if (p.has_value() && (*p > key || (*p % 8 != 0 && *p < kColdBase))) {
        bad.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  std::thread churner([&] {
    // Delete/reinsert the hot keys (retiring exactly the nodes the
    // reader's finger remembers) and churn a cold range to push epochs
    // forward so retired nodes actually get poisoned and recycled.
    for (int round = 0; round < 400; ++round) {
      for (uint64_t k = 0; k < kHot; k += 2) t.erase(k * 8);
      for (uint64_t i = 0; i < 256; ++i) {
        t.insert(kColdBase + (round * 256 + i) % 4096);
        t.erase(kColdBase + (round * 256 + i + 2048) % 4096);
      }
      for (uint64_t k = 0; k < kHot; k += 2) t.insert(k * 8);
    }
    stop.store(true, std::memory_order_relaxed);
  });

  churner.join();
  reader.join();
  EXPECT_EQ(bad.load(), 0u);

  // Quiesced: all hot keys are present again and queries are exact.
  for (uint64_t k = 0; k < kHot; ++k) {
    EXPECT_TRUE(t.contains(k * 8)) << k * 8;
    EXPECT_EQ(t.predecessor(k * 8 + 3).value(), k * 8);
  }
}

}  // namespace
}  // namespace skiptrie
