// Remaining common utilities: backoff, spin barrier, padding.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "common/cacheline.h"
#include "common/spin_barrier.h"

namespace skiptrie {
namespace {

TEST(Backoff, SpinsAndResets) {
  Backoff b;
  for (int i = 0; i < 20; ++i) b.spin();  // must terminate despite growth
  b.reset();
  b.spin();
  SUCCEED();
}

TEST(Padded, FillsCacheLine) {
  EXPECT_EQ(sizeof(Padded<std::atomic<uint64_t>>), kCacheLine);
  EXPECT_EQ(sizeof(Padded<uint32_t>), kCacheLine);
  EXPECT_EQ(alignof(Padded<uint8_t>), kCacheLine);
}

TEST(Padded, ArrayElementsOnDistinctLines) {
  Padded<std::atomic<uint64_t>> arr[4];
  for (int i = 1; i < 4; ++i) {
    const auto a = reinterpret_cast<uintptr_t>(&arr[i - 1].value);
    const auto b = reinterpret_cast<uintptr_t>(&arr[i].value);
    EXPECT_GE(b - a, kCacheLine);
  }
}

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr int kThreads = 4;
  constexpr int kPhases = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> phase_counts[kPhases];
  for (auto& c : phase_counts) c.store(0);
  std::atomic<bool> violation{false};

  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int p = 0; p < kPhases; ++p) {
        phase_counts[p].fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier, every thread must have bumped this phase.
        if (phase_counts[p].load() != kThreads) violation.store(true);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_FALSE(violation.load());
}

TEST(SpinBarrier, ReusableAcrossManyRounds) {
  SpinBarrier barrier(2);
  std::atomic<int> sum{0};
  std::thread other([&] {
    for (int i = 0; i < 1000; ++i) {
      sum.fetch_add(1);
      barrier.arrive_and_wait();
    }
  });
  for (int i = 0; i < 1000; ++i) {
    barrier.arrive_and_wait();
    ASSERT_GE(sum.load(), i + 1);
  }
  other.join();
}

}  // namespace
}  // namespace skiptrie
