#include "hash/split_ordered.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/marked_ptr.h"
#include "common/random.h"
#include "common/stats.h"

namespace skiptrie {
namespace {

class HashTest : public ::testing::Test {
 protected:
  EbrDomain ebr_;
  DcssContext ctx_{&ebr_, DcssMode::kDcss};
};

TEST_F(HashTest, InsertLookup) {
  SplitOrderedMap m(ctx_);
  EXPECT_TRUE(m.insert(1, 100));
  EXPECT_TRUE(m.insert(2, 200));
  EXPECT_EQ(m.lookup(1).value_or(0), 100u);
  EXPECT_EQ(m.lookup(2).value_or(0), 200u);
  EXPECT_FALSE(m.lookup(3).has_value());
  EXPECT_EQ(m.size(), 2u);
}

TEST_F(HashTest, DuplicateInsertRejected) {
  SplitOrderedMap m(ctx_);
  EXPECT_TRUE(m.insert(5, 1));
  EXPECT_FALSE(m.insert(5, 2));
  EXPECT_EQ(m.lookup(5).value_or(0), 1u);  // original value kept
  EXPECT_EQ(m.size(), 1u);
}

TEST_F(HashTest, EraseReturnsValue) {
  SplitOrderedMap m(ctx_);
  m.insert(9, 90);
  EXPECT_EQ(m.erase(9).value_or(0), 90u);
  EXPECT_FALSE(m.lookup(9).has_value());
  EXPECT_FALSE(m.erase(9).has_value());
  EXPECT_EQ(m.size(), 0u);
}

TEST_F(HashTest, ReinsertAfterErase) {
  SplitOrderedMap m(ctx_);
  m.insert(9, 90);
  m.erase(9);
  EXPECT_TRUE(m.insert(9, 91));
  EXPECT_EQ(m.lookup(9).value_or(0), 91u);
}

TEST_F(HashTest, CompareAndDeleteMatchesValue) {
  SplitOrderedMap m(ctx_);
  m.insert(7, 70);
  EXPECT_FALSE(m.compare_and_delete(7, 71));  // wrong value
  EXPECT_TRUE(m.lookup(7).has_value());
  EXPECT_TRUE(m.compare_and_delete(7, 70));
  EXPECT_FALSE(m.lookup(7).has_value());
  EXPECT_FALSE(m.compare_and_delete(7, 70));  // already gone
}

TEST_F(HashTest, GuardedInsertSucceedsWhenGuardHolds) {
  SplitOrderedMap m(ctx_);
  std::atomic<uint64_t> guard{0x40};
  bool guard_failed = false;
  EbrDomain::Guard g(ebr_);
  EXPECT_TRUE(m.insert(11, 110, &guard, 0x40, &guard_failed));
  EXPECT_FALSE(guard_failed);
  EXPECT_EQ(m.lookup(11).value_or(0), 110u);
}

TEST_F(HashTest, GuardedInsertFailsWhenGuardMismatches) {
  SplitOrderedMap m(ctx_);
  std::atomic<uint64_t> guard{0x40};
  bool guard_failed = false;
  EbrDomain::Guard g(ebr_);
  EXPECT_FALSE(m.insert(11, 110, &guard, 0x48, &guard_failed));
  EXPECT_TRUE(guard_failed);
  EXPECT_FALSE(m.lookup(11).has_value());
}

TEST_F(HashTest, GuardedInsertWithMarkedGuard) {
  // Mirrors the trie's usage: guard on a node's next word being an exact
  // unmarked value; a marked word must abort the insert.
  SplitOrderedMap m(ctx_);
  std::atomic<uint64_t> next_word{0x1000};
  EbrDomain::Guard g(ebr_);
  EXPECT_TRUE(m.insert(1, 10, &next_word, 0x1000, nullptr));
  next_word.store(0x1000 | kMark);
  bool gf = false;
  EXPECT_FALSE(m.insert(2, 20, &next_word, 0x1000, &gf));
  EXPECT_TRUE(gf);
}

TEST_F(HashTest, GrowsPastInitialBuckets) {
  SplitOrderedMap m(ctx_);
  const size_t n = 5000;
  for (uint64_t i = 0; i < n; ++i) EXPECT_TRUE(m.insert(i, i * 2));
  EXPECT_GT(m.bucket_count(), 2u);
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(m.lookup(i).value_or(~0ull), i * 2) << i;
  }
  EXPECT_EQ(m.size(), n);
}

TEST_F(HashTest, AdversarialKeysSameLowBits) {
  // Keys colliding in the initial buckets must still be found after splits.
  SplitOrderedMap m(ctx_);
  for (uint64_t i = 0; i < 512; ++i) EXPECT_TRUE(m.insert(i << 20, i));
  for (uint64_t i = 0; i < 512; ++i) {
    ASSERT_EQ(m.lookup(i << 20).value_or(~0ull), i);
  }
}

TEST_F(HashTest, ForEachVisitsLiveEntriesOnly) {
  SplitOrderedMap m(ctx_);
  for (uint64_t i = 0; i < 100; ++i) m.insert(i, i);
  for (uint64_t i = 0; i < 100; i += 2) m.erase(i);
  std::set<uint64_t> seen;
  m.for_each([&](uint64_t k, uint64_t) { seen.insert(k); });
  EXPECT_EQ(seen.size(), 50u);
  for (uint64_t k : seen) EXPECT_EQ(k % 2, 1u);
}

TEST_F(HashTest, ApproxBytesGrowsWithContent) {
  SplitOrderedMap m(ctx_);
  const size_t empty = m.approx_bytes();
  for (uint64_t i = 0; i < 1000; ++i) m.insert(i, i);
  EXPECT_GT(m.approx_bytes(), empty + 900 * sizeof(SplitOrderedMap::HNode));
}

TEST_F(HashTest, ConcurrentDisjointInserts) {
  SplitOrderedMap m(ctx_);
  const int kThreads = 4;
  const uint64_t kPer = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPer; ++i) {
        const uint64_t k = static_cast<uint64_t>(t) * kPer + i;
        ASSERT_TRUE(m.insert(k, k + 1));
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(m.size(), kThreads * kPer);
  for (uint64_t k = 0; k < kThreads * kPer; ++k) {
    ASSERT_EQ(m.lookup(k).value_or(0), k + 1);
  }
}

TEST_F(HashTest, ConcurrentSameKeyInsertExactlyOneWins) {
  SplitOrderedMap m(ctx_);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> wins{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < 4; ++t) {
      ts.emplace_back([&, t] {
        if (m.insert(round, 1000 + t)) wins.fetch_add(1);
      });
    }
    for (auto& th : ts) th.join();
    ASSERT_EQ(wins.load(), 1) << "round " << round;
  }
}

TEST_F(HashTest, ConcurrentInsertEraseMixedStress) {
  SplitOrderedMap m(ctx_);
  const int kThreads = 4;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      Xoshiro256 rng(t + 1);
      for (int i = 0; i < 20000; ++i) {
        const uint64_t k = rng.next_below(512);
        if (rng.next() & 1) {
          m.insert(k, k);
        } else {
          m.erase(k);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  // Invariant: whatever remains is self-consistent.
  size_t n = 0;
  m.for_each([&](uint64_t k, uint64_t v) {
    EXPECT_EQ(k, v);
    EXPECT_LT(k, 512u);
    ++n;
  });
  EXPECT_EQ(n, m.size());
}

TEST_F(HashTest, GrowthReachesLoadFactorTarget) {
  // Regression: maybe_grow used to perform at most one doubling per insert.
  // The contract now is that after any insert the table satisfies
  // count <= buckets * kLoadFactor (up to max_buckets) — the smallest such
  // power of two, i.e. it neither lags the load target nor overshoots it.
  SplitOrderedMap m(ctx_);
  const size_t n = 3000;
  for (size_t i = 0; i < n; ++i) m.insert(i * 2 + 1, i);
  EXPECT_EQ(m.size(), n);
  size_t want = 2;
  while (n > want * SplitOrderedMap::kLoadFactor) want *= 2;
  EXPECT_EQ(m.bucket_count(), want);
  EXPECT_LE(m.load_factor(),
            static_cast<double>(SplitOrderedMap::kLoadFactor));
  EXPECT_GT(m.load_factor(), 0.0);
}

TEST_F(HashTest, GrowthRespectsMaxBuckets) {
  SplitOrderedMap m(ctx_, /*max_buckets=*/64);
  for (size_t i = 0; i < 1000; ++i) m.insert(i * 3 + 1, i);
  EXPECT_EQ(m.bucket_count(), 64u);  // capped, load factor exceeded
  EXPECT_GT(m.load_factor(),
            static_cast<double>(SplitOrderedMap::kLoadFactor));
}

TEST_F(HashTest, LookupInitializesBucketsAndStaysChainLocal) {
  // Regression: lookup on an uninitialized bucket used to scan every node
  // between the nearest initialized ancestor's dummy and the target bucket.
  // Now the first lookup initializes the bucket (bounded one-time work) and
  // every subsequent lookup walks only the bucket-local chain.
  SplitOrderedMap m(ctx_);
  const size_t n = 2000;
  Xoshiro256 rng(7);
  std::vector<uint64_t> keys;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t k = rng.next() | 1ull;
    if (m.insert(k, i)) keys.push_back(k);
  }
  const size_t dummies_before = m.dummy_count();

  tls_counters() = StepCounters{};
  for (const uint64_t k : keys) ASSERT_TRUE(m.lookup(k).has_value());
  const uint64_t probes_first = tls_counters().hash_probes;
  // First pass may splice dummies for buckets growth left uninitialized.
  EXPECT_GE(m.dummy_count(), dummies_before);
  EXPECT_LE(m.dummy_count(), m.bucket_count());

  tls_counters() = StepCounters{};
  for (const uint64_t k : keys) ASSERT_TRUE(m.lookup(k).has_value());
  const StepCounters warmed = tls_counters();
  tls_counters() = StepCounters{};

  // Warmed lookups must be chain-local: on average well under 3 chain-node
  // visits per probe at load factor <= kLoadFactor, and never slower than
  // the initializing pass.
  EXPECT_LE(warmed.hash_probes, probes_first);
  EXPECT_LT(static_cast<double>(warmed.hash_probes),
            3.0 * static_cast<double>(keys.size()));
  EXPECT_EQ(warmed.probes_lookup, keys.size());
  // hash_probes decomposes as one first-visit per find plus chain slack.
  EXPECT_EQ(warmed.hash_probes,
            warmed.probes_lookup + warmed.probes_chain);
}

TEST_F(HashTest, ConcurrentCompareAndDeleteUniqueWinner) {
  SplitOrderedMap m(ctx_);
  for (int round = 0; round < 100; ++round) {
    m.insert(round, 7);
    std::atomic<int> wins{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < 4; ++t) {
      ts.emplace_back([&] {
        if (m.compare_and_delete(round, 7)) wins.fetch_add(1);
      });
    }
    for (auto& th : ts) th.join();
    ASSERT_EQ(wins.load(), 1) << "round " << round;
    ASSERT_FALSE(m.lookup(round).has_value());
  }
}

}  // namespace
}  // namespace skiptrie
