#include "common/marked_ptr.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace skiptrie {
namespace {

struct alignas(8) Dummy {
  int v;
};

TEST(MarkedPtr, RoundTripPlain) {
  Dummy d{7};
  const uint64_t w = pack_ptr(&d);
  EXPECT_EQ(unpack_ptr<Dummy>(w), &d);
  EXPECT_FALSE(is_marked(w));
  EXPECT_FALSE(is_desc(w));
}

TEST(MarkedPtr, RoundTripMarked) {
  Dummy d{7};
  const uint64_t w = pack_ptr(&d, kMark);
  EXPECT_EQ(unpack_ptr<Dummy>(w), &d);
  EXPECT_TRUE(is_marked(w));
  EXPECT_FALSE(is_desc(w));
}

TEST(MarkedPtr, RoundTripDesc) {
  Dummy d{7};
  const uint64_t w = pack_ptr(&d, kDesc);
  EXPECT_EQ(unpack_ptr<Dummy>(w), &d);
  EXPECT_FALSE(is_marked(w));
  EXPECT_TRUE(is_desc(w));
}

TEST(MarkedPtr, WithMarkPreservesPointer) {
  Dummy d{7};
  const uint64_t w = with_mark(pack_ptr(&d));
  EXPECT_TRUE(is_marked(w));
  EXPECT_EQ(unpack_ptr<Dummy>(w), &d);
}

TEST(MarkedPtr, WithoutTagsStripsBoth) {
  Dummy d{7};
  const uint64_t w = pack_ptr(&d, kMark | kDesc);
  EXPECT_EQ(without_tags(w), reinterpret_cast<uint64_t>(&d));
  EXPECT_EQ(tags_of(w), kMark | kDesc);
}

TEST(MarkedPtr, NullPointerStaysNull) {
  const uint64_t w = pack_ptr<Dummy>(nullptr, kMark);
  EXPECT_EQ(unpack_ptr<Dummy>(w), nullptr);
  EXPECT_TRUE(is_marked(w));
}

TEST(MarkedPtr, MarkIsIdempotent) {
  Dummy d{1};
  const uint64_t w = pack_ptr(&d, kMark);
  EXPECT_EQ(with_mark(w), w);
}

}  // namespace
}  // namespace skiptrie
