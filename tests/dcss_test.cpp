#include "dcss/dcss.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/spin_barrier.h"
#include "common/stats.h"

namespace skiptrie {
namespace {

class DcssTest : public ::testing::Test {
 protected:
  EbrDomain ebr_;
  DcssContext ctx_{&ebr_, DcssMode::kDcss};
  DcssContext cas_ctx_{&ebr_, DcssMode::kCasFallback};
};

TEST_F(DcssTest, SucceedsWhenBothMatch) {
  std::atomic<uint64_t> target{16};
  std::atomic<uint64_t> guard{256};
  EbrDomain::Guard g(ebr_);
  const auto r = dcss(ctx_, target, 16, 32, guard, 256);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(dcss_read(target), 32u);
}

TEST_F(DcssTest, FailsOnTargetMismatch) {
  std::atomic<uint64_t> target{16};
  std::atomic<uint64_t> guard{256};
  EbrDomain::Guard g(ebr_);
  const auto r = dcss(ctx_, target, 24, 32, guard, 256);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.guard_failed);
  EXPECT_EQ(r.witness, 16u);
  EXPECT_EQ(dcss_read(target), 16u);
}

TEST_F(DcssTest, FailsOnGuardMismatchAndRestoresTarget) {
  std::atomic<uint64_t> target{16};
  std::atomic<uint64_t> guard{256};
  EbrDomain::Guard g(ebr_);
  const auto r = dcss(ctx_, target, 16, 32, guard, 1000);
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.guard_failed);
  EXPECT_EQ(dcss_read(target), 16u);  // restored, not left as descriptor
}

TEST_F(DcssTest, CasFallbackIgnoresGuard) {
  std::atomic<uint64_t> target{16};
  std::atomic<uint64_t> guard{256};
  EbrDomain::Guard g(ebr_);
  const auto r = dcss(cas_ctx_, target, 16, 32, guard, 1000);
  EXPECT_TRUE(r.success);  // guard would have failed; fallback ignores it
  EXPECT_EQ(dcss_read(target), 32u);
}

TEST_F(DcssTest, MarkedValuesSupported) {
  // DCSS operands carry mark bits (bit 0) freely; only the descriptor bit
  // is reserved.
  std::atomic<uint64_t> target{16 | kMark};
  std::atomic<uint64_t> guard{0};
  EbrDomain::Guard g(ebr_);
  const auto r = dcss(ctx_, target, 16 | kMark, 32 | kMark, guard, 0);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(dcss_read(target), 32 | kMark);
}

TEST_F(DcssTest, GuardEqualExpectedEqualDesiredIsNoopSuccess) {
  std::atomic<uint64_t> target{16};
  std::atomic<uint64_t> guard{8};
  EbrDomain::Guard g(ebr_);
  const auto r = dcss(ctx_, target, 16, 16, guard, 8);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(dcss_read(target), 16u);
}

TEST_F(DcssTest, StatsCountAttemptsAndGuardFails) {
  tls_counters() = StepCounters{};
  std::atomic<uint64_t> target{16};
  std::atomic<uint64_t> guard{256};
  EbrDomain::Guard g(ebr_);
  dcss(ctx_, target, 16, 32, guard, 256);
  dcss(ctx_, target, 32, 48, guard, 1000);
  EXPECT_EQ(tls_counters().dcss_attempts, 2u);
  EXPECT_EQ(tls_counters().dcss_guard_fails, 1u);
  tls_counters() = StepCounters{};
}

TEST_F(DcssTest, ConcurrentDisjointGuardsAllSucceedOnce) {
  // N threads race DCSS on one counter word; each transition is
  // (v -> v+1) guarded on a constant word.  Exactly max value wins overall.
  std::atomic<uint64_t> target{0};
  std::atomic<uint64_t> guard{8};
  const int kThreads = 4;
  const uint64_t kPerThread = 5000;
  std::atomic<uint64_t> successes{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        EbrDomain::Guard g(ebr_);
        for (;;) {
          const uint64_t cur = dcss_read(target);
          const auto r = dcss(ctx_, target, cur, cur + 4, guard, 8);
          if (r.success) {
            successes.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_EQ(successes.load(), kThreads * kPerThread);
  EXPECT_EQ(dcss_read(target), kThreads * kPerThread * 4);
}

TEST_F(DcssTest, GuardFlipsConcurrently) {
  // Writers flip the guard word; DCSS attempts must only succeed when the
  // guard read truly matched, and the target must never be corrupted.
  std::atomic<uint64_t> target{0};
  std::atomic<uint64_t> guard{0};
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    uint64_t v = 0;
    while (!stop.load()) guard.store(((++v) & 1) * 8, std::memory_order_seq_cst);
  });
  uint64_t ok = 0;
  for (int i = 0; i < 20000; ++i) {
    EbrDomain::Guard g(ebr_);
    const uint64_t cur = dcss_read(target);
    const auto r = dcss(ctx_, target, cur, cur + 4, guard, 0);
    if (r.success) ok++;
  }
  stop.store(true);
  flipper.join();
  EXPECT_EQ(dcss_read(target), ok * 4);
}

TEST_F(DcssTest, ReadersHelpInstalledDescriptors) {
  // A reader thread hammers dcss_read while writers DCSS; the reader must
  // never observe a descriptor-tagged value.
  std::atomic<uint64_t> target{0};
  std::atomic<uint64_t> guard{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> saw_desc{false};
  std::thread reader([&] {
    EbrDomain::Guard g(ebr_);
    while (!stop.load()) {
      if (is_desc(dcss_read(target))) saw_desc.store(true);
    }
  });
  for (int i = 0; i < 30000; ++i) {
    EbrDomain::Guard g(ebr_);
    const uint64_t cur = dcss_read(target);
    dcss(ctx_, target, cur, cur + 4, guard, 0);
  }
  stop.store(true);
  reader.join();
  EXPECT_FALSE(saw_desc.load());
}

TEST_F(DcssTest, GuardOnDcssTargetWordReadsThrough) {
  // The guard word is itself a DCSS target being modified: evaluation must
  // read through descriptors rather than deadlock or crash.
  std::atomic<uint64_t> a{0};
  std::atomic<uint64_t> b{0};
  std::atomic<bool> stop{false};
  std::thread t1([&] {
    while (!stop.load()) {
      EbrDomain::Guard g(ebr_);
      const uint64_t cur = dcss_read(a);
      dcss(ctx_, a, cur, cur + 4, b, dcss_read(b));
    }
  });
  std::thread t2([&] {
    while (!stop.load()) {
      EbrDomain::Guard g(ebr_);
      const uint64_t cur = dcss_read(b);
      dcss(ctx_, b, cur, cur + 4, a, dcss_read(a));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  t1.join();
  t2.join();
  // Progress happened and both words are clean values.
  EXPECT_FALSE(is_desc(a.load()));
  EXPECT_FALSE(is_desc(b.load()));
}

TEST_F(DcssTest, CrossedGuardsNeverBothSucceed) {
  // Two DCSS operations, each guarding the OTHER's target, both from the
  // (0, 0) state: sequentially one must fail (whichever runs second sees
  // the other's write in its guard).  Blind read-through of undecided
  // descriptors let both succeed — the bug that could half-kill an x-fast
  // trie entry (DESIGN.md §3.5(3)); guard evaluation now serializes crossed
  // descriptors by target-address order.
  // The racy window needs true parallelism (both descriptors installed,
  // neither decided), so scale the rounds to the hardware: on a single
  // core this is only a smoke test.
  const int rounds = std::thread::hardware_concurrency() >= 2 ? 2000 : 200;
  for (int round = 0; round < rounds; ++round) {
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
    DcssResult ra, rb;
    SpinBarrier bar(2);
    std::thread t1([&] {
      EbrDomain::Guard g(ebr_);
      bar.arrive_and_wait();
      ra = dcss(ctx_, a, 0, 8, b, 0);
    });
    std::thread t2([&] {
      EbrDomain::Guard g(ebr_);
      bar.arrive_and_wait();
      rb = dcss(ctx_, b, 0, 16, a, 0);
    });
    t1.join();
    t2.join();
    ASSERT_FALSE(ra.success && rb.success) << "round " << round;
    // And the words reflect the outcomes exactly.
    ASSERT_EQ(dcss_read(a), ra.success ? 8u : 0u) << "round " << round;
    ASSERT_EQ(dcss_read(b), rb.success ? 16u : 0u) << "round " << round;
  }
}

}  // namespace
}  // namespace skiptrie
