// Workload-fidelity regressions: the key-distribution and driver bugs that
// would silently skew benchmark numbers (wrong clustered wraparound,
// prefill ignoring the configured distribution, non-reproducible streams).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/skiptrie.h"
#include "workload/driver.h"

namespace skiptrie {
namespace {

// Same seed must reproduce the exact key stream, for every distribution.
TEST(WorkloadFidelity, GeneratorsDeterministicPerSeed) {
  for (const KeyDist d : {KeyDist::kUniform, KeyDist::kZipf,
                          KeyDist::kClustered, KeyDist::kSequential}) {
    KeyGenerator a(d, 1u << 16, 99);
    KeyGenerator b(d, 1u << 16, 99);
    for (int i = 0; i < 5000; ++i) {
      ASSERT_EQ(a.next(), b.next()) << key_dist_name(d) << " draw " << i;
    }
  }
}

// Same seed => identical hit counts across driver runs (threads=1 so the
// interleaving itself cannot differ), exercising the prefill path too.
TEST(WorkloadFidelity, DriverDeterministicHitCounts) {
  for (const KeyDist d : {KeyDist::kZipf, KeyDist::kClustered}) {
    WorkloadConfig wc;
    wc.threads = 1;
    wc.ops_per_thread = 15000;
    wc.dist = d;
    wc.key_space = 1u << 14;
    wc.prefill = 2000;
    wc.seed = 1234;

    Config c;
    c.universe_bits = 16;
    SkipTrie a(c), b(c);
    const auto ra = run_workload(a, wc);
    const auto rb = run_workload(b, wc);
    EXPECT_EQ(ra.insert_hits, rb.insert_hits) << key_dist_name(d);
    EXPECT_EQ(ra.erase_hits, rb.erase_hits) << key_dist_name(d);
    EXPECT_EQ(ra.pred_hits, rb.pred_hits) << key_dist_name(d);
    EXPECT_EQ(ra.lookup_hits, rb.lookup_hits) << key_dist_name(d);
    EXPECT_EQ(a.size(), b.size()) << key_dist_name(d);
  }
}

// Zipf with theta ~1 concentrates mass on a few ranks: the most frequent
// key must carry a visible share of the stream, far above uniform's 1/n.
TEST(WorkloadFidelity, ZipfTopRankCarriesMass) {
  KeyGenerator gen(KeyDist::kZipf, 1u << 16, 7, 0.99);
  std::map<uint64_t, uint32_t> freq;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) freq[gen.next()]++;
  std::vector<uint32_t> counts;
  counts.reserve(freq.size());
  for (const auto& [k, c] : freq) counts.push_back(c);
  std::sort(counts.rbegin(), counts.rend());
  // Theoretical top-rank mass for theta=.99 over 2^16 ranks is ~8%; uniform
  // would be 0.0015%.  Assert well below theory but far above uniform.
  EXPECT_GT(counts[0], kDraws * 0.03);
  uint64_t top16 = 0;
  for (size_t i = 0; i < 16 && i < counts.size(); ++i) top16 += counts[i];
  EXPECT_GT(top16, kDraws * 0.15);
}

// Clustered draws must stay inside [0, space), including when the span
// exceeds the space (wrap-around used to be able to return keys >= space).
TEST(WorkloadFidelity, ClusteredKeysStayBelowSpace) {
  // span > space forces every center to wrap.
  KeyGenerator tight(KeyDist::kClustered, 1000, 3, 0.99, 8, 4096);
  for (int i = 0; i < 20000; ++i) ASSERT_LT(tight.next(), 1000u);
  // Non-power-of-two space near the top of the 64-bit range: the old
  // `c + off` could overflow uint64 before the wrap test.
  const uint64_t huge = UINT64_MAX - 5;
  KeyGenerator top(KeyDist::kClustered, huge, 11, 0.99, 512, 1u << 16);
  for (int i = 0; i < 50000; ++i) ASSERT_LT(top.next(), huge);
}

// Sequential generator wraps modulo the space.
TEST(WorkloadFidelity, SequentialWrapsModuloSpace) {
  KeyGenerator gen(KeyDist::kSequential, 100, 42);
  for (uint64_t i = 0; i < 250; ++i) {
    ASSERT_EQ(gen.next(), i % 100);
  }
}

// The prefill regression: a zipf read workload must find the keys its
// queries concentrate on.  Before the fix, prefill always drew from a
// uniform stream, so a skewed lookup phase measured almost-only misses.
TEST(WorkloadFidelity, PrefillFollowsConfiguredDistribution) {
  WorkloadConfig wc;
  wc.threads = 1;
  wc.ops_per_thread = 20000;
  wc.mix = OpMix{0, 0, 0};  // lookups only
  wc.dist = KeyDist::kZipf;
  wc.key_space = 1ull << 20;
  wc.prefill = 20000;
  wc.seed = 5;

  Config c;
  c.universe_bits = 32;
  SkipTrie t(c);
  const auto r = run_workload(t, wc);
  ASSERT_EQ(r.lookups, wc.ops_per_thread);
  // Zipf rank->key scattering is seed-independent, so a zipf prefill covers
  // the head of the query distribution; uniform prefill over 2^20 keys
  // would give a ~2% hit rate here.
  EXPECT_GT(static_cast<double>(r.lookup_hits) /
                static_cast<double>(r.lookups),
            0.30);
}

// Same property for clustered workloads: prefill and the timed threads must
// share cluster centers (distinct streams, same hot sets).
TEST(WorkloadFidelity, ClusteredPrefillSharesCenters) {
  WorkloadConfig wc;
  wc.threads = 2;
  wc.ops_per_thread = 10000;
  wc.mix = OpMix{0, 0, 0};  // lookups only
  wc.dist = KeyDist::kClustered;
  wc.key_space = 1ull << 20;
  wc.prefill = 30000;
  wc.seed = 9;

  Config c;
  c.universe_bits = 32;
  SkipTrie t(c);
  const auto r = run_workload(t, wc);
  // 64 clusters x span 1024 = 65536 cluster slots; 30000 prefill draws
  // cover a large share of them.  With shared centers the lookup hit rate
  // is high; with per-stream centers it would be ~3% (65536 / 2^20).
  EXPECT_GT(static_cast<double>(r.lookup_hits) /
                static_cast<double>(r.lookups),
            0.25);
}

// Zero-duration runs must not emit inf/nan throughput.
TEST(WorkloadFidelity, ZeroDurationGuard) {
  WorkloadResult r;
  r.total_ops = 100;
  r.seconds = 0.0;
  EXPECT_EQ(r.mops(), 0.0);
  EXPECT_EQ(r.search_steps_per_op(), 0.0);
  EXPECT_EQ(r.latency_percentile_ns(0.99), 0.0);
}

// Latency sampling populates per-type percentiles and they are ordered.
TEST(WorkloadFidelity, LatencyPercentilesSampled) {
  WorkloadConfig wc;
  wc.threads = 2;
  wc.ops_per_thread = 8000;
  wc.key_space = 1u << 12;
  wc.prefill = 1000;
  wc.latency_sample_every = 8;

  Config c;
  c.universe_bits = 16;
  SkipTrie t(c);
  const auto r = run_workload(t, wc);
  EXPECT_GE(r.latency_samples(), 2 * (8000 / 8));
  const double p50 = r.latency_percentile_ns(0.50);
  const double p99 = r.latency_percentile_ns(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_GE(p99, p50);
  // Per-type attribution covered every op.
  uint64_t typed_ops = 0;
  for (size_t k = 0; k < kOpTypeCount; ++k) {
    typed_ops += r.by_type[k].ops;
  }
  EXPECT_EQ(typed_ops, r.total_ops);
  EXPECT_GT(r.of(OpType::kPredecessor).search_steps_per_op(), 0.0);
}

}  // namespace
}  // namespace skiptrie
