#include "common/bitops.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/random.h"

namespace skiptrie {
namespace {

TEST(Bitops, CeilLog2Basics) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(32), 5u);
  EXPECT_EQ(ceil_log2(33), 6u);
  EXPECT_EQ(ceil_log2(64), 6u);
}

TEST(Bitops, SkipTrieLevelCounts) {
  // The paper's truncated skiplist: top level index = ceil(log2 B) so that
  // P(top) = 2^-top = 1/B.
  EXPECT_EQ(ceil_log2(16), 4u);   // u=2^16 -> 5 levels
  EXPECT_EQ(ceil_log2(32), 5u);   // u=2^32 -> 6 levels
  EXPECT_EQ(ceil_log2(64), 6u);   // u=2^64 -> 7 levels
}

TEST(Bitops, KeyBitMsbFirst) {
  // key = 0b1010 in a 4-bit universe.
  const uint64_t key = 0b1010;
  EXPECT_EQ(key_bit(key, 0, 4), 1u);
  EXPECT_EQ(key_bit(key, 1, 4), 0u);
  EXPECT_EQ(key_bit(key, 2, 4), 1u);
  EXPECT_EQ(key_bit(key, 3, 4), 0u);
}

TEST(Bitops, EncodePrefixRoot) {
  EXPECT_EQ(encode_prefix(0xdead, 0, 32), 1ull);
  EXPECT_EQ(encode_prefix(0, 0, 8), 1ull);
}

TEST(Bitops, EncodePrefixDistinctLengths) {
  // Prefixes of different lengths of the same key must encode differently,
  // even when the bits are all zero.
  const uint64_t key = 0;
  EXPECT_NE(encode_prefix(key, 1, 8), encode_prefix(key, 2, 8));
  EXPECT_NE(encode_prefix(key, 3, 8), encode_prefix(key, 4, 8));
}

TEST(Bitops, EncodePrefixMatchesTopBits) {
  const uint64_t key = 0b11010110;
  // length 3 prefix of an 8-bit key = 0b110, 1-prefixed -> 0b1110.
  EXPECT_EQ(encode_prefix(key, 3, 8), 0b1110ull);
}

TEST(Bitops, PrefixMatches) {
  const uint64_t key = 0b11010110;
  for (uint32_t len = 0; len < 8; ++len) {
    const uint64_t enc = encode_prefix(key, len, 8);
    EXPECT_TRUE(prefix_matches(enc, key, len, 8)) << len;
    // A key differing in the first bit matches only the empty prefix.
    const uint64_t other = key ^ 0b10000000;
    if (len > 0) {
      EXPECT_FALSE(prefix_matches(enc, other, len, 8)) << len;
    }
  }
}

TEST(Bitops, Lcp) {
  EXPECT_EQ(lcp_length(0, 0, 32), 32u);
  EXPECT_EQ(lcp_length(0, 1, 32), 31u);
  EXPECT_EQ(lcp_length(0x80000000ull, 0, 32), 0u);
  EXPECT_EQ(lcp_length(0b1100, 0b1101, 4), 3u);
  EXPECT_EQ(lcp_length(0b1100, 0b1000, 4), 1u);
}

TEST(Bitops, LcpFullWidth64) {
  EXPECT_EQ(lcp_length(~0ull, ~0ull, 64), 64u);
  EXPECT_EQ(lcp_length(~0ull, ~1ull, 64), 63u);
  EXPECT_EQ(lcp_length(1ull << 63, 0, 64), 0u);
}

TEST(Bitops, AbsDiff) {
  EXPECT_EQ(abs_diff(5, 9), 4u);
  EXPECT_EQ(abs_diff(9, 5), 4u);
  EXPECT_EQ(abs_diff(0, UINT64_MAX), UINT64_MAX);
}

TEST(Bitops, UniverseMask) {
  EXPECT_EQ(universe_mask(4), 0xfull);
  EXPECT_EQ(universe_mask(32), 0xffffffffull);
  EXPECT_EQ(universe_mask(64), ~0ull);
}

class PrefixProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PrefixProperty, EncodingIsInjectivePerLength) {
  const uint32_t bits = GetParam();
  // For a sample of keys, encodings at each length agree exactly for keys
  // sharing that prefix and differ otherwise.
  uint64_t state = 99;
  for (int i = 0; i < 200; ++i) {
    const uint64_t a = splitmix64(state) & universe_mask(bits);
    const uint64_t b = splitmix64(state) & universe_mask(bits);
    const uint32_t l = lcp_length(a, b, bits);
    for (uint32_t len = 1; len < bits && len <= 16; ++len) {
      const bool same = encode_prefix(a, len, bits) == encode_prefix(b, len, bits);
      EXPECT_EQ(same, len <= l) << "bits=" << bits << " len=" << len;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllUniverses, PrefixProperty,
                         ::testing::Values(4u, 8u, 16u, 32u, 48u, 64u));

}  // namespace
}  // namespace skiptrie
