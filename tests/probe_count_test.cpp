// Probe-count regression tests — the constant the paper's analysis assumes
// away must stay small in practice (ISSUE 3 / ROADMAP "Hunt the constant").
//
// The x-fast descent issues ~log2(B) hash lookups per predecessor query
// (fewer once the per-thread depth hint warms up, DESIGN.md §3.5(4)), and
// each lookup should cost O(1) expected chain-node visits (DESIGN.md §5.1).
// These tests pin the end-to-end constant: average hash-chain visits per
// predecessor query bounded by c * log2(B) for a small fixed c, measured on
// a prefilled trie through the same workload driver the benches use.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "core/skiptrie.h"
#include "workload/driver.h"

namespace skiptrie {
namespace {

// Generous vs. the measured ~1.0-1.3 x log2(B): catches a return of the
// ancestor-chain scan (which measured ~2.5-3.5x) without flaking on
// distribution noise.
constexpr double kProbeConstant = 2.0;

WorkloadConfig probe_cfg(uint32_t bits, uint64_t prefill, KeyDist dist) {
  WorkloadConfig wc;
  wc.threads = 1;
  wc.ops_per_thread = 20000;
  wc.mix = OpMix::read_only();  // predecessor-only
  wc.dist = dist;
  wc.key_space = bits >= 64 ? UINT64_MAX - 1 : (1ull << bits);
  wc.prefill = prefill;
  wc.seed = 20260729 + bits;
  wc.latency_sample_every = 0;
  return wc;
}

struct ProbeRates {
  double probes;     // hash-chain visits per op (steps.hash_probes)
  double binsearch;  // x-fast binary-search lookups per op
  double chain;      // chain slack per op
};

ProbeRates run_probe_cell(uint32_t bits, uint64_t prefill, KeyDist dist) {
  Config c;
  c.universe_bits = bits;
  SkipTrie t(c);
  const WorkloadConfig wc = probe_cfg(bits, prefill, dist);
  const WorkloadResult r = run_workload(t, wc);
  EXPECT_EQ(r.preds, r.total_ops);
  const double ops = static_cast<double>(r.total_ops);
  return ProbeRates{static_cast<double>(r.steps.hash_probes) / ops,
                    static_cast<double>(r.steps.probes_binsearch) / ops,
                    static_cast<double>(r.steps.probes_chain) / ops};
}

TEST(ProbeCount, PredecessorProbesTrackLogB) {
  for (const uint32_t bits : {16u, 32u, 64u}) {
    const uint64_t prefill = bits == 16 ? 1024 : 8192;
    const ProbeRates pr = run_probe_cell(bits, prefill, KeyDist::kUniform);
    const double logb = std::log2(static_cast<double>(bits));
    EXPECT_LE(pr.probes, kProbeConstant * logb)
        << "B=" << bits << " hash probes/op " << pr.probes;
    // The binary search itself must not regress past plain log2(B) plus
    // one extra gallop probe on average.
    EXPECT_LE(pr.binsearch, logb + 1.0)
        << "B=" << bits << " binsearch lookups/op " << pr.binsearch;
    EXPECT_GT(pr.probes, 0.0);
  }
}

TEST(ProbeCount, ZipfHotPrefixTailStaysBounded) {
  // ROADMAP's p99 tail suspect: zipf-skewed queries hammer hot prefixes,
  // so a chain-length pathology on hot buckets would show up here first.
  // The probe bound must hold under skew, and chain slack must stay a
  // fraction of the total (not the dominant term it was when hot lookups
  // scanned ancestor chains).
  const ProbeRates pr = run_probe_cell(32, 8192, KeyDist::kZipf);
  const double logb = std::log2(32.0);
  EXPECT_LE(pr.probes, kProbeConstant * logb)
      << "zipf hash probes/op " << pr.probes;
  EXPECT_LE(pr.chain, pr.probes / 2.0)
      << "chain slack dominates: " << pr.chain << " of " << pr.probes;
}

}  // namespace
}  // namespace skiptrie
