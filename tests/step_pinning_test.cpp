// u64 fast-path pinning regression (ISSUE 7 acceptance; DESIGN.md §6).
//
// The key-traits refactor promises that U64Traits is the seed behavior
// *byte for byte*: same deterministic tower heights (random.h's
// deterministic_height_mixed seam), same hash stream, same descent
// decisions — hence exactly the same per-op step counts.  This test replays
// a fixed single-threaded workload (seeded Xoshiro256, insert / read /
// batch / erase phases over 32- and 64-bit universes) and compares twelve
// step counters per phase against golden values captured on the pre-traits
// tree at commit 8a0ca2d.  Any drift — a changed mix, a different gallop
// seed, an extra restart — fails loudly with the counter-by-counter diff.
//
// The goldens are single-thread deterministic: heights come from
// (seed, mix64(ikey)), not from thread-local RNG state, and no concurrency
// means no retries.  If an *intentional* algorithm change shifts these
// numbers, re-capture with the harness documented in ISSUE.md / CHANGES.md
// and update the table in the same commit that explains why.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <optional>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "core/skiptrie.h"

namespace skiptrie {
namespace {

// {node_hops, hash_probes, back_steps, prev_steps, hash_updates,
//  cas_attempts, dcss_attempts, trie_level_ops, restarts, finger_hits,
//  cursor_reuses, retired_nodes}
using Golden = std::array<uint64_t, 12>;

constexpr const char* kCounterNames[12] = {
    "node_hops",    "hash_probes",  "back_steps",     "prev_steps",
    "hash_updates", "cas_attempts", "dcss_attempts",  "trie_level_ops",
    "restarts",     "finger_hits",  "cursor_reuses",  "retired_nodes"};

Golden delta(const StepCounters& a, const StepCounters& b) {
  const StepCounters d = b - a;
  return {d.node_hops,    d.hash_probes,  d.back_steps,    d.prev_steps,
          d.hash_updates, d.cas_attempts, d.dcss_attempts, d.trie_level_ops,
          d.restarts,     d.finger_hits,  d.cursor_reuses, d.retired_nodes};
}

void expect_golden(const char* phase, const Golden& got, const Golden& want) {
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << phase << ": counter " << kCounterNames[i]
                               << " drifted from the pre-traits seed";
  }
}

struct PhaseGoldens {
  Golden insert, read, batch, erase;
};

// Captured at commit 8a0ca2d (pre-traits tree), gcc 12, -O2, single thread.
constexpr PhaseGoldens kBits32 = {
    {16872, 8932, 0, 64, 1755, 3275, 3984, 2176, 0, 1854, 0, 0},
    {44972, 4902, 0, 312, 0, 361, 0, 0, 0, 5409, 0, 0},
    {26675, 3066, 0, 2, 766, 1355, 1825, 1024, 0, 19, 4765, 0},
    {24750, 5341, 2, 153, 885, 8273, 1902, 1184, 22, 679, 0, 2017},
};
constexpr PhaseGoldens kBits64 = {
    {17453, 8955, 0, 18, 2009, 3319, 4176, 2176, 0, 1961, 0, 0},
    {46889, 328, 0, 13, 0, 35, 0, 0, 0, 5973, 0, 0},
    {27091, 4667, 0, 2, 1089, 1764, 2171, 1216, 0, 47, 4867, 0},
    {27417, 4692, 0, 63, 1035, 8852, 2128, 1152, 7, 865, 0, 2070},
};

void run_pinned(uint32_t bits, const PhaseGoldens& want) {
  Config cfg;
  cfg.universe_bits = bits;
  // The goldens pin the seed layout: leaf chunking reshapes the read path
  // (chunk scans replace low-level hops), so it is pinned off here and its
  // on/off equivalence is covered by leaf_chunk_test's ablation cases.
  cfg.leaf_chunking = false;
  // Adaptive heights likewise change the layout mid-run (promotions raise
  // towers above their deterministic draw); off reproduces the seed layout
  // bit-for-bit, which is exactly what these goldens pin.
  cfg.adaptive_heights = false;
  SkipTrie t(cfg);
  const uint64_t maxk = t.max_key();
  Xoshiro256 rng(42);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 2000; ++i) keys.push_back(rng.next() % (maxk - 8));

  tls_counters() = StepCounters{};
  StepCounters a = snapshot_counters();
  size_t ins = 0;
  for (uint64_t k : keys) ins += t.insert(k);
  StepCounters b = snapshot_counters();
  expect_golden("insert", delta(a, b), want.insert);
  EXPECT_EQ(ins, 2000u);
  EXPECT_EQ(t.size(), 2000u);

  size_t hits = 0, preds = 0;
  for (uint64_t k : keys) {
    hits += t.contains(k);
    preds += t.predecessor(k + 3).has_value();
    preds += t.successor(k).has_value();
  }
  StepCounters c = snapshot_counters();
  expect_golden("read", delta(b, c), want.read);
  EXPECT_EQ(hits, 2000u);
  EXPECT_EQ(preds, 3999u);

  // batch: sorted multiget + unsorted insert + sorted predecessor sweep
  std::vector<uint64_t> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  std::vector<uint8_t> r8(sorted.size());
  const size_t bc = t.contains_batch(sorted.data(), sorted.size(), r8.data());
  std::vector<uint64_t> batch2;
  for (int i = 0; i < 1000; ++i) batch2.push_back(rng.next() % (maxk - 8));
  const size_t bi = t.insert_batch(batch2.data(), batch2.size(), nullptr);
  std::vector<std::optional<uint64_t>> rp(sorted.size());
  const size_t bp =
      t.predecessor_batch(sorted.data(), sorted.size(), rp.data());
  StepCounters d = snapshot_counters();
  expect_golden("batch", delta(c, d), want.batch);
  EXPECT_EQ(bc, 2000u);
  EXPECT_EQ(bi, 1000u);
  EXPECT_EQ(bp, 2000u);

  size_t er = 0;
  for (size_t i = 0; i < keys.size(); i += 2) er += t.erase(keys[i]);
  StepCounters e = snapshot_counters();
  expect_golden("erase", delta(d, e), want.erase);
  EXPECT_EQ(er, 1000u);
  EXPECT_EQ(t.size(), 2000u);
  tls_counters() = StepCounters{};
}

// NDEBUG-independence: the workload takes no assert-gated branches, and the
// goldens were captured on the default (RelWithDebInfo-equivalent) CI
// flags.  Sanitizer builds perturb nothing either — every counted step is
// an algorithmic event, not a timing artifact.
TEST(StepPinningTest, U64Bits32ReproducesSeedStepCounts) {
  run_pinned(32, kBits32);
}

TEST(StepPinningTest, U64Bits64ReproducesSeedStepCounts) {
  run_pinned(64, kBits64);
}

// The heights themselves are part of the pinned surface: the traits seam
// (height_mix -> deterministic_height_mixed) must compose to exactly the
// seed's deterministic_height on u64.
TEST(StepPinningTest, HeightSeamIsByteIdentical) {
  for (uint64_t k = 0; k < 50000; ++k) {
    const uint64_t x = k * 0x9e3779b97f4a7c15ull + 1;
    for (uint32_t cap : {3u, 5u, 6u, 7u}) {
      EXPECT_EQ(deterministic_height(7, x, cap),
                deterministic_height_mixed(7, U64Traits::height_mix(x), cap));
    }
  }
}

}  // namespace
}  // namespace skiptrie
