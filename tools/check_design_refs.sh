#!/bin/sh
# Fail if any `DESIGN.md §X[.Y][(Z)]` citation in the sources names a section
# (or numbered deviation item) that does not exist in DESIGN.md.
#
# Wired into ctest (see CMakeLists.txt); run manually from the repo root:
#   tools/check_design_refs.sh
set -u

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root" || exit 2

design=DESIGN.md
if [ ! -f "$design" ]; then
  echo "check_design_refs: $design does not exist" >&2
  exit 1
fi

# Collect citations.  Comments occasionally wrap right after "DESIGN.md", so
# join each file's lines before matching (the section token itself never
# wraps mid-token).
refs=$(find src tests bench examples tools -type f \
         \( -name '*.h' -o -name '*.cpp' -o -name '*.cc' \) \
         -exec cat {} + |
       tr '\n' ' ' |
       grep -oE 'DESIGN\.md[[:space:]/]*§[0-9]+(\.[0-9]+)*(\([0-9]+\))?' |
       grep -oE '§[0-9]+(\.[0-9]+)*(\([0-9]+\))?' |
       sort -u)

if [ -z "$refs" ]; then
  echo "check_design_refs: no DESIGN.md citations found in sources" >&2
  exit 1
fi

status=0
for ref in $refs; do
  # §3.5(3) must resolve to item "(3)" under section 3.5; §3.3 to a "## 3.3"
  # (or deeper) heading; bare §3 to a "## 3" or "## 3." heading.
  section=${ref#§}
  item=
  case $section in
    *\(*\))
      item=$(printf '%s' "$section" | sed -n 's/.*\(([0-9]*)\)$/\1/p')
      section=${section%%(*}
      ;;
  esac
  if ! grep -qE "^#+ +(§ *)?${section}(\.?[^0-9.]|\.?$)" "$design"; then
    echo "check_design_refs: cited section §${section} missing from $design" >&2
    status=1
    continue
  fi
  if [ -n "$item" ]; then
    # The numbered deviation items are bold-led paragraphs: "**(3) ...".
    if ! grep -qF "**${item}" "$design"; then
      echo "check_design_refs: cited item §${section}${item} missing from $design" >&2
      status=1
    fi
  fi
done

if [ "$status" -eq 0 ]; then
  echo "check_design_refs: all $(printf '%s\n' "$refs" | wc -l | tr -d ' ') cited sections resolve"
fi
exit $status
