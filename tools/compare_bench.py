#!/usr/bin/env python3
"""Diff two BENCH_suite.json files on step counts and probe counters.

Joins the "cells" arrays on (section, structure, universe_bits, threads,
mix, dist, batch_size, shards, key_kind, leaf_chunking, adaptive_heights,
zipf_drift, repeat) — the stable key documented in README "Benchmarks";
batch_size and shards default to 1, key_kind to "u64", leaf_chunking to
true, and adaptive_heights / zipf_drift to false for files that predate
them — and reports, per matched cell, the relative change in:

  - steps_per_op.search and steps_per_op.total
  - per-op rates of the probe counters (hash_probes, probes_lookup,
    probes_chain, probes_binsearch, node_hops, walk_fallbacks, restarts)
  - per_op.predecessor.search_steps_per_op when present
  - per-op rates of the schema-v7 leaf counters (bytes_touched,
    chunk_scans) on single-thread u64 cells only — the gated fast path
    where the modeled byte counts are deterministic; multi-thread and
    bytes16 cells stay report-only

A change worse than --threshold (default 10%) counts as a regression.
Wall-clock metrics (mops, latency) are intentionally NOT compared: they
are host-bound, while step counts are the durable signal (ROADMAP).

Exit status: 0 unless --fail-on-regress is given and regressions exist.
Designed to run as a non-fatal CI report step:

    tools/compare_bench.py BENCH_suite.json build/BENCH_suite_quick.json

Schema: accepts v1 through v8 files; counters missing from an older file
are skipped (reported as "new"), never treated as zero.  Pre-v7 cells
join v7 cells as leaf_chunking=true (the default layout); chunking-off
cells are a v7-only axis and never match an older file.  Pre-v8 cells
join v8 cells as adaptive_heights=false / zipf_drift=false (the policy
and the drift mode did not exist, so off is behavior-accurate);
adaptive-on cells are new measurement points and never match an older
file.

`--self-test` runs the built-in join unit test (no input files needed);
it is registered in ctest so the cross-version join cannot bit-rot.
"""

import argparse
import json
import sys

JOIN_KEY = ("section", "structure", "universe_bits", "threads", "mix",
            "dist", "batch_size", "shards", "key_kind", "leaf_chunking",
            "adaptive_heights", "zipf_drift", "repeat")

# Per-key defaults applied when a file predates an axis, so older suites
# still join cleanly (batch_size was introduced in schema v4, shards in v5,
# key_kind in v6, leaf_chunking in v7, adaptive_heights and zipf_drift in
# v8; every earlier cell was implicitly unbatched, unsharded and u64-keyed,
# and ran whatever the default engine layout of its era was — which the v7
# suite records as its leaf_chunking=true cells, so that is the side pre-v7
# cells join.  adaptive_heights defaults FALSE, not the shipped v8 default:
# pre-v8 binaries had no height policy at all, and off reproduces that
# layout bit for bit, so false is the behavior-accurate fill.)
JOIN_DEFAULTS = {"batch_size": 1, "shards": 1, "key_kind": "u64",
                 "leaf_chunking": True, "adaptive_heights": False,
                 "zipf_drift": False}

# Note: the finger counters (finger_hits/misses, hops_finger_saved) are
# intentionally absent — a hit-rate shift is not by itself a regression;
# its cost shows up in node_hops / hops_top / hops_descent, which are.
# Of the schema-v4 cursor counters, cursor_redescends is compared (within a
# joined cell the batching axis is fixed, so more redescends on the same
# stream means retained brackets stopped serving — a silent constant
# regression); cursor_reuses is its complement and "more is better", which
# this worse-when-higher comparator cannot express, so it stays report-only.
# The schema-v8 policy counters (adapt_checks, promotions, demotions) are
# likewise excluded from rate gating: they tally policy activity, which
# scales with workload skew, not with code quality — more promotions on a
# hotter stream is the policy working, not a regression.
RATE_COUNTERS = ("hash_probes", "probes_lookup", "probes_chain",
                 "probes_binsearch", "node_hops", "hops_top",
                 "hops_descent", "walk_fallbacks", "restarts",
                 "cursor_redescends")

# Schema-v7 leaf counters, compared only on single-thread u64 cells: the
# modeled bytes_touched / chunk_scans rates are deterministic there, while
# under concurrency the seqlock retry and maintenance-skip paths make them
# interleaving-dependent (and the bytes16 instantiation is still
# report-only, like its step counts).  chunk_splits / chunk_merges are
# intentionally absent: their rate is a property of the key stream's churn,
# not a cost, and "more merges" is not by itself worse.
LEAF_RATE_COUNTERS = ("bytes_touched", "chunk_scans")


def cells_of(doc):
    cells = {}
    for cell in doc.get("cells", []):
        key = tuple(cell.get(k, JOIN_DEFAULTS.get(k)) for k in JOIN_KEY)
        cells[key] = cell
    return cells


def load_cells(path):
    with open(path) as f:
        doc = json.load(f)
    return doc, cells_of(doc)


def self_test():
    """Unit test of the cross-version join: a pre-v5 cell (no `shards` key)
    must land on the v5 cell with shards == 1 and on nothing else; a pre-v6
    cell (no `key_kind`) must land on the v6 cell with key_kind == "u64" and
    never on a bytes16 cell."""
    def cell(**kw):
        c = {"section": "grid", "structure": "skiptrie", "universe_bits": 32,
             "threads": 1, "mix": "balanced", "dist": "uniform", "repeat": 0,
             "total_ops": 100, "steps_per_op": {"search": 5.0, "total": 9.0},
             "steps": {"node_hops": 300, "hash_probes": 200}}
        c.update(kw)
        return c

    # v4 baseline: no `shards` axis at all (and one cell without batch_size,
    # exercising the older default too).
    v4 = {"schema_version": 4, "cells": [
        cell(batch_size=1),
        cell(batch_size=16),
        cell(dist="zipf"),  # no batch_size key -> defaults to 1
    ]}
    # v5 candidate: every cell carries shards; one sharded cell is new.
    v5 = {"schema_version": 5, "cells": [
        cell(batch_size=1, shards=1,
             steps_per_op={"search": 5.5, "total": 9.5}),
        cell(batch_size=16, shards=1),
        cell(dist="zipf", batch_size=1, shards=1),
        cell(batch_size=1, shards=4, structure="sharded"),
    ]}
    base, cand = cells_of(v4), cells_of(v5)
    shared = set(base) & set(cand)
    assert len(shared) == 3, \
        "expected all 3 v4 cells to join v5 shards=1 cells, got %d" % \
        len(shared)
    si = JOIN_KEY.index("shards")
    assert all(k[si] == 1 for k in shared), "v4 cells must join as shards=1"
    unmatched = set(cand) - set(base)
    assert len(unmatched) == 1 and next(iter(unmatched))[si] == 4, \
        "the shards=4 cell must NOT join any v4 cell"
    # --max-shards filtering keeps only shards <= N.
    kept = [k for k in cand if k[si] is not None and k[si] <= 1]
    assert len(kept) == 3, "--max-shards 1 must drop exactly the 4-shard cell"
    # Joined metrics compare the same named counters on both sides.
    joined_key = next(k for k in shared if k[JOIN_KEY.index("dist")] ==
                      "uniform" and k[JOIN_KEY.index("batch_size")] == 1)
    mb, mc = metrics_of(base[joined_key]), metrics_of(cand[joined_key])
    assert mb["steps_per_op.search"] == 5.0
    assert abs(mc["steps_per_op.search"] - 5.5) < 1e-9
    assert "steps.node_hops/op" in mb and "steps.node_hops/op" in mc

    # v5 -> v6: the key_kind axis.  A v5 cell (no key_kind) joins the v6
    # u64 cell; the bytes16 twin of the same cell must stay unmatched.
    v6 = {"schema_version": 6, "cells": [
        cell(batch_size=1, shards=1, key_kind="u64"),
        cell(batch_size=1, shards=1, key_kind="bytes16",
             section="bytes16"),
        cell(batch_size=1, shards=1, key_kind="bytes16"),  # same axes, wide
    ]}
    cand6 = cells_of(v6)
    shared6 = set(cells_of(v5)) & set(cand6)
    ki = JOIN_KEY.index("key_kind")
    assert len(shared6) == 1 and next(iter(shared6))[ki] == "u64", \
        "a pre-v6 cell must join exactly the key_kind='u64' v6 cell"
    # --key-kind filtering keeps only the named instantiation.
    kept6 = [k for k in cand6 if k[ki] == "u64"]
    assert len(kept6) == 1, "--key-kind u64 must drop both bytes16 cells"

    # v6 -> v7: the leaf_chunking axis.  A v6 cell (no leaf_chunking key)
    # joins exactly the v7 cell with leaf_chunking == True; the chunking-off
    # twin must stay unmatched.  The v7 leaf counters are compared on the
    # single-thread u64 cell and suppressed on a 4-thread twin.
    v6b = {"schema_version": 6, "cells": [
        cell(batch_size=1, shards=1, key_kind="u64"),
    ]}
    v7 = {"schema_version": 7, "cells": [
        cell(batch_size=1, shards=1, key_kind="u64", leaf_chunking=True,
             steps={"node_hops": 300, "hash_probes": 200,
                    "bytes_touched": 6400, "chunk_scans": 60}),
        cell(batch_size=1, shards=1, key_kind="u64", leaf_chunking=False),
        cell(batch_size=1, shards=1, key_kind="u64", leaf_chunking=True,
             threads=4,
             steps={"node_hops": 300, "bytes_touched": 6400}),
    ]}
    cand7 = cells_of(v7)
    shared7 = set(cells_of(v6b)) & set(cand7)
    li = JOIN_KEY.index("leaf_chunking")
    assert len(shared7) == 1 and next(iter(shared7))[li] is True, \
        "a pre-v7 cell must join exactly the leaf_chunking=True v7 cell"
    m1 = metrics_of(cand7[next(iter(shared7))])
    assert abs(m1["steps.bytes_touched/op"] - 64.0) < 1e-9
    assert "steps.chunk_scans/op" in m1
    mt = metrics_of(next(c for c in v7["cells"] if c.get("threads") == 4))
    assert "steps.bytes_touched/op" not in mt, \
        "leaf counters must be gated off multi-thread cells"

    # v7 -> v8: the adaptive_heights / zipf_drift axes.  A v7 cell (neither
    # key present) joins exactly the v8 cell with adaptive_heights == False
    # and zipf_drift == False; the adaptive-on twin and the drift twin must
    # stay unmatched, and the v8 policy counters must never enter the gated
    # metric set.
    v7b = {"schema_version": 7, "cells": [
        cell(batch_size=1, shards=1, key_kind="u64", leaf_chunking=True),
    ]}
    v8 = {"schema_version": 8, "cells": [
        cell(batch_size=1, shards=1, key_kind="u64", leaf_chunking=True,
             adaptive_heights=False, zipf_drift=False),
        cell(batch_size=1, shards=1, key_kind="u64", leaf_chunking=True,
             adaptive_heights=True, zipf_drift=False,
             steps={"node_hops": 250, "hash_probes": 200,
                    "adapt_checks": 12, "promotions": 3, "demotions": 1}),
        cell(batch_size=1, shards=1, key_kind="u64", leaf_chunking=True,
             adaptive_heights=True, zipf_drift=True),
    ]}
    cand8 = cells_of(v8)
    shared8 = set(cells_of(v7b)) & set(cand8)
    ai = JOIN_KEY.index("adaptive_heights")
    di = JOIN_KEY.index("zipf_drift")
    assert len(shared8) == 1, \
        "a pre-v8 cell must join exactly one v8 cell, got %d" % len(shared8)
    k8 = next(iter(shared8))
    assert k8[ai] is False and k8[di] is False, \
        "a pre-v8 cell must join the adaptive_heights=False/zipf_drift=False" \
        " v8 cell"
    m8 = metrics_of(next(c for c in v8["cells"] if c.get("adaptive_heights")
                         and not c.get("zipf_drift")))
    assert not any("promotions" in n or "demotions" in n or
                   "adapt_checks" in n for n in m8), \
        "policy counters must be excluded from rate gating"
    print("compare_bench --self-test: ok (join v4->v5->v6->v7->v8, "
          "shards/key_kind/leaf_chunking/adaptive_heights defaults, "
          "--max-shards/--key-kind filters, single-thread leaf-counter "
          "gate, policy-counter exclusion)")
    return 0


def metrics_of(cell):
    """Flatten one cell into {metric_name: per-op value}."""
    out = {}
    spo = cell.get("steps_per_op", {})
    for name in ("search", "total"):
        if name in spo:
            out["steps_per_op.%s" % name] = spo[name]
    ops = cell.get("total_ops", 0)
    steps = cell.get("steps", {})
    if ops:
        for name in RATE_COUNTERS:
            if name in steps:
                out["steps.%s/op" % name] = steps[name] / ops
        if (cell.get("threads", 1) == 1 and
                cell.get("key_kind", "u64") == "u64"):
            for name in LEAF_RATE_COUNTERS:
                if name in steps:
                    out["steps.%s/op" % name] = steps[name] / ops
    pred = cell.get("per_op", {}).get("predecessor")
    if pred and "search_steps_per_op" in pred:
        out["per_op.predecessor.search_steps_per_op"] = \
            pred["search_steps_per_op"]
    return out


def main():
    ap = argparse.ArgumentParser(
        description="diff two BENCH_suite.json files on steps/op and "
                    "probe counters")
    ap.add_argument("baseline", nargs="?", help="older suite JSON")
    ap.add_argument("candidate", nargs="?", help="newer suite JSON")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in join unit test and exit")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative worsening that counts as a regression "
                         "(default 0.10 = 10%%)")
    ap.add_argument("--min-rate", type=float, default=0.05,
                    help="ignore metrics below this per-op rate in both "
                         "files (noise floor, default 0.05)")
    ap.add_argument("--fail-on-regress", action="store_true",
                    help="exit 1 when regressions are found (default: "
                         "report only)")
    ap.add_argument("--max-threads", type=int, default=None,
                    help="only compare cells with threads <= N (multi-"
                         "thread step counts vary with interleaving and "
                         "host parallelism; single-thread cells are "
                         "deterministic up to cell order)")
    ap.add_argument("--max-shards", type=int, default=None,
                    help="only compare cells with shards <= N (multi-shard "
                         "service cells interleave across workers; the "
                         "shards=1 cells are the deterministic ones)")
    ap.add_argument("--key-kind", default=None,
                    help="only compare cells with this key_kind (e.g. "
                         "'u64': the gated fast path whose step counts are "
                         "pinned; 'bytes16' cells stay report-only until "
                         "their variance is characterized)")
    ap.add_argument("--top", type=int, default=20,
                    help="show at most N worst regressions / best "
                         "improvements (default 20)")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.baseline is None or args.candidate is None:
        ap.error("baseline and candidate are required unless --self-test")

    base_doc, base = load_cells(args.baseline)
    cand_doc, cand = load_cells(args.candidate)

    shared = sorted(set(base) & set(cand), key=lambda k: tuple(map(str, k)))
    if args.max_threads is not None:
        ti = JOIN_KEY.index("threads")
        shared = [k for k in shared
                  if k[ti] is not None and k[ti] <= args.max_threads]
    if args.max_shards is not None:
        si = JOIN_KEY.index("shards")
        shared = [k for k in shared
                  if k[si] is not None and k[si] <= args.max_shards]
    if args.key_kind is not None:
        ki = JOIN_KEY.index("key_kind")
        shared = [k for k in shared if k[ki] == args.key_kind]
    if not shared:
        print("compare_bench: no joinable cells between %s and %s "
              "(different axes?)" % (args.baseline, args.candidate))
        print("  baseline: %d cells, schema v%s" %
              (len(base), base_doc.get("schema_version")))
        print("  candidate: %d cells, schema v%s" %
              (len(cand), cand_doc.get("schema_version")))
        return 0

    regressions = []   # (rel_change, key, metric, old, new)
    improvements = []
    new_metrics = set()
    for key in shared:
        mb = metrics_of(base[key])
        mc = metrics_of(cand[key])
        for name, new_v in mc.items():
            if name not in mb:
                new_metrics.add(name)
                continue
            old_v = mb[name]
            if max(old_v, new_v) < args.min_rate:
                continue
            if old_v <= 0:
                continue
            rel = (new_v - old_v) / old_v
            row = (rel, key, name, old_v, new_v)
            if rel > args.threshold:
                regressions.append(row)
            elif rel < -args.threshold:
                improvements.append(row)

    def fmt(row):
        rel, key, name, old_v, new_v = row
        cell = "/".join(str(v) for v in key)
        return "  %+7.1f%%  %-45s %s: %.3f -> %.3f" % (
            rel * 100, name, cell, old_v, new_v)

    print("compare_bench: %d joinable cells "
          "(baseline %s @ %s, candidate %s @ %s)" %
          (len(shared), args.baseline, base_doc.get("git_rev", "?"),
           args.candidate, cand_doc.get("git_rev", "?")))
    if new_metrics:
        print("metrics only in candidate (schema additions, not compared): "
              + ", ".join(sorted(new_metrics)))

    regressions.sort(key=lambda r: -r[0])
    improvements.sort(key=lambda r: r[0])
    print("\n%d regressions beyond %.0f%%:" %
          (len(regressions), args.threshold * 100))
    for row in regressions[:args.top]:
        print(fmt(row))
    if len(regressions) > args.top:
        print("  ... and %d more" % (len(regressions) - args.top))
    print("\n%d improvements beyond %.0f%%:" %
          (len(improvements), args.threshold * 100))
    for row in improvements[:args.top]:
        print(fmt(row))
    if len(improvements) > args.top:
        print("  ... and %d more" % (len(improvements) - args.top))

    if regressions and args.fail_on_regress:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
