// skiptrie_cli — run ad-hoc workloads against the SkipTrie from the shell.
//
//   skiptrie_cli [--bits B] [--threads N] [--ops N] [--prefill N]
//                [--space N] [--mix read|read-heavy|balanced|write-heavy]
//                [--dist uniform|zipf|clustered|sequential]
//                [--mode dcss|cas] [--seed S] [--batch N] [--validate]
//
// --batch N > 1 routes every operation through the batched API (DESIGN.md
// §3.7): each drawn op type issues N keys through one DescentCursor.
//
// Prints the workload summary (throughput + the paper's step counters) and,
// with --validate, runs the structural invariant checker afterwards.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/bitops.h"
#include "core/skiptrie.h"
#include "core/validate.h"
#include "workload/driver.h"

using namespace skiptrie;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--bits B] [--threads N] [--ops N] [--prefill N]\n"
               "          [--space N] [--mix M] [--dist D] [--mode dcss|cas]\n"
               "          [--seed S] [--batch N] [--validate]\n",
               argv0);
  std::exit(2);
}

uint64_t parse_u64(const char* s, const char* flag) {
  char* end = nullptr;
  const uint64_t v = std::strtoull(s, &end, 0);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "bad value for %s: %s\n", flag, s);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  WorkloadConfig wc;
  wc.threads = 2;
  wc.ops_per_thread = 100000;
  wc.key_space = 1u << 20;
  wc.prefill = 1u << 14;
  bool validate = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (a == "--bits") {
      cfg.universe_bits = static_cast<uint32_t>(parse_u64(next(), "--bits"));
    } else if (a == "--threads") {
      wc.threads = static_cast<uint32_t>(parse_u64(next(), "--threads"));
    } else if (a == "--ops") {
      wc.ops_per_thread = parse_u64(next(), "--ops");
    } else if (a == "--prefill") {
      wc.prefill = parse_u64(next(), "--prefill");
    } else if (a == "--space") {
      wc.key_space = parse_u64(next(), "--space");
    } else if (a == "--seed") {
      wc.seed = parse_u64(next(), "--seed");
    } else if (a == "--batch") {
      wc.batch_size = static_cast<uint32_t>(parse_u64(next(), "--batch"));
    } else if (a == "--mix") {
      const std::string m = next();
      if (m == "read") wc.mix = OpMix::read_only();
      else if (m == "read-heavy") wc.mix = OpMix::read_heavy();
      else if (m == "balanced") wc.mix = OpMix::balanced();
      else if (m == "write-heavy") wc.mix = OpMix::write_heavy();
      else usage(argv[0]);
    } else if (a == "--dist") {
      const std::string d = next();
      if (d == "uniform") wc.dist = KeyDist::kUniform;
      else if (d == "zipf") wc.dist = KeyDist::kZipf;
      else if (d == "clustered") wc.dist = KeyDist::kClustered;
      else if (d == "sequential") wc.dist = KeyDist::kSequential;
      else usage(argv[0]);
    } else if (a == "--mode") {
      const std::string m = next();
      if (m == "dcss") cfg.dcss_mode = DcssMode::kDcss;
      else if (m == "cas") cfg.dcss_mode = DcssMode::kCasFallback;
      else usage(argv[0]);
    } else if (a == "--validate") {
      validate = true;
    } else {
      usage(argv[0]);
    }
  }
  if (cfg.universe_bits < 4 || cfg.universe_bits > 64) usage(argv[0]);
  const uint64_t maxk = universe_mask(cfg.universe_bits);
  if (wc.key_space == 0 || wc.key_space - 1 > maxk) wc.key_space = maxk;

  SkipTrie t(cfg);
  const WorkloadResult r = run_workload(t, wc);
  std::printf("B=%u threads=%u mode=%s dist=%s batch=%u\n",
              cfg.universe_bits, wc.threads,
              cfg.dcss_mode == DcssMode::kDcss ? "dcss" : "cas",
              key_dist_name(wc.dist), wc.batch_size);
  std::printf("%s\n", r.summary().c_str());
  std::printf("final size=%zu trie_entries=%zu\n", t.size(),
              t.trie().entry_count());

  if (validate) {
    const auto errors = validate_structure(t);
    if (errors.empty()) {
      std::printf("validate: OK\n");
    } else {
      std::printf("validate: %zu violations\n", errors.size());
      for (const auto& e : errors) std::printf("  %s\n", e.c_str());
      return 1;
    }
  }
  return 0;
}
