#!/usr/bin/env bash
# Build (Release) and run the unified benchmark suite, writing BENCH_suite.json
# at the repo root.  All flags pass through to bench_suite; the useful ones:
#
#   tools/run_bench.sh                 full sweep -> BENCH_suite.json
#   tools/run_bench.sh --quick         tiny axes  -> BENCH_suite_quick.json
#   tools/run_bench.sh --out FILE      choose the output path
#
# Compare two suites by joining their "cells" arrays on
# (section, structure, universe_bits, threads, mix, dist, repeat); see
# README "Benchmarks".
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-bench}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DSKIPTRIE_BUILD_TESTS=OFF \
  -DSKIPTRIE_BUILD_EXAMPLES=OFF \
  -DSKIPTRIE_BUILD_TOOLS=OFF \
  -DSKIPTRIE_BUILD_BENCH=ON >/dev/null
cmake --build "$BUILD_DIR" --target bench_suite -j"$(nproc)" >/dev/null

rev="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
if ! git diff --quiet 2>/dev/null || ! git diff --cached --quiet 2>/dev/null; then
  rev="${rev}-dirty"
fi

SKIPTRIE_GIT_REV="$rev" exec "$BUILD_DIR/bench/bench_suite" "$@"
