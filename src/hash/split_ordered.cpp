#include "hash/split_ordered.h"

#include <cassert>

#include "common/random.h"
#include "common/stats.h"

namespace skiptrie {

namespace {

inline uint64_t reverse_bits(uint64_t v) {
  v = ((v >> 1) & 0x5555555555555555ull) | ((v & 0x5555555555555555ull) << 1);
  v = ((v >> 2) & 0x3333333333333333ull) | ((v & 0x3333333333333333ull) << 2);
  v = ((v >> 4) & 0x0f0f0f0f0f0f0f0full) | ((v & 0x0f0f0f0f0f0f0f0full) << 4);
  return __builtin_bswap64(v);
}

}  // namespace

template <typename Traits>
uint64_t BasicSplitOrderedMap<Traits>::hash_of(Ikey key) {
  return Traits::hash_mix(key);
}

template <typename Traits>
uint64_t BasicSplitOrderedMap<Traits>::regular_so_key(Ikey key) {
  // Reversed hash with the (now-) least significant bit forced to 1 so that
  // regular nodes always sort after the dummy of their bucket.
  return reverse_bits(hash_of(key)) | 1ull;
}

template <typename Traits>
uint64_t BasicSplitOrderedMap<Traits>::dummy_so_key(uint64_t bucket) {
  return reverse_bits(bucket);  // LSB clear: sorts before bucket's items
}

template <typename Traits>
size_t BasicSplitOrderedMap<Traits>::parent_bucket(size_t bucket) {
  assert(bucket > 0);
  // Clear the most significant set bit: the bucket this one split from.
  size_t msb = bucket;
  msb |= msb >> 1; msb |= msb >> 2; msb |= msb >> 4;
  msb |= msb >> 8; msb |= msb >> 16; msb |= msb >> 32;
  return bucket & (msb >> 1);
}

template <typename Traits>
BasicSplitOrderedMap<Traits>::BasicSplitOrderedMap(DcssContext ctx,
                                                   size_t max_buckets)
    : ctx_(ctx), max_buckets_(max_buckets) {
  for (auto& s : segments_) s.store(nullptr, std::memory_order_relaxed);
  list_head_ = new HNode{0, Ikey(0), 0, {0}};
  dummies_.fetch_add(1, std::memory_order_relaxed);
  auto* seg = new BucketSlot[kSegSize];
  for (size_t i = 0; i < kSegSize; ++i) seg[i].store(nullptr, std::memory_order_relaxed);
  seg[0].store(list_head_, std::memory_order_relaxed);
  segments_[0].store(seg, std::memory_order_release);
}

template <typename Traits>
BasicSplitOrderedMap<Traits>::~BasicSplitOrderedMap() {
  // Single-threaded teardown: free every list node, then the directory.
  HNode* n = list_head_;
  while (n != nullptr) {
    HNode* next = unpack_ptr<HNode>(n->next.load(std::memory_order_relaxed));
    delete n;
    n = next;
  }
  for (auto& s : segments_) {
    delete[] s.load(std::memory_order_relaxed);
  }
}

template <typename Traits>
auto BasicSplitOrderedMap<Traits>::slot_for(size_t bucket) const
    -> BucketSlot* {
  const size_t seg_idx = bucket >> kSegBits;
  assert(seg_idx < kMaxSegments);
  BucketSlot* seg = segments_[seg_idx].load(std::memory_order_acquire);
  if (seg == nullptr) {
    auto* fresh = new BucketSlot[kSegSize];
    for (size_t i = 0; i < kSegSize; ++i)
      fresh[i].store(nullptr, std::memory_order_relaxed);
    BucketSlot* expect = nullptr;
    if (segments_[seg_idx].compare_exchange_strong(
            expect, fresh, std::memory_order_acq_rel)) {
      seg = fresh;
    } else {
      delete[] fresh;
      seg = expect;
    }
  }
  return &seg[bucket & (kSegSize - 1)];
}

template <typename Traits>
auto BasicSplitOrderedMap<Traits>::bucket_head(size_t bucket) const -> HNode* {
  BucketSlot* slot = slot_for(bucket);
  HNode* head = slot->load(std::memory_order_acquire);
  if (head != nullptr) return head;
  return initialize_bucket(bucket);
}

template <typename Traits>
auto BasicSplitOrderedMap<Traits>::initialize_bucket(size_t bucket) const
    -> HNode* {
  // Recursively make sure the parent's dummy exists, then splice this
  // bucket's dummy into the list after it.
  HNode* parent_head = bucket_head(parent_bucket(bucket));
  const uint64_t so = dummy_so_key(bucket);

  HNode* dummy = nullptr;
  HNode* fresh = nullptr;
  for (;;) {
    FindResult fr = find(parent_head, so, Ikey(0), /*cleanup=*/true);
    if (fr.curr != nullptr && fr.curr->so_key == so &&
        fr.curr->key == Ikey(0)) {
      dummy = fr.curr;  // another thread already inserted it
      break;
    }
    if (fresh == nullptr) {
      fresh = new HNode{so, Ikey(0), 0, {0}};
      dummies_.fetch_add(1, std::memory_order_relaxed);
    }
    fresh->next.store(pack_ptr(fr.curr), std::memory_order_relaxed);
    if (counted_cas(*fr.prev, fr.curr_word, pack_ptr(fresh))) {
      dummy = fresh;
      fresh = nullptr;
      break;
    }
  }
  if (fresh != nullptr) {
    dummies_.fetch_sub(1, std::memory_order_relaxed);
    delete fresh;  // never published
  }
  BucketSlot* slot = slot_for(bucket);
  HNode* expect = nullptr;
  slot->compare_exchange_strong(expect, dummy, std::memory_order_acq_rel);
  return slot->load(std::memory_order_acquire);
}

template <typename Traits>
auto BasicSplitOrderedMap<Traits>::find(HNode* head, uint64_t so_key, Ikey key,
                                        bool cleanup) const -> FindResult {
  auto& c = tls_counters();
  bool first_visit = true;
retry:
  std::atomic<uint64_t>* prev = &head->next;
  uint64_t prev_word = dcss_read(*prev);
  for (;;) {
    HNode* curr = unpack_ptr<HNode>(prev_word);
    if (curr == nullptr) {
      return FindResult{prev, nullptr, prev_word};
    }
    c.hash_probes++;
    // The first node off the bucket head is the ideal single probe; every
    // further visit is chain slack (load factor, dummies, marked nodes).
    if (!first_visit) c.probes_chain++;
    first_visit = false;
    uint64_t next_word = dcss_read(curr->next);
    if (is_marked(next_word)) {
      // curr is logically deleted.
      if (cleanup) {
        if (!counted_cas(*prev, prev_word, without_tags(next_word))) {
          goto retry;  // neighborhood changed; restart from head
        }
        // The unlinking CAS winner owns reclamation: the CAS could only
        // succeed because *prev was unmarked, i.e. curr was still on the
        // live chain and is now off it.
        ctx_.ebr->retire_delete(curr);
        prev_word = without_tags(next_word);
        continue;
      }
      // Read-only path: skip over it.  We keep `prev` where it is; only the
      // `curr` chain advances.  (prev_word no longer matches *prev, but
      // read-only callers never CAS.)
      prev_word = pack_ptr(unpack_ptr<HNode>(next_word));
      continue;
    }
    if (!node_less(curr->so_key, curr->key, so_key, key)) {
      return FindResult{prev, curr, prev_word};
    }
    prev = &curr->next;
    prev_word = next_word;
  }
}

template <typename Traits>
bool BasicSplitOrderedMap<Traits>::insert(Ikey key, uint64_t value,
                                          std::atomic<uint64_t>* guard,
                                          uint64_t guard_expected,
                                          bool* guard_failed) {
  EbrDomain::Guard g(*ctx_.ebr);
  auto& c = tls_counters();
  const uint64_t so = regular_so_key(key);
  const size_t bucket =
      hash_of(key) & (buckets_.load(std::memory_order_acquire) - 1);
  HNode* head = bucket_head(bucket);

  HNode* fresh = nullptr;
  for (;;) {
    FindResult fr = find(head, so, key, /*cleanup=*/true);
    if (fr.curr != nullptr && fr.curr->so_key == so && fr.curr->key == key) {
      if (fresh != nullptr) delete fresh;
      return false;  // already present
    }
    if (fresh == nullptr) fresh = new HNode{so, key, value, {0}};
    fresh->next.store(pack_ptr(fr.curr), std::memory_order_relaxed);
    c.hash_updates++;
    if (guard == nullptr) {
      if (counted_cas(*fr.prev, fr.curr_word, pack_ptr(fresh))) break;
    } else {
      DcssResult r = dcss(ctx_, *fr.prev, fr.curr_word, pack_ptr(fresh),
                          *guard, guard_expected);
      if (r.success) break;
      if (r.guard_failed) {
        if (guard_failed != nullptr) *guard_failed = true;
        delete fresh;
        return false;
      }
    }
    // Link CAS failed: retry the search.
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  maybe_grow();
  return true;
}

template <typename Traits>
std::optional<uint64_t> BasicSplitOrderedMap<Traits>::lookup(Ikey key) const {
  EbrDomain::Guard g(*ctx_.ebr);
  tls_counters().probes_lookup++;
  const uint64_t so = regular_so_key(key);
  const size_t bucket =
      hash_of(key) & (buckets_.load(std::memory_order_acquire) - 1);
  // Initialize the bucket writer-style if needed (Shalev & Shavit's own
  // lookup does the same).  The previous walk-from-nearest-initialized-
  // ancestor scheme kept lookups write-free but degraded to scanning every
  // node between the ancestor's dummy and the target bucket — O(chain of
  // the whole uninitialized subtree) probes instead of O(1) expected.
  HNode* head = bucket_head(bucket);
  FindResult fr = find(head, so, key, /*cleanup=*/false);
  if (fr.curr != nullptr && fr.curr->so_key == so && fr.curr->key == key) {
    return fr.curr->value;
  }
  return std::nullopt;
}

template <typename Traits>
std::optional<uint64_t> BasicSplitOrderedMap<Traits>::erase(Ikey key) {
  EbrDomain::Guard g(*ctx_.ebr);
  auto& c = tls_counters();
  const uint64_t so = regular_so_key(key);
  const size_t bucket =
      hash_of(key) & (buckets_.load(std::memory_order_acquire) - 1);
  HNode* head = bucket_head(bucket);
  for (;;) {
    FindResult fr = find(head, so, key, /*cleanup=*/true);
    if (fr.curr == nullptr || fr.curr->so_key != so || fr.curr->key != key) {
      return std::nullopt;
    }
    const uint64_t next_word = dcss_read(fr.curr->next);
    if (is_marked(next_word)) continue;  // racing delete; re-find
    c.hash_updates++;
    if (!counted_cas(fr.curr->next, next_word, with_mark(next_word))) {
      continue;  // lost the mark race or next changed; re-find
    }
    const uint64_t value = fr.curr->value;
    // Physical unlink; on failure a later find() cleans up.
    if (counted_cas(*fr.prev, fr.curr_word, without_tags(next_word))) {
      ctx_.ebr->retire_delete(fr.curr);
    }
    count_.fetch_sub(1, std::memory_order_relaxed);
    return value;
  }
}

template <typename Traits>
bool BasicSplitOrderedMap<Traits>::compare_and_delete(Ikey key,
                                                      uint64_t expected_value) {
  EbrDomain::Guard g(*ctx_.ebr);
  auto& c = tls_counters();
  const uint64_t so = regular_so_key(key);
  const size_t bucket =
      hash_of(key) & (buckets_.load(std::memory_order_acquire) - 1);
  HNode* head = bucket_head(bucket);
  for (;;) {
    FindResult fr = find(head, so, key, /*cleanup=*/true);
    if (fr.curr == nullptr || fr.curr->so_key != so || fr.curr->key != key) {
      return false;
    }
    if (fr.curr->value != expected_value) return false;  // value is immutable
    const uint64_t next_word = dcss_read(fr.curr->next);
    if (is_marked(next_word)) return false;  // someone else deleted it
    c.hash_updates++;
    if (!counted_cas(fr.curr->next, next_word, with_mark(next_word))) {
      continue;
    }
    if (counted_cas(*fr.prev, fr.curr_word, without_tags(next_word))) {
      ctx_.ebr->retire_delete(fr.curr);
    }
    count_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
}

template <typename Traits>
void BasicSplitOrderedMap<Traits>::maybe_grow() {
  // Grow to the smallest power of two satisfying count <= buckets *
  // kLoadFactor (capped at max_buckets_), not just one doubling: a table
  // that fell behind a prefill burst (or lost growth CASes to races) must
  // reach the load-factor target on the next insert, or chains stay long
  // and every probe pays for it.
  const size_t count = count_.load(std::memory_order_relaxed);
  for (;;) {
    const size_t buckets = buckets_.load(std::memory_order_acquire);
    if (buckets >= max_buckets_ || count <= buckets * kLoadFactor) return;
    size_t target = buckets;
    while (target < max_buckets_ && count > target * kLoadFactor) target *= 2;
    size_t expect = buckets;
    if (buckets_.compare_exchange_strong(expect, target,
                                         std::memory_order_acq_rel)) {
      return;
    }
    // Lost to a concurrent grower; re-check whether its target suffices.
  }
}

template <typename Traits>
size_t BasicSplitOrderedMap<Traits>::approx_bytes() const {
  size_t segs = 0;
  for (const auto& s : segments_) {
    if (s.load(std::memory_order_relaxed) != nullptr) segs++;
  }
  return (count_.load(std::memory_order_relaxed) +
          dummies_.load(std::memory_order_relaxed)) *
             sizeof(HNode) +
         segs * kSegSize * sizeof(BucketSlot);
}

template class BasicSplitOrderedMap<U64Traits>;
template class BasicSplitOrderedMap<Bytes16Traits>;

}  // namespace skiptrie
