// Split-ordered lock-free resizable hash table (Shalev & Shavit, 2003).
//
// The SkipTrie stores its x-fast-trie prefix nodes in this table (paper §1,
// §4 "The hash table").  The construction: one lock-free ordered linked list
// holds all items, sorted by the *split-order* key — the bit reversal of the
// item's hash (regular items get the LSB set, bucket dummies keep it clear).
// A lazily-initialized directory of bucket heads points at dummy nodes inside
// the list; doubling the bucket count never moves items ("recursive split
// ordering"), it only adds new dummies, so resizing is lock-free.
//
// Beyond the classic interface we provide:
//  - compareAndDelete(key, expected_value): remove the entry iff it currently
//    maps to expected_value (required by the paper, §4 "The hash table").
//  - insert(..., guard): the linking CAS is performed as a DCSS conditioned
//    on an external guard word (DESIGN.md §3.5(1) — used so a trie entry can
//    never be installed pointing at a marked skiplist node).
//
// The map is a template over KeyTraits (DESIGN.md §6): keys are the traits'
// ikey word (the trie stores encoded prefixes, which need W+1 value bits),
// hashed through Traits::hash_mix into the 64-bit split-order key; values
// stay uint64_t (packed TreeNode pointers) and are immutable per entry.
// `using SplitOrderedMap = BasicSplitOrderedMap<U64Traits>` keeps the
// historical name; U64Traits::hash_mix is the seed's mix64, byte for byte.
// All operations are lock-free and internally pin the EBR domain (reentrant
// with callers' pins).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "common/key_traits.h"
#include "dcss/dcss.h"
#include "reclaim/ebr.h"

namespace skiptrie {

template <typename Traits>
class BasicSplitOrderedMap {
 public:
  using Ikey = typename Traits::ikey_type;

  struct HNode {
    uint64_t so_key;              // split-order key (reversed hash | lsb)
    Ikey key;                     // user key (0 for dummies)
    uint64_t value;               // user value (immutable)
    std::atomic<uint64_t> next;   // tagged word: HNode* | kMark | kDesc
  };

  // ctx.ebr is used both for node reclamation and DCSS descriptors.
  explicit BasicSplitOrderedMap(DcssContext ctx, size_t max_buckets = 1u << 20);
  ~BasicSplitOrderedMap();

  BasicSplitOrderedMap(const BasicSplitOrderedMap&) = delete;
  BasicSplitOrderedMap& operator=(const BasicSplitOrderedMap&) = delete;

  // Insert key -> value.  Returns false if key is already present.
  // When guard != nullptr the linking CAS becomes
  //   DCSS(link, expected, new_node, *guard, guard_expected)
  // and the insert fails (returns false, *guard_failed=true if non-null)
  // when the guard word no longer holds guard_expected.
  bool insert(Ikey key, uint64_t value,
              std::atomic<uint64_t>* guard = nullptr,
              uint64_t guard_expected = 0, bool* guard_failed = nullptr);

  // Lookup.  The list walk itself is read-only — it skips marked nodes
  // rather than helping unlink them (paper §1, choice (2): searches do not
  // eagerly help) — but an uninitialized bucket directory slot IS
  // initialized writer-style (splice the dummy, publish the slot), exactly
  // as in Shalev & Shavit's original.  Without that, a lookup landing on an
  // uninitialized bucket scans every node between the nearest initialized
  // ancestor's dummy and the target position, inflating the probe count far
  // past the O(1)-expected chain walk; initialization is a one-time cost
  // per bucket, amortized O(1).
  std::optional<uint64_t> lookup(Ikey key) const;

  // Remove key unconditionally.  Returns the removed value if any.
  std::optional<uint64_t> erase(Ikey key);

  // Remove key iff it currently maps to expected_value (paper's
  // compareAndDelete(p, n)).
  bool compare_and_delete(Ikey key, uint64_t expected_value);

  size_t size() const { return count_.load(std::memory_order_relaxed); }
  size_t bucket_count() const { return buckets_.load(std::memory_order_relaxed); }
  size_t dummy_count() const { return dummies_.load(std::memory_order_relaxed); }

  // Realized load factor: live entries per bucket.  maybe_grow targets
  // load_factor() <= kLoadFactor; exposed so benches can verify the table
  // kept up with prefill bursts.
  double load_factor() const {
    const size_t b = bucket_count();
    return b > 0 ? static_cast<double>(size()) / static_cast<double>(b) : 0.0;
  }

  // Bytes consumed by nodes + directory (space accounting for benches).
  size_t approx_bytes() const;

  // Visit every live (unmarked, regular) entry.  NOT a linearizable
  // snapshot; intended for quiescent teardown and validation.
  template <typename F>
  void for_each(F f) const {
    const HNode* n = list_head_;
    while (n != nullptr) {
      const uint64_t w = n->next.load(std::memory_order_acquire);
      if ((n->so_key & 1ull) != 0 && !is_marked(w)) f(n->key, n->value);
      n = unpack_ptr<HNode>(w);
    }
  }

 private:
  static constexpr size_t kSegBits = 10;
  static constexpr size_t kSegSize = 1ull << kSegBits;
  static constexpr size_t kMaxSegments = 1ull << 12;

 public:
  // Items per bucket before growing.  1 (not the classic 2): the x-fast
  // binary search pays a chain walk per probe, so chain slack multiplies
  // ~log B times per predecessor query; trading directory memory (8 bytes
  // per slot + one dummy per initialized bucket) for half the expected
  // chain length is the right side of the bargain here.
  static constexpr size_t kLoadFactor = 1;

 private:

  using BucketSlot = std::atomic<HNode*>;

  struct FindResult {
    std::atomic<uint64_t>* prev;  // word holding the link to curr
    HNode* curr;                  // first node with (so_key,key) >= target
    uint64_t curr_word;           // link value observed in *prev
  };

  static uint64_t hash_of(Ikey key);
  static uint64_t regular_so_key(Ikey key);
  static uint64_t dummy_so_key(uint64_t bucket);
  static bool node_less(uint64_t a_so, Ikey a_key, uint64_t b_so,
                        Ikey b_key) {
    return a_so < b_so || (a_so == b_so && a_key < b_key);
  }

  // const: callable from lookup() — bucket initialization mutates only the
  // directory and splices a dummy, never a caller-visible entry.
  BucketSlot* slot_for(size_t bucket) const;
  HNode* bucket_head(size_t bucket) const;    // initializes lazily
  HNode* initialize_bucket(size_t bucket) const;
  static size_t parent_bucket(size_t bucket);

  // Harris-style search in the list starting at `head` for (so_key,key);
  // unlinks marked nodes it passes (cleanup=true) or skips them (false).
  FindResult find(HNode* head, uint64_t so_key, Ikey key,
                  bool cleanup) const;

  void maybe_grow();

  DcssContext ctx_;
  const size_t max_buckets_;
  std::atomic<size_t> buckets_{2};
  std::atomic<size_t> count_{0};
  mutable std::atomic<size_t> dummies_{0};  // lookup() may initialize buckets
  mutable std::atomic<BucketSlot*> segments_[kMaxSegments];
  HNode* list_head_;  // dummy of bucket 0, so_key 0
};

// The historical u64 fast-path name.
using SplitOrderedMap = BasicSplitOrderedMap<U64Traits>;

}  // namespace skiptrie
