// Cache-conscious leaf chunks over level 0 of the skiplist (DESIGN.md §7).
//
// A leaf chunk is a cache-line-multiple sorted mini-array of (ikey, node)
// pairs indexing a contiguous run of the authoritative level-0 Harris list.
// Chunks form their own singly-linked, base-ordered list that partitions the
// ikey space: chunk c covers [c.base, succ(c).base).  They are a *hint
// index*, never authoritative state: every linearization point stays on the
// level-0 node list, writers maintain chunks strictly after linearizing, and
// every answer a chunk produces is re-validated by a level-0 `list_search`
// from the hinted node.  A stale, torn, lagging or recycled chunk therefore
// costs steps, never answers — the same contract as the finger and cursor
// (DESIGN.md §3.6–§3.7), which is what makes the chunking-on/off ablation
// equivalence hold by construction.
//
// Layout (one header line, then the key lines, then the node-pointer lines):
//
//   next     tagged LeafChunkT* (kMark = retired by a merge)
//   version  seqlock word; odd while a writer holds the chunk
//   base     inclusive lower coverage bound; head chunk holds ikey 0
//   id       self index into the manager's type-stable chunk table
//   occ      occupancy bitmap; invariant: occupied slots are the sorted
//            prefix 0..popcount(occ)-1, so occ == (1 << n) - 1
//   keys[K]  sorted ikeys; K = 16 for u64 ikeys, 8 for u128 (DESIGN.md §7.1)
//   nodes[K] the level-0 node each key was last indexed at
//
// Writers acquire the seqlock with a bounded CAS loop and *skip* the
// maintenance on exhaustion (counted; chunk content may lag, which is safe).
// Readers run the Boehm atomic-seqlock protocol — acquire version, relaxed
// data loads, acquire fence, re-read version — and fall back to the normal
// descent on validation failure.  All data words are atomics, so even a
// mis-validated read yields pointers into type-stable arena storage
// (DESIGN.md §3.3), never wild memory.
//
// Split: a full chunk is cut at its median key into a fresh chunk linked
// immediately after it, both halves held under their seqlocks for the whole
// move.  Merge: a chunk drained to <= kMergeMin keys has its survivors moved
// into its predecessor (always legal: the list is base-ordered), is
// Harris-marked on its own next word, unlinked under the predecessor's
// seqlock, and its id returned to a free list.  Chunk storage is never
// freed, so a stale id or pointer always lands on valid chunk storage; the
// version bump at retire/reuse invalidates in-flight seqlock reads.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/cacheline.h"
#include "common/key_traits.h"
#include "common/stats.h"
#include "skiplist/node.h"

namespace skiptrie {

template <typename Traits>
struct alignas(kCacheLine) LeafChunkT {
  using Ikey = typename Traits::ikey_type;
  using Node_t = NodeT<Ikey>;

  // Keys per chunk, sized to the ikey width: two cache lines of keys either
  // way (16 * 8B or 8 * 16B), so even a worst-case scan touches header +
  // 2 key lines + 1 node line regardless of traits.
  static constexpr uint32_t kKeys = sizeof(Ikey) == 8 ? 16 : 8;
  static constexpr uint64_t kFullOcc = (uint64_t(1) << kKeys) - 1;
  // How many keys share one cache line (8 for u64 ikeys, 4 for u128): the
  // unit of the exact per-scan bytes_touched accounting in pred_hint.
  static constexpr uint32_t kKeysPerLine =
      kCacheLine / sizeof(AtomicIkey<Ikey>);

  std::atomic<uint64_t> next{0};     // tagged LeafChunkT*; kMark = retired
  std::atomic<uint64_t> version{0};  // seqlock; odd = writer active
  AtomicIkey<Ikey> base;             // inclusive lower coverage bound
  uint32_t id = 0;                   // set once at slab creation, immutable
  std::atomic<uint64_t> occ{0};      // occupancy bitmap (sorted prefix)
  AtomicIkey<Ikey> keys[kKeys];
  std::atomic<Node_t*> nodes[kKeys];

  uint32_t count() const {
    return static_cast<uint32_t>(
        std::popcount(occ.load(std::memory_order_relaxed)));
  }
};

template <typename Traits>
class LeafChunkManager {
 public:
  using Ikey = typename Traits::ikey_type;
  using Node_t = NodeT<Ikey>;
  using Chunk = LeafChunkT<Traits>;

  // Modeled traffic of a whole-chunk rewrite (split): the header line plus
  // every key line.  Reads charge exactly what their scan touched instead
  // (see pred_hint).
  static constexpr uint64_t kScanBytes =
      kCacheLine * (2 + sizeof(AtomicIkey<Ikey>) * Chunk::kKeys / kCacheLine);
  // Merge when a chunk drains to this many keys or fewer (and the
  // predecessor has room for the survivors).
  static constexpr uint32_t kMergeMin = Chunk::kKeys / 8;

  LeafChunkManager();
  ~LeafChunkManager();

  LeafChunkManager(const LeafChunkManager&) = delete;
  LeafChunkManager& operator=(const LeafChunkManager&) = delete;

  // The chunk table: ids index type-stable storage, so any uint32 resolves
  // to either nullptr (never allocated) or a valid Chunk that validation
  // screens.  `hintw` parameters below take the node/cursor encoding
  // id + 1, with 0 meaning "no hint".
  Chunk* chunk(uint32_t id) const;
  Chunk* head() const { return head_; }

  // Covering chunk for x: start from the (validated) hint or the head chunk
  // and walk forward while the successor's base still admits x.  Bounded and
  // best-effort — the caller re-validates whatever it does with the result.
  // Counts kCacheLine into c.bytes_touched per chunk header crossed.  When
  // `prev` is non-null it receives the chunk the walk crossed immediately
  // before the returned one (nullptr if the walk never advanced) — the
  // lo==0 fallback in pred_hint reads its last slot.
  Chunk* find(Ikey x, uint32_t hintw, StepCounters& c,
              Chunk** prev = nullptr) const;

  // Result of a seqlock-validated in-chunk search.  `covered` is false when
  // find() could not reach a chunk covering x (walk bound, mid-walk merge);
  // `node` may be null even when covered (no indexed key < x in the chunk,
  // or seqlock contention) — callers fall back to their own level-0 start.
  // base/right are the racily-read coverage bounds [base, right), for
  // finger retention.
  struct HintResult {
    Node_t* node = nullptr;
    uint32_t idw = 0;
    Ikey base = Ikey(0);
    Ikey right = Ikey(0);
    bool covered = false;
  };

  // In-chunk predecessor search: the node of the largest indexed key < x in
  // the chunk covering x.  Counts one chunk_scans when a covering chunk is
  // scanned, and charges bytes_touched the exact lines the scan read: the
  // header line, the key lines the forward scan crossed before stopping,
  // and the answer's node-pointer line.
  HintResult pred_hint(Ikey x, uint32_t hintw, StepCounters& c) const;

  // Racy coverage screen for a retained hint id: true when that chunk
  // currently covers x (unmarked, base <= x < successor base).  Hint-grade.
  bool covers_hint(uint32_t hintw, Ikey x) const {
    if (hintw == 0) return false;
    Chunk* ch = chunk(hintw - 1);
    if (ch == nullptr) return false;
    const uint64_t nw = ch->next.load(std::memory_order_acquire);
    if (is_marked(nw) || ch->base.load() > x) return false;
    Chunk* nx = unpack_ptr<Chunk>(nw);
    return nx == nullptr || nx->base.load() > x;
  }

  // Post-linearization maintenance (DESIGN.md §7.3).  Best-effort: bounded
  // seqlock acquisition, skip on exhaustion (counted in maintenance_skips).
  void note_insert(Ikey x, Node_t* node, uint32_t hintw);
  void note_erase(Ikey x, uint32_t hintw);

  // Always-current atomic totals (mid-run checkpoint sampling).
  LeafLiveStats live_stats() const {
    LeafLiveStats s;
    s.chunks = chunks_live_.load(std::memory_order_relaxed);
    s.keys = keys_live_.load(std::memory_order_relaxed);
    s.capacity = Chunk::kKeys;
    return s;
  }
  uint64_t maintenance_skips() const {
    return skips_.load(std::memory_order_relaxed);
  }

  // Quiescent walk of the chunk list in base order (validate, tests,
  // structure_stats).  Not linearizable against concurrent writers.
  template <typename F>
  void for_each_chunk(F&& f) const {
    for (Chunk* ch = head_; ch != nullptr;
         ch = unpack_ptr<Chunk>(without_tags(
             ch->next.load(std::memory_order_acquire)))) {
      f(*ch);
    }
  }

 private:
  static constexpr uint32_t kSlabChunks = 256;
  static constexpr uint32_t kMaxSlabs = 1024;  // 256k chunks
  static constexpr uint32_t kFindWalkLimit = 64;
  static constexpr int kLockAttempts = 64;
  static constexpr uint32_t kPredWalkLimit = 1024;

  // Bounded seqlock acquisition: CAS version even -> odd.
  static bool lock_chunk(Chunk* ch, uint64_t* v);
  static void unlock_chunk(Chunk* ch, uint64_t v) {
    ch->version.store(v + 2, std::memory_order_release);
  }
  // True iff ch, held under its seqlock, covers x: unmarked, base <= x, and
  // the successor's base (stable while we hold ch — unlinking the successor
  // requires ch's seqlock) is > x.
  bool covers_locked(Chunk* ch, Ikey x) const;

  // Fresh or recycled chunk, exclusively owned (unlinked); nullptr when the
  // allocator mutex is contended or the table is exhausted (caller skips).
  Chunk* alloc_chunk();
  void free_chunk(Chunk* ch);

  // Lock the chunk covering x (hint first, one fresh find on a miss);
  // nullptr — with the skip counted — when locking or coverage fails.
  Chunk* lock_covering(Ikey x, uint32_t hintw, uint64_t* v, StepCounters& c);
  // Split the full, locked chunk ch; returns the (locked) half that covers
  // x with its version handle in *v, or nullptr when allocation failed (ch
  // is then unlocked).  The other half ends the call unlocked.
  Chunk* split_locked(Chunk* ch, uint64_t* v, Ikey x, StepCounters& c);
  // Move ch's few survivors into its predecessor, mark ch and unlink it
  // (DESIGN.md §7.3).  Called unlocked; re-validates everything under the
  // pred-then-victim seqlocks and gives up on any contention or refill.
  void maybe_merge(Chunk* ch, StepCounters& c);

  std::atomic<Chunk*> slabs_[kMaxSlabs];
  std::atomic<uint32_t> allocated_{0};  // next never-used id
  std::mutex alloc_mu_;
  std::vector<uint32_t> free_ids_;

  Chunk* head_ = nullptr;  // id 0, base 0, never merged away
  std::atomic<uint64_t> chunks_live_{0};
  std::atomic<uint64_t> keys_live_{0};
  std::atomic<uint64_t> skips_{0};
};

}  // namespace skiptrie
