// Resumable descent position over a SkipListEngine (DESIGN.md §3.7).
//
// A DescentCursor owns the per-level bracket state that a descent produces —
// for every level, the left node it passed through plus the ikeys that
// bracketed the target — and can be *reseeked* to a new key: when the new
// key still falls inside a retained bracket, the descent enters at the
// lowest such level, skipping the operation's fallback start (for the
// SkipTrie, the whole x-fast `lowest_ancestor` query) and every level above
// the entry.  Sorted key streams (the batch API, src/core/batch.h) therefore
// pay one full descent for the first key and O(1 + log distance) levels per
// key after it; a cold cursor degenerates to exactly the PR 4 fingered entry
// protocol, which is how the single-key operations route through this same
// seam (they construct a fresh cursor per call).
//
// Safety is the finger story (DESIGN.md §3.6) verbatim: retained nodes may
// be retired, poisoned and recycled between seeks (the batch loop re-pins
// EBR per key), so every reuse candidate is screened by identity
// (kind/level/ikey), unmarkedness, and bracket containment before it is
// trusted — and even then it is only a start *hint* that `list_search`
// re-validates.  A stale cursor costs steps, never answers.
//
// A DescentCursor is single-threaded state, like a stack variable: it must
// not be shared between threads, and it holds no resources (no pin, no
// allocation), so abandoning one at any time is free.  The batch API uses
// the calling thread's persistent cursor (`tls_cursor`, keyed by the same
// never-reused engine owner id as the finger registry), so consecutive
// batches skip the cold first descent too; rows retained across calls are
// as stale as any finger entry and pass through the same screens.
//
// Like the engine and finger, the cursor is a template over KeyTraits
// (DESIGN.md §6) — retained ikeys take the traits' ikey word, and each
// instantiation keeps its own per-thread registry.
#pragma once

#include <cstdint>

#include "skiplist/engine.h"

namespace skiptrie {

template <typename Traits>
class BasicDescentCursor {
 public:
  using Engine = BasicSkipListEngine<Traits>;
  using Ikey = typename Traits::ikey_type;
  using Node_t = NodeT<Ikey>;
  using Bracket = typename Engine::Bracket;
  using StartFn = typename Engine::StartFn;

  explicit BasicDescentCursor(Engine& engine) : eng_(&engine) {}

  BasicDescentCursor(const BasicDescentCursor&) = delete;
  BasicDescentCursor& operator=(const BasicDescentCursor&) = delete;

  // Re-seat this cursor onto another engine; drops every retained bracket.
  // The tls registry never calls this (slots are stable per owner,
  // DESIGN.md §4.2) — it exists for callers that own a cursor directly.
  void rebind(Engine& engine) {
    eng_ = &engine;
    warm_ = false;
    rows_real_ = false;
    chunk_hint_ = 0;
  }

  // Position the cursor at x, returning the level-0 bracket
  // (left.ikey < x <= right.ikey).  A warm cursor first tries to reuse a
  // retained bracket (counted in steps.cursor_reuses; a warm seek whose
  // brackets all fail counts in steps.cursor_redescends); a cold cursor —
  // or a failed reuse — runs the fingered entry protocol: consult the
  // calling thread's SearchFinger at `cold_min_level`, else `fallback`.
  // Write streams pass cold_min_level = top so that every retained row is
  // descent-fresh or a prior row, never a bare level head (their raise and
  // tower-sweep phases consume hints at every level; see cursor.cpp).
  //
  // Chunk-terminated reads (DESIGN.md §7.2) pass stop_level > 0: the
  // descent stops at min(entry level, stop_level) and returns that level's
  // bracket (only an entry at level 0 — a retained level-0 bracket still
  // containing x — yields a full bracket).  *stopped_at, when non-null,
  // receives the level of the returned bracket.
  //
  // Read paths under adaptive heights pass `exact` != kNone (DESIGN.md
  // §8.3): the descent may end at an upper level whose bracket touches the
  // target's promoted tower, returning its level-0 root directly;
  // *exact_hit (when non-null) reports that exit (the bracket is then
  // final regardless of stop_level).
  Bracket seek(Ikey x, uint32_t cold_min_level, StartFn fallback, void* env,
               uint32_t stop_level = 0, uint32_t* stopped_at = nullptr,
               LocateExact exact = LocateExact::kNone,
               bool* exact_hit = nullptr);

  // Per-level left hints of the last seek (size engine.top_level()+1),
  // in the exact shape insert_from/erase_from consume (and mutate).
  Node_t** hints() { return left_; }

  bool warm() const { return warm_; }
  // Drop every retained bracket; the next seek takes the cold path.
  void invalidate() {
    warm_ = false;
    rows_real_ = false;
    chunk_hint_ = 0;
  }

  // Fold a just-completed insert of x (tower height `height`) into the
  // retained brackets: the new tower becomes the level-0 left anchor and
  // the raise-refreshed hints get matching ikeys, so the next ascending
  // key enters beside the key just inserted.
  void note_insert(const typename Engine::InsertResult& r, Ikey x,
                   uint32_t height);
  // Fold a just-completed erase of x into the retained brackets (the tower
  // sweep moved the hints; re-stamp their ikeys so the reuse screen and the
  // identity validation agree on what was recorded).
  void note_erase(Ikey x);

 private:
  friend class BasicSkipListEngine<Traits>;

  // Short-jump screen for entering a redescent at the retained top row
  // rather than the fallback (see kTopEntryMaxGaps in cursor.cpp).
  bool top_entry_usable(Ikey x) const;

  Engine* eng_;
  bool warm_ = false;
  // True once some descent entered at the top, i.e. every row holds a real
  // bracket rather than the bare level heads a cold partial descent leaves
  // above its entry.  Until then warm entries are gated at the caller's
  // cold_min_level so write paths never consume bare-head hints.
  bool rows_real_ = false;
  // Rows 0..engine.top_level().  A row not yet traversed by any seek holds
  // (head, 0, 0): a valid search start, but right_ikey_ = 0 can never
  // contain a target (ikeys are >= 1), so it is never "reused".
  Node_t* left_[Engine::kMaxLevels + 1];
  Ikey left_ikey_[Engine::kMaxLevels + 1];
  Ikey right_ikey_[Engine::kMaxLevels + 1];
  // Leaf chunk (id + 1) the last chunk-terminated read resolved through;
  // 0 = none.  Maintained by the engine's chunked_read (the cursor never
  // dereferences it): a streaming read whose next key lands in the same
  // chunk skips the descent entirely (DESIGN.md §7.2).
  uint32_t chunk_hint_ = 0;
};

// The calling thread's persistent cursor for the engine identified by
// `owner` (the finger registry's owner ids; see SkipListEngine::cursor()).
// Like tls_finger, the returned reference stays valid — and keeps denoting
// the same engine's cursor — until that engine is destroyed; fetching
// cursors for any number of other engines never rebinds it (DESIGN.md
// §4.2).  Dead owners are swept lazily via the shared journal in
// finger.cpp.  One registry per traits instantiation.
template <typename Traits>
BasicDescentCursor<Traits>& tls_cursor(uint64_t owner,
                                       BasicSkipListEngine<Traits>& engine);

// Test hook: number of live slots in the calling thread's cursor registry
// for this traits instantiation.
template <typename Traits>
size_t tls_cursor_registry_size_of();

// The historical u64 names.
using DescentCursor = BasicDescentCursor<U64Traits>;
size_t tls_cursor_registry_size();

}  // namespace skiptrie
