// Resumable descent position over a SkipListEngine (DESIGN.md §3.7).
//
// A DescentCursor owns the per-level bracket state that a descent produces —
// for every level, the left node it passed through plus the ikeys that
// bracketed the target — and can be *reseeked* to a new key: when the new
// key still falls inside a retained bracket, the descent enters at the
// lowest such level, skipping the operation's fallback start (for the
// SkipTrie, the whole x-fast `lowest_ancestor` query) and every level above
// the entry.  Sorted key streams (the batch API, src/core/batch.h) therefore
// pay one full descent for the first key and O(1 + log distance) levels per
// key after it; a cold cursor degenerates to exactly the PR 4 fingered entry
// protocol, which is how the single-key operations route through this same
// seam (they construct a fresh cursor per call).
//
// Safety is the finger story (DESIGN.md §3.6) verbatim: retained nodes may
// be retired, poisoned and recycled between seeks (the batch loop re-pins
// EBR per key), so every reuse candidate is screened by identity
// (kind/level/ikey), unmarkedness, and bracket containment before it is
// trusted — and even then it is only a start *hint* that `list_search`
// re-validates.  A stale cursor costs steps, never answers.
//
// A DescentCursor is single-threaded state, like a stack variable: it must
// not be shared between threads, and it holds no resources (no pin, no
// allocation), so abandoning one at any time is free.  The batch API uses
// the calling thread's persistent cursor (`tls_cursor`, keyed by the same
// never-reused engine owner id as the finger registry), so consecutive
// batches skip the cold first descent too; rows retained across calls are
// as stale as any finger entry and pass through the same screens.
#pragma once

#include <cstdint>

#include "skiplist/engine.h"

namespace skiptrie {

class DescentCursor {
 public:
  using Bracket = SkipListEngine::Bracket;
  using StartFn = SkipListEngine::StartFn;

  explicit DescentCursor(SkipListEngine& engine) : eng_(&engine) {}

  DescentCursor(const DescentCursor&) = delete;
  DescentCursor& operator=(const DescentCursor&) = delete;

  // Re-seat this cursor onto another engine; drops every retained bracket.
  // The tls registry never calls this (slots are stable per owner,
  // DESIGN.md §4.2) — it exists for callers that own a cursor directly.
  void rebind(SkipListEngine& engine) {
    eng_ = &engine;
    warm_ = false;
    rows_real_ = false;
  }

  // Position the cursor at x, returning the level-0 bracket
  // (left.ikey < x <= right.ikey).  A warm cursor first tries to reuse a
  // retained bracket (counted in steps.cursor_reuses; a warm seek whose
  // brackets all fail counts in steps.cursor_redescends); a cold cursor —
  // or a failed reuse — runs the fingered entry protocol: consult the
  // calling thread's SearchFinger at `cold_min_level`, else `fallback`.
  // Write streams pass cold_min_level = top so that every retained row is
  // descent-fresh or a prior row, never a bare level head (their raise and
  // tower-sweep phases consume hints at every level; see cursor.cpp).
  Bracket seek(uint64_t x, uint32_t cold_min_level, StartFn fallback,
               void* env);

  // Per-level left hints of the last seek (size engine.top_level()+1),
  // in the exact shape insert_from/erase_from consume (and mutate).
  Node** hints() { return left_; }

  bool warm() const { return warm_; }
  // Drop every retained bracket; the next seek takes the cold path.
  void invalidate() {
    warm_ = false;
    rows_real_ = false;
  }

  // Fold a just-completed insert of x (tower height `height`) into the
  // retained brackets: the new tower becomes the level-0 left anchor and
  // the raise-refreshed hints get matching ikeys, so the next ascending
  // key enters beside the key just inserted.
  void note_insert(const SkipListEngine::InsertResult& r, uint64_t x,
                   uint32_t height);
  // Fold a just-completed erase of x into the retained brackets (the tower
  // sweep moved the hints; re-stamp their ikeys so the reuse screen and the
  // identity validation agree on what was recorded).
  void note_erase(uint64_t x);

 private:
  friend class SkipListEngine;

  // Short-jump screen for entering a redescent at the retained top row
  // rather than the fallback (see kTopEntryMaxGaps in cursor.cpp).
  bool top_entry_usable(uint64_t x) const;

  SkipListEngine* eng_;
  bool warm_ = false;
  // True once some descent entered at the top, i.e. every row holds a real
  // bracket rather than the bare level heads a cold partial descent leaves
  // above its entry.  Until then warm entries are gated at the caller's
  // cold_min_level so write paths never consume bare-head hints.
  bool rows_real_ = false;
  // Rows 0..engine.top_level().  A row not yet traversed by any seek holds
  // (head, 0, 0): a valid search start, but right_ikey_ = 0 can never
  // contain a target (ikeys are >= 1), so it is never "reused".
  Node* left_[SkipListEngine::kMaxLevels + 1];
  uint64_t left_ikey_[SkipListEngine::kMaxLevels + 1];
  uint64_t right_ikey_[SkipListEngine::kMaxLevels + 1];
};

// The calling thread's persistent cursor for the engine identified by
// `owner` (the finger registry's owner ids; see SkipListEngine::cursor()).
// Like tls_finger, the returned reference stays valid — and keeps denoting
// the same engine's cursor — until that engine is destroyed; fetching
// cursors for any number of other engines never rebinds it (DESIGN.md
// §4.2).  Dead owners are swept lazily via the shared journal in
// finger.cpp.
DescentCursor& tls_cursor(uint64_t owner, SkipListEngine& engine);

// Test hook: number of live slots in the calling thread's cursor registry.
size_t tls_cursor_registry_size();

}  // namespace skiptrie
