#include "skiplist/leaf.h"

#include <cassert>

#include "common/backoff.h"
#include "common/marked_ptr.h"

namespace skiptrie {

namespace {

// First occupied slot with key >= x among the sorted prefix [0, n).
template <typename Chunk, typename Ikey>
uint32_t chunk_lower_bound(const Chunk* ch, uint32_t n, Ikey x) {
  uint32_t lo = 0;
  uint32_t hi = n;
  while (lo < hi) {
    const uint32_t mid = (lo + hi) / 2;
    if (ch->keys[mid].load() < x) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

template <typename Traits>
LeafChunkManager<Traits>::LeafChunkManager() {
  for (auto& s : slabs_) s.store(nullptr, std::memory_order_relaxed);
  head_ = alloc_chunk();  // uncontended: id 0
  assert(head_ != nullptr && head_->id == 0);
  head_->base.store(Ikey(0));
  head_->next.store(0, std::memory_order_release);  // unpark (clear kMark)
  chunks_live_.store(1, std::memory_order_relaxed);
}

template <typename Traits>
LeafChunkManager<Traits>::~LeafChunkManager() {
  for (auto& s : slabs_) delete[] s.load(std::memory_order_relaxed);
}

template <typename Traits>
auto LeafChunkManager<Traits>::chunk(uint32_t id) const -> Chunk* {
  if (id >= allocated_.load(std::memory_order_acquire)) return nullptr;
  Chunk* s = slabs_[id / kSlabChunks].load(std::memory_order_acquire);
  return s == nullptr ? nullptr : s + (id % kSlabChunks);
}

template <typename Traits>
auto LeafChunkManager<Traits>::alloc_chunk() -> Chunk* {
  std::unique_lock<std::mutex> lk(alloc_mu_, std::try_to_lock);
  if (!lk.owns_lock()) return nullptr;  // contended: caller skips the split
  if (!free_ids_.empty()) {
    const uint32_t id = free_ids_.back();
    free_ids_.pop_back();
    return chunk(id);
  }
  const uint32_t id = allocated_.load(std::memory_order_relaxed);
  const uint32_t slab = id / kSlabChunks;
  if (slab >= kMaxSlabs) return nullptr;  // table exhausted: stop splitting
  Chunk* s = slabs_[slab].load(std::memory_order_relaxed);
  if (s == nullptr) {
    s = new Chunk[kSlabChunks];
    for (uint32_t i = 0; i < kSlabChunks; ++i) {
      s[i].id = slab * kSlabChunks + i;
      // Park never-handed-out chunks marked so a garbage hint id resolving
      // into this slab fails the find() screens.
      s[i].next.store(kMark, std::memory_order_relaxed);
    }
    slabs_[slab].store(s, std::memory_order_release);
  }
  allocated_.store(id + 1, std::memory_order_release);
  return s + (id % kSlabChunks);
}

template <typename Traits>
void LeafChunkManager<Traits>::free_chunk(Chunk* ch) {
  std::unique_lock<std::mutex> lk(alloc_mu_, std::try_to_lock);
  if (!lk.owns_lock()) return;  // rare: the id leaks (stays parked marked)
  free_ids_.push_back(ch->id);
}

template <typename Traits>
bool LeafChunkManager<Traits>::lock_chunk(Chunk* ch, uint64_t* v) {
  Backoff bo;
  for (int i = 0; i < kLockAttempts; ++i) {
    uint64_t cv = ch->version.load(std::memory_order_relaxed);
    if ((cv & 1) == 0 &&
        ch->version.compare_exchange_weak(cv, cv + 1,
                                          std::memory_order_acq_rel)) {
      *v = cv;
      return true;
    }
    bo.spin();
  }
  return false;
}

template <typename Traits>
bool LeafChunkManager<Traits>::covers_locked(Chunk* ch, Ikey x) const {
  const uint64_t nw = ch->next.load(std::memory_order_relaxed);
  if (is_marked(nw)) return false;
  if (ch->base.load() > x) return false;
  Chunk* nx = unpack_ptr<Chunk>(nw);
  // nx cannot be unlinked (that needs ch's seqlock, which we hold), so its
  // base is stable.
  return nx == nullptr || nx->base.load() > x;
}

template <typename Traits>
auto LeafChunkManager<Traits>::find(Ikey x, uint32_t hintw,
                                    StepCounters& c, Chunk** prev) const
    -> Chunk* {
  Chunk* ch = nullptr;
  if (prev != nullptr) *prev = nullptr;
  if (hintw != 0) {
    ch = chunk(hintw - 1);
    if (ch != nullptr &&
        (is_marked(ch->next.load(std::memory_order_acquire)) ||
         ch->base.load() > x)) {
      ch = nullptr;  // retired or past x: the hint is useless
    }
  }
  if (ch == nullptr) ch = head_;
  for (uint32_t steps = 0; steps < kFindWalkLimit; ++steps) {
    const uint64_t nw = ch->next.load(std::memory_order_acquire);
    if (is_marked(nw)) {  // ch retired mid-walk; restart from the head
      ch = head_;
      if (prev != nullptr) *prev = nullptr;
      continue;
    }
    Chunk* nx = unpack_ptr<Chunk>(nw);
    if (nx == nullptr || nx->base.load() > x) return ch;
    if (prev != nullptr) *prev = ch;
    ch = nx;
    c.bytes_touched += kCacheLine;  // crossed into another chunk header
  }
  return ch;  // bound hit: best-effort, every caller re-validates
}

template <typename Traits>
auto LeafChunkManager<Traits>::pred_hint(Ikey x, uint32_t hintw,
                                         StepCounters& c) const -> HintResult {
  HintResult r;
  Chunk* prev = nullptr;
  Chunk* ch = find(x, hintw, c, &prev);
  const uint64_t nw = ch->next.load(std::memory_order_acquire);
  Chunk* nx = unpack_ptr<Chunk>(nw);
  r.idw = ch->id + 1;
  r.base = ch->base.load();
  r.right = nx != nullptr ? nx->base.load() : Traits::ikey_max();
  r.covered = !is_marked(nw) && !(r.base > x) && x < r.right;
  if (!r.covered) return r;  // walk bound or a racing merge; caller falls back
  c.chunk_scans++;
  // Boehm atomic-seqlock read: acquire version, relaxed data, acquire
  // fence, re-read version.  Even a mis-validated pass is safe — nodes[]
  // only ever holds pointers into type-stable arena storage, and the caller
  // re-validates the hint through list_search (DESIGN.md §7.2).
  //
  // The search is a forward linear scan, not a binary search: at K <= 16
  // the scan is branch-predictable and — the point of the exercise — reads
  // only the key lines up to the stop slot, which is what bytes_touched is
  // charged (header line + key lines crossed + the answer's node line).
  for (int attempt = 0; attempt < 2; ++attempt) {
    const uint64_t v0 = ch->version.load(std::memory_order_acquire);
    if ((v0 & 1) != 0) continue;  // writer active
    const uint32_t n = static_cast<uint32_t>(
        std::popcount(ch->occ.load(std::memory_order_relaxed)));
    if (n > Chunk::kKeys) {
      c.bytes_touched += kCacheLine;  // read the header, fell back
      return r;                       // garbage
    }
    uint32_t lo = 0;
    while (lo < n && ch->keys[lo].load() < x) ++lo;
    Node_t* node =
        lo > 0 ? ch->nodes[lo - 1].load(std::memory_order_relaxed) : nullptr;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (ch->version.load(std::memory_order_relaxed) == v0) {
      const uint32_t last = lo < n ? lo : (n > 0 ? n - 1 : 0);
      const uint64_t key_lines = n == 0 ? 0 : last / Chunk::kKeysPerLine + 1;
      c.bytes_touched +=
          kCacheLine * (1 + key_lines + (lo > 0 ? 1 : 0));
      if (node == nullptr && prev != nullptr) {
        // x is at or below this chunk's first indexed key, so the true
        // level-0 predecessor lives in the chunk *before* it — which the
        // find() walk just crossed.  Answer from prev's last slot (its
        // largest key is < ch->base <= x by base order) instead of making
        // the caller re-walk from its tower-root start, which can be a
        // whole top-level gap behind.  One seqlock-screened read of the
        // last key/node slot: header + one key line + one node line.
        const uint64_t pv0 = prev->version.load(std::memory_order_acquire);
        if ((pv0 & 1) == 0) {
          const uint32_t pn = static_cast<uint32_t>(
              std::popcount(prev->occ.load(std::memory_order_relaxed)));
          if (pn >= 1 && pn <= Chunk::kKeys) {
            Node_t* pnode =
                prev->nodes[pn - 1].load(std::memory_order_relaxed);
            std::atomic_thread_fence(std::memory_order_acquire);
            if (prev->version.load(std::memory_order_relaxed) == pv0) {
              c.bytes_touched += kCacheLine * 3;
              node = pnode;
            }
          }
        }
      }
      r.node = node;
      return r;
    }
  }
  c.bytes_touched += kCacheLine;  // both attempts torn: header traffic only
  return r;
}

template <typename Traits>
auto LeafChunkManager<Traits>::lock_covering(Ikey x, uint32_t hintw,
                                             uint64_t* v, StepCounters& c)
    -> Chunk* {
  // One retry through a hint-free find: the first attempt may have chased a
  // stale hint or raced a split that moved x's run.
  for (int attempt = 0; attempt < 2; ++attempt) {
    Chunk* ch = find(x, attempt == 0 ? hintw : 0, c);
    if (!lock_chunk(ch, v)) break;
    if (covers_locked(ch, x)) return ch;
    unlock_chunk(ch, *v);
  }
  skips_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

template <typename Traits>
auto LeafChunkManager<Traits>::split_locked(Chunk* ch, uint64_t* v, Ikey x,
                                            StepCounters& c) -> Chunk* {
  Chunk* d = alloc_chunk();
  if (d == nullptr) {
    unlock_chunk(ch, *v);
    return nullptr;
  }
  uint64_t dv;
  if (!lock_chunk(d, &dv)) {  // a stale writer briefly held the parked chunk
    free_chunk(d);
    unlock_chunk(ch, *v);
    return nullptr;
  }
  const uint32_t half = Chunk::kKeys / 2;
  const Ikey mid = ch->keys[half].load();
  d->base.store(mid);
  for (uint32_t i = half; i < Chunk::kKeys; ++i) {
    Node_t* node = ch->nodes[i].load(std::memory_order_relaxed);
    d->keys[i - half].store(ch->keys[i].load());
    d->nodes[i - half].store(node, std::memory_order_relaxed);
    if (node != nullptr) node->chunkw.store(d->id + 1, std::memory_order_relaxed);
  }
  d->occ.store((uint64_t(1) << half) - 1, std::memory_order_relaxed);
  ch->occ.store((uint64_t(1) << half) - 1, std::memory_order_relaxed);
  // Link d right after ch.  ch->next is stable and unmarked (we hold ch's
  // seqlock and covers_locked screened the mark).
  d->next.store(without_tags(ch->next.load(std::memory_order_relaxed)),
                std::memory_order_relaxed);
  ch->next.store(pack_ptr(d), std::memory_order_release);
  chunks_live_.fetch_add(1, std::memory_order_relaxed);
  c.chunk_splits++;
  c.bytes_touched += kScanBytes;  // rewrote both halves' key/node lines
  if (!(x < mid)) {
    unlock_chunk(ch, *v);
    *v = dv;
    return d;
  }
  unlock_chunk(d, dv);
  return ch;
}

template <typename Traits>
void LeafChunkManager<Traits>::note_insert(Ikey x, Node_t* node,
                                           uint32_t hintw) {
  auto& c = tls_counters();
  uint64_t v;
  Chunk* ch = lock_covering(x, hintw, &v, c);
  if (ch == nullptr) return;
  uint32_t n = ch->count();
  uint32_t pos = chunk_lower_bound(ch, n, x);
  if (pos < n && ch->keys[pos].load() == x) {
    // Stale entry from an earlier incarnation of this key (its erase
    // maintenance was skipped): re-point it at the live node.
    ch->nodes[pos].store(node, std::memory_order_relaxed);
    node->chunkw.store(ch->id + 1, std::memory_order_relaxed);
    unlock_chunk(ch, v);
    return;
  }
  if (n == Chunk::kKeys) {
    ch = split_locked(ch, &v, x, c);
    if (ch == nullptr) {
      skips_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    n = ch->count();
    pos = chunk_lower_bound(ch, n, x);
  }
  for (uint32_t i = n; i > pos; --i) {
    ch->keys[i].store(ch->keys[i - 1].load());
    ch->nodes[i].store(ch->nodes[i - 1].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  }
  ch->keys[pos].store(x);
  ch->nodes[pos].store(node, std::memory_order_relaxed);
  ch->occ.store((uint64_t(1) << (n + 1)) - 1, std::memory_order_relaxed);
  node->chunkw.store(ch->id + 1, std::memory_order_relaxed);
  keys_live_.fetch_add(1, std::memory_order_relaxed);
  c.bytes_touched += 2 * kCacheLine;  // header + shifted key line
  unlock_chunk(ch, v);
}

template <typename Traits>
void LeafChunkManager<Traits>::note_erase(Ikey x, uint32_t hintw) {
  auto& c = tls_counters();
  uint64_t v;
  Chunk* ch = lock_covering(x, hintw, &v, c);
  if (ch == nullptr) return;
  const uint32_t n = ch->count();
  const uint32_t pos = chunk_lower_bound(ch, n, x);
  if (pos >= n || ch->keys[pos].load() != x) {
    unlock_chunk(ch, v);  // never indexed (its insert maintenance lagged)
    return;
  }
  for (uint32_t i = pos; i + 1 < n; ++i) {
    ch->keys[i].store(ch->keys[i + 1].load());
    ch->nodes[i].store(ch->nodes[i + 1].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  }
  ch->occ.store((uint64_t(1) << (n - 1)) - 1, std::memory_order_relaxed);
  keys_live_.fetch_sub(1, std::memory_order_relaxed);
  c.bytes_touched += 2 * kCacheLine;
  unlock_chunk(ch, v);
  if (n - 1 <= kMergeMin && ch != head_) maybe_merge(ch, c);
}

template <typename Traits>
void LeafChunkManager<Traits>::maybe_merge(Chunk* ch, StepCounters& c) {
  // Chunks are singly linked, so find the predecessor from the head.  The
  // walk and both lock acquisitions are best-effort: a drained chunk that
  // escapes merging here is re-offered on the next erase in its range.
  Chunk* pred = head_;
  for (uint32_t steps = 0;; ++steps) {
    const uint64_t nw = pred->next.load(std::memory_order_acquire);
    if (is_marked(nw)) return;  // raced another merge
    Chunk* nx = unpack_ptr<Chunk>(nw);
    if (nx == ch) break;
    if (nx == nullptr || steps >= kPredWalkLimit) return;
    pred = nx;
  }
  uint64_t pv;
  if (!lock_chunk(pred, &pv)) return;
  if (pred->next.load(std::memory_order_relaxed) != pack_ptr(ch)) {
    unlock_chunk(pred, pv);
    return;
  }
  uint64_t v;
  if (!lock_chunk(ch, &v)) {
    unlock_chunk(pred, pv);
    return;
  }
  const uint32_t n = ch->count();
  const uint32_t pn = pred->count();
  const uint64_t nw = ch->next.load(std::memory_order_relaxed);
  if (is_marked(nw) || n > kMergeMin || pn + n > Chunk::kKeys) {
    unlock_chunk(ch, v);  // refilled or no room; leave it be
    unlock_chunk(pred, pv);
    return;
  }
  // Move the survivors.  Order is preserved: every ch key >= ch->base,
  // which is > every pred key (coverage is disjoint and base-ordered).
  for (uint32_t i = 0; i < n; ++i) {
    Node_t* node = ch->nodes[i].load(std::memory_order_relaxed);
    pred->keys[pn + i].store(ch->keys[i].load());
    pred->nodes[pn + i].store(node, std::memory_order_relaxed);
    if (node != nullptr) {
      node->chunkw.store(pred->id + 1, std::memory_order_relaxed);
    }
  }
  pred->occ.store((uint64_t(1) << (pn + n)) - 1, std::memory_order_relaxed);
  ch->occ.store(0, std::memory_order_relaxed);
  // Harris retire: mark the victim's own next word, then unlink it under
  // the predecessor's seqlock; pred's coverage absorbs the victim's range.
  ch->next.store(with_mark(nw), std::memory_order_release);
  pred->next.store(without_tags(nw), std::memory_order_release);
  unlock_chunk(ch, v);  // version bump kills in-flight seqlock reads
  unlock_chunk(pred, pv);
  chunks_live_.fetch_sub(1, std::memory_order_relaxed);
  c.chunk_merges++;
  c.bytes_touched += 2 * kCacheLine;
  free_chunk(ch);
}

template class LeafChunkManager<U64Traits>;
template class LeafChunkManager<Bytes16Traits>;

}  // namespace skiptrie
