// Truncated lock-free skiplist engine (paper §2–§3).
//
// Levels 0..top_level each form a sorted Harris-style linked list with
// logical deletion (mark in the node's own `next` word), back pointers for
// recovery, and per-tower `stop` flags that halt concurrent raising when a
// delete claims the tower.  The top level additionally maintains the
// doubly-linked list of the paper's §3: `prev` guide pointers installed by
// fixPrev (Alg. 1) and repaired by toplevelDelete (Alg. 2).
//
// The same engine powers both the SkipTrie's truncated skiplist
// (top_level = ceil(log2 B), i.e. log log u) and the full-height baseline
// skiplist (top_level ≈ log m) — the paper's comparison target.
//
// The engine is a template over KeyTraits (DESIGN.md §6): search keys are
// the traits' ikey word (uint64_t for U64Traits — the seed behavior, byte
// for byte — or u128 for Bytes16Traits), while every mutable link stays a
// tagged 64-bit pointer word.  `using SkipListEngine =
// BasicSkipListEngine<U64Traits>` keeps the historical name for the fast
// path; member definitions live in engine.cpp with explicit instantiations
// for both shipped traits.
//
// Concurrency contract: every public method must run under an
// EbrDomain::Guard on ctx.ebr (guards are reentrant; the SkipTrie wrapper
// pins once per operation).  Node storage comes from a type-stable
// SlabArena; see DESIGN.md §3.3 for why stale guide pointers are safe.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/key_traits.h"
#include "dcss/dcss.h"
#include "reclaim/arena.h"
#include "skiplist/finger.h"
#include "skiplist/leaf.h"
#include "skiplist/node.h"

namespace skiptrie {

template <typename Traits>
class BasicDescentCursor;

// Read-descent exact-match early exit (DESIGN.md §8.3).  With adaptive
// tower heights a hot key's tower reaches an upper level, so a read descent
// can observe its exact target ikey far above level 0; terminating there —
// after validating the tower's *root* is unmarked, which is the operation's
// linearization-relevant observation — is what converts a promotion into
// saved descent hops.  kNone is the seed behavior (descend to level 0
// unconditionally); the SkipTrie passes kNone whenever adaptation is off,
// so the off configuration reproduces seed step counts exactly.
enum class LocateExact : uint8_t {
  kNone = 0,  // no early exit (seed behavior)
  kRight,     // exit when an upper right neighbor has ikey == x
              // (contains / successor / range scans: callers read .right)
  kLeft,      // exit when an upper left neighbor has ikey == x - 1
              // (predecessor / strict_predecessor: callers read .left —
              //  no lower level can produce a larger left ikey)
};

template <typename Traits>
class BasicSkipListEngine {
 public:
  using Ikey = typename Traits::ikey_type;
  using Node_t = NodeT<Ikey>;
  using Finger = BasicSearchFinger<Traits>;
  using Cursor = BasicDescentCursor<Traits>;

  static constexpr uint32_t kMaxLevels = 40;  // supports the log-m baseline

  // top_level: index of the highest level (inclusive).
  BasicSkipListEngine(DcssContext ctx, SlabArena& arena, uint32_t top_level);
  ~BasicSkipListEngine();

  BasicSkipListEngine(const BasicSkipListEngine&) = delete;
  BasicSkipListEngine& operator=(const BasicSkipListEngine&) = delete;

  struct Bracket {
    Node_t* left;
    Node_t* right;
  };

  struct InsertResult {
    Node_t* root = nullptr;  // level-0 node; nullptr if the key was present
    Node_t* top = nullptr;   // top-level node if the tower reached top_level
    // CAS-fallback only: a top-level node we linked, then marked and
    // unlinked because a delete had already claimed the tower (DESIGN.md
    // §3.5(5)).  The caller must run the trie sweep for it, then
    // retire_node() it — while linked it may have entered the trie.
    Node_t* undone_top = nullptr;
    bool inserted = false;
  };

  struct EraseResult {
    bool erased = false;
    Node_t* top = nullptr;       // top-level node if one was removed
    Node_t* top_left = nullptr;  // top-level left hint for the trie sweep
    // Tower nodes this operation owns (mark-CAS winner); retire after the
    // trie sweep via retire_tower().
    Node_t* owned[kMaxLevels + 1];
    uint32_t owned_count = 0;
  };

  uint32_t top_level() const { return top_; }
  Node_t* head(uint32_t level) const { return head_[level]; }
  Node_t* tail() const { return tail_; }
  const DcssContext& ctx() const { return ctx_; }

  // The paper's listSearch(x, start) at a given level: returns (left, right)
  // with left.ikey < x <= right.ikey such that left was unmarked and
  // left.next == right at some point during the call; unlinks marked nodes
  // it crosses.  `start` is only a hint — it is validated and the search
  // falls back to the level head when the hint is unusable (stale guides,
  // poisoned storage, wrong level).
  Bracket list_search(Ikey x, Node_t* start, uint32_t level);

  // Descend from `start` (any level; validated) to level 0, returning the
  // level-0 bracket.  If hints != nullptr it receives the per-level left
  // nodes (size must be >= top_level()+1).  Finger-free (tests, internal
  // restarts); public operations route through the fingered entry points.
  Bracket descend(Ikey x, Node_t* start, Node_t** hints = nullptr);

  // Insert ikey with tower height `height` (0..top_level), starting the
  // search from `start`.  Duplicate detection is exact at level 0.
  InsertResult insert(Ikey x, Node_t* start, uint32_t height);

  // Delete ikey, starting from `start`.  Claims the tower via the root's
  // stop word, then removes the tower top-down (paper Alg. 2 / §2).
  EraseResult erase(Ikey x, Node_t* start);

  // --- Cursor entry points (DESIGN.md §3.6–§3.7) --------------------------
  // The one descent seam every public SkipTrie and baseline operation goes
  // through, built on BasicDescentCursor (skiplist/cursor.h): a resumable
  // per-level bracket position.  A warm cursor whose retained bracket still
  // contains x enters the descent at the lowest such level; otherwise the
  // calling thread's finger is consulted: a hit at level
  // l >= min_level starts the descent there, skipping levels l+1..top *and*
  // the fallback entirely (for the SkipTrie that fallback is the x-fast
  // trie's pred_start — hash probes and the top-level walk).  On a miss,
  // `fallback(env, x)` lazily supplies the start node (nullptr fallback
  // means the top-level head), and the descent that follows seeds the
  // finger with every bracket it traverses.
  //
  // min_level bounds how low a finger hit may enter on the cold path: reads
  // pass 0, single-key insert passes its drawn tower height (the raise path
  // needs descent-fresh hints at every level it touches), erase and the
  // batched write streams pass top_level() (the tower sweep consumes hints
  // at every level, and a batch must keep every retained row a real bracket
  // rather than a bare level head — see cursor.h).
  using StartFn = Node_t* (*)(void* env, Ikey x);

  Bracket cursor_descend(Cursor& cur, Ikey x, StartFn fallback, void* env,
                         LocateExact exact = LocateExact::kNone);
  InsertResult cursor_insert(Cursor& cur, Ikey x, uint32_t height,
                             uint32_t cold_min_level, StartFn fallback,
                             void* env);
  EraseResult cursor_erase(Cursor& cur, Ikey x, StartFn fallback, void* env);

  // Single-key entry points: the batch_size = 1 degenerate case — each call
  // runs one cold cursor through the seam above.
  Bracket fingered_descend(Ikey x, uint32_t min_level, StartFn fallback,
                           void* env, Node_t** hints = nullptr,
                           LocateExact exact = LocateExact::kNone);
  InsertResult fingered_insert(Ikey x, uint32_t height, StartFn fallback,
                               void* env);
  EraseResult fingered_erase(Ikey x, StartFn fallback, void* env);

  // The calling thread's finger for this engine (distinct per thread).
  Finger& finger() const { return tls_finger<Traits>(finger_owner_, top_); }
  // The calling thread's persistent cursor for this engine (same owner-id
  // keying; defined in engine.cpp).  Used by the batch API so consecutive
  // batches resume where the last one left off.
  Cursor& cursor();
  // Ablation/diagnostic switch: when off, the fingered entry points behave
  // exactly like their unfingered counterparts (no lookups, no recording,
  // no finger counters).  Not thread-safe against concurrent operations.
  void set_finger_enabled(bool on) { finger_on_ = on; }
  bool finger_enabled() const { return finger_on_; }

  // Leaf chunking (DESIGN.md §7): read descents stop log2(K) levels above
  // level 0 and finish through a chunk scan + validating list_search; writers
  // maintain the chunk index post-linearization.  Off (the seed layout)
  // reproduces per-level step counts exactly.  Like set_finger_enabled, not
  // thread-safe against concurrent operations — configure before sharing.
  void enable_leaf_chunking(bool on);
  bool leaf_chunking_enabled() const { return chunks_ != nullptr; }
  // The chunk manager, nullptr when chunking is off (structure_stats,
  // validation, tests).
  LeafChunkManager<Traits>* leaf_chunks() const { return chunks_.get(); }

  // --- Adaptive tower heights: structural side (DESIGN.md §8) -------------
  // Raising and lowering an existing tower.  The *policy* (when to do it)
  // lives above the engine (skiplist/adaptive.h + core/skiptrie.cpp); these
  // two methods are pure structure and ride the existing protocols: a
  // promotion is exactly an insert-time raise replayed post-linearization
  // (DCSS-guarded on the root's stop word, §3.4), a demotion is the
  // delete-time top-down mark sweep restricted to the levels above
  // `to_height` — crucially *without* claiming the stop word, so a
  // concurrent erase still wins its 0->1 claim and linearizes correctly.
  struct PromoteResult {
    Node_t* top = nullptr;  // reached the top level: the caller must run the
                            // x-fast prefix insertion (coverage invariant)
    // CAS-fallback only: a top node linked then undone because a delete
    // claimed the tower; caller trie-sweeps then retires (as InsertResult).
    Node_t* undone_top = nullptr;
    uint32_t new_height = 0;  // tower height after the call (probed)
    bool raised = false;      // at least one level was added
  };
  // Raise root's tower (level-0 node of ikey x) to `to_height`.  No-op —
  // with new_height reporting the probed height — when the tower is already
  // tall enough, the root is no longer current (erased / re-inserted), its
  // stop word is claimed, or a concurrent delete stops the raise midway.
  PromoteResult promote_tower(Ikey x, Node_t* root, uint32_t to_height);

  // Remove root's tower nodes above `to_height` (>= 1 stays; level 0 is
  // never touched, preserving "upper node unmarked => key present").
  // Returns the EraseResult shape: `erased` means at least one node was
  // marked by this call, and — unlike erase, which owns the tower via the
  // stop word — `top` is set ONLY when this call won the top node's mark
  // CAS, so exactly one of a racing demote/erase pair runs the trie sweep
  // and retires it.  Caller sweeps prefixes for `top`, then retire_owned().
  EraseResult demote_tower(Ikey x, Node_t* root, uint32_t to_height);

  // Algorithm 1.  Installs node.prev via DCSS guarded on the predecessor
  // remaining unmarked and adjacent; sets node.ready on exit.
  void fix_prev(Node_t* hint, Node_t* node);

  // Helper used by the trie's delete sweep (Alg. 7 line 16): propagate
  // right's mark into its prev word, or repair right.prev = left.
  void make_done(Node_t* left, Node_t* right);

  // Walk left from `from` until reaching a node with ikey < x, following
  // back pointers on marked nodes and prev pointers otherwise (Alg. 4 body).
  // Falls back to the top-level head when guides dead-end.
  Node_t* walk_left(Ikey x, Node_t* from);

  // Retire an owned tower (from EraseResult) after any trie sweep.
  void retire_owned(const EraseResult& r);
  // Retire a single never-published or owned node.
  void retire_node(Node_t* n);

  // --- Introspection (tests / benches; not linearizable snapshots) ---
  // First interior node at `level` (skips marked), nullptr when empty.
  Node_t* first_at(uint32_t level) const;
  // Next interior node after n at its level (skips marked).
  Node_t* next_at(Node_t* n) const;
  size_t approx_bytes() const { return arena_.bytes_reserved(); }

  // Allocate + initialize an interior node (exposed for the baseline).
  Node_t* make_node(Ikey ikey, uint32_t level, uint32_t orig_height,
                    Node_t* down, Node_t* root);

 private:
  friend class BasicDescentCursor<Traits>;

  enum class RaiseStatus {
    kOk,                   // linked at this level
    kStoppedUnpublished,   // not linked (or undone and already retired)
    kStoppedPublished,     // top-level CAS-fallback undo: caller must
                           // trie-sweep then retire the marked node
  };

  bool usable_start(Node_t* n, Ikey x, uint32_t level) const;
  // Validate `cur` as a descent start; falls back to the top-level head
  // (counting a restart).  Returns the level the descent begins at.
  uint32_t resolve_start(Ikey x, Node_t*& cur);
  // Core descent loop from (cur, lvl): fills hints[l] for every traversed
  // level (callers pre-fill untraversed levels), records every traversed
  // bracket into the finger (when f != nullptr, stamped with `epoch`) and
  // into the cursor's rows (when rec != nullptr; hints is then rec's own
  // left array).  `exact` != kNone enables the adaptive early exit
  // (DESIGN.md §8.3); *exact_hit (when non-null) reports that the returned
  // bracket came from such an exit (its far side is then the tower's
  // level-0 root, not a node at the exit level).
  Bracket descend_from(Ikey x, Node_t* cur, uint32_t lvl, Node_t** hints,
                       Finger* f, uint64_t epoch, Cursor* rec = nullptr,
                       uint32_t floor = 0,
                       LocateExact exact = LocateExact::kNone,
                       bool* exact_hit = nullptr);
  // Chunk-terminated read descent (DESIGN.md §7.2): the body behind
  // cursor_descend/fingered_descend when chunking is on.  Resolves a level-0
  // start hint through (in order) the cursor's retained chunk id, the
  // finger's chunk rows, or a descent stopped at chunk_entry_, then finishes
  // with a validating list_search from the hinted node.
  Bracket chunked_read(Cursor& cur, Ikey x, StartFn fallback, void* env,
                       LocateExact exact = LocateExact::kNone);
  // Post-descent bodies shared by the plain and fingered entry points.
  InsertResult insert_from(Ikey x, uint32_t height, Node_t** hints,
                           Bracket b);
  EraseResult erase_from(Ikey x, Node_t** hints, Bracket b0);
  // Marks n (setting back to back_hint first).  Returns true iff this call's
  // CAS performed the unmarked->marked transition (ownership for retiring).
  bool mark_node(Node_t* n, Node_t* back_hint);
  void set_prev_mark(Node_t* n);
  // Raise the tower one level; stopped when claimed or a same-key node
  // exists at the level.
  RaiseStatus raise_level(Node_t* root, Node_t* nnode, Ikey x, uint32_t lvl,
                          Node_t*& hint);
  // Find the tower node of `root` at `level` (walking equal-key runs);
  // nullptr if not present.
  Node_t* find_tower_node(Ikey x, Node_t* root, uint32_t level, Node_t*& left);

  DcssContext ctx_;
  SlabArena& arena_;
  const uint32_t top_;
  std::unique_ptr<LeafChunkManager<Traits>> chunks_;  // null = chunking off
  // Level a chunk-terminated read may stop descending at: one chunk indexes
  // ~K keys, the span of ~log2(K) skiplist levels.
  uint32_t chunk_entry_ = 0;
  const uint64_t finger_owner_ = new_finger_owner();
  bool finger_on_ = true;
  Node_t* head_[kMaxLevels + 1];
  Node_t* tail_;
};

// The historical u64 fast-path names.
using SkipListEngine = BasicSkipListEngine<U64Traits>;

}  // namespace skiptrie
