// Skiplist tower node.
//
// One fixed-size, cache-line-sized node type serves every level of the
// truncated skiplist.  Field roles (paper §2, §3):
//
//   next   tagged word  (Node* | kMark | kDesc).  The Harris mark on a
//          node's own next word is the node's logical-deletion flag at its
//          level.  DCSS descriptors may be installed here transiently.
//   ikey   internal key: user key + 1.  Head sentinels hold 0, the shared
//          tail (and poisoned/recycled nodes) hold UINT64_MAX, so every user
//          key satisfies 0 < ikey < UINT64_MAX.
//   back   guide pointer, set just before the node is marked; points to the
//          node's predecessor at marking time (Fomitchev–Ruppert).  Guide
//          only: traversals validate what they find.
//   down   tower link to the same key's node one level below (self at
//          level 0).  Immutable after publication.
//   root   the tower's level-0 node.  Immutable after publication.
//   prevw  top-level only: tagged word (Node* | kMark).  The backwards
//          "guide" pointer of the doubly-linked list.  Its mark mirrors the
//          owner's deletion so Alg. 7's DCSS can guard on
//          "(right.prev, right.marked)" as one word.
//   stopw  root only: set to 1 by the delete operation that claims the
//          tower; tower raising is DCSS-guarded on stopw == 0 (paper §2).
//   ready  top-level only: set once fixPrev has installed the prev pointer.
//   meta   packed {level, orig_height, kind}; written before publication and
//          at poison time, hence atomic with relaxed access.
//
// Every field that a stale guide pointer could cause another thread to read
// concurrently with poisoning is an atomic; accesses that merely validate
// use relaxed ordering (the chain words carry the synchronization).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/cacheline.h"
#include "common/marked_ptr.h"

namespace skiptrie {

enum class NodeKind : uint8_t {
  kInterior = 0,  // a real key's tower node
  kHead = 1,      // per-level head sentinel (ikey 0)
  kTail = 2,      // shared tail sentinel (ikey UINT64_MAX)
  kPoison = 3,    // retired storage awaiting recycling
};

struct alignas(kCacheLine) Node {
  std::atomic<uint64_t> next{0};
  std::atomic<uint64_t> ikey_{0};
  std::atomic<Node*> back{nullptr};
  std::atomic<Node*> down_{nullptr};
  std::atomic<Node*> root_{nullptr};
  std::atomic<uint64_t> prevw{0};
  std::atomic<uint64_t> stopw{0};
  std::atomic<uint32_t> ready{0};
  std::atomic<uint32_t> meta{0};  // level | orig_height<<8 | kind<<16

  uint64_t ikey() const { return ikey_.load(std::memory_order_relaxed); }
  Node* down() const { return down_.load(std::memory_order_relaxed); }
  Node* root() const { return root_.load(std::memory_order_relaxed); }
  uint32_t level() const {
    return meta.load(std::memory_order_relaxed) & 0xffu;
  }
  uint32_t orig_height() const {
    return (meta.load(std::memory_order_relaxed) >> 8) & 0xffu;
  }
  NodeKind kind() const {
    return static_cast<NodeKind>(
        (meta.load(std::memory_order_relaxed) >> 16) & 0xffu);
  }

  void init(uint64_t ikey, uint32_t level, uint32_t orig_height,
            NodeKind kind, Node* down, Node* root) {
    next.store(0, std::memory_order_relaxed);
    ikey_.store(ikey, std::memory_order_relaxed);
    back.store(nullptr, std::memory_order_relaxed);
    down_.store(down, std::memory_order_relaxed);
    root_.store(root, std::memory_order_relaxed);
    prevw.store(0, std::memory_order_relaxed);
    stopw.store(0, std::memory_order_relaxed);
    ready.store(0, std::memory_order_relaxed);
    meta.store(level | (orig_height << 8) |
                   (static_cast<uint32_t>(kind) << 16),
               std::memory_order_release);
  }

  // Turn retired storage into an obviously-invalid node.  Runs after the
  // EBR grace period; concurrent readers via stale guide pointers see either
  // the old fields or the poison values, never torn non-atomic data.
  void poison() {
    ikey_.store(UINT64_MAX, std::memory_order_relaxed);
    back.store(nullptr, std::memory_order_relaxed);
    down_.store(nullptr, std::memory_order_relaxed);
    root_.store(nullptr, std::memory_order_relaxed);
    next.store(kMark, std::memory_order_relaxed);
    prevw.store(kMark, std::memory_order_relaxed);
    stopw.store(1, std::memory_order_relaxed);
    ready.store(0, std::memory_order_relaxed);
    meta.store(0xffu | (static_cast<uint32_t>(NodeKind::kPoison) << 16),
               std::memory_order_release);
  }
};

static_assert(sizeof(Node) == kCacheLine, "Node must be one cache line");

}  // namespace skiptrie
