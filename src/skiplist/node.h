// Skiplist tower node.
//
// One fixed-size, cache-line-aligned node type serves every level of the
// truncated skiplist.  Field roles (paper §2, §3):
//
//   next   tagged word  (Node* | kMark | kDesc).  The Harris mark on a
//          node's own next word is the node's logical-deletion flag at its
//          level.  DCSS descriptors may be installed here transiently.
//   ikey   internal key: user key + 1.  Head sentinels hold 0, the shared
//          tail (and poisoned/recycled nodes) hold the all-ones ikey, so
//          every user key satisfies 0 < ikey < ikey_max.
//   back   guide pointer, set just before the node is marked; points to the
//          node's predecessor at marking time (Fomitchev–Ruppert).  Guide
//          only: traversals validate what they find.
//   down   tower link to the same key's node one level below (self at
//          level 0).  Immutable after publication.
//   root   the tower's level-0 node.  Immutable after publication.
//   prevw  top-level only: tagged word (Node* | kMark).  The backwards
//          "guide" pointer of the doubly-linked list.  Its mark mirrors the
//          owner's deletion so Alg. 7's DCSS can guard on
//          "(right.prev, right.marked)" as one word.
//   stopw  root only: set to 1 by the delete operation that claims the
//          tower; tower raising is DCSS-guarded on stopw == 0 (paper §2).
//   chunkw root only: 1 + the id of the leaf chunk this key was last indexed
//          under (0 = none; DESIGN.md §7.2).  Pure hint — chunk lookups
//          validate the id against the chunk table before use, so a stale or
//          recycled value costs steps, never correctness.
//   meta   packed {level, orig_height, kind, ready}; level/height/kind are
//          written before publication and at poison time; the ready bit
//          (top-level only: fixPrev has installed the prev pointer) is set
//          once via fetch_or.  Atomic with relaxed access for the packed
//          fields, acquire for ready.
//
// Every field that a stale guide pointer could cause another thread to read
// concurrently with poisoning is an atomic; accesses that merely validate
// use relaxed ordering (the chain words carry the synchronization).
//
// The node is a template over the ikey word (DESIGN.md §6): NodeT<uint64_t>
// is the seed layout, byte for byte — ikey_ a single std::atomic<uint64_t>,
// sizeof == one cache line.  Wider ikeys (u128) store as two relaxed
// uint64_t halves in AtomicIkey: a torn read yields an ikey that was never
// stored, which is the same hazard class as reading a recycled node's
// re-keyed ikey (§3.6) — ikeys read through guide pointers are hints,
// validated by kind/level/mark identity checks before any structural use —
// so no double-wide atomic (and no libatomic lock) is needed.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/bitops.h"
#include "common/cacheline.h"
#include "common/marked_ptr.h"

namespace skiptrie {

enum class NodeKind : uint8_t {
  kInterior = 0,  // a real key's tower node
  kHead = 1,      // per-level head sentinel (ikey 0)
  kTail = 2,      // shared tail sentinel (ikey all-ones)
  kPoison = 3,    // retired storage awaiting recycling
};

// Atomic holder for an ikey word.  Generic version: two relaxed halves
// (see file comment for why torn reads are tolerable here).
template <typename Ikey>
struct AtomicIkey {
  std::atomic<uint64_t> hi_{0};
  std::atomic<uint64_t> lo_{0};

  Ikey load(std::memory_order = std::memory_order_relaxed) const {
    return make_u128(hi_.load(std::memory_order_relaxed),
                     lo_.load(std::memory_order_relaxed));
  }
  void store(Ikey v, std::memory_order = std::memory_order_relaxed) {
    hi_.store(u128_hi(v), std::memory_order_relaxed);
    lo_.store(u128_lo(v), std::memory_order_relaxed);
  }
};

// uint64_t: one plain atomic — the seed representation.
template <>
struct AtomicIkey<uint64_t> {
  std::atomic<uint64_t> v_{0};

  uint64_t load(std::memory_order mo = std::memory_order_relaxed) const {
    return v_.load(mo);
  }
  void store(uint64_t v,
             std::memory_order mo = std::memory_order_relaxed) {
    v_.store(v, mo);
  }
};

template <typename Ikey>
struct alignas(kCacheLine) NodeT {
  std::atomic<uint64_t> next{0};
  AtomicIkey<Ikey> ikey_;
  std::atomic<NodeT*> back{nullptr};
  std::atomic<NodeT*> down_{nullptr};
  std::atomic<NodeT*> root_{nullptr};
  std::atomic<uint64_t> prevw{0};
  std::atomic<uint64_t> stopw{0};
  std::atomic<uint32_t> chunkw{0};
  std::atomic<uint32_t> meta{0};  // level | orig_height<<8 | kind<<16
                                  //       | ready<<24

  static constexpr uint32_t kReadyBit = 1u << 24;

  Ikey ikey() const { return ikey_.load(std::memory_order_relaxed); }
  NodeT* down() const { return down_.load(std::memory_order_relaxed); }
  NodeT* root() const { return root_.load(std::memory_order_relaxed); }
  uint32_t level() const {
    return meta.load(std::memory_order_relaxed) & 0xffu;
  }
  uint32_t orig_height() const {
    return (meta.load(std::memory_order_relaxed) >> 8) & 0xffu;
  }
  // Rewrite the height byte (bits 8..15) in place.  On level-0 roots the
  // byte starts as the deterministic draw and the adaptive-heights policy
  // (DESIGN.md §8) maintains it as the tower's *current* height hint — a
  // screen only, promote/demote re-probe the real tower under the adapt
  // latch.  CAS loop (not a store) so a racing set_ready fetch_or on the
  // same word is never clobbered.
  void set_height_hint(uint32_t h) {
    uint32_t m = meta.load(std::memory_order_relaxed);
    for (;;) {
      const uint32_t nm = (m & ~0xff00u) | ((h & 0xffu) << 8);
      if (m == nm ||
          meta.compare_exchange_weak(m, nm, std::memory_order_relaxed)) {
        break;
      }
    }
  }
  NodeKind kind() const {
    return static_cast<NodeKind>(
        (meta.load(std::memory_order_relaxed) >> 16) & 0xffu);
  }
  bool ready() const {
    return (meta.load(std::memory_order_acquire) & kReadyBit) != 0;
  }
  void set_ready() { meta.fetch_or(kReadyBit, std::memory_order_release); }

  void init(Ikey ikey, uint32_t level, uint32_t orig_height, NodeKind kind,
            NodeT* down, NodeT* root) {
    next.store(0, std::memory_order_relaxed);
    ikey_.store(ikey, std::memory_order_relaxed);
    back.store(nullptr, std::memory_order_relaxed);
    down_.store(down, std::memory_order_relaxed);
    root_.store(root, std::memory_order_relaxed);
    prevw.store(0, std::memory_order_relaxed);
    stopw.store(0, std::memory_order_relaxed);
    chunkw.store(0, std::memory_order_relaxed);
    meta.store(level | (orig_height << 8) |
                   (static_cast<uint32_t>(kind) << 16),
               std::memory_order_release);
  }

  // Turn retired storage into an obviously-invalid node.  Runs after the
  // EBR grace period; concurrent readers via stale guide pointers see either
  // the old fields or the poison values, never torn non-atomic data.
  void poison() {
    ikey_.store(ikey_all_ones<Ikey>(), std::memory_order_relaxed);
    back.store(nullptr, std::memory_order_relaxed);
    down_.store(nullptr, std::memory_order_relaxed);
    root_.store(nullptr, std::memory_order_relaxed);
    next.store(kMark, std::memory_order_relaxed);
    prevw.store(kMark, std::memory_order_relaxed);
    stopw.store(1, std::memory_order_relaxed);
    chunkw.store(0, std::memory_order_relaxed);
    meta.store(0xffu | (static_cast<uint32_t>(NodeKind::kPoison) << 16),
               std::memory_order_release);
  }
};

// The u64 fast path keeps the historical name; the templated engine uses
// NodeT<Traits::ikey_type> directly.
using Node = NodeT<uint64_t>;

static_assert(sizeof(Node) == kCacheLine, "Node must be one cache line");

}  // namespace skiptrie
