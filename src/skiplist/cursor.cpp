#include "skiplist/cursor.h"

#include <cstddef>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "dcss/dcss.h"
#include "skiplist/finger.h"

namespace skiptrie {

namespace {
// A redescent may enter from the retained top row instead of the fallback
// (skipping the SkipTrie's hash probes) — but only for short jumps: the
// walk right from the retained position crosses one top node per top gap,
// so beyond a few gaps the fallback's O(log log u) probes are cheaper.  The
// jump length in gaps is estimated from the recorded top bracket's own
// width (right - left ikeys), the one sample of top spacing the cursor has.
constexpr uint64_t kTopEntryMaxGaps = 8;
}  // namespace

template <typename Traits>
auto BasicDescentCursor<Traits>::seek(Ikey x, uint32_t cold_min_level,
                                      StartFn fallback, void* env,
                                      uint32_t stop_level,
                                      uint32_t* stopped_at, LocateExact exact,
                                      bool* exact_hit) -> Bracket {
  Engine& e = *eng_;
  const uint32_t top = e.top_level();
  auto& c = tls_counters();

  const bool was_warm = warm_;
  warm_ = true;
  // Rows are only guaranteed to hold real brackets — rather than the bare
  // level heads a cold partial descent leaves above its entry — once some
  // descent has entered at the top.  Until then, entries stay at or above
  // cold_min_level so a write path's raise/tower-sweep never consumes a
  // bare-head hint (which would scan whole levels); afterwards any entry
  // level is safe and warm seeks run unrestricted.
  const uint32_t eff_min = rows_real_ ? 0 : cold_min_level;

  const auto row_validates = [&](uint32_t l) {
    Node_t* n = left_[l];
    const NodeKind k = n->kind();
    if (k != NodeKind::kInterior && k != NodeKind::kHead) return false;
    if (n->level() != l) return false;
    if (n->ikey() != left_ikey_[l]) return false;
    return !is_marked(dcss_read(n->next));
  };
  // Run the descent from (start, lvl).  A cold seek head-fills EVERY row
  // first (the descent then overwrites the rows it traverses): this covers
  // rows above the entry, rows below a stop_level floor, and — under
  // adaptive heights — the rows an exact-match exit (DESIGN.md §8.3) never
  // reaches, so no row is ever left holding garbage a later warm screen
  // would dereference.  Any entry at the top makes every row real.
  const auto enter = [&](Node_t* start, uint32_t lvl,
                         BasicSearchFinger<Traits>* f, uint64_t epoch) {
    const uint32_t floor = lvl < stop_level ? lvl : stop_level;
    if (stopped_at != nullptr) *stopped_at = floor;
    if (lvl == top) rows_real_ = true;
    if (!was_warm) {
      for (uint32_t l = 0; l <= top; ++l) {
        left_[l] = e.head_[l];
        left_ikey_[l] = Ikey(0);
        right_ikey_[l] = Ikey(0);
      }
    }
    return e.descend_from(x, start, lvl, left_, f, epoch, this, floor, exact,
                          exact_hit);
  };

  // Reuse candidate: the lowest retained row (at or above eff_min) whose
  // bracket still contains x and whose left node passes the finger-style
  // identity screen (DESIGN.md §3.6 — kind, level, ikey, unmarked).
  // Containment against the *recorded* right ikey plays the adjacency
  // role: everything between left and x at seek time is at most what has
  // been inserted into the bracket since it was recorded.
  int cl = BasicSearchFinger<Traits>::kMiss;
  Node_t* cstart = nullptr;
  if (was_warm) {
    for (uint32_t l = eff_min; l <= top; ++l) {
      if (!(left_ikey_[l] < x && x <= right_ikey_[l])) continue;
      if (!row_validates(l)) continue;
      cl = static_cast<int>(l);
      cstart = left_[l];
      break;
    }
  }

  // The finger composes with the cursor rather than being displaced by it:
  // the retained bracket tracks the *stream* position while the finger is
  // a many-way cache over the whole key space, and either may offer the
  // lower entry.
  if (e.finger_on_) {
    BasicSearchFinger<Traits>& f = e.finger();
    const uint64_t now = e.ctx_.ebr->global_epoch();
    Node_t* fstart = nullptr;
    const int fl = f.try_start(x, eff_min, now, &fstart);
    if (fl >= 0 && (cl < 0 || fl < cl)) {
      // A warm seek the finger serves below the cursor's bracket is still a
      // redescent in the cursor's books: reuses + redescends == warm seeks.
      if (was_warm) c.cursor_redescends++;
      c.finger_hits++;
      c.hops_finger_saved += top - static_cast<uint32_t>(fl);
      return enter(fstart, static_cast<uint32_t>(fl), &f, now);
    }
    if (cl >= 0) {
      c.cursor_reuses++;
      // Reuse descents record into the finger like any other descent: the
      // frequency cascade (kRecordDepth below the entry) and CLOCK
      // retention already bound how fast a one-shot sweep can displace hot
      // brackets, and a starved finger would otherwise stop offering the
      // low entries the compose check above depends on.
      return enter(cstart, static_cast<uint32_t>(cl), &f, now);
    }
    if (was_warm) {
      c.cursor_redescends++;
      c.finger_misses++;
      // Every bracket went stale, but on an ascending stream the retained
      // *top* row is still a position left of x — enter there and walk
      // right, skipping the fallback (for the SkipTrie: every hash probe
      // after the batch's first key).  Amortized over a batch, the top
      // walk crosses each top-level node of the swept range once.
      if (top_entry_usable(x) && row_validates(top)) {
        return enter(left_[top], top, &f, now);
      }
      Node_t* start = fallback != nullptr ? fallback(env, x) : e.head_[top];
      const uint32_t lvl = e.resolve_start(x, start);
      return enter(start, lvl, &f, now);
    }
    c.finger_misses++;
    Node_t* start = fallback != nullptr ? fallback(env, x) : e.head_[top];
    const uint32_t lvl = e.resolve_start(x, start);
    return enter(start, lvl, &f, now);
  }

  if (cl >= 0) {
    c.cursor_reuses++;
    return enter(cstart, static_cast<uint32_t>(cl), nullptr, 0);
  }
  if (was_warm) {
    c.cursor_redescends++;
    if (top_entry_usable(x) && row_validates(top)) {
      return enter(left_[top], top, nullptr, 0);
    }
  }
  Node_t* start = fallback != nullptr ? fallback(env, x) : e.head_[top];
  const uint32_t lvl = e.resolve_start(x, start);
  return enter(start, lvl, nullptr, 0);
}

template <typename Traits>
bool BasicDescentCursor<Traits>::top_entry_usable(Ikey x) const {
  const uint32_t top = eng_->top_level();
  if (!(left_ikey_[top] < x)) return false;  // descending/jumped-back stream
  const Ikey width = right_ikey_[top] - left_ikey_[top];
  if (width == Ikey(0)) return false;  // never-traversed row (0, 0)
  return (x - left_ikey_[top]) / width <= Ikey(kTopEntryMaxGaps);
}

template <typename Traits>
void BasicDescentCursor<Traits>::note_insert(
    const typename Engine::InsertResult& r, Ikey x, uint32_t height) {
  if (!r.inserted) return;  // duplicate: the seek already recorded the rows
  // The new level-0 node is the tightest possible left anchor for the next
  // ascending key; the old right bound still holds (the tower was linked
  // strictly before it).
  left_[0] = r.root;
  left_ikey_[0] = x;
  const uint32_t top = eng_->top_level();
  for (uint32_t l = 1; l <= height && l <= top; ++l) {
    // The raise loop advanced left_[l] in place (hints()); re-stamp the
    // recorded ikey so the reuse screen and the identity validation agree.
    // The re-read is safe (type-stable storage) and self-consistent: a
    // recycled node yields an ikey that its own validation re-checks.
    left_ikey_[l] = left_[l]->ikey();
  }
}

template <typename Traits>
void BasicDescentCursor<Traits>::note_erase(Ikey x) {
  (void)x;
  // The tower sweep advanced the hints at every level it searched; re-stamp
  // their ikeys.  Rows whose right bound *was* the erased key keep
  // right_ikey_ == x: containment for any later key fails there and the
  // seek enters one level up — the natural cost of deleting one's own
  // bracket edge.
  const uint32_t top = eng_->top_level();
  for (uint32_t l = 0; l <= top; ++l) {
    left_ikey_[l] = left_[l]->ikey();
  }
}

namespace {

// Per-thread cursor registry, mirroring the finger registry (finger.cpp):
// one stable slot per live engine the thread has touched, keyed by the
// never-reused owner id, growable, with move-toward-front promotion and a
// lazy sweep of the shared dead-owner journal (DESIGN.md §4.2).  A slot is
// never rebound while its owner lives, so cursors fetched for different
// engines never alias and a shard's stream state survives the thread
// visiting every other shard in between.  One registry per traits
// instantiation, like the finger's.
template <typename Traits>
struct CursorSlot {
  uint64_t owner = 0;
  std::unique_ptr<BasicDescentCursor<Traits>> cur;
};
template <typename Traits>
struct CursorRegistry {
  std::vector<CursorSlot<Traits>> slots;
  uint64_t seen_dead = 0;
  std::vector<uint64_t> scratch;
};

template <typename Traits>
CursorRegistry<Traits>& tl_cursor_reg() {
  thread_local CursorRegistry<Traits> reg;
  return reg;
}

template <typename Registry>
void sweep_dead_cursors(Registry& reg) {
  const uint64_t v = detail::dead_owner_version();
  if (v == reg.seen_dead) return;
  reg.seen_dead = detail::dead_owners_since(reg.seen_dead, reg.scratch);
  for (const uint64_t dead : reg.scratch) {
    for (size_t i = 0; i < reg.slots.size(); ++i) {
      if (reg.slots[i].owner == dead) {
        reg.slots.erase(reg.slots.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
  }
}

}  // namespace

template <typename Traits>
BasicDescentCursor<Traits>& tls_cursor(uint64_t owner,
                                       BasicSkipListEngine<Traits>& engine) {
  CursorRegistry<Traits>& reg = tl_cursor_reg<Traits>();
  sweep_dead_cursors(reg);
  for (size_t i = 0; i < reg.slots.size(); ++i) {
    if (reg.slots[i].owner == owner) {
      if (i > 0) {
        std::swap(reg.slots[i], reg.slots[i - 1]);
        --i;
      }
      return *reg.slots[i].cur;
    }
  }
  CursorSlot<Traits> s;
  s.owner = owner;
  s.cur = std::make_unique<BasicDescentCursor<Traits>>(engine);
  reg.slots.push_back(std::move(s));
  return *reg.slots.back().cur;
}

template <typename Traits>
size_t tls_cursor_registry_size_of() {
  CursorRegistry<Traits>& reg = tl_cursor_reg<Traits>();
  sweep_dead_cursors(reg);
  return reg.slots.size();
}

size_t tls_cursor_registry_size() {
  return tls_cursor_registry_size_of<U64Traits>();
}

template class BasicDescentCursor<U64Traits>;
template class BasicDescentCursor<Bytes16Traits>;
template DescentCursor& tls_cursor<U64Traits>(uint64_t, SkipListEngine&);
template BasicDescentCursor<Bytes16Traits>& tls_cursor<Bytes16Traits>(
    uint64_t, BasicSkipListEngine<Bytes16Traits>&);
template size_t tls_cursor_registry_size_of<U64Traits>();
template size_t tls_cursor_registry_size_of<Bytes16Traits>();

}  // namespace skiptrie
