#include "skiplist/finger.h"

#include <atomic>
#include <cstring>
#include <memory>

#include "dcss/dcss.h"

namespace skiptrie {

void SearchFinger::reset(uint64_t owner, uint32_t top_level) {
  owner_ = owner;
  levels_ = top_level + 1 < kLevels ? top_level + 1 : kLevels;
  invalidate();
}

void SearchFinger::invalidate() {
  for (uint32_t l = 0; l < kLevels; ++l) {
    cursor_[l] = 0;
    for (uint32_t w = 0; w < kWays; ++w) e_[l][w] = Entry{};
  }
}

void SearchFinger::record(uint32_t lvl, Node* left, uint64_t left_ikey,
                          uint64_t right_ikey, uint64_t epoch) {
  if (lvl >= levels_) return;
  Entry* row = e_[lvl];
  for (uint32_t w = 0; w < kWays; ++w) {
    if (row[w].left != nullptr && row[w].left_ikey == left_ikey) {
      row[w] = Entry{left, left_ikey, right_ikey, epoch, /*ref=*/true};
      return;
    }
  }
  // Second-chance eviction: sweep the clock hand, clearing ref bits, until
  // an unreferenced entry turns up (bounded: after one full sweep every
  // bit is clear).
  uint32_t v = cursor_[lvl];
  for (uint32_t i = 0; i < kWays && row[v].ref; ++i) {
    row[v].ref = false;
    v = (v + 1) % kWays;
  }
  cursor_[lvl] = (v + 1) % kWays;
  row[v] = Entry{left, left_ikey, right_ikey, epoch, /*ref=*/false};
}

int SearchFinger::try_start(uint64_t x, uint32_t min_level,
                            uint64_t now_epoch, Node** out) {
  for (uint32_t lvl = min_level; lvl < levels_; ++lvl) {
    Entry* row = e_[lvl];
    for (uint32_t w = 0; w < kWays; ++w) {
      Entry& en = row[w];
      // Cheap, purely thread-local screens first: only a bracket that
      // contains x and is epoch-fresh earns the (possibly cold) node reads.
      if (en.left == nullptr) continue;
      if (!(en.left_ikey < x && x <= en.right_ikey)) continue;
      if (now_epoch - en.epoch > kMaxEpochLag) continue;
      // Validate the node itself.  Type-stable storage makes these reads
      // safe even if the node was retired; the checks reject poisoned,
      // recycled-to-another-identity, and marked nodes (DESIGN.md §3.6).
      Node* n = en.left;
      const NodeKind k = n->kind();
      if (k != NodeKind::kInterior && k != NodeKind::kHead) continue;
      if (n->level() != lvl) continue;
      if (n->ikey() != en.left_ikey) continue;
      const uint64_t nw = dcss_read(n->next);
      if (is_marked(nw)) continue;
      // Adjacency at use time: the bracket was adjacent when recorded, but
      // inserts since can have filled the gap — in the worst case a bracket
      // recorded against a sparse list (left = head, right = tail) contains
      // every future target and a "hit" on it walks the whole level, worse
      // than the miss path.  One read of left's successor rejects exactly
      // those: accept only if nothing sits strictly between left and x, so
      // a hit always enters its level in O(1) hops.
      Node* succ = unpack_ptr<Node>(nw);
      if (succ == nullptr || succ->ikey() < x) continue;
      en.ref = true;  // a serving entry earns its second chance
      *out = n;
      return static_cast<int>(lvl);
    }
  }
  return kMiss;
}

namespace {

// Per-thread finger cache.  Slots are bound to owner ids on demand and
// recycled round-robin; because owner ids are never reused, a stale slot
// can never be mistaken for a live engine's finger (its pointers sit inert
// until the slot is rebound and reset).
struct FingerSlot {
  uint64_t owner = 0;
  std::unique_ptr<SearchFinger> finger;
};
constexpr size_t kTlsFingerSlots = 4;
thread_local FingerSlot tl_finger_slots[kTlsFingerSlots];
thread_local size_t tl_finger_victim = 0;

}  // namespace

SearchFinger& tls_finger(uint64_t owner, uint32_t top_level) {
  for (FingerSlot& s : tl_finger_slots) {
    if (s.owner == owner && s.finger != nullptr) return *s.finger;
  }
  FingerSlot& s = tl_finger_slots[tl_finger_victim];
  tl_finger_victim = (tl_finger_victim + 1) % kTlsFingerSlots;
  if (s.finger == nullptr) s.finger = std::make_unique<SearchFinger>();
  s.owner = owner;
  s.finger->reset(owner, top_level);
  return *s.finger;
}

uint64_t new_finger_owner() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace skiptrie
