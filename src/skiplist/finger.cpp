#include "skiplist/finger.h"

#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>

#include "dcss/dcss.h"

namespace skiptrie {

template <typename Traits>
void BasicSearchFinger<Traits>::reset(uint64_t owner, uint32_t top_level) {
  owner_ = owner;
  levels_ = top_level + 1 < kLevels ? top_level + 1 : kLevels;
  invalidate();
}

template <typename Traits>
void BasicSearchFinger<Traits>::invalidate() {
  for (uint32_t l = 0; l < kLevels; ++l) {
    cursor_[l] = 0;
    for (uint32_t w = 0; w < kWays; ++w) e_[l][w] = Entry{};
  }
  chunk_clock_ = 0;
  for (uint32_t w = 0; w < kChunkWays; ++w) ce_[w] = ChunkEntry{};
  leaf_clock_ = 0;
  for (uint32_t w = 0; w < kLeafWays; ++w) le_[w] = Entry{};
}

template <typename Traits>
uint32_t BasicSearchFinger<Traits>::try_chunk(Ikey x) {
  for (uint32_t w = 0; w < kChunkWays; ++w) {
    ChunkEntry& en = ce_[w];
    if (en.idw == 0) continue;
    if (!(en.base <= x && x < en.right)) continue;
    en.ref = true;
    return en.idw;
  }
  return 0;
}

template <typename Traits>
void BasicSearchFinger<Traits>::record_chunk(uint32_t idw, Ikey base,
                                             Ikey right) {
  for (uint32_t w = 0; w < kChunkWays; ++w) {
    if (ce_[w].idw == idw) {
      ce_[w] = ChunkEntry{idw, base, right, /*ref=*/true};
      return;
    }
  }
  uint32_t v = chunk_clock_;
  for (uint32_t i = 0; i < kChunkWays && ce_[v].ref; ++i) {
    ce_[v].ref = false;
    v = (v + 1) % kChunkWays;
  }
  chunk_clock_ = (v + 1) % kChunkWays;
  ce_[v] = ChunkEntry{idw, base, right, /*ref=*/false};
}

template <typename Traits>
void BasicSearchFinger<Traits>::record(uint32_t lvl, Node_t* left,
                                       Ikey left_ikey, Ikey right_ikey,
                                       uint64_t epoch) {
  if (lvl >= levels_) return;
  Entry* row = e_[lvl];
  for (uint32_t w = 0; w < kWays; ++w) {
    if (row[w].left != nullptr && row[w].left_ikey == left_ikey) {
      row[w] = Entry{left, left_ikey, right_ikey, epoch, /*ref=*/true};
      return;
    }
  }
  // Second-chance eviction: sweep the clock hand, clearing ref bits, until
  // an unreferenced entry turns up (bounded: after one full sweep every
  // bit is clear).
  uint32_t v = cursor_[lvl];
  for (uint32_t i = 0; i < kWays && row[v].ref; ++i) {
    row[v].ref = false;
    v = (v + 1) % kWays;
  }
  cursor_[lvl] = (v + 1) % kWays;
  row[v] = Entry{left, left_ikey, right_ikey, epoch, /*ref=*/false};
}

template <typename Traits>
auto BasicSearchFinger<Traits>::try_leaf(Ikey x, uint64_t now_epoch)
    -> Node_t* {
  for (uint32_t w = 0; w < kLeafWays; ++w) {
    Entry& en = le_[w];
    // The same screen stack as try_start's level-0 row: thread-local
    // containment and epoch checks first, then identity validation against
    // the (type-stable) node, then the use-time adjacency read.
    if (en.left == nullptr) continue;
    if (!(en.left_ikey < x && x <= en.right_ikey)) continue;
    if (now_epoch - en.epoch > kMaxEpochLag) continue;
    Node_t* n = en.left;
    const NodeKind k = n->kind();
    if (k != NodeKind::kInterior && k != NodeKind::kHead) continue;
    if (n->level() != 0) continue;
    if (n->ikey() != en.left_ikey) continue;
    const uint64_t nw = dcss_read(n->next);
    if (is_marked(nw)) continue;
    Node_t* succ = unpack_ptr<Node_t>(nw);
    if (succ == nullptr || succ->ikey() < x) continue;
    en.ref = true;
    // Promote one slot: hot entries sink toward the front, so their hits
    // terminate the linear scan early.
    if (w > 0) std::swap(le_[w], le_[w - 1]);
    return n;
  }
  return nullptr;
}

template <typename Traits>
void BasicSearchFinger<Traits>::record_leaf(Node_t* left, Ikey left_ikey,
                                            Ikey right_ikey, uint64_t epoch) {
  for (uint32_t w = 0; w < kLeafWays; ++w) {
    if (le_[w].left != nullptr && le_[w].left_ikey == left_ikey) {
      le_[w] = Entry{left, left_ikey, right_ikey, epoch, /*ref=*/true};
      return;
    }
  }
  uint32_t v = leaf_clock_;
  for (uint32_t i = 0; i < kLeafWays && le_[v].ref; ++i) {
    le_[v].ref = false;
    v = (v + 1) % kLeafWays;
  }
  leaf_clock_ = (v + 1) % kLeafWays;
  le_[v] = Entry{left, left_ikey, right_ikey, epoch, /*ref=*/false};
}

template <typename Traits>
int BasicSearchFinger<Traits>::try_start(Ikey x, uint32_t min_level,
                                         uint64_t now_epoch, Node_t** out) {
  for (uint32_t lvl = min_level; lvl < levels_; ++lvl) {
    Entry* row = e_[lvl];
    for (uint32_t w = 0; w < kWays; ++w) {
      Entry& en = row[w];
      // Cheap, purely thread-local screens first: only a bracket that
      // contains x and is epoch-fresh earns the (possibly cold) node reads.
      if (en.left == nullptr) continue;
      if (!(en.left_ikey < x && x <= en.right_ikey)) continue;
      if (now_epoch - en.epoch > kMaxEpochLag) continue;
      // Validate the node itself.  Type-stable storage makes these reads
      // safe even if the node was retired; the checks reject poisoned,
      // recycled-to-another-identity, and marked nodes (DESIGN.md §3.6).
      Node_t* n = en.left;
      const NodeKind k = n->kind();
      if (k != NodeKind::kInterior && k != NodeKind::kHead) continue;
      if (n->level() != lvl) continue;
      if (n->ikey() != en.left_ikey) continue;
      const uint64_t nw = dcss_read(n->next);
      if (is_marked(nw)) continue;
      // Adjacency at use time: the bracket was adjacent when recorded, but
      // inserts since can have filled the gap — in the worst case a bracket
      // recorded against a sparse list (left = head, right = tail) contains
      // every future target and a "hit" on it walks the whole level, worse
      // than the miss path.  One read of left's successor rejects exactly
      // those: accept only if nothing sits strictly between left and x, so
      // a hit always enters its level in O(1) hops.
      Node_t* succ = unpack_ptr<Node_t>(nw);
      if (succ == nullptr || succ->ikey() < x) continue;
      en.ref = true;  // a serving entry earns its second chance
      *out = n;
      return static_cast<int>(lvl);
    }
  }
  return kMiss;
}

// --- Dead-owner journal ------------------------------------------------------
//
// Owner ids are never reused, so the registries below key slots by owner and
// hand out stable objects.  To keep a thread's registry from growing with
// every engine it has *ever* touched (bench_suite's main thread prefills
// hundreds of short-lived structures), a destroyed engine appends its owner
// id here and each registry drops matching slots lazily on its next lookup.
// The journal itself is append-only (8 bytes per engine ever destroyed) and
// each thread only scans the suffix it has not yet seen.  One journal serves
// the registries of every traits instantiation (owner ids are global).

namespace {

std::mutex dead_owner_mu;
std::vector<uint64_t> dead_owner_journal;
std::atomic<uint64_t> dead_owner_ver{0};

}  // namespace

void release_finger_owner(uint64_t owner) {
  std::lock_guard<std::mutex> lk(dead_owner_mu);
  dead_owner_journal.push_back(owner);
  dead_owner_ver.store(dead_owner_journal.size(), std::memory_order_release);
}

namespace detail {

uint64_t dead_owner_version() {
  return dead_owner_ver.load(std::memory_order_acquire);
}

uint64_t dead_owners_since(uint64_t since, std::vector<uint64_t>& out) {
  std::lock_guard<std::mutex> lk(dead_owner_mu);
  out.assign(dead_owner_journal.begin() + static_cast<ptrdiff_t>(since),
             dead_owner_journal.end());
  return dead_owner_journal.size();
}

}  // namespace detail

namespace {

// Per-thread finger registry: one stable slot per live engine the thread
// has touched.  No eviction while the owner lives — the fixed-slot
// round-robin it replaces rebound objects in place, retargeting references
// an outer frame still held (aliasing) and resetting every finger to cold
// whenever a thread cycled through more engines than slots, which is the
// steady state of a sharded split batch (DESIGN.md §4.2).  Lookups scan
// linearly with move-toward-front promotion, so the repeated-owner path
// stays O(1) and a shard sweep costs at most one swap per shard.  One
// registry per traits instantiation (owner ids never collide across
// instantiations, but the slot payloads are different types).
template <typename Traits>
struct FingerSlot {
  uint64_t owner = 0;
  std::unique_ptr<BasicSearchFinger<Traits>> finger;
};
template <typename Traits>
struct FingerRegistry {
  std::vector<FingerSlot<Traits>> slots;
  uint64_t seen_dead = 0;           // journal position already processed
  std::vector<uint64_t> scratch;
};

template <typename Traits>
FingerRegistry<Traits>& tl_finger_reg() {
  thread_local FingerRegistry<Traits> reg;
  return reg;
}

template <typename Registry>
void sweep_dead_owners(Registry& reg) {
  const uint64_t v = detail::dead_owner_version();
  if (v == reg.seen_dead) return;
  reg.seen_dead = detail::dead_owners_since(reg.seen_dead, reg.scratch);
  for (const uint64_t dead : reg.scratch) {
    for (size_t i = 0; i < reg.slots.size(); ++i) {
      if (reg.slots[i].owner == dead) {
        reg.slots.erase(reg.slots.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
  }
}

}  // namespace

template <typename Traits>
BasicSearchFinger<Traits>& tls_finger(uint64_t owner, uint32_t top_level) {
  FingerRegistry<Traits>& reg = tl_finger_reg<Traits>();
  sweep_dead_owners(reg);
  for (size_t i = 0; i < reg.slots.size(); ++i) {
    if (reg.slots[i].owner == owner) {
      // Swapping slots moves only the owner word and the unique_ptr; the
      // finger objects themselves never move, so held references stay
      // valid across promotions.
      if (i > 0) {
        std::swap(reg.slots[i], reg.slots[i - 1]);
        --i;
      }
      return *reg.slots[i].finger;
    }
  }
  FingerSlot<Traits> s;
  s.owner = owner;
  s.finger = std::make_unique<BasicSearchFinger<Traits>>();
  s.finger->reset(owner, top_level);
  reg.slots.push_back(std::move(s));
  return *reg.slots.back().finger;
}

template <typename Traits>
size_t tls_finger_registry_size_of() {
  FingerRegistry<Traits>& reg = tl_finger_reg<Traits>();
  sweep_dead_owners(reg);
  return reg.slots.size();
}

size_t tls_finger_registry_size() {
  return tls_finger_registry_size_of<U64Traits>();
}

uint64_t new_finger_owner() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

template class BasicSearchFinger<U64Traits>;
template class BasicSearchFinger<Bytes16Traits>;
template SearchFinger& tls_finger<U64Traits>(uint64_t, uint32_t);
template BasicSearchFinger<Bytes16Traits>& tls_finger<Bytes16Traits>(uint64_t,
                                                                     uint32_t);
template size_t tls_finger_registry_size_of<U64Traits>();
template size_t tls_finger_registry_size_of<Bytes16Traits>();

}  // namespace skiptrie
