#include "skiplist/engine.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <new>

#include "common/backoff.h"
#include "common/stats.h"
#include "skiplist/cursor.h"

namespace skiptrie {

namespace {
// Guide walks (back/prev chains) are bounded before falling back to the
// level head; the bound only matters when stale guides loop through recycled
// storage, which validation makes rare.
constexpr uint32_t kWalkLimit = 4096;
// fixPrev retry bound: each retry implies a concurrent operation changed the
// neighborhood, so a bounded loop preserves lock-freedom; on exhaustion the
// prev pointer simply stays stale (it is a guide, repaired by later ops).
constexpr int kFixPrevRetries = 128;
// Bound on equal-key runs scanned when locating a tower node.
constexpr uint32_t kEqualRunLimit = 64;

}  // namespace

template <typename Traits>
BasicSkipListEngine<Traits>::BasicSkipListEngine(DcssContext ctx,
                                                 SlabArena& arena,
                                                 uint32_t top_level)
    : ctx_(ctx), arena_(arena), top_(top_level) {
  assert(top_ >= 1 && top_ <= kMaxLevels);
  assert(arena_.block_size() >= sizeof(Node_t));
  bool fresh = false;
  tail_ = new (arena_.allocate(&fresh)) Node_t();
  tail_->init(Traits::ikey_max(), 0xfe, 0, NodeKind::kTail, nullptr, nullptr);
  for (uint32_t l = 0; l <= top_; ++l) {
    head_[l] = new (arena_.allocate(&fresh)) Node_t();
    head_[l]->init(Ikey(0), l, top_, NodeKind::kHead,
                   l > 0 ? head_[l - 1] : nullptr, nullptr);
    head_[l]->next.store(pack_ptr(tail_), std::memory_order_release);
  }
}

template <typename Traits>
BasicSkipListEngine<Traits>::~BasicSkipListEngine() {
  // Arena owns all node storage; the only cleanup is publishing this
  // engine's owner id to the dead-owner journal so every thread's
  // finger/cursor registry slots for it are reclaimed (DESIGN.md §4.2).
  release_finger_owner(finger_owner_);
}

template <typename Traits>
auto BasicSkipListEngine<Traits>::cursor() -> Cursor& {
  return tls_cursor<Traits>(finger_owner_, *this);
}

template <typename Traits>
auto BasicSkipListEngine<Traits>::make_node(Ikey ikey, uint32_t level,
                                            uint32_t orig_height, Node_t* down,
                                            Node_t* root) -> Node_t* {
  bool fresh = false;
  void* storage = arena_.allocate(&fresh);
  // Recycled blocks still hold a live (poisoned) Node — re-initialize in
  // place; only brand-new storage gets placement-new (DESIGN.md §3.3).
  Node_t* n = fresh ? new (storage) Node_t() : static_cast<Node_t*>(storage);
  n->init(ikey, level, orig_height, NodeKind::kInterior, down, root);
  return n;
}

template <typename Traits>
void BasicSkipListEngine<Traits>::retire_node(Node_t* n) {
  tls_counters().retired_nodes++;
  ctx_.ebr->retire(
      n,
      +[](void* p, void* a) {
        auto* node = static_cast<Node_t*>(p);
        node->poison();
        static_cast<SlabArena*>(a)->recycle(node);
      },
      &arena_);
}

template <typename Traits>
void BasicSkipListEngine<Traits>::retire_owned(const EraseResult& r) {
  for (uint32_t i = 0; i < r.owned_count; ++i) retire_node(r.owned[i]);
}

template <typename Traits>
bool BasicSkipListEngine<Traits>::usable_start(Node_t* n, Ikey x,
                                               uint32_t level) const {
  if (n == nullptr) return false;
  const NodeKind k = n->kind();
  if (k != NodeKind::kInterior && k != NodeKind::kHead) return false;
  if (n->level() != level) return false;
  return n->ikey() < x;
}

template <typename Traits>
auto BasicSkipListEngine<Traits>::list_search(Ikey x, Node_t* start,
                                              uint32_t level) -> Bracket {
  assert(level <= top_);
  auto& c = tls_counters();
  Node_t* left = start;
  for (;;) {
    if (!usable_start(left, x, level)) {
      c.restarts++;
      left = head_[level];
    }
    Node_t* pred = left;
    const uint64_t pred_word = dcss_read(pred->next);
    if (is_marked(pred_word)) {
      // Our anchor got marked: recover through its back pointer (validated
      // at the top of the loop; falls back to the head if the guide is
      // stale or poisoned).
      c.back_steps++;
      c.bytes_touched += kCacheLine;
      left = pred->back.load(std::memory_order_acquire);
      continue;
    }
    Node_t* curr = unpack_ptr<Node_t>(pred_word);
    bool restart = false;
    while (!restart) {
      if (curr == nullptr) {  // defensive: only poisoned chains end in null
        restart = true;
        break;
      }
      c.node_hops++;
      c.bytes_touched += kCacheLine;  // one node == one line (DESIGN.md §7.4)
      if (level == top_) {
        c.hops_top++;  // attribution only; hops_top+hops_descent == node_hops
      } else {
        c.hops_descent++;
      }
      const uint64_t curr_word = dcss_read(curr->next);
      if (is_marked(curr_word)) {
        // curr is logically deleted: unlink it from pred.  The CAS can only
        // succeed while pred is unmarked (the mark would change the word),
        // which is exactly what makes the unlink safe.
        if (!counted_cas(pred->next, pack_ptr(curr),
                         without_tags(curr_word))) {
          left = pred;  // neighborhood changed; revalidate from pred
          restart = true;
          break;
        }
        curr = unpack_ptr<Node_t>(without_tags(curr_word));
        continue;
      }
      if (curr->ikey() >= x) {
        return Bracket{pred, curr};
      }
      pred = curr;
      curr = unpack_ptr<Node_t>(curr_word);
    }
  }
}

template <typename Traits>
uint32_t BasicSkipListEngine<Traits>::resolve_start(Ikey x, Node_t*& cur) {
  if (cur != nullptr && cur->level() <= top_ && cur->ikey() < x &&
      (cur->kind() == NodeKind::kInterior || cur->kind() == NodeKind::kHead)) {
    return cur->level();
  }
  tls_counters().restarts++;
  cur = head_[top_];
  return top_;
}

template <typename Traits>
auto BasicSkipListEngine<Traits>::descend_from(Ikey x, Node_t* cur,
                                               uint32_t lvl, Node_t** hints,
                                               Finger* f, uint64_t epoch,
                                               Cursor* rec, uint32_t floor,
                                               LocateExact exact,
                                               bool* exact_hit) -> Bracket {
  // Record only the kRecordDepth levels just below the entry level (the
  // frequency cascade, DESIGN.md §3.6): a target must hit at level l before
  // its descent may populate rows l-1, l-2.  Recording every traversed
  // level instead floods the low rows — one fresh level-0 bracket per
  // operation — so on skewed streams the cold tail evicts the hot brackets
  // faster than they repeat, and the finger never gets to enter low.  The
  // cascade anchors at the finger's highest cacheable row: a full-height
  // baseline enters at top ~ log m, far above what the finger stores.
  uint32_t record_floor = 0;
  if (f != nullptr) {
    const uint32_t eff = lvl < f->max_level() ? lvl : f->max_level();
    record_floor =
        eff > Finger::kRecordDepth ? eff - Finger::kRecordDepth : 0;
  }
  for (;;) {
    Bracket b = list_search(x, cur, lvl);
    if (hints != nullptr) hints[lvl] = b.left;
    if (rec != nullptr) {
      // Cursor rows re-read the ikeys like the finger record below: a
      // recycled node yields values its own reuse validation re-checks.
      rec->left_[lvl] = b.left;
      rec->left_ikey_[lvl] = b.left->ikey();
      rec->right_ikey_[lvl] = b.right->ikey();
    }
    if (f != nullptr && lvl >= record_floor && lvl <= f->max_level()) {
      // Seed/refresh the finger with the bracket this level just observed.
      // The ikeys are re-read here: if either node was recycled since
      // list_search returned, the entry records a bracket that try_start's
      // validation will reject (or that merely mis-screens — the finger is
      // a hint either way, DESIGN.md §3.6).
      f->record(lvl, b.left, b.left->ikey(), b.right->ikey(), epoch);
    }
    if (exact != LocateExact::kNone && lvl > 0) {
      // Adaptive exact-match exit (DESIGN.md §8.3): the target's promoted
      // tower is visible at this upper level, so the remaining descent can
      // only re-find the same tower.  The exit must observe the tower's
      // level-0 ROOT unmarked: the root's mark is the deletion's
      // linearization point, and in CAS-fallback mode a raise links its
      // upper node by plain CAS before re-checking the stop word, so an
      // unmarked upper node can transiently coexist with an already-marked
      // root (§3.5(5)).  A marked (or recycled/re-keyed) root simply falls
      // through to the normal descent, which re-resolves everything.
      Node_t* hit = nullptr;
      if (exact == LocateExact::kRight) {
        if (b.right->kind() == NodeKind::kInterior && b.right->ikey() == x) {
          hit = b.right;
        }
      } else if (b.left->kind() == NodeKind::kInterior &&
                 b.left->ikey() == x - Ikey(1)) {
        hit = b.left;
      }
      if (hit != nullptr) {
        Node_t* root = hit->root();
        if (root != nullptr && root->kind() == NodeKind::kInterior &&
            root->level() == 0 && root->ikey() == hit->ikey() &&
            !is_marked(dcss_read(root->next))) {
          if (exact_hit != nullptr) *exact_hit = true;
          return exact == LocateExact::kRight ? Bracket{b.left, root}
                                              : Bracket{root, b.right};
        }
      }
    }
    if (lvl <= floor) return b;  // floor > 0: chunk-terminated read (§7.2)
    --lvl;
    cur = b.left->kind() == NodeKind::kHead ? head_[lvl] : b.left->down();
    if (cur == nullptr) cur = head_[lvl];  // defensive
  }
}

template <typename Traits>
auto BasicSkipListEngine<Traits>::descend(Ikey x, Node_t* start,
                                          Node_t** hints) -> Bracket {
  if (hints != nullptr) {
    for (uint32_t l = 0; l <= top_; ++l) hints[l] = head_[l];
  }
  Node_t* cur = start;
  const uint32_t lvl = resolve_start(x, cur);
  return descend_from(x, cur, lvl, hints, nullptr, 0);
}

template <typename Traits>
void BasicSkipListEngine<Traits>::enable_leaf_chunking(bool on) {
  if (!on) {
    chunks_.reset();
    chunk_entry_ = 0;
    return;
  }
  if (chunks_ == nullptr) {
    chunks_ = std::make_unique<LeafChunkManager<Traits>>();
  }
  // One chunk spans ~kKeys keys at steady-state ~70% occupancy, so a read
  // descent may stop log2(kKeys)+1 levels above 0: the remaining gap at the
  // stop level is a couple of chunks wide — one or two chunk-header
  // crossings in the find() walk, cheaper than walking the level it
  // replaces.
  const uint32_t span =
      static_cast<uint32_t>(std::bit_width(LeafChunkT<Traits>::kKeys));
  chunk_entry_ = top_ < span ? top_ : span;
}

template <typename Traits>
auto BasicSkipListEngine<Traits>::chunked_read(Cursor& cur, Ikey x,
                                               StartFn fallback, void* env,
                                               LocateExact exact) -> Bracket {
  auto& c = tls_counters();
  LeafChunkManager<Traits>& cm = *chunks_;
  const bool was_warm = cur.warm();

  // A level-0 start pulled out of a chunk is a hint like any other: screen
  // it cheaply, then let list_search do the real validation.
  const auto usable0 = [&](Node_t* n) {
    return n != nullptr && n->kind() == NodeKind::kInterior &&
           n->level() == 0 && n->ikey() < x;
  };
  // Finish from a screened level-0 start, refreshing the retained state a
  // later read will consult (row 0, the cursor's chunk id, a finger chunk
  // way, a finger level-0 row).  The two finger caches are complementary:
  // a chunk way covers a whole ~kKeys-key run but every hit pays an
  // in-chunk scan, while a level-0 row covers one exact bracket that a
  // repeating hot key re-enters for just the verify walk.  Row 0 is
  // recorded only when `earned` — the caller already hit some retained
  // state (cursor row, chunk way, low finger row), i.e. the target shows
  // repetition.  This is the finger's frequency cascade (DESIGN.md §3.6)
  // applied to chunks: a cold one-shot read must not evict a hot row-0
  // bracket, or on skewed streams the cold tail churns the ways faster
  // than the hot set repeats.
  const auto finish = [&](Node_t* start,
                          const typename LeafChunkManager<Traits>::HintResult&
                              hr,
                          bool earned) {
    Bracket b = list_search(x, start, 0);
    // Unconditional: on a still-cold cursor these stores are dead (warm_
    // stays false and nothing reads the rows), and after path (c)'s seek
    // the cursor is warm with initialized rows that should stay fresh.
    cur.left_[0] = b.left;
    cur.left_ikey_[0] = b.left->ikey();
    cur.right_ikey_[0] = b.right->ikey();
    if (hr.covered) cur.chunk_hint_ = hr.idw;
    if (finger_on_) {
      Finger& f = finger();
      if (hr.covered) f.record_chunk(hr.idw, hr.base, hr.right);
      if (earned) {
        f.record_leaf(b.left, b.left->ikey(), b.right->ikey(),
                      ctx_.ebr->global_epoch());
      }
    }
    return b;
  };

  // (a) Warm cursor whose retained level-0 bracket still contains x: enter
  // there directly (the books say reuse, exactly as seek would).
  if (was_warm && cur.left_ikey_[0] < x && x <= cur.right_ikey_[0]) {
    Node_t* n = cur.left_[0];
    const NodeKind k = n->kind();
    if ((k == NodeKind::kInterior || k == NodeKind::kHead) &&
        n->level() == 0 && n->ikey() == cur.left_ikey_[0] &&
        !is_marked(dcss_read(n->next))) {
      c.cursor_reuses++;
      Bracket b = list_search(x, n, 0);
      cur.left_[0] = b.left;
      cur.left_ikey_[0] = b.left->ikey();
      cur.right_ikey_[0] = b.right->ikey();
      return b;
    }
  }

  // (a') Warm cursor whose retained chunk still covers x (streaming reads
  // landing repeatedly in one run): scan it, skip the descent entirely.
  if (was_warm && cur.chunk_hint_ != 0 &&
      cm.covers_hint(cur.chunk_hint_, x)) {
    const auto hr = cm.pred_hint(x, cur.chunk_hint_, c);
    if (hr.covered && usable0(hr.node)) {
      c.cursor_reuses++;
      return finish(hr.node, hr, /*earned=*/true);
    }
  }

  // (b) Finger, cheapest cache first.  A leaf-bracket hit is an exact
  // level-0 bracket a repeating hot key re-enters for just the verify walk
  // — no scan.  Failing that, a chunk way covering x is the single-key
  // warm path; only a way that yields a usable in-chunk predecessor
  // short-circuits, otherwise fall through to the descent (which knows how
  // to start from head runs).
  if (finger_on_) {
    Finger& f = finger();
    const uint64_t now = ctx_.ebr->global_epoch();
    if (Node_t* fstart = f.try_leaf(x, now)) {
      if (was_warm) c.cursor_redescends++;
      c.finger_hits++;
      c.hops_finger_saved += top_;
      Bracket b = list_search(x, fstart, 0);
      cur.left_[0] = b.left;
      cur.left_ikey_[0] = b.left->ikey();
      cur.right_ikey_[0] = b.right->ikey();
      f.record_leaf(b.left, b.left->ikey(), b.right->ikey(), now);
      return b;
    }
    const uint32_t fidw = f.try_chunk(x);
    if (fidw != 0 && cm.covers_hint(fidw, x)) {
      const auto hr = cm.pred_hint(x, fidw, c);
      if (hr.covered && usable0(hr.node)) {
        if (was_warm) c.cursor_redescends++;
        c.finger_hits++;
        c.hops_finger_saved += top_;
        return finish(hr.node, hr, /*earned=*/true);
      }
    }
  }

  // (c) Descend, stopping chunk_entry_ levels above 0, then resolve the
  // stopped bracket through the chunk index (unless the seek entered low
  // enough that the bracket is already tight).  The bracket's left tower
  // names its root's chunk (chunkw); its root is itself a sound level-0
  // start should the chunk scan come back empty.
  uint32_t stopped_at = 0;
  bool exact_hit = false;
  Bracket b = cur.seek(x, /*cold_min_level=*/0, fallback, env, chunk_entry_,
                       &stopped_at, exact, &exact_hit);
  // An exact exit's bracket is final (its far side is the target's level-0
  // root) — the chunk resolution below would only redo the work.
  if (exact_hit) return b;
  if (stopped_at == 0) return b;  // entered at level 0: already a bracket
  Node_t* lstart = head_[0];
  uint32_t hw = 0;
  if (b.left->kind() == NodeKind::kInterior) {
    Node_t* r = b.left->root();
    if (usable0(r)) {
      lstart = r;
      hw = r->chunkw.load(std::memory_order_relaxed);
    }
  }
  // The bracket's *right* tower is the sharper chunk hint: its root is the
  // smallest level-0 key >= x, so x's covering chunk is the very chunk
  // indexing that root — unless x falls in the narrow slice below the
  // chunk's base (then the covers screen rejects it and the left-root hint
  // walks forward as usual).  The left hint is still a whole stop-level
  // gap behind x, several chunk-header crossings away.
  if (b.right->kind() == NodeKind::kInterior) {
    Node_t* rr = b.right->root();
    if (rr != nullptr && rr->level() == 0) {
      const uint32_t rw = rr->chunkw.load(std::memory_order_relaxed);
      if (rw != 0 && cm.covers_hint(rw, x)) hw = rw;
    }
  }
  // A stop at level <= 2 means the seek entered from a low retained row
  // and the bracket spans at most ~4 keys — walking them directly is
  // cheaper than a chunk-header walk plus a scan (which only pays for
  // itself against level-3+ gaps).  The low entry is also repetition
  // evidence, so the bracket earns a row-0 record.
  if (stopped_at <= 2 && stopped_at < chunk_entry_) {
    return finish(lstart, typename LeafChunkManager<Traits>::HintResult{},
                  /*earned=*/true);
  }
  const auto hr = cm.pred_hint(x, hw, c);
  if (hr.covered && usable0(hr.node) && hr.node->ikey() >= lstart->ikey()) {
    lstart = hr.node;  // the chunk got us closer than the descent did
  }
  return finish(lstart, hr, /*earned=*/false);
}

template <typename Traits>
auto BasicSkipListEngine<Traits>::cursor_descend(Cursor& cur, Ikey x,
                                                 StartFn fallback, void* env,
                                                 LocateExact exact)
    -> Bracket {
  if (chunks_ != nullptr) return chunked_read(cur, x, fallback, env, exact);
  return cur.seek(x, /*cold_min_level=*/0, fallback, env, /*stop_level=*/0,
                  /*stopped_at=*/nullptr, exact);
}

template <typename Traits>
auto BasicSkipListEngine<Traits>::cursor_insert(Cursor& cur, Ikey x,
                                                uint32_t height,
                                                uint32_t cold_min_level,
                                                StartFn fallback, void* env)
    -> InsertResult {
  assert(cold_min_level >= height);
  Bracket b = cur.seek(x, cold_min_level, fallback, env);
  InsertResult r = insert_from(x, height, cur.hints(), b);
  cur.note_insert(r, x, height);
  return r;
}

template <typename Traits>
auto BasicSkipListEngine<Traits>::cursor_erase(Cursor& cur, Ikey x,
                                               StartFn fallback, void* env)
    -> EraseResult {
  // cold_min_level = top_: the top-down tower sweep consumes hints at every
  // level, so a cold entry below the top (which would leave bare level-head
  // rows above it) is never usable.
  Bracket b0 = cur.seek(x, top_, fallback, env);
  EraseResult r = erase_from(x, cur.hints(), b0);
  cur.note_erase(x);
  return r;
}

template <typename Traits>
auto BasicSkipListEngine<Traits>::fingered_descend(Ikey x, uint32_t min_level,
                                                   StartFn fallback, void* env,
                                                   Node_t** hints,
                                                   LocateExact exact)
    -> Bracket {
  Cursor cur(*this);
  if (chunks_ != nullptr && min_level == 0 && hints == nullptr) {
    // Pure read: the chunk-terminated path (DESIGN.md §7.2).  Callers that
    // want per-level hints (or a minimum entry level) need the full
    // descent — those are the write paths, which maintain the chunks
    // instead of reading through them.
    return chunked_read(cur, x, fallback, env, exact);
  }
  const Bracket b = cur.seek(x, min_level, fallback, env, /*stop_level=*/0,
                             /*stopped_at=*/nullptr, exact);
  if (hints != nullptr) {
    std::copy(cur.hints(), cur.hints() + top_ + 1, hints);
  }
  return b;
}

template <typename Traits>
bool BasicSkipListEngine<Traits>::mark_node(Node_t* n, Node_t* back_hint) {
  Backoff bo;
  for (;;) {
    const uint64_t w = dcss_read(n->next);
    if (is_marked(w)) return false;
    if (back_hint != nullptr) {
      n->back.store(back_hint, std::memory_order_release);
    }
    if (counted_cas(n->next, w, with_mark(w))) return true;
    bo.spin();  // the next word is contended (racing unlink/insert/delete)
  }
}

template <typename Traits>
void BasicSkipListEngine<Traits>::set_prev_mark(Node_t* n) {
  Backoff bo;
  for (;;) {
    const uint64_t pv = dcss_read(n->prevw);
    if (is_marked(pv)) return;
    if (counted_cas(n->prevw, pv, with_mark(pv))) return;
    bo.spin();
  }
}

template <typename Traits>
void BasicSkipListEngine<Traits>::fix_prev(Node_t* hint, Node_t* node) {
  // Algorithm 1, with ready set on every exit path (DESIGN.md §3.5(2)).
  const Ikey x = node->ikey();
  Bracket b = list_search(x, hint, top_);
  Backoff bo;
  for (int i = 0; i < kFixPrevRetries; ++i) {
    if (is_marked(dcss_read(node->next))) break;  // node being deleted
    const uint64_t pv = dcss_read(node->prevw);
    if (is_marked(pv)) break;
    if (unpack_ptr<Node_t>(pv) == b.left) break;  // already correct
    // Install left as node's prev, guarded on left being unmarked and
    // adjacent (left.next == node): the paper's DCSS(node.prev, pv, left,
    // left.succ, (node, 0)).
    const DcssResult r = dcss(ctx_, node->prevw, pv, pack_ptr(b.left),
                              b.left->next, pack_ptr(node));
    if (r.success) break;
    bo.spin();  // every retry implies a concurrent neighborhood change
    if (r.guard_failed) {
      b = list_search(x, b.left, top_);
    }
    // On witness mismatch the loop re-reads prevw.
  }
  node->set_ready();
}

template <typename Traits>
void BasicSkipListEngine<Traits>::make_done(Node_t* left, Node_t* right) {
  // Alg. 7's makeDone (not defined in the paper; see DESIGN.md §3.5(6)):
  // make right's prev word consistent so the DCSS guard
  // (right.prev, right.marked) == (left, 0) can be evaluated meaningfully.
  if (is_marked(dcss_read(right->next))) {
    set_prev_mark(right);
    return;
  }
  const uint64_t pv = dcss_read(right->prevw);
  if (is_marked(pv) || unpack_ptr<Node_t>(pv) == left) return;
  dcss(ctx_, right->prevw, pv, pack_ptr(left), left->next, pack_ptr(right));
}

template <typename Traits>
auto BasicSkipListEngine<Traits>::walk_left(Ikey x, Node_t* from) -> Node_t* {
  auto& c = tls_counters();
  Node_t* curr = from;
  for (uint32_t steps = 0;; ++steps) {
    if (curr == nullptr || steps > kWalkLimit) {
      // Guide chain dead-ended (null back/prev) or exceeded the walk bound:
      // the trie's start hint is discarded and the caller restarts from the
      // top-level head.  That restart costs a full head-to-x top-level scan,
      // so it gets its own counter (walk_fallbacks) on top of the generic
      // restart tally — a high rate here means pred_start hints are bad or
      // the walk bound is being hit, not that validation is churning.
      c.restarts++;
      c.walk_fallbacks++;
      return head_[top_];
    }
    const NodeKind k = curr->kind();
    if (k == NodeKind::kHead) return head_[top_];
    if (k == NodeKind::kPoison || k == NodeKind::kTail) {
      c.restarts++;
      c.walk_fallbacks++;
      return head_[top_];
    }
    if (curr->ikey() < x) return curr;
    // Alg. 4: back pointers across marked nodes, prev pointers otherwise.
    c.bytes_touched += kCacheLine;
    if (is_marked(dcss_read(curr->next))) {
      c.back_steps++;
      curr = curr->back.load(std::memory_order_acquire);
    } else {
      c.prev_steps++;
      curr = unpack_ptr<Node_t>(dcss_read(curr->prevw));
    }
  }
}

template <typename Traits>
auto BasicSkipListEngine<Traits>::raise_level(Node_t* root, Node_t* nnode,
                                              Ikey x, uint32_t lvl,
                                              Node_t*& hint) -> RaiseStatus {
  Backoff bo;
  for (;;) {
    if (root->stopw.load(std::memory_order_seq_cst) != 0) {
      return RaiseStatus::kStoppedUnpublished;
    }
    Bracket b = list_search(x, hint, lvl);
    hint = b.left;
    if (b.right->ikey() == x) {
      return RaiseStatus::kStoppedUnpublished;  // same key already here
    }
    nnode->next.store(pack_ptr(b.right), std::memory_order_relaxed);
    // The paper (§2): "Each insertion is conditioned on the stop flag of the
    // root remaining unset" — DCSS on the predecessor link guarded by stopw.
    const DcssResult r = dcss(ctx_, b.left->next, pack_ptr(b.right),
                              pack_ptr(nnode), root->stopw, 0);
    if (r.success) {
      if (ctx_.mode == DcssMode::kCasFallback &&
          root->stopw.load(std::memory_order_seq_cst) != 0) {
        // CAS fallback dropped the guard and the link may have landed after
        // a delete claimed the tower; undo our own link so the deleter's
        // sweep cannot strand this node (DESIGN.md §3.5(5)).
        if (mark_node(nnode, b.left)) {
          if (lvl == top_) {
            // Mirror the mark into the prev word (as erase does) so Alg. 7
            // forward-swing guards on (prev, marked) fail for this node.
            set_prev_mark(nnode);
          }
          list_search(x, b.left, lvl);  // ensure physically unlinked
          if (lvl == top_) {
            // While linked at the top level the node may have been
            // installed into the x-fast trie by a concurrent Alg. 7 swing;
            // the caller must run the trie sweep before retiring it
            // (DESIGN.md §3.5(5)).  Below the top no trie pointer can name
            // it, so retiring immediately is safe.
            return RaiseStatus::kStoppedPublished;
          }
          retire_node(nnode);
        }
        return RaiseStatus::kStoppedUnpublished;
      }
      return RaiseStatus::kOk;
    }
    // On any failure, retry from the loop head: the stopw re-check there is
    // the authoritative stop signal.  guard_failed alone is not — guard
    // evaluation may spuriously abort our descriptor to serialize against a
    // crossed DCSS (see dcss.cpp guard_value), so treating it as "claimed"
    // would silently truncate the tower below its drawn height.
    bo.spin();
  }
}

template <typename Traits>
auto BasicSkipListEngine<Traits>::insert(Ikey x, Node_t* start,
                                         uint32_t height) -> InsertResult {
  Node_t* hints[kMaxLevels + 1];
  Bracket b = descend(x, start, hints);
  return insert_from(x, height, hints, b);
}

template <typename Traits>
auto BasicSkipListEngine<Traits>::fingered_insert(Ikey x, uint32_t height,
                                                  StartFn fallback, void* env)
    -> InsertResult {
  // cold_min_level = height: the raise path consumes hints[1..height], so a
  // finger entry below the drawn tower height would leave the raise
  // searching whole levels from their heads.
  Cursor cur(*this);
  return cursor_insert(cur, x, height, height, fallback, env);
}

template <typename Traits>
auto BasicSkipListEngine<Traits>::insert_from(Ikey x, uint32_t height,
                                              Node_t** hints, Bracket b)
    -> InsertResult {
  assert(height <= top_);
  InsertResult res;
  Node_t* root = nullptr;
  Backoff bo;
  for (;;) {
    if (b.right->ikey() == x) {
      // Observed an unmarked node with this key: the key is present.
      if (root != nullptr) {
        root->poison();
        arena_.recycle(root);  // never published
      }
      return res;
    }
    if (root == nullptr) root = make_node(x, 0, height, nullptr, nullptr);
    root->next.store(pack_ptr(b.right), std::memory_order_relaxed);
    // Linearization point of a successful insert: linking at level 0.
    if (counted_cas(b.left->next, pack_ptr(b.right), pack_ptr(root))) break;
    bo.spin();  // lost to a concurrent writer in this neighborhood
    b = list_search(x, b.left, 0);
  }
  res.root = root;
  res.inserted = true;
  if (chunks_ != nullptr) {
    // Post-linearization chunk maintenance (DESIGN.md §7.3).  The level-0
    // predecessor's own chunk id is the natural locality hint; a head (or
    // recycled) left yields hint 0 and the maintenance walks from the head
    // chunk.
    const uint32_t hw = b.left->kind() == NodeKind::kInterior
                            ? b.left->chunkw.load(std::memory_order_relaxed)
                            : 0;
    chunks_->note_insert(x, root, hw);
  }

  Node_t* below = root;
  for (uint32_t lvl = 1; lvl <= height; ++lvl) {
    Node_t* n = make_node(x, lvl, height, below, root);
    const RaiseStatus st = raise_level(root, n, x, lvl, hints[lvl]);
    if (st == RaiseStatus::kStoppedPublished) {
      // CAS-fallback undo at the top level: n is marked (we own it) but may
      // have entered the trie while linked; the caller sweeps, then retires.
      res.undone_top = n;
      return res;
    }
    if (st == RaiseStatus::kStoppedUnpublished) {
      // raise_level either never published n (common case) or already
      // retired it (CAS-fallback undo below the top, in which case it was
      // marked and the mark winner owns it — raise_level handled that
      // internally and n must not be touched again).  Distinguish via the
      // mark: an unpublished node is still unmarked.
      if (!is_marked(n->next.load(std::memory_order_acquire))) {
        n->poison();
        arena_.recycle(n);
      }
      return res;
    }
    below = n;
  }
  if (height == top_) {
    res.top = below;
    fix_prev(hints[top_], res.top);
  }
  return res;
}

template <typename Traits>
auto BasicSkipListEngine<Traits>::find_tower_node(Ikey x, Node_t* root,
                                                  uint32_t level,
                                                  Node_t*& left) -> Node_t* {
  Bracket b = list_search(x, left, level);
  left = b.left;
  Node_t* c = b.right;
  // Equal-key runs can transiently hold several nodes (a marked old tower
  // plus a new one, or CAS-fallback orphans); scan for ours.
  for (uint32_t i = 0; c != nullptr && c->ikey() == x && i < kEqualRunLimit;
       ++i) {
    if (c->root() == root) return c;
    c = unpack_ptr<Node_t>(without_tags(dcss_read(c->next)));
  }
  return nullptr;
}

template <typename Traits>
auto BasicSkipListEngine<Traits>::erase(Ikey x, Node_t* start) -> EraseResult {
  Node_t* hints[kMaxLevels + 1];
  const Bracket b0 = descend(x, start, hints);
  return erase_from(x, hints, b0);
}

template <typename Traits>
auto BasicSkipListEngine<Traits>::fingered_erase(Ikey x, StartFn fallback,
                                                 void* env) -> EraseResult {
  Cursor cur(*this);
  return cursor_erase(cur, x, fallback, env);
}

template <typename Traits>
auto BasicSkipListEngine<Traits>::erase_from(Ikey x, Node_t** hints,
                                             Bracket b0) -> EraseResult {
  EraseResult res;
  if (b0.right->ikey() != x || b0.right->level() != 0 ||
      b0.right->kind() != NodeKind::kInterior) {
    return res;  // not present
  }
  Node_t* root = b0.right;
  // Claim the tower (paper §2: set the root's stop flag).  Losing the claim
  // means another delete owns this tower; our erase linearizes after its
  // level-0 mark as "not present".
  uint64_t expect = 0;
  if (!root->stopw.compare_exchange_strong(expect, 1,
                                           std::memory_order_seq_cst)) {
    return res;
  }

  // Top-down sweep; repeat until a pass finds nothing so that raises racing
  // the claim (possible in CAS-fallback mode) cannot strand tower nodes.
  bool had_top = false;
  for (;;) {
    bool found_any = false;
    for (int lvl = static_cast<int>(top_); lvl >= 1; --lvl) {
      Node_t* left = hints[lvl];
      Node_t* tn = find_tower_node(x, root, static_cast<uint32_t>(lvl), left);
      hints[lvl] = left;
      if (tn == nullptr) continue;
      found_any = true;
      if (static_cast<uint32_t>(lvl) == top_) {
        had_top = true;
        res.top = tn;
        // Alg. 2: make sure the node was completely inserted first.
        if (!tn->ready()) {
          fix_prev(left, tn);
        }
        const bool won = mark_node(tn, left);
        set_prev_mark(tn);  // mirror the mark into the prev word (Alg. 7)
        list_search(x, left, static_cast<uint32_t>(lvl));  // force unlink
        if (won) res.owned[res.owned_count++] = tn;
      } else {
        const bool won = mark_node(tn, left);
        list_search(x, left, static_cast<uint32_t>(lvl));
        if (won) res.owned[res.owned_count++] = tn;
      }
    }
    if (!found_any) break;
  }

  // Level 0 last: this mark is the linearization point of the delete.
  const bool won0 = mark_node(root, hints[0]);
  list_search(x, hints[0], 0);
  if (won0) res.owned[res.owned_count++] = root;
  res.erased = true;
  if (chunks_ != nullptr) {
    // Post-linearization chunk maintenance: drop the key from its chunk
    // (the node's own chunkw names it when the insert maintenance ran).
    chunks_->note_erase(x, root->chunkw.load(std::memory_order_relaxed));
  }

  if (had_top) {
    // Alg. 2 lines 4-7: repair the successor's prev pointer until the
    // successor itself is stable.
    Node_t* l = hints[top_];
    Backoff bo;
    for (int i = 0; i < kFixPrevRetries; ++i) {
      Bracket b = list_search(x, l, top_);
      l = b.left;
      fix_prev(b.left, b.right);
      if (!is_marked(dcss_read(b.right->next))) break;
      bo.spin();  // successor is being deleted too; let its owner finish
    }
    res.top_left = l;
  }
  return res;
}

template <typename Traits>
auto BasicSkipListEngine<Traits>::promote_tower(Ikey x, Node_t* root,
                                                uint32_t to_height)
    -> PromoteResult {
  PromoteResult res;
  if (to_height > top_) to_height = top_;
  Node_t* hints[kMaxLevels + 1];
  const Bracket b0 = descend(x, head_[top_], hints);
  // The tower must still be THIS root, alive and unclaimed: pointer identity
  // against the level-0 bracket rules out an erased-and-reinserted key, and
  // the stop-word / mark checks rule out a delete in progress.  (A delete
  // starting after these checks is fine — every raise below re-checks the
  // stop word and is DCSS-guarded on it, exactly like insert's raises.)
  if (b0.right != root ||
      root->stopw.load(std::memory_order_seq_cst) != 0 ||
      is_marked(dcss_read(root->next))) {
    return res;
  }
  // Probe the tower's current height, collecting the topmost live node as
  // the down-link for the first new level.  Heights are contiguous: insert
  // raises bottom-up and demote sweeps top-down, so the first absent level
  // ends the tower.
  Node_t* below = root;
  for (uint32_t lvl = 1; lvl <= top_; ++lvl) {
    Node_t* left = hints[lvl];
    Node_t* tn = find_tower_node(x, root, lvl, left);
    hints[lvl] = left;
    if (tn == nullptr) break;
    below = tn;
    res.new_height = lvl;
  }
  if (res.new_height >= to_height) return res;
  for (uint32_t lvl = res.new_height + 1; lvl <= to_height; ++lvl) {
    Node_t* n = make_node(x, lvl, to_height, below, root);
    const RaiseStatus st = raise_level(root, n, x, lvl, hints[lvl]);
    if (st == RaiseStatus::kStoppedPublished) {
      // CAS-fallback top-level undo: caller trie-sweeps, then retires
      // (identical to InsertResult::undone_top, DESIGN.md §3.5(5)).
      res.undone_top = n;
      return res;
    }
    if (st == RaiseStatus::kStoppedUnpublished) {
      // Same disposal rule as insert_from: an unmarked n was never
      // published; a marked one was undone inside raise_level (which
      // already retired it).
      if (!is_marked(n->next.load(std::memory_order_acquire))) {
        n->poison();
        arena_.recycle(n);
      }
      return res;
    }
    below = n;
    res.new_height = lvl;
    res.raised = true;
  }
  if (res.new_height == top_) {
    res.top = below;
    fix_prev(hints[top_], res.top);
  }
  return res;
}

template <typename Traits>
auto BasicSkipListEngine<Traits>::demote_tower(Ikey x, Node_t* root,
                                               uint32_t to_height)
    -> EraseResult {
  EraseResult res;
  if (to_height >= top_) return res;
  Node_t* hints[kMaxLevels + 1];
  const Bracket b0 = descend(x, head_[top_], hints);
  // Unlike erase, demotion must NOT claim the stop word: a concurrent erase
  // losing its 0->1 claim returns "not present" while the key is still in
  // the set — a linearizability violation.  Instead bail when a delete
  // already owns the tower; a delete claiming AFTER this check just races
  // the sweep below, which the mark-CAS ownership protocol already
  // arbitrates (each node is retired by exactly one winner, and res.top is
  // only reported by the top mark's winner).
  if (b0.right != root || is_marked(dcss_read(root->next)) ||
      root->stopw.load(std::memory_order_seq_cst) != 0) {
    return res;
  }
  // Top-down sweep of the levels above to_height, repeated until a pass
  // finds nothing (a still-running original insert's raise may relink a
  // level mid-sweep; its raise loop is finite, so this terminates).  Level 0
  // is never marked, preserving "an unmarked upper node implies the key is
  // present" for the exact-exit validation (DESIGN.md §8.3).
  for (;;) {
    bool found_any = false;
    for (int lvl = static_cast<int>(top_); lvl > static_cast<int>(to_height);
         --lvl) {
      Node_t* left = hints[lvl];
      Node_t* tn = find_tower_node(x, root, static_cast<uint32_t>(lvl), left);
      hints[lvl] = left;
      if (tn == nullptr) continue;
      found_any = true;
      if (static_cast<uint32_t>(lvl) == top_) {
        if (!tn->ready()) {
          fix_prev(left, tn);  // Alg. 2: complete the insertion first
        }
        const bool won = mark_node(tn, left);
        set_prev_mark(tn);
        list_search(x, left, static_cast<uint32_t>(lvl));  // force unlink
        if (won) {
          res.top = tn;  // mark winner owns the trie sweep + retirement
          res.owned[res.owned_count++] = tn;
        }
      } else {
        const bool won = mark_node(tn, left);
        list_search(x, left, static_cast<uint32_t>(lvl));
        if (won) res.owned[res.owned_count++] = tn;
      }
    }
    if (!found_any) break;
  }
  res.erased = res.owned_count > 0;
  if (res.top != nullptr) {
    // Successor prev repair, exactly as erase_from does after removing a
    // top node (Alg. 2 lines 4-7).
    Node_t* l = hints[top_];
    Backoff bo;
    for (int i = 0; i < kFixPrevRetries; ++i) {
      Bracket b = list_search(x, l, top_);
      l = b.left;
      fix_prev(b.left, b.right);
      if (!is_marked(dcss_read(b.right->next))) break;
      bo.spin();
    }
    res.top_left = l;
  }
  return res;
}

template <typename Traits>
auto BasicSkipListEngine<Traits>::first_at(uint32_t level) const -> Node_t* {
  Node_t* n = unpack_ptr<Node_t>(without_tags(dcss_read(head_[level]->next)));
  while (n != nullptr && n->kind() == NodeKind::kInterior) {
    if (!is_marked(dcss_read(n->next))) return n;
    n = unpack_ptr<Node_t>(without_tags(dcss_read(n->next)));
  }
  return nullptr;
}

template <typename Traits>
auto BasicSkipListEngine<Traits>::next_at(Node_t* n) const -> Node_t* {
  Node_t* m = unpack_ptr<Node_t>(without_tags(dcss_read(n->next)));
  while (m != nullptr && m->kind() == NodeKind::kInterior) {
    if (!is_marked(dcss_read(m->next))) return m;
    m = unpack_ptr<Node_t>(without_tags(dcss_read(m->next)));
  }
  return nullptr;
}

template class BasicSkipListEngine<U64Traits>;
template class BasicSkipListEngine<Bytes16Traits>;

}  // namespace skiptrie
