// Distribution-adaptive tower heights: the policy side (DESIGN.md §8).
//
// The structural side of adaptation — raising a tower is an insert-time
// raise replayed post-linearization, demoting one is a partial delete-sweep
// — lives in the engine (engine.h promote_tower / demote_tower).  This file
// holds everything the *policy* needs, none of it key-typed:
//
//   - a fixed-size tagged frequency sketch (TinyLFU-style: conflicting
//     entries decay each other, totals age by halving) fed by every
//     2^k-th read, so the hot path stays read-only and the signal is an
//     unbiased sample of the access distribution;
//   - per-tower adapt latches (striped try-locks) so at most one thread
//     runs the promote/demote protocol for a given tower at a time — a
//     latch is a *policy* serializer only, correctness never depends on it
//     (the engine protocols are lock-free and validate everything);
//   - a bounded registry of promoted towers, scanned round-robin a few
//     entries per promotion, which is how cold toppers get found and
//     demoted without any background thread (bounded amortized rotation,
//     after the splay-list).
//
// Keys enter as 64-bit fingerprints (Traits::height_mix(ikey) — the same
// mix that seeds the deterministic height draw), so one non-template
// manager serves both KeyTraits instantiations.  Registry entries carry the
// tower's level-0 node as an opaque pointer; the typed SkipTrie layer
// validates it (kind/level/ikey/fingerprint/unmarked) before any use, so a
// torn or stale entry costs a dropped slot, never a wrong action.
#pragma once

#include <atomic>
#include <cstdint>

namespace skiptrie {

class AdaptiveHeightManager {
 public:
  // Sample every 2^kSamplePeriodLog2-th single-key read per thread.
  static constexpr uint32_t kSamplePeriodLog2 = 4;
  // Frequency threshold for the TOP level as a power-of-two fraction of the
  // sketch total: promote to the top when the sampled count reaches
  // total >> kThetaShiftTop (i.e. observed frequency >= 2^-kThetaShiftTop).
  // Each level below the top halves the threshold once more:
  //   theta(l) = 2^-(kThetaShiftTop + top - l)
  // so a warm-but-not-hot key earns a mid-tower and saves part of the
  // descent (threshold math: DESIGN.md §8.2).
  static constexpr uint32_t kThetaShiftTop = 8;
  // Absolute floor: below this sampled count no promotion happens no matter
  // how small the total is (startup noise guard).
  static constexpr uint32_t kMinCount = 4;
  // Demotion hysteresis: a promoted tower is demoted when its sampled count
  // falls below theta(current_height) / 2^kHysteresisShift of the total.
  static constexpr uint32_t kHysteresisShift = 2;
  // Halve the sketch (counts and total) when the total reaches this cap:
  // the signal becomes an exponentially-weighted window, which is what lets
  // a drifted hot set displace the old one (re-adaptation speed).
  static constexpr uint64_t kAgeCap = 1ull << 12;
  // Registry entries examined for demotion per successful promotion: the
  // bounded amortized rotation. Promotions pay for demotion scanning.
  static constexpr uint32_t kDemoteScanPerPromote = 2;

  AdaptiveHeightManager();
  AdaptiveHeightManager(const AdaptiveHeightManager&) = delete;
  AdaptiveHeightManager& operator=(const AdaptiveHeightManager&) = delete;

  // Record one sampled access to `fp`; returns the sketch's (saturating)
  // count estimate for fp after the update.  Triggers aging at kAgeCap.
  uint32_t note(uint64_t fp);

  // Current count estimate without updating (0 if fp is not resident).
  uint32_t count_of(uint64_t fp) const;

  // Sampled-access total the thresholds are relative to.
  uint64_t total() const { return total_.load(std::memory_order_relaxed); }

  // Largest height in (base_h, top] whose threshold `count` meets, or
  // base_h when none.  Pure threshold math, no state.
  static uint32_t desired_height(uint32_t count, uint64_t total,
                                 uint32_t base_h, uint32_t top);

  // True when a tower at `cur_h` (promoted from base_h) has gone cold:
  // count < theta(cur_h) * total / 2^kHysteresisShift.
  static bool is_cold(uint32_t count, uint64_t total, uint32_t cur_h,
                      uint32_t top);

  // Striped per-tower try-locks.  try_latch returns false when another
  // thread holds the stripe — callers just skip this adapt opportunity.
  bool try_latch(uint64_t fp);
  void unlatch(uint64_t fp);

  // --- Promotion registry (the demotion work-list) -------------------------
  struct Promoted {
    uint64_t fp = 0;
    void* root = nullptr;    // tower's level-0 node, validated by the caller
    uint32_t base_h = 0;     // the deterministic draw to demote back to
  };

  // Record a tower the policy just promoted.  Bounded: hashes fp to a slot
  // and overwrites whatever was there (an evicted entry simply stops being
  // demotion-scanned; its tower stays tall until erased or re-registered).
  void record_promoted(uint64_t fp, void* root, uint32_t base_h);

  // Round-robin scan cursor over the registry.  Fills `out` with the next
  // occupied entry and returns true, or returns false after probing
  // `probes` slots without finding one.
  bool next_demote_candidate(Promoted* out, uint32_t probes);

  // Drop the registry entry for `root` (after a demotion, an erase, or a
  // failed validation).  No-op when absent.
  void drop_promoted(void* root);

  // Live adaptation totals (mid-run safe; feed StructureLiveStats).
  uint64_t promotions() const {
    return promotions_.load(std::memory_order_relaxed);
  }
  uint64_t demotions() const {
    return demotions_.load(std::memory_order_relaxed);
  }
  void add_promotion() { promotions_.fetch_add(1, std::memory_order_relaxed); }
  void add_demotion() { demotions_.fetch_add(1, std::memory_order_relaxed); }

 private:
  static constexpr uint32_t kSketchSlots = 4096;  // power of two
  static constexpr uint32_t kLatchStripes = 256;  // power of two
  static constexpr uint32_t kRegistrySlots = 1024;  // power of two

  struct RegistryEntry {
    std::atomic<uint64_t> fp{0};
    std::atomic<void*> root{nullptr};
    std::atomic<uint32_t> base_h{0};
  };

  void age_sketch();

  // Packed {tag:32 | count:32} per slot; tag 0 means empty (tags are the
  // fingerprint's high half forced nonzero).
  std::atomic<uint64_t> sketch_[kSketchSlots];
  std::atomic<uint64_t> total_{0};
  std::atomic<uint32_t> aging_{0};  // one-thread aging latch
  std::atomic<uint32_t> latches_[kLatchStripes];
  RegistryEntry registry_[kRegistrySlots];
  std::atomic<uint32_t> scan_cursor_{0};
  std::atomic<uint64_t> promotions_{0};
  std::atomic<uint64_t> demotions_{0};
};

// Per-thread sampling tick shared by every SkipTrie instance (the cadence
// is a rate, not per-structure state; one counter keeps the hot path to a
// single thread-local increment).
uint64_t& tls_adapt_tick();

}  // namespace skiptrie
