// Per-thread descent context ("search finger") for the skiplist engine.
//
// PR 3 drove hash probes down to ~log B, leaving node hops as the dominant
// predecessor cost (~2.3 visits per level of the descent plus the top-level
// walk).  The finger attacks that constant with distribution-adaptive reuse:
// every descent records, per level, the bracket (left, right) it traversed,
// and the next operation whose target falls inside a remembered level-l
// bracket starts its descent *at level l* — skipping levels l..top and, in
// the SkipTrie, the whole x-fast lowest_ancestor query (hash probes) too.
// On skewed workloads (zipf, clustered) consecutive operations concentrate
// on few brackets, so hits are frequent; on uniform workloads the finger
// almost never hits and costs only a few thread-local compares per descent.
//
// Safety (DESIGN.md §3.6): a finger outlives the EBR pin that recorded it,
// so a remembered node may have been retired — and, after a grace period,
// recycled into a different node — by the time it is reused.  Storage is
// type-stable (SlabArena never returns node memory to the OS), so the
// dereference is always a valid Node read; validation then rejects anything
// that is poisoned, re-leveled, re-keyed or marked, and an epoch check
// rejects brackets old enough for recycling to have been possible at all.
// A finger that survives validation is still only a *hint*: list_search
// re-validates its start and falls back to the level head, so correctness
// never depends on the finger — only the step count does.
//
// Fingers are thread-local and keyed by a never-reused per-engine owner id,
// so a finger recorded against a destroyed engine can never be consulted by
// a live one.  No finger is ever shared between threads.  The finger is a
// template over KeyTraits (DESIGN.md §6): bracket ikeys take the traits'
// ikey word, and each instantiation keeps its *own* per-thread registry, so
// a Bytes16 engine's brackets can never perturb (or be consulted by) a u64
// engine's descents.
//
// The per-thread registry grows on demand — one slot per live engine the
// thread has touched — and returns a *stable* object per owner: a slot is
// never rebound to another engine while its owner is alive, so references
// obtained for different engines never alias (DESIGN.md §4.2; the PR 4/5
// fixed-4-slot round-robin registry recycled objects in place, which both
// aliased held references and kept every finger permanently cold once a
// thread cycled through more engines than slots — exactly what a sharded
// split batch does).  Growth is bounded by *live* engines: destroyed
// engines release their owner id into a journal and each thread's registry
// drops the matching slots lazily on its next lookup.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/key_traits.h"
#include "skiplist/node.h"

namespace skiptrie {

template <typename Traits>
class BasicSearchFinger {
 public:
  using Ikey = typename Traits::ikey_type;
  using Node_t = NodeT<Ikey>;

  // Levels 0..kLevels-1 are cached.  The SkipTrie's truncated skiplist has
  // at most 7 levels (B=64; 8 levels at B=128 — still fully covered), so it
  // is fully covered; the full-height baseline only fingers its lowest
  // levels — exactly the ones whose hits skip the most work.
  static constexpr uint32_t kLevels = 8;
  // Brackets remembered per level.  Sized so the hot set of a zipf(0.99)
  // stream (a few dozen keys carrying ~30% of the mass) stays resident;
  // note a hot key consumes two level-0 entries (predecessor queries use
  // the (k, succ] bracket, membership queries (pred, k]), so the effective
  // hot-key capacity is kWays/2.  Misses scan every way of every level
  // with thread-local compares only, so the scan stays cache-resident.
  static constexpr uint32_t kWays = 32;
  // A bracket recorded more than this many global epochs ago is dropped.
  // This is a quality screen, not a correctness gate: identity validation
  // plus the type-stable arena already make any surviving entry a safe
  // descent start (DESIGN.md §3.6) — the only thing an ancient bracket can
  // still do is name a recycled same-key node that is momentarily unlinked,
  // costing a validation restart inside list_search.  The lag bounds how
  // often that happens under churn while leaving slow-moving hot brackets
  // (epochs advance only with retirement pressure) servable.
  static constexpr uint64_t kMaxEpochLag = 16;
  // How many levels below its entry level a descent records (the frequency
  // cascade — see descend_from): misses seed only the top rows; a target
  // must hit at level l to earn entries at l-1..l-kRecordDepth.  Hot keys
  // therefore sink kRecordDepth rows per repeat until they finger at level
  // 0, while the cold tail never reaches (and never evicts) the low rows.
  // Measured on zipf read_heavy at B=32: depth 1 beats 2 beats unlimited.
  static constexpr uint32_t kRecordDepth = 1;
  static constexpr int kMiss = -1;

  // One remembered bracket: the level's left node, the ikeys bracketing the
  // descent that recorded it, and the global epoch at record time.  `ref`
  // is the second-chance bit: set when the entry serves a hit or is
  // re-recorded, cleared as the victim clock sweeps past.  Without it the
  // per-level rings are FIFO, and on zipf streams the cold tail (most
  // draws) cycles a ring long before a hot bracket repeats — hot entries
  // must survive on use, not on recency of insertion.
  struct Entry {
    Node_t* left = nullptr;
    Ikey left_ikey = Ikey(0);
    Ikey right_ikey = Ikey(0);
    uint64_t epoch = 0;
    bool ref = false;
  };

  // (Re)bind this finger to engine `owner` with levels 0..top_level; drops
  // every cached bracket.
  void reset(uint64_t owner, uint32_t top_level);
  uint64_t owner() const { return owner_; }
  // Highest cacheable row.  Engines taller than kLevels must anchor the
  // record cascade here, not at their top — otherwise every miss records
  // only uncacheable levels and the finger never warms.
  uint32_t max_level() const { return levels_ - 1; }

  // Remember the level-`lvl` bracket a descent just traversed.  An entry
  // with the same left_ikey is updated in place (keeping its second
  // chance); otherwise the clock hand evicts the first entry it finds
  // whose ref bit is clear, clearing set bits as it sweeps.
  void record(uint32_t lvl, Node_t* left, Ikey left_ikey, Ikey right_ikey,
              uint64_t epoch);

  // Lowest cached level >= min_level holding a bracket that contains x
  // (left_ikey < x <= right_ikey) whose left node still validates (live
  // interior/head node at that level, same ikey, unmarked, epoch-fresh)
  // and is still adjacent to x (no node strictly between — see the
  // use-time adjacency check in the implementation).  Returns that level
  // and sets *out (marking the entry referenced), or returns kMiss.  Must
  // be called with the owner's EBR domain pinned.
  int try_start(Ikey x, uint32_t min_level, uint64_t now_epoch, Node_t** out);

  // --- Leaf-chunk rows (DESIGN.md §7.2) ---------------------------------
  // A separate small cache mapping key ranges to leaf-chunk ids.  One chunk
  // indexes ~LeafChunkT::kKeys keys, so these ways cover a far larger slice
  // of a hot set than the level-0 node ways do (64 ways x ~11 live keys ~
  // 700 keys); chunk-terminated reads consult a level-0 row first (exact,
  // scan-free) and fall back to a chunk way.  The stored [base, right)
  // coverage is a purely thread-local pre-screen — the engine re-validates
  // the id against live chunk state before trusting it, so a stale way
  // costs one rejected probe, never an answer.  Misses scan every way with
  // thread-local compares; 64 entries stay cache-resident.
  static constexpr uint32_t kChunkWays = 64;
  struct ChunkEntry {
    uint32_t idw = 0;  // chunk id + 1; 0 = empty way
    Ikey base = Ikey(0);
    Ikey right = Ikey(0);
    bool ref = false;  // second-chance bit, as in Entry
  };

  // Cached chunk id whose recorded coverage admits x (base <= x < right),
  // or 0 on a miss.  Marks the serving way referenced.
  uint32_t try_chunk(Ikey x);
  // Remember that chunk `idw` covered [base, right); a same-id way is
  // updated in place (keeping its second chance), else the clock evicts.
  void record_chunk(uint32_t idw, Ikey base, Ikey right);

  // Exact level-0 brackets for chunk-terminated reads: the same Entry
  // payload and screens as the level-0 node row, but in a much wider
  // dedicated ring.  A chunk-way hit still pays an in-chunk scan (~3 cache
  // lines); a leaf-bracket hit re-enters level 0 for just the verify walk
  // (~1-2 lines), so on skewed streams this ring is what makes the hot set
  // cheaper than the chunkless finger's mid-level entries.  It is written
  // only by reads that already hit some retained state (the frequency
  // cascade applied to chunks — see chunked_read), never by the one-shot
  // cold tail, which is why a ring this wide stays hot-resident.  Only
  // chunked reads touch it: with chunking off the finger behaves exactly
  // as before.
  static constexpr uint32_t kLeafWays = 512;

  // Leaf-bracket hit: validated level-0 left node of a remembered bracket
  // containing x, or nullptr.  Same identity/epoch/adjacency screens as
  // try_start; a hit is promoted one slot toward the front so hot entries
  // cluster where the linear scan starts.
  Node_t* try_leaf(Ikey x, uint64_t now_epoch);
  // Remember a level-0 bracket; same-left_ikey entries update in place.
  void record_leaf(Node_t* left, Ikey left_ikey, Ikey right_ikey,
                   uint64_t epoch);

  // Drop every cached bracket but keep the owner binding.
  void invalidate();

 private:
  uint64_t owner_ = 0;
  uint32_t levels_ = 0;  // min(top_level + 1, kLevels)
  uint32_t cursor_[kLevels] = {};
  Entry e_[kLevels][kWays];
  uint32_t chunk_clock_ = 0;
  ChunkEntry ce_[kChunkWays];
  uint32_t leaf_clock_ = 0;
  Entry le_[kLeafWays];
};

// The calling thread's finger for the engine identified by `owner` (ids
// come from new_finger_owner() and are never reused).  The returned
// reference stays valid — and keeps denoting the same engine's finger —
// until the owning engine is destroyed; fetching fingers for any number of
// other engines never invalidates or rebinds it.  One registry per traits
// instantiation (see file comment).
template <typename Traits>
BasicSearchFinger<Traits>& tls_finger(uint64_t owner, uint32_t top_level);

// Unique, never-reused owner id — one per engine instance (any traits).
uint64_t new_finger_owner();

// Called by the engine's destructor: records `owner` in the dead-owner
// journal so every thread's finger/cursor registries drop their slots for
// it on their next lookup (keeping registry growth bounded by the engines
// actually alive).  Safe from any thread; must not race the owner's own
// engine still being used.
void release_finger_owner(uint64_t owner);

namespace detail {
// Dead-owner journal, shared by the finger and cursor registries of every
// traits instantiation (cursor.cpp): monotone version = number of owners
// ever released.
uint64_t dead_owner_version();
// Appends owners released since journal position `since` to `out` and
// returns the new position.
uint64_t dead_owners_since(uint64_t since, std::vector<uint64_t>& out);
}  // namespace detail

// Test hook: number of live slots in the calling thread's finger registry
// for this traits instantiation.
template <typename Traits>
size_t tls_finger_registry_size_of();

// The historical u64 names.
using SearchFinger = BasicSearchFinger<U64Traits>;
size_t tls_finger_registry_size();

}  // namespace skiptrie
