#include "skiplist/adaptive.h"

namespace skiptrie {

namespace {

// Slot tag: the fingerprint's high half, forced nonzero (0 = empty slot).
inline uint32_t tag_of(uint64_t fp) {
  const uint32_t t = static_cast<uint32_t>(fp >> 32);
  return t == 0 ? 1u : t;
}

inline uint64_t pack(uint32_t tag, uint32_t count) {
  return (static_cast<uint64_t>(tag) << 32) | count;
}
inline uint32_t slot_tag(uint64_t w) { return static_cast<uint32_t>(w >> 32); }
inline uint32_t slot_count(uint64_t w) { return static_cast<uint32_t>(w); }

}  // namespace

AdaptiveHeightManager::AdaptiveHeightManager() {
  for (auto& s : sketch_) s.store(0, std::memory_order_relaxed);
  for (auto& l : latches_) l.store(0, std::memory_order_relaxed);
}

uint32_t AdaptiveHeightManager::note(uint64_t fp) {
  const uint32_t slot = static_cast<uint32_t>(fp) & (kSketchSlots - 1);
  const uint32_t tag = tag_of(fp);
  std::atomic<uint64_t>& s = sketch_[slot];
  uint64_t w = s.load(std::memory_order_relaxed);
  uint32_t result = 0;
  for (;;) {
    uint64_t nw;
    if (slot_tag(w) == tag) {
      const uint32_t c = slot_count(w);
      if (c == UINT32_MAX) {
        result = c;
        break;
      }
      nw = pack(tag, c + 1);
      result = c + 1;
    } else if (slot_tag(w) == 0) {
      nw = pack(tag, 1);
      result = 1;
    } else {
      // Occupied by another key: decay it (TinyLFU-style eviction pressure);
      // take the slot over once its count reaches zero.
      const uint32_t c = slot_count(w);
      nw = c <= 1 ? pack(tag, 1) : pack(slot_tag(w), c - 1);
      result = c <= 1 ? 1 : 0;
    }
    if (s.compare_exchange_weak(w, nw, std::memory_order_relaxed)) break;
  }
  if (total_.fetch_add(1, std::memory_order_relaxed) + 1 >= kAgeCap) {
    age_sketch();
  }
  return result;
}

uint32_t AdaptiveHeightManager::count_of(uint64_t fp) const {
  const uint32_t slot = static_cast<uint32_t>(fp) & (kSketchSlots - 1);
  const uint64_t w = sketch_[slot].load(std::memory_order_relaxed);
  return slot_tag(w) == tag_of(fp) ? slot_count(w) : 0;
}

void AdaptiveHeightManager::age_sketch() {
  // One thread halves; concurrent note() calls keep running — a halved or
  // not-yet-halved slot is equally valid as an estimate.
  uint32_t expected = 0;
  if (!aging_.compare_exchange_strong(expected, 1,
                                      std::memory_order_acquire)) {
    return;
  }
  if (total_.load(std::memory_order_relaxed) >= kAgeCap) {
    for (auto& s : sketch_) {
      uint64_t w = s.load(std::memory_order_relaxed);
      for (;;) {
        const uint32_t c = slot_count(w) >> 1;
        const uint64_t nw = c == 0 ? 0 : pack(slot_tag(w), c);
        if (w == nw || s.compare_exchange_weak(w, nw,
                                               std::memory_order_relaxed)) {
          break;
        }
      }
    }
    // Halve the total the same way (racing increments are preserved).
    uint64_t t = total_.load(std::memory_order_relaxed);
    while (!total_.compare_exchange_weak(t, t / 2,
                                         std::memory_order_relaxed)) {
    }
  }
  aging_.store(0, std::memory_order_release);
}

uint32_t AdaptiveHeightManager::desired_height(uint32_t count, uint64_t total,
                                               uint32_t base_h, uint32_t top) {
  uint32_t best = base_h;
  for (uint32_t l = base_h + 1; l <= top; ++l) {
    const uint32_t shift = kThetaShiftTop + (top - l);
    const uint64_t needed = shift >= 64 ? UINT64_MAX : (total >> shift);
    if (count >= kMinCount && count >= needed) best = l;
  }
  return best;
}

bool AdaptiveHeightManager::is_cold(uint32_t count, uint64_t total,
                                    uint32_t cur_h, uint32_t top) {
  const uint32_t shift = kThetaShiftTop + (top - cur_h) + kHysteresisShift;
  const uint64_t keep = shift >= 64 ? 0 : (total >> shift);
  return count < kMinCount || count < keep;
}

bool AdaptiveHeightManager::try_latch(uint64_t fp) {
  std::atomic<uint32_t>& l = latches_[fp & (kLatchStripes - 1)];
  uint32_t expected = 0;
  return l.compare_exchange_strong(expected, 1, std::memory_order_acquire);
}

void AdaptiveHeightManager::unlatch(uint64_t fp) {
  latches_[fp & (kLatchStripes - 1)].store(0, std::memory_order_release);
}

void AdaptiveHeightManager::record_promoted(uint64_t fp, void* root,
                                            uint32_t base_h) {
  RegistryEntry& e = registry_[static_cast<uint32_t>(fp >> 20) &
                               (kRegistrySlots - 1)];
  // Overwrite order: root last, so a scanner that sees the new root also
  // sees a plausible (fp, base_h) pair; any torn mix fails the caller-side
  // validation and is merely dropped.
  e.fp.store(fp, std::memory_order_relaxed);
  e.base_h.store(base_h, std::memory_order_relaxed);
  e.root.store(root, std::memory_order_release);
}

bool AdaptiveHeightManager::next_demote_candidate(Promoted* out,
                                                  uint32_t probes) {
  for (uint32_t i = 0; i < probes; ++i) {
    const uint32_t idx =
        scan_cursor_.fetch_add(1, std::memory_order_relaxed) &
        (kRegistrySlots - 1);
    RegistryEntry& e = registry_[idx];
    void* root = e.root.load(std::memory_order_acquire);
    if (root == nullptr) continue;
    out->fp = e.fp.load(std::memory_order_relaxed);
    out->root = root;
    out->base_h = e.base_h.load(std::memory_order_relaxed);
    return true;
  }
  return false;
}

void AdaptiveHeightManager::drop_promoted(void* root) {
  for (auto& e : registry_) {
    if (e.root.load(std::memory_order_relaxed) == root) {
      e.root.store(nullptr, std::memory_order_release);
    }
  }
}

uint64_t& tls_adapt_tick() {
  thread_local uint64_t tick = 0;
  return tick;
}

}  // namespace skiptrie
