// X-fast trie tree node (paper §4, "The data structure").
//
// Each prefix present in the trie maps (through the split-ordered hash
// table) to one TreeNode holding two tagged pointer words:
//
//   ptrs[0] -> the largest top-level skiplist node in the prefix's 0-subtree
//   ptrs[1] -> the smallest top-level skiplist node in the prefix's 1-subtree
//
// 0 (null) means the subtree is empty (modulo in-flight inserts).  The pair
// (null, null) marks the node as slated for deletion from the hash table;
// concurrent inserts observing it help delete (Alg. 6 lines 13-14).  Both
// words are DCSS targets (swings are guarded on the destination node being
// unmarked / adjacent), so they must be read with dcss_read.
#pragma once

#include <atomic>
#include <cstdint>

namespace skiptrie {

struct alignas(16) TreeNode {
  std::atomic<uint64_t> ptrs[2] = {0, 0};
};

}  // namespace skiptrie
