// Concurrent x-fast trie (paper §4, Algorithms 3-7).
//
// A hash table (split-ordered, lock-free) maps every prefix of every
// top-level skiplist key to a TreeNode carrying pointers to the extreme
// top-level nodes of the prefix's two subtrees.  Predecessor queries binary
// search on prefix length (LowestAncestor, Alg. 3), then walk the top-level
// doubly-linked list leftwards (xFastTriePred, Alg. 4).  Inserts add
// prefixes bottom-up (Alg. 6), deletes sweep top-down (Alg. 7); both use
// DCSS so that no pointer can be installed onto a marked node, and the hash
// insert of a fresh TreeNode is guarded the same way (DESIGN.md §3.5(1)).
//
// The trie is a template over KeyTraits (DESIGN.md §6): prefix encoding,
// bit extraction and the |ikey - x| candidate metric all route through the
// traits, so the same Algorithms 3-7 run over W = 64 (seed behavior,
// `using XFastTrie = BasicXFastTrie<U64Traits>`) and W = 128 byte-string
// universes.  TreeNode stays two tagged 64-bit pointer words either way.
//
// All methods must run under an EbrDomain::Guard (reentrant; the SkipTrie
// wrapper pins once per public operation).
#pragma once

#include <cstdint>

#include "hash/split_ordered.h"
#include "skiplist/engine.h"
#include "xfast/tree_node.h"

namespace skiptrie {

template <typename Traits>
class BasicXFastTrie {
 public:
  using Ikey = typename Traits::ikey_type;
  using Node_t = NodeT<Ikey>;
  using Engine = BasicSkipListEngine<Traits>;
  using Map = BasicSplitOrderedMap<Traits>;

  // bits: B = log2(universe size), 4..Traits::kMaxBits.
  BasicXFastTrie(DcssContext ctx, Engine& engine, uint32_t bits,
                 size_t max_hash_buckets = 1u << 20);
  ~BasicXFastTrie();

  BasicXFastTrie(const BasicXFastTrie&) = delete;
  BasicXFastTrie& operator=(const BasicXFastTrie&) = delete;

  uint32_t bits() const { return bits_; }

  // Algorithms 3+4: find a top-level-ish start node with ikey < x.
  // `key` supplies the prefix bits for the binary search; `x` is the
  // internal-key search bound.  Never returns null (head fallback).
  Node_t* pred_start(Ikey key, Ikey x);

  // Algorithm 6 lines 5-20: insert the prefixes of `key`, pointing at the
  // (top-level) skiplist node `node`.  Stops as soon as node is marked.
  void insert_prefixes(Ikey key, Node_t* node);

  // Algorithm 7 lines 5-22: remove every trie reference to `node` (already
  // marked and unlinked).  `top_left_hint` is a top-level left hint from the
  // delete's successor repair.
  void remove_prefixes(Ikey key, Node_t* node, Node_t* top_left_hint);

  // Number of prefix entries currently in the hash table.
  size_t entry_count() const { return map_.size(); }
  size_t approx_bytes() const;

  const Map& map() const { return map_; }

 private:
  Node_t* lowest_ancestor(Ikey key, Ikey x);

  // One level of Alg. 6: make the entry for prefix `p` cover `node` in
  // direction `d`.  Returns false if node was marked (insert abandons the
  // climb; the deleter owns cleanup).  See DESIGN.md §3.5(3) for the entry
  // life cycle this participates in.
  bool cover_level(Ikey p, uint32_t len, uint64_t d, Node_t* node);

  // One level of Alg. 7: swing the entry for prefix `p` off `node`, clear
  // empty subtrees, and kill the entry when both sides are empty.
  void sweep_level(Ikey p, uint32_t len, uint64_t d, Ikey x, Node_t* node,
                   Node_t*& left_hint);

  // Tombstone-based entry removal (DESIGN.md §3.5(3)): condemn ptrs[0]
  // (0 -> kMark, DCSS-guarded on ptrs[1] == 0), then ptrs[1], then unlink
  // from the hash table.  Returns false if a side is live (not killable).
  bool kill_entry(Ikey p, TreeNode* tn);

  DcssContext ctx_;  // caller's context (EBR domain; mode governs the engine)
  // ALL trie maintenance (swings, entry life cycle, the hash table's guarded
  // insert) uses real DCSS even under DcssMode::kCasFallback: the fallback
  // ablation applies to the skiplist engine's structural guards, where
  // staleness is repaired lazily — but the quiescent trie-coverage invariant
  // (checked by validate_structure in both modes) cannot survive unguarded
  // swings, and entry death/installation atomicity keeps writes from being
  // lost.  See DESIGN.md §3.1 and §3.5(3).
  DcssContext strict_ctx_;
  Engine& engine_;
  const uint32_t bits_;
  Map map_;
  TreeNode* root_;  // entry for the empty prefix; never deleted
};

// The historical u64 fast-path name.
using XFastTrie = BasicXFastTrie<U64Traits>;

}  // namespace skiptrie
