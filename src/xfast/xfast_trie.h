// Concurrent x-fast trie (paper §4, Algorithms 3-7).
//
// A hash table (split-ordered, lock-free) maps every prefix of every
// top-level skiplist key to a TreeNode carrying pointers to the extreme
// top-level nodes of the prefix's two subtrees.  Predecessor queries binary
// search on prefix length (LowestAncestor, Alg. 3), then walk the top-level
// doubly-linked list leftwards (xFastTriePred, Alg. 4).  Inserts add
// prefixes bottom-up (Alg. 6), deletes sweep top-down (Alg. 7); both use
// DCSS so that no pointer can be installed onto a marked node, and the hash
// insert of a fresh TreeNode is guarded the same way (DESIGN.md §3.5(1)).
//
// All methods must run under an EbrDomain::Guard (reentrant; the SkipTrie
// wrapper pins once per public operation).
#pragma once

#include <cstdint>

#include "hash/split_ordered.h"
#include "skiplist/engine.h"
#include "xfast/tree_node.h"

namespace skiptrie {

class XFastTrie {
 public:
  // bits: B = log2(universe size), 4..64.
  XFastTrie(DcssContext ctx, SkipListEngine& engine, uint32_t bits,
            size_t max_hash_buckets = 1u << 20);
  ~XFastTrie();

  XFastTrie(const XFastTrie&) = delete;
  XFastTrie& operator=(const XFastTrie&) = delete;

  uint32_t bits() const { return bits_; }

  // Algorithms 3+4: find a top-level-ish start node with ikey < x.
  // `key` supplies the prefix bits for the binary search; `x` is the
  // internal-key search bound.  Never returns null (head fallback).
  Node* pred_start(uint64_t key, uint64_t x);

  // Algorithm 6 lines 5-20: insert the prefixes of `key`, pointing at the
  // (top-level) skiplist node `node`.  Stops as soon as node is marked.
  void insert_prefixes(uint64_t key, Node* node);

  // Algorithm 7 lines 5-22: remove every trie reference to `node` (already
  // marked and unlinked).  `top_left_hint` is a top-level left hint from the
  // delete's successor repair.
  void remove_prefixes(uint64_t key, Node* node, Node* top_left_hint);

  // Number of prefix entries currently in the hash table.
  size_t entry_count() const { return map_.size(); }
  size_t approx_bytes() const;

  const SplitOrderedMap& map() const { return map_; }

 private:
  Node* lowest_ancestor(uint64_t key, uint64_t x);

  // One level of Alg. 6: make the entry for prefix `p` cover `node` in
  // direction `d`.  Returns false if node was marked (insert abandons the
  // climb; the deleter owns cleanup).  See DESIGN.md §3.5(3) for the entry
  // life cycle this participates in.
  bool cover_level(uint64_t p, uint32_t len, uint64_t d, Node* node);

  // One level of Alg. 7: swing the entry for prefix `p` off `node`, clear
  // empty subtrees, and kill the entry when both sides are empty.
  void sweep_level(uint64_t p, uint32_t len, uint64_t d, uint64_t x,
                   Node* node, Node*& left_hint);

  // Tombstone-based entry removal (DESIGN.md §3.5(3)): condemn ptrs[0]
  // (0 -> kMark, DCSS-guarded on ptrs[1] == 0), then ptrs[1], then unlink
  // from the hash table.  Returns false if a side is live (not killable).
  bool kill_entry(uint64_t p, TreeNode* tn);

  DcssContext ctx_;  // caller's context (EBR domain; mode governs the engine)
  // ALL trie maintenance (swings, entry life cycle, the hash table's guarded
  // insert) uses real DCSS even under DcssMode::kCasFallback: the fallback
  // ablation applies to the skiplist engine's structural guards, where
  // staleness is repaired lazily — but the quiescent trie-coverage invariant
  // (checked by validate_structure in both modes) cannot survive unguarded
  // swings, and entry death/installation atomicity keeps writes from being
  // lost.  See DESIGN.md §3.1 and §3.5(3).
  DcssContext strict_ctx_;
  SkipListEngine& engine_;
  const uint32_t bits_;
  SplitOrderedMap map_;
  TreeNode* root_;  // entry for the empty prefix; never deleted
};

}  // namespace skiptrie
