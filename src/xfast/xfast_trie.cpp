#include "xfast/xfast_trie.h"

#include <cassert>

#include "common/bitops.h"
#include "common/stats.h"

namespace skiptrie {

namespace {
// After this many failed guarded swings in the delete sweep we fall back to
// clearing the pointer with plain CAS — the paper's CAS fallback, trading
// trie coverage (repaired by later inserts) for guaranteed termination.
constexpr int kSwingLimit = 64;

// A trie child pointer should name a live top-level interior node; heads,
// tails and poisoned storage read as ikey 0 / UINT64_MAX.
inline bool plausible_candidate(uint64_t ik) {
  return ik != 0 && ik != UINT64_MAX;
}
}  // namespace

XFastTrie::XFastTrie(DcssContext ctx, SkipListEngine& engine, uint32_t bits,
                     size_t max_hash_buckets)
    : ctx_(ctx), engine_(engine), bits_(bits),
      map_(ctx, max_hash_buckets) {
  assert(bits_ >= 4 && bits_ <= 64);
  root_ = new TreeNode();
  const bool ok = map_.insert(encode_prefix(0, 0, bits_),
                              reinterpret_cast<uint64_t>(root_));
  assert(ok);
  (void)ok;
}

XFastTrie::~XFastTrie() {
  // Quiescent teardown: every TreeNode still referenced by the table is
  // deleted here; TreeNodes removed earlier were EBR-retired by their
  // removers.
  map_.for_each([](uint64_t, uint64_t value) {
    delete reinterpret_cast<TreeNode*>(value);
  });
}

size_t XFastTrie::approx_bytes() const {
  return map_.approx_bytes() + map_.size() * sizeof(TreeNode);
}

Node* XFastTrie::lowest_ancestor(uint64_t key, uint64_t x) {
  // Algorithm 3 as a classic binary search on prefix length (DESIGN.md
  // §3.5(4)).  Tracks the "best" candidate seen — the top-level node whose
  // key is closest to x (paper lines 10-13).
  Node* best = nullptr;
  uint64_t best_dist = UINT64_MAX;
  auto consider = [&](uint64_t word) {
    Node* cand = unpack_ptr<Node>(word);
    if (cand == nullptr) return;
    const uint64_t ik = cand->ikey();
    if (!plausible_candidate(ik)) return;
    const uint64_t d = abs_diff(ik, x);
    if (d < best_dist) {
      best_dist = d;
      best = cand;
    }
  };

  // Root entry (always present): paper line 4, plus the opposite direction
  // as a fallback so an empty subtree still yields a start hint.
  const uint64_t b0 = key_bit(key, 0, bits_);
  consider(dcss_read(root_->ptrs[b0]));
  consider(dcss_read(root_->ptrs[1 - b0]));

  uint32_t lo = 0;
  uint32_t hi = bits_ - 1;
  while (lo < hi) {
    const uint32_t mid = (lo + hi + 1) / 2;
    const auto found = map_.lookup(encode_prefix(key, mid, bits_));
    if (found.has_value()) {
      auto* tn = reinterpret_cast<TreeNode*>(*found);
      // Consider BOTH subtree extremes.  At the lowest ancestor the
      // query-direction subtree is empty by definition (otherwise a longer
      // prefix would exist), so the tight candidate — the predecessor or
      // successor of x among top-level keys — is the opposite pointer.
      consider(dcss_read(tn->ptrs[0]));
      consider(dcss_read(tn->ptrs[1]));
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return best;
}

Node* XFastTrie::pred_start(uint64_t key, uint64_t x) {
  Node* anc = lowest_ancestor(key, x);
  if (anc == nullptr) anc = engine_.head(engine_.top_level());
  // Algorithm 4: walk back/prev guides until ikey < x.
  return engine_.walk_left(x, anc);
}

void XFastTrie::insert_prefixes(uint64_t key, Node* node) {
  auto& c = tls_counters();
  // Bottom-up: longest proper prefix first (Alg. 6 line 5).
  for (int len = static_cast<int>(bits_) - 1; len >= 0; --len) {
    const uint64_t p = encode_prefix(key, static_cast<uint32_t>(len), bits_);
    const uint64_t d = key_bit(key, static_cast<uint32_t>(len), bits_);
    for (;;) {
      c.trie_level_ops++;
      const uint64_t nodeword = dcss_read(node->next);
      if (is_marked(nodeword)) return;  // node deleted: stop raising prefixes
      const auto found = map_.lookup(p);
      if (!found.has_value()) {
        // Create the prefix entry (Alg. 6 lines 9-12); the hash insert is
        // DCSS-guarded on node staying unmarked (DESIGN.md §3.5(1)) so a
        // trie entry can never be born pointing at a marked node.
        auto* tn = new TreeNode();
        tn->ptrs[d].store(pack_ptr(node), std::memory_order_relaxed);
        bool guard_failed = false;
        if (map_.insert(p, reinterpret_cast<uint64_t>(tn), &node->next,
                        nodeword, &guard_failed)) {
          break;  // crossed this level
        }
        delete tn;
        continue;  // entry appeared or node's next changed; re-examine
      }
      auto* tn = reinterpret_cast<TreeNode*>(*found);
      const uint64_t p0 = dcss_read(tn->ptrs[0]);
      const uint64_t p1 = dcss_read(tn->ptrs[1]);
      if (len > 0 && p0 == 0 && p1 == 0) {
        // Slated for deletion: help remove it, then retry this level
        // (Alg. 6 lines 13-14).
        if (map_.compare_and_delete(p, reinterpret_cast<uint64_t>(tn))) {
          ctx_.ebr->retire_delete(tn);
        }
        continue;
      }
      const uint64_t curr = (d == 0) ? p0 : p1;
      Node* cn = unpack_ptr<Node>(curr);
      if (cn != nullptr) {
        const uint64_t ck = cn->ikey();
        const uint64_t nk = node->ikey();
        const bool covered = plausible_candidate(ck) &&
                             ((d == 0) ? ck >= nk : ck <= nk);
        if (covered) break;  // adequately represented (Alg. 6 line 17)
      }
      // Swing the pointer to node, conditioned on node remaining unmarked
      // (Alg. 6 lines 18-19).
      const DcssResult r =
          dcss(ctx_, tn->ptrs[d], curr, pack_ptr(node), node->next, nodeword);
      if (r.success) break;
      // Guard failure may mean the node was marked OR merely that its next
      // pointer moved; the loop re-reads and re-checks the mark.
    }
  }
}

void XFastTrie::remove_prefixes(uint64_t key, Node* node,
                                Node* top_left_hint) {
  auto& c = tls_counters();
  const uint64_t x = node->ikey();
  const uint32_t top = engine_.top_level();
  Node* left_hint = top_left_hint != nullptr ? top_left_hint
                                             : engine_.head(top);
  // Top-down: shortest prefix first (Alg. 7 line 5).
  for (uint32_t len = 0; len < bits_; ++len) {
    c.trie_level_ops++;
    const uint64_t p = encode_prefix(key, len, bits_);
    const uint64_t d = key_bit(key, len, bits_);
    const auto found = map_.lookup(p);
    if (!found.has_value()) continue;  // Alg. 7 line 9
    auto* tn = reinterpret_cast<TreeNode*>(*found);
    uint64_t curr = dcss_read(tn->ptrs[d]);
    int spins = 0;
    while (unpack_ptr<Node>(curr) == node) {
      if (++spins > kSwingLimit) {
        // Guaranteed-termination fallback: clear the pointer outright.
        // Later inserts restore coverage; searches merely lose a hint.
        counted_cas(tn->ptrs[d], curr, 0);
        curr = dcss_read(tn->ptrs[d]);
        continue;
      }
      const SkipListEngine::Bracket b = engine_.list_search(x, left_hint, top);
      left_hint = b.left;
      if (d == 0) {
        // Swing backwards to left, guarded on left unmarked and adjacent
        // (Alg. 7 lines 13-14).
        dcss(ctx_, tn->ptrs[d], curr, pack_ptr(b.left), b.left->next,
             pack_ptr(b.right));
      } else {
        // Swing forwards to right, guarded on (right.prev, right.marked)
        // == (left, 0) (Alg. 7 lines 16-17).
        engine_.make_done(b.left, b.right);
        dcss(ctx_, tn->ptrs[d], curr, pack_ptr(b.right), b.right->prevw,
             pack_ptr(b.left));
      }
      curr = dcss_read(tn->ptrs[d]);
    }
    // If the pointer left the p.d subtree entirely, the subtree is empty:
    // clear it (Alg. 7 lines 19-20).
    Node* cn = unpack_ptr<Node>(curr);
    if (cn != nullptr) {
      const uint64_t ck = cn->ikey();
      const bool in_subtree =
          plausible_candidate(ck) &&
          cn->kind() == NodeKind::kInterior &&
          prefix_matches(p, ck - 1, len, bits_);
      if (!in_subtree) {
        counted_cas(tn->ptrs[d], curr, 0);
      }
    }
    // If both subtrees are empty, remove the entry (Alg. 7 lines 21-22).
    // The root (empty prefix) entry is permanent.
    if (len > 0) {
      const uint64_t q0 = dcss_read(tn->ptrs[0]);
      const uint64_t q1 = dcss_read(tn->ptrs[1]);
      if (q0 == 0 && q1 == 0) {
        if (map_.compare_and_delete(p, reinterpret_cast<uint64_t>(tn))) {
          ctx_.ebr->retire_delete(tn);
        }
      }
    }
  }
}

}  // namespace skiptrie
