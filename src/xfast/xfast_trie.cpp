#include "xfast/xfast_trie.h"

#include <cassert>

#include "common/bitops.h"
#include "common/stats.h"

namespace skiptrie {

namespace {
// A trie child pointer should name a live top-level interior node; heads,
// tails and poisoned storage read as ikey 0 / all-ones.
template <typename Ikey>
inline bool plausible_candidate(Ikey ik) {
  return ik != Ikey(0) && ik != ikey_all_ones<Ikey>();
}

// Per-thread hint: an EWMA (x4 fixed point) of the prefix lengths where
// recent lowest_ancestor calls landed.  Ancestor depth concentrates near
// log2 of the top-level population, so seeding the binary search near the
// running mean collapses the usual ~log B probes to ~2-4; the average beats
// the raw last sample because |depth - mean| is stochastically smaller than
// the distance between two independent draws.  Shared across trie
// instances of the same traits by design — a stale hint costs a few extra
// gallop probes before the search degrades gracefully to plain binary
// search; correctness never depends on it.  One hint per traits
// instantiation (depths live in different ranges at different W).
template <typename Traits>
uint32_t& tl_anc_len_hint4() {
  thread_local uint32_t v = 0;
  return v;
}
}  // namespace

template <typename Traits>
BasicXFastTrie<Traits>::BasicXFastTrie(DcssContext ctx, Engine& engine,
                                       uint32_t bits, size_t max_hash_buckets)
    : ctx_(ctx), strict_ctx_{ctx.ebr, DcssMode::kDcss}, engine_(engine),
      bits_(bits), map_(strict_ctx_, max_hash_buckets) {
  assert(bits_ >= 4 && bits_ <= Traits::kMaxBits);
  root_ = new TreeNode();
  const bool ok = map_.insert(Traits::encode_prefix(Ikey(0), 0, bits_),
                              reinterpret_cast<uint64_t>(root_));
  assert(ok);
  (void)ok;
}

template <typename Traits>
BasicXFastTrie<Traits>::~BasicXFastTrie() {
  // Quiescent teardown: every TreeNode still referenced by the table is
  // deleted here; TreeNodes removed earlier were EBR-retired by their
  // removers.
  map_.for_each([](Ikey, uint64_t value) {
    delete reinterpret_cast<TreeNode*>(value);
  });
}

template <typename Traits>
size_t BasicXFastTrie<Traits>::approx_bytes() const {
  return map_.approx_bytes() + map_.size() * sizeof(TreeNode);
}

template <typename Traits>
auto BasicXFastTrie<Traits>::lowest_ancestor(Ikey key, Ikey x) -> Node_t* {
  // Algorithm 3 as a binary search on prefix length, see DESIGN.md §3.5(4),
  // restructured for probe economy:
  //  - the search is seeded from tl_anc_len_hint4 (running mean landing
  //    depth), so a stable workload pays ~2-4 probes instead of ~log B;
  //  - interior hits do NOT read the hit entry's child pointers — only the
  //    deepest hit is read (both words, batched, once, after the search).
  //    Sequentially that loses nothing: the lowest ancestor's opposite-
  //    direction pointer is the tight candidate (predecessor or successor
  //    of x among top-level keys), and every shallower ancestor's pointers
  //    are strictly looser.  Concurrently a killed/emptied deepest entry
  //    can yield no candidate, in which case we fall back to the root's
  //    pointers (always present) — pred_start is only a hint, walk_left
  //    and the descent validate everything.
  auto& c = tls_counters();
  Node_t* best = nullptr;
  Ikey best_dist = Traits::ikey_max();
  bool have_best = false;
  auto consider = [&](uint64_t word) {
    Node_t* cand = unpack_ptr<Node_t>(word);
    if (cand == nullptr) return;
    const Ikey ik = cand->ikey();
    if (!plausible_candidate(ik)) return;
    const Ikey d = Traits::abs_diff(ik, x);
    if (!have_best || d < best_dist) {
      best_dist = d;
      best = cand;
      have_best = true;
    }
  };

  TreeNode* deepest = nullptr;  // entry of the longest prefix found so far
  auto probe = [&](uint32_t len) -> bool {
    c.probes_binsearch++;
    const auto found = map_.lookup(Traits::encode_prefix(key, len, bits_));
    if (!found.has_value()) return false;
    deepest = reinterpret_cast<TreeNode*>(*found);
    return true;
  };

  uint32_t lo = 0;
  uint32_t hi = bits_ - 1;
  // Seed: probe at the hinted depth, then gallop away from it with doubling
  // strides until the answer is bracketed, then binary search the remaining
  // window.  Ancestor depth concentrates near log2(top-level population),
  // so the true depth is usually within a couple of levels of the hint:
  // cost ~2 + 2*log2(|true - hint|) probes instead of ~log2 B.
  uint32_t& hint4 = tl_anc_len_hint4<Traits>();
  const uint32_t hint = (hint4 + 2) / 4;
  const uint32_t seed = hint < 1 ? 1 : (hint > hi ? hi : hint);
  if (probe(seed)) {
    lo = seed;
    uint32_t step = 1;
    while (lo < hi) {  // gallop up: lo is a hit, find the first miss above
      const uint32_t next = hi - lo > step ? lo + step : hi;
      if (probe(next)) {
        lo = next;
        step *= 2;
      } else {
        hi = next - 1;
        break;
      }
    }
  } else {
    hi = seed - 1;
    uint32_t step = 1;
    while (hi > lo) {  // gallop down: hi+1 is a miss, find a hit below
      const uint32_t next = hi - lo >= step ? hi - (step - 1) : lo;
      if (next == lo) break;  // lo (the root at 0) needs no probe
      if (probe(next)) {
        lo = next;
        break;
      }
      hi = next - 1;
      step *= 2;
    }
  }
  while (lo < hi) {
    const uint32_t mid = (lo + hi + 1) / 2;
    if (probe(mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  hint4 = (hint4 * 3) / 4 + lo;  // EWMA, alpha = 1/4

  // Read the deepest hit's two child words (the only consider reads on the
  // common path).  `deepest` corresponds to length lo: hits happen at
  // strictly increasing lengths, so the last one recorded is the final lo.
  if (deepest != nullptr) {
    consider(dcss_read(deepest->ptrs[0]));
    consider(dcss_read(deepest->ptrs[1]));
  }
  if (best == nullptr) {
    // No usable candidate below the root (empty trie, or the deepest entry
    // died under us): fall back to the root entry, paper line 4, querying
    // the key-direction subtree first and the opposite as a last resort.
    const uint64_t b0 = Traits::bit(key, 0, bits_);
    consider(dcss_read(root_->ptrs[b0]));
    consider(dcss_read(root_->ptrs[1 - b0]));
  }
  return best;
}

template <typename Traits>
auto BasicXFastTrie<Traits>::pred_start(Ikey key, Ikey x) -> Node_t* {
  Node_t* anc = lowest_ancestor(key, x);
  if (anc == nullptr) anc = engine_.head(engine_.top_level());
  // Algorithm 4: walk back/prev guides until ikey < x.
  return engine_.walk_left(x, anc);
}

template <typename Traits>
bool BasicXFastTrie<Traits>::kill_entry(Ikey p, TreeNode* tn) {
  // Irreversible entry removal (DESIGN.md §3.5(3)).  The naive protocol —
  // read (0, 0), then compareAndDelete — loses concurrent inserts: a writer
  // can install its node into ptrs[d] between the read and the unlink, and
  // the write silently disappears with the entry.  Instead, death is made
  // irreversible *per word* before the unlink:
  //
  //   1. condemn ptrs[0]: DCSS 0 -> kMark, guarded on ptrs[1] == 0;
  //   2. condemn ptrs[1]: CAS 0 -> kMark (no live write can land once
  //      ptrs[0] carries the tombstone, because empty-word installs are
  //      DCSS-guarded on the opposite word — see cover_level);
  //   3. unlink from the hash table; the CAD winner retires the TreeNode.
  //
  // Writers that observe a tombstone help finish the kill and then recreate
  // a fresh entry, so no install can ever be resurrected-over or lost.
  for (;;) {
    const uint64_t q0 = dcss_read(tn->ptrs[0]);
    const uint64_t q1 = dcss_read(tn->ptrs[1]);
    if ((q0 != 0 && q0 != kMark) || (q1 != 0 && q1 != kMark)) {
      return false;  // a side is live: the entry is not killable
    }
    if (q0 == 0) {
      dcss(strict_ctx_, tn->ptrs[0], 0, kMark, tn->ptrs[1], 0);
      continue;  // re-examine: either condemned or a writer won the word
    }
    if (q1 == 0) {
      counted_cas(tn->ptrs[1], 0, kMark);
      continue;
    }
    // Both sides tombstoned: dead for good.  Exactly one unlinker wins the
    // compareAndDelete and owns the retirement.
    if (map_.compare_and_delete(p, reinterpret_cast<uint64_t>(tn))) {
      ctx_.ebr->retire_delete(tn);
    }
    return true;
  }
}

template <typename Traits>
bool BasicXFastTrie<Traits>::cover_level(Ikey p, uint32_t len, uint64_t d,
                                         Node_t* node) {
  auto& c = tls_counters();
  for (;;) {
    c.trie_level_ops++;
    const uint64_t nodeword = dcss_read(node->next);
    if (is_marked(nodeword)) return false;  // node deleted: stop climbing
    const auto found = map_.lookup(p);
    if (!found.has_value()) {
      // Create the prefix entry (Alg. 6 lines 9-12); the hash insert is
      // DCSS-guarded on node staying unmarked (DESIGN.md §3.5(1)) so a
      // trie entry can never be born pointing at a marked node.
      auto* tn = new TreeNode();
      tn->ptrs[d].store(pack_ptr(node), std::memory_order_relaxed);
      bool guard_failed = false;
      if (map_.insert(p, reinterpret_cast<uint64_t>(tn), &node->next,
                      nodeword, &guard_failed)) {
        return true;  // crossed this level
      }
      delete tn;
      continue;  // entry appeared or node's next changed; re-examine
    }
    auto* tn = reinterpret_cast<TreeNode*>(*found);
    const uint64_t curr = dcss_read(tn->ptrs[d]);
    const uint64_t other = dcss_read(tn->ptrs[1 - d]);
    if (curr == kMark || other == kMark) {
      // The entry is being killed (DESIGN.md §3.5(3)): help finish, then
      // re-examine from scratch — the next iteration recreates a fresh
      // entry (Alg. 6 lines 13-14).  (The root entry is never condemned;
      // the len guard is belt-and-suspenders.)
      if (len > 0) kill_entry(p, tn);
      continue;
    }
    Node_t* cn = unpack_ptr<Node_t>(curr);
    if (cn != nullptr) {
      const Ikey ck = cn->ikey();
      const Ikey nk = node->ikey();
      if (plausible_candidate(ck) && is_marked(dcss_read(cn->next))) {
        // A marked candidate neither covers (its delete sweep may already
        // be past this prefix) nor may we simply overwrite it with our own
        // node: the candidate may be covering *other* live keys between
        // ours and it, and replacing it with a smaller key would strand
        // them while its deleter — finding the word no longer naming its
        // node — skips the repair.  Help the deleter instead: perform its
        // Alg. 7 swing to the candidate's top-level neighbor (which covers
        // everything the candidate covered), then re-examine.
        Node_t* hint = engine_.head(engine_.top_level());
        sweep_level(p, len, d, ck, cn, hint);
        continue;
      }
      const bool covered = plausible_candidate(ck) &&
                           ((d == 0) ? ck >= nk : ck <= nk);
      if (covered) return true;  // adequately represented (Alg. 6 line 17)
      // Swing the live pointer to node, conditioned on node remaining
      // unmarked (Alg. 6 lines 18-19).  While ptrs[d] is non-empty the
      // entry cannot die, so no liveness guard is needed here.  (An
      // unmarked candidate below ours cannot be covering anyone we would
      // strand: coverage is monotone — see DESIGN.md §3.4.)
      const DcssResult r = dcss(strict_ctx_, tn->ptrs[d], curr,
                                pack_ptr(node), node->next, nodeword);
      if (r.success) return true;
      continue;  // value or mark moved; re-read and re-check
    }
    // Empty word.  The install must be guarded on the *opposite* word so it
    // cannot race kill_entry's condemnation of this side (an equality guard
    // on ptrs[1-d] == other fails if the entry started dying, and
    // kill_entry's own guard fails if we won first).  This gives up the
    // node-unmarked guard, so compensate after the fact: if node got marked,
    // its deleter may already have swept past this prefix — run the
    // deleter's level sweep ourselves (DESIGN.md §3.5(3)).
    const DcssResult r = dcss(strict_ctx_, tn->ptrs[d], 0, pack_ptr(node),
                              tn->ptrs[1 - d], other);
    if (!r.success) continue;
    if (is_marked(dcss_read(node->next))) {
      Node_t* hint = engine_.head(engine_.top_level());
      sweep_level(p, len, d, node->ikey(), node, hint);
      return false;
    }
    return true;
  }
}

template <typename Traits>
void BasicXFastTrie<Traits>::insert_prefixes(Ikey key, Node_t* node) {
  // Bottom-up: longest proper prefix first (Alg. 6 line 5).
  for (int len = static_cast<int>(bits_) - 1; len >= 0; --len) {
    const Ikey p = Traits::encode_prefix(key, static_cast<uint32_t>(len),
                                         bits_);
    const uint64_t d = Traits::bit(key, static_cast<uint32_t>(len), bits_);
    if (!cover_level(p, static_cast<uint32_t>(len), d, node)) return;
  }
}

template <typename Traits>
void BasicXFastTrie<Traits>::sweep_level(Ikey p, uint32_t len, uint64_t d,
                                         Ikey x, Node_t* node,
                                         Node_t*& left_hint) {
  auto& c = tls_counters();
  const uint32_t top = engine_.top_level();
  c.trie_level_ops++;
  const auto found = map_.lookup(p);
  if (!found.has_value()) return;  // Alg. 7 line 9
  auto* tn = reinterpret_cast<TreeNode*>(*found);
  uint64_t curr = dcss_read(tn->ptrs[d]);
  // Unbounded like the paper's Alg. 7 loop: every failed swing means a
  // concurrent operation changed the neighborhood, so lock-freedom holds.
  // (A bounded clear-to-null fallback is NOT sound: it permanently trades
  // away another live key's coverage, which later cascades into wrongful
  // entry death — DESIGN.md §3.5(3).)
  while (unpack_ptr<Node_t>(curr) == node) {
    const typename Engine::Bracket b = engine_.list_search(x, left_hint, top);
    left_hint = b.left;
    if (d == 0) {
      // Swing backwards to left, guarded on left unmarked and adjacent
      // (Alg. 7 lines 13-14).
      dcss(strict_ctx_, tn->ptrs[d], curr, pack_ptr(b.left), b.left->next,
           pack_ptr(b.right));
    } else {
      // Swing forwards to right, guarded on (right.prev, right.marked)
      // == (left, 0) (Alg. 7 lines 16-17).
      engine_.make_done(b.left, b.right);
      dcss(strict_ctx_, tn->ptrs[d], curr, pack_ptr(b.right), b.right->prevw,
           pack_ptr(b.left));
    }
    curr = dcss_read(tn->ptrs[d]);
  }
  // If the pointer left the p.d subtree entirely, the subtree is empty:
  // clear it (Alg. 7 lines 19-20).
  Node_t* cn = unpack_ptr<Node_t>(curr);
  if (cn != nullptr) {
    const Ikey ck = cn->ikey();
    const bool in_subtree =
        plausible_candidate(ck) &&
        cn->kind() == NodeKind::kInterior &&
        Traits::prefix_matches(p, ck - Ikey(1), len, bits_);
    if (!in_subtree) {
      counted_cas(tn->ptrs[d], curr, 0);
    }
  }
  // If both subtrees are empty, kill the entry (Alg. 7 lines 21-22, via the
  // tombstone protocol).  The root (empty prefix) entry is permanent.
  if (len > 0) {
    kill_entry(p, tn);
  }
}

template <typename Traits>
void BasicXFastTrie<Traits>::remove_prefixes(Ikey key, Node_t* node,
                                             Node_t* top_left_hint) {
  const Ikey x = node->ikey();
  Node_t* left_hint = top_left_hint != nullptr
                          ? top_left_hint
                          : engine_.head(engine_.top_level());
  // Top-down: shortest prefix first (Alg. 7 line 5).
  for (uint32_t len = 0; len < bits_; ++len) {
    const Ikey p = Traits::encode_prefix(key, len, bits_);
    const uint64_t d = Traits::bit(key, len, bits_);
    sweep_level(p, len, d, x, node, left_hint);
  }
}

template class BasicXFastTrie<U64Traits>;
template class BasicXFastTrie<Bytes16Traits>;

}  // namespace skiptrie
