// Client simulator for the Service front-end (DESIGN.md §4.3).
//
// Models the north-star traffic shape — many tenants, a few of them hot —
// against a Service: the key universe splits into `tenants` contiguous
// equal ranges (tenant = key prefix, so hot tenants concentrate on few
// shards), each simulated client draws a tenant per request from a zipf
// distribution over *scattered* tenant ranks (hot tenants land on
// unrelated prefixes, not all in shard 0), then draws the request's keys
// uniformly inside the tenant's range.  Arrivals are bursty: a client
// submits `burst` requests back-to-back without waiting (async futures),
// then waits for the whole burst before issuing the next — queue depth and
// wait attribution (steps.queue_depth_sum / queue_wait_ns) measure exactly
// this pressure.
//
// Determinism: all draws derive from (seed, client index), so two runs
// with the same config submit identical request streams; what concurrency
// changes is only the per-shard interleaving across clients.
#pragma once

#include <cstdint>

#include "common/stats.h"
#include "service/service.h"
#include "workload/driver.h"

namespace skiptrie {

struct ClientSimConfig {
  uint32_t clients = 2;             // submitting threads
  uint32_t requests_per_client = 256;
  uint32_t ops_per_request = 32;    // batch size of each request
  uint32_t burst = 8;               // requests in flight per client
  uint32_t tenants = 64;            // contiguous key ranges (prefix tenants)
  double zipf_theta = 0.99;         // hot-tenant skew
  uint64_t key_space = 1ull << 20;  // must be <= engine max_key + 1
  OpMix mix = OpMix::balanced();    // per-op draw, same shape as the driver
  uint64_t seed = 42;
  uint64_t prefill = 0;             // keys inserted directly before timing
};

struct ClientSimResult {
  double seconds = 0.0;
  uint64_t requests = 0;
  uint64_t ops = 0;
  uint64_t op_counts[kOpTypeCount] = {};  // by OpType order
  uint64_t op_hits[kOpTypeCount] = {};
  StepCounters client_steps;  // submit-side counters (queueing attribution)

  double mops() const {
    return seconds > 0.0 ? static_cast<double>(ops) / seconds / 1e6 : 0.0;
  }
};

// Runs the simulator against `svc` (which must be started and not stopped).
// Client threads submit; the service's own workers execute.  The returned
// counters cover the client side only — the engine-side counters live in
// svc.worker_counters() after svc.stop().
ClientSimResult run_client_sim(Service& svc, const ClientSimConfig& cfg);

}  // namespace skiptrie
