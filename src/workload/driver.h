// Multi-threaded workload driver with step-counter aggregation.
//
// Runs a fixed operation mix from N threads against any set type exposing
// insert/erase/contains/predecessor(uint64_t), aggregates wall time,
// per-operation counts and the thread-local StepCounters deltas (the paper's
// step-complexity currency).  Also samples per-operation latency (for
// p50/p99 reporting) and attributes search steps to each operation type.
// Used by integration tests, stress tests and every benchmark binary.
#pragma once

#include <algorithm>
#include <chrono>
#include <concepts>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/spin_barrier.h"
#include "common/stats.h"
#include "workload/distributions.h"

namespace skiptrie {

struct OpMix {
  // Fractions; must sum to <= 1.0, remainder goes to contains().
  double insert = 0.0;
  double erase = 0.0;
  double predecessor = 0.0;

  static OpMix read_only() { return OpMix{0, 0, 1.0}; }
  static OpMix read_heavy() { return OpMix{0.05, 0.05, 0.60}; }
  static OpMix write_heavy() { return OpMix{0.40, 0.40, 0.10}; }
  static OpMix balanced() { return OpMix{0.25, 0.25, 0.25}; }
  // Single-op-type mixes for the batched sections: the bulk-load /
  // multi-get shapes where amortizing one descent is the whole point.
  static OpMix insert_only() { return OpMix{1.0, 0, 0}; }
  static OpMix lookup_only() { return OpMix{0, 0, 0}; }  // all contains()
};

// The four operation kinds a workload issues, in dispatch order.
enum class OpType : uint8_t { kInsert = 0, kErase, kPredecessor, kLookup };
inline constexpr size_t kOpTypeCount = 4;
const char* op_type_name(OpType t);

struct WorkloadConfig {
  uint32_t threads = 2;
  uint64_t ops_per_thread = 100000;
  OpMix mix = OpMix::balanced();
  KeyDist dist = KeyDist::kUniform;
  uint64_t key_space = 1ull << 20;
  uint64_t seed = 42;
  uint64_t prefill = 0;  // keys inserted (single-threaded) before timing
  // Distribution shape: zipf skew and clustered geometry.  Cluster centers
  // are derived from `seed` alone, so the prefill pass and every worker
  // thread draw from the same clusters (distinct streams, same hot sets).
  double zipf_theta = 0.99;
  uint32_t clusters = 64;
  uint64_t cluster_span = 1024;
  // Sample the wall-clock latency of every Nth operation per thread
  // (steady_clock around the call).  0 disables sampling.
  uint32_t latency_sample_every = 64;
  // Keys per dispatch window of the batch API (DESIGN.md §3.7).  1 = the
  // classic per-key loop.  > 1 draws (op type, key) per key exactly as the
  // per-key loop would — so every key receives the same operation at every
  // batch size — then partitions the window by op type and issues one
  // *_batch call per type present.  Cells at different batch sizes
  // therefore run the identical (key, op) multiset per window; what
  // batching necessarily changes is the *order within a window* (types
  // flush grouped, so e.g. an erase drawn before an insert of the same key
  // can execute after it) — inherent to grouping, bounded by batch_size,
  // and part of what a batched-system comparison measures.  Sets without
  // a batch API fall back to the per-key loop.  Batched latency samples
  // record each sub-batch's wall time divided by its key count (amortized
  // per-key latency).
  uint32_t batch_size = 1;
  // Hot-set drift (schema v8, DESIGN.md §8.1).  When true and dist is
  // kZipf, every worker re-salts its generator's rank→key permutation at
  // the 25/50/75% checkpoints of its own op stream, rotating which keys
  // are hot three times per run.  All workers share the per-phase salt
  // (derived from `seed` and the phase index), so they agree on the hot
  // set within a phase; the prefill pass runs at phase 0, matching the
  // first quarter.  Exercises the adaptive-height policy's demotion side:
  // keys promoted in one phase go cold in the next.  No effect on other
  // distributions or when false (the salt stays 0 = the historical map).
  bool zipf_drift = false;
};

// Per-operation-type tallies: counts, hits, attributed search steps, and the
// merged latency samples (nanoseconds, unsorted).
struct OpTypeStats {
  uint64_t ops = 0;
  uint64_t hits = 0;
  uint64_t search_steps = 0;
  std::vector<uint64_t> latency_ns;

  double search_steps_per_op() const {
    return ops ? static_cast<double>(search_steps) / static_cast<double>(ops)
               : 0.0;
  }
  double hit_rate() const {
    return ops ? static_cast<double>(hits) / static_cast<double>(ops) : 0.0;
  }
};

// Leaf-chunk checkpoint digest (schema v7, DESIGN.md §7.4).  Worker 0
// samples the structure's LeafLiveStats at 25/50/75% of its own op stream
// — cheap atomic reads, so mid-run sampling is safe — and the driver takes
// one more sample after all workers stop.  min/max range over every sample
// taken (checkpoints + final).  `samples` is 0 when the set type exposes no
// leaf stats; chunking-off runs sample but report all-zero values.
struct LeafCheckpoints {
  uint32_t samples = 0;
  uint64_t min_chunks = 0, max_chunks = 0, final_chunks = 0;
  double min_occupancy = 0.0, max_occupancy = 0.0, final_occupancy = 0.0;

  void fold(const LeafLiveStats& s, bool is_final) {
    const double occ = s.avg_occupancy();
    if (samples == 0 || s.chunks < min_chunks) min_chunks = s.chunks;
    if (samples == 0 || s.chunks > max_chunks) max_chunks = s.chunks;
    if (samples == 0 || occ < min_occupancy) min_occupancy = occ;
    if (samples == 0 || occ > max_occupancy) max_occupancy = occ;
    if (is_final) {
      final_chunks = s.chunks;
      final_occupancy = occ;
    }
    ++samples;
  }
};

// Structural checkpoint digest (schema v8, DESIGN.md §8.4).  Same sampling
// seam as LeafCheckpoints: worker 0 reads StructureLiveStats — four relaxed
// atomic loads — at 25/50/75% of its own stream, plus one final sample at
// quiescence.  min/max top-level population over every sample chart how the
// adaptive policy reshapes the structure mid-run; the final
// promotion/demotion totals are the policy's cumulative activity.  `samples`
// is 0 when the set type exposes no structure stats; adaptation-off runs
// sample but report zero promotions/demotions.
struct StructureCheckpoints {
  uint32_t samples = 0;
  uint64_t min_top = 0, max_top = 0, final_top = 0;
  uint64_t final_keys = 0;
  uint64_t final_promotions = 0, final_demotions = 0;

  void fold(const StructureLiveStats& s, bool is_final) {
    if (samples == 0 || s.top_count < min_top) min_top = s.top_count;
    if (samples == 0 || s.top_count > max_top) max_top = s.top_count;
    if (is_final) {
      final_top = s.top_count;
      final_keys = s.keys;
      final_promotions = s.promotions;
      final_demotions = s.demotions;
    }
    ++samples;
  }
};

struct WorkloadResult {
  double seconds = 0.0;
  uint64_t total_ops = 0;
  uint64_t inserts = 0, insert_hits = 0;
  uint64_t erases = 0, erase_hits = 0;
  uint64_t preds = 0, pred_hits = 0;
  uint64_t lookups = 0, lookup_hits = 0;
  StepCounters steps;
  OpTypeStats by_type[kOpTypeCount];
  LeafCheckpoints leaf;
  StructureCheckpoints structure;

  const OpTypeStats& of(OpType t) const {
    return by_type[static_cast<size_t>(t)];
  }

  double mops() const {
    return seconds > 0.0 ? total_ops / seconds / 1e6 : 0.0;
  }
  double search_steps_per_op() const {
    return total_ops ? static_cast<double>(steps.search_steps()) /
                           static_cast<double>(total_ops)
                     : 0.0;
  }
  double total_steps_per_op() const {
    return total_ops ? static_cast<double>(steps.total_steps()) /
                           static_cast<double>(total_ops)
                     : 0.0;
  }

  // Latency percentile (q in [0,1]) over the merged samples of all op types,
  // or of one type.  0 when nothing was sampled.
  double latency_percentile_ns(double q) const;
  double latency_percentile_ns(OpType t, double q) const;
  uint64_t latency_samples() const;

  std::string summary() const;
};

namespace detail {
// Percentile by nearest-rank over an unsorted sample vector (copied; the
// result object stays const-usable).
double percentile_ns(std::vector<uint64_t> samples, double q);
}  // namespace detail

// Detects the batch API of DESIGN.md §3.7 (SkipTrie and the lock-free
// skiplist baseline implement it; the locked map does not and runs batched
// configs through the per-key loop).
template <typename Set>
concept HasBatchApi = requires(Set& s, const Set& cs, const uint64_t* k,
                               size_t n, uint8_t* r,
                               std::optional<uint64_t>* p) {
  { s.insert_batch(k, n, r) } -> std::convertible_to<size_t>;
  { s.erase_batch(k, n, r) } -> std::convertible_to<size_t>;
  { cs.contains_batch(k, n, r) } -> std::convertible_to<size_t>;
  { cs.predecessor_batch(k, n, p) } -> std::convertible_to<size_t>;
};

// Detects the mid-run-safe leaf-chunk sampler (SkipTrie and ShardedEngine
// expose it; the baselines do not and skip checkpointing entirely).
template <typename Set>
concept HasLeafStats = requires(const Set& cs) {
  { cs.leaf_live_stats() } -> std::convertible_to<LeafLiveStats>;
};

// Detects the mid-run-safe structural sampler (SkipTrie and ShardedEngine
// expose it; the baselines do not and skip structure checkpointing).
template <typename Set>
concept HasStructureLive = requires(const Set& cs) {
  { cs.structure_live_stats() } -> std::convertible_to<StructureLiveStats>;
};

// Runs cfg against `set`.  Set must provide bool insert(uint64_t),
// bool erase(uint64_t), bool contains(uint64_t) const and
// std::optional<uint64_t> predecessor(uint64_t) const; the batch API is
// used when cfg.batch_size > 1 and the set provides it.
template <typename Set>
WorkloadResult run_workload(Set& set, const WorkloadConfig& cfg) {
  // Cluster centers must agree across the prefill stream and every worker
  // stream, so all generators share cfg.seed as the cluster seed.
  const uint64_t cluster_seed =
      cfg.seed != 0 ? cfg.seed : 0x9e3779b97f4a7c15ull;  // 0 = "per-stream"

  // Prefill from the *configured* distribution (a deterministic stream
  // distinct from every worker's): a zipf or clustered read phase must find
  // the keys its queries concentrate on, otherwise it measures misses.
  if (cfg.prefill > 0) {
    KeyGenerator gen(cfg.dist, cfg.key_space, cfg.seed ^ 0x9e3779b9,
                     cfg.zipf_theta, cfg.clusters, cfg.cluster_span,
                     cluster_seed);
    for (uint64_t i = 0; i < cfg.prefill; ++i) set.insert(gen.next());
  }

  WorkloadResult result;
  std::mutex agg_mu;
  // Mid-run checkpoints (schema v7/v8): written by worker 0 only, read by
  // the main thread after join — no locking needed.
  std::vector<LeafLiveStats> leaf_samples;
  std::vector<StructureLiveStats> structure_samples;
  SpinBarrier barrier(cfg.threads + 1);
  std::vector<std::thread> threads;
  threads.reserve(cfg.threads);

  // The measured interval is [first worker's first op, last worker's last
  // op], taken from per-worker clocks.  The main thread cannot timestamp
  // the window itself: on an oversubscribed machine the workers can run the
  // whole op phase between the main thread's release from the start barrier
  // and its next time-stamping instruction, collapsing the measured window
  // to ~0.
  using Clock = std::chrono::steady_clock;
  Clock::time_point first_start = Clock::time_point::max();
  Clock::time_point last_end = Clock::time_point::min();

  for (uint32_t t = 0; t < cfg.threads; ++t) {
    threads.emplace_back([&, t] {
      KeyGenerator gen(cfg.dist, cfg.key_space, cfg.seed + 0x1234 * (t + 1),
                       cfg.zipf_theta, cfg.clusters, cfg.cluster_span,
                       cluster_seed);
      Xoshiro256 op_rng(cfg.seed ^ (0xabcdull * (t + 1)));
      WorkloadResult local;
      StepCounters& tls = tls_counters();
      const uint32_t sample_every = cfg.latency_sample_every;
      bool use_batch = false;
      std::vector<uint64_t> kbuf[kOpTypeCount];
      if constexpr (HasBatchApi<Set>) {
        use_batch = cfg.batch_size > 1;
        if (use_batch) {
          for (auto& b : kbuf) b.reserve(cfg.batch_size);
        }
      }
      const auto draw_type = [&cfg, &op_rng]() {
        const double r = op_rng.next_double();
        if (r < cfg.mix.insert) return OpType::kInsert;
        if (r < cfg.mix.insert + cfg.mix.erase) return OpType::kErase;
        if (r < cfg.mix.insert + cfg.mix.erase + cfg.mix.predecessor) {
          return OpType::kPredecessor;
        }
        return OpType::kLookup;
      };
      // 25/50/75% checkpoints over each worker's own op stream.  Worker 0
      // samples the mid-run-safe stats there (a few relaxed atomic loads,
      // cheap enough inside the timed phase); with zipf drift on, EVERY
      // worker re-salts its generator at the same stream offsets, so the
      // hot set rotates coherently across threads (same per-phase salt,
      // reached at the same per-worker op index).
      const bool drift = cfg.zipf_drift && cfg.dist == KeyDist::kZipf;
      const uint64_t cp_at[3] = {
          cfg.ops_per_thread / 4, cfg.ops_per_thread / 2,
          cfg.ops_per_thread / 4 * 3};
      uint32_t next_cp = 0;
      barrier.arrive_and_wait();  // start together
      const Clock::time_point my_start = Clock::now();
      const StepCounters before = tls;
      for (uint64_t i = 0; i < cfg.ops_per_thread;) {
        while (next_cp < 3 && i >= cp_at[next_cp]) {
          if (t == 0) {
            if constexpr (HasLeafStats<Set>) {
              leaf_samples.push_back(set.leaf_live_stats());
            }
            if constexpr (HasStructureLive<Set>) {
              structure_samples.push_back(set.structure_live_stats());
            }
          }
          ++next_cp;
          // Phase salts 1..3 are shared by construction: every worker
          // derives them from (cfg.seed, phase index) alone.
          if (drift) gen.set_phase(mix64(cfg.seed ^ (0xd41f0000ull + next_cp)));
        }
        if constexpr (HasBatchApi<Set>) {
          if (use_batch) {
            // Draw (op, key) per key exactly as the per-key loop below
            // would (same streams, same draw cadence), then partition the
            // window by op type and flush one batch call per type: the
            // cell runs the identical (key, op) multiset per window at
            // every batch size; only the grouping — and the intra-window
            // ordering grouping implies — differs (see batch_size above).
            const uint64_t n =
                std::min<uint64_t>(cfg.batch_size, cfg.ops_per_thread - i);
            for (auto& b : kbuf) b.clear();
            for (uint64_t j = 0; j < n; ++j) {
              kbuf[static_cast<size_t>(draw_type())].push_back(gen.next());
            }
            const bool sampled = sample_every != 0 && (i % sample_every) < n;
            for (size_t k = 0; k < kOpTypeCount; ++k) {
              const std::vector<uint64_t>& b = kbuf[k];
              if (b.empty()) continue;
              OpTypeStats& ts = local.by_type[k];
              const uint64_t steps0 = tls.search_steps();
              std::chrono::steady_clock::time_point bt0;
              if (sampled) bt0 = std::chrono::steady_clock::now();
              size_t hits = 0;
              switch (static_cast<OpType>(k)) {
                case OpType::kInsert:
                  hits = set.insert_batch(b.data(), b.size());
                  break;
                case OpType::kErase:
                  hits = set.erase_batch(b.data(), b.size());
                  break;
                case OpType::kPredecessor:
                  hits = set.predecessor_batch(b.data(), b.size());
                  break;
                case OpType::kLookup:
                  hits = set.contains_batch(b.data(), b.size());
                  break;
              }
              if (sampled) {
                const auto bt1 = std::chrono::steady_clock::now();
                ts.latency_ns.push_back(static_cast<uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        bt1 - bt0)
                        .count() /
                    b.size()));
              }
              ts.ops += b.size();
              ts.hits += hits;
              ts.search_steps += tls.search_steps() - steps0;
            }
            i += n;
            continue;
          }
        }
        const OpType ot = draw_type();
        OpTypeStats& ts = local.by_type[static_cast<size_t>(ot)];
        const uint64_t key = gen.next();
        const bool sampled = sample_every != 0 && i % sample_every == 0;
        const uint64_t steps0 = tls.search_steps();
        std::chrono::steady_clock::time_point op_t0;
        if (sampled) op_t0 = std::chrono::steady_clock::now();
        bool hit = false;
        switch (ot) {
          case OpType::kInsert: hit = set.insert(key); break;
          case OpType::kErase: hit = set.erase(key); break;
          case OpType::kPredecessor:
            hit = set.predecessor(key).has_value();
            break;
          case OpType::kLookup: hit = set.contains(key); break;
        }
        if (sampled) {
          const auto op_t1 = std::chrono::steady_clock::now();
          ts.latency_ns.push_back(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(op_t1 -
                                                                   op_t0)
                  .count()));
        }
        ts.ops++;
        ts.hits += hit ? 1 : 0;
        ts.search_steps += tls.search_steps() - steps0;
        ++i;
      }
      local.steps = tls - before;
      const Clock::time_point my_end = Clock::now();
      barrier.arrive_and_wait();  // stop together
      std::lock_guard<std::mutex> lk(agg_mu);
      if (my_start < first_start) first_start = my_start;
      if (my_end > last_end) last_end = my_end;
      for (size_t k = 0; k < kOpTypeCount; ++k) {
        OpTypeStats& dst = result.by_type[k];
        OpTypeStats& src = local.by_type[k];
        dst.ops += src.ops;
        dst.hits += src.hits;
        dst.search_steps += src.search_steps;
        dst.latency_ns.insert(dst.latency_ns.end(), src.latency_ns.begin(),
                              src.latency_ns.end());
      }
      result.steps += local.steps;
    });
  }

  barrier.arrive_and_wait();  // release the workers
  barrier.arrive_and_wait();  // wait for the op phase to finish
  for (auto& th : threads) th.join();

  if constexpr (HasLeafStats<Set>) {
    for (const LeafLiveStats& s : leaf_samples) result.leaf.fold(s, false);
    result.leaf.fold(set.leaf_live_stats(), true);
  }
  if constexpr (HasStructureLive<Set>) {
    for (const StructureLiveStats& s : structure_samples) {
      result.structure.fold(s, false);
    }
    result.structure.fold(set.structure_live_stats(), true);
  }
  result.seconds =
      cfg.threads > 0 && last_end > first_start
          ? std::chrono::duration<double>(last_end - first_start).count()
          : 0.0;
  result.total_ops =
      static_cast<uint64_t>(cfg.threads) * cfg.ops_per_thread;
  result.inserts = result.of(OpType::kInsert).ops;
  result.insert_hits = result.of(OpType::kInsert).hits;
  result.erases = result.of(OpType::kErase).ops;
  result.erase_hits = result.of(OpType::kErase).hits;
  result.preds = result.of(OpType::kPredecessor).ops;
  result.pred_hits = result.of(OpType::kPredecessor).hits;
  result.lookups = result.of(OpType::kLookup).ops;
  result.lookup_hits = result.of(OpType::kLookup).hits;
  return result;
}

}  // namespace skiptrie
