// Multi-threaded workload driver with step-counter aggregation.
//
// Runs a fixed operation mix from N threads against any set type exposing
// insert/erase/contains/predecessor(uint64_t), aggregates wall time,
// per-operation counts and the thread-local StepCounters deltas (the paper's
// step-complexity currency).  Used by integration tests, stress tests and
// every benchmark binary.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/spin_barrier.h"
#include "common/stats.h"
#include "workload/distributions.h"

namespace skiptrie {

struct OpMix {
  // Fractions; must sum to <= 1.0, remainder goes to contains().
  double insert = 0.0;
  double erase = 0.0;
  double predecessor = 0.0;

  static OpMix read_only() { return OpMix{0, 0, 1.0}; }
  static OpMix read_heavy() { return OpMix{0.05, 0.05, 0.60}; }
  static OpMix write_heavy() { return OpMix{0.40, 0.40, 0.10}; }
  static OpMix balanced() { return OpMix{0.25, 0.25, 0.25}; }
};

struct WorkloadConfig {
  uint32_t threads = 2;
  uint64_t ops_per_thread = 100000;
  OpMix mix = OpMix::balanced();
  KeyDist dist = KeyDist::kUniform;
  uint64_t key_space = 1ull << 20;
  uint64_t seed = 42;
  uint64_t prefill = 0;  // keys inserted (single-threaded) before timing
};

struct WorkloadResult {
  double seconds = 0.0;
  uint64_t total_ops = 0;
  uint64_t inserts = 0, insert_hits = 0;
  uint64_t erases = 0, erase_hits = 0;
  uint64_t preds = 0, pred_hits = 0;
  uint64_t lookups = 0, lookup_hits = 0;
  StepCounters steps;

  double mops() const { return total_ops / seconds / 1e6; }
  double search_steps_per_op() const {
    return total_ops ? static_cast<double>(steps.search_steps()) /
                           static_cast<double>(total_ops)
                     : 0.0;
  }
  double total_steps_per_op() const {
    return total_ops ? static_cast<double>(steps.total_steps()) /
                           static_cast<double>(total_ops)
                     : 0.0;
  }
  std::string summary() const;
};

// Runs cfg against `set`.  Set must provide bool insert(uint64_t),
// bool erase(uint64_t), bool contains(uint64_t) const and
// std::optional<uint64_t> predecessor(uint64_t) const.
template <typename Set>
WorkloadResult run_workload(Set& set, const WorkloadConfig& cfg) {
  // Prefill from a deterministic uniform stream.
  if (cfg.prefill > 0) {
    KeyGenerator gen(KeyDist::kUniform, cfg.key_space, cfg.seed ^ 0x9e3779b9,
                     0.99);
    for (uint64_t i = 0; i < cfg.prefill; ++i) set.insert(gen.next());
  }

  WorkloadResult result;
  std::mutex agg_mu;
  SpinBarrier barrier(cfg.threads + 1);
  std::vector<std::thread> threads;
  threads.reserve(cfg.threads);

  for (uint32_t t = 0; t < cfg.threads; ++t) {
    threads.emplace_back([&, t] {
      KeyGenerator gen(cfg.dist, cfg.key_space, cfg.seed + 0x1234 * (t + 1));
      Xoshiro256 op_rng(cfg.seed ^ (0xabcdull * (t + 1)));
      WorkloadResult local;
      barrier.arrive_and_wait();  // start together
      const StepCounters before = snapshot_counters();
      for (uint64_t i = 0; i < cfg.ops_per_thread; ++i) {
        const double r = op_rng.next_double();
        const uint64_t key = gen.next();
        if (r < cfg.mix.insert) {
          local.inserts++;
          local.insert_hits += set.insert(key) ? 1 : 0;
        } else if (r < cfg.mix.insert + cfg.mix.erase) {
          local.erases++;
          local.erase_hits += set.erase(key) ? 1 : 0;
        } else if (r < cfg.mix.insert + cfg.mix.erase + cfg.mix.predecessor) {
          local.preds++;
          local.pred_hits += set.predecessor(key).has_value() ? 1 : 0;
        } else {
          local.lookups++;
          local.lookup_hits += set.contains(key) ? 1 : 0;
        }
      }
      local.steps = snapshot_counters() - before;
      barrier.arrive_and_wait();  // stop together
      std::lock_guard<std::mutex> lk(agg_mu);
      result.inserts += local.inserts;
      result.insert_hits += local.insert_hits;
      result.erases += local.erases;
      result.erase_hits += local.erase_hits;
      result.preds += local.preds;
      result.pred_hits += local.pred_hits;
      result.lookups += local.lookups;
      result.lookup_hits += local.lookup_hits;
      result.steps += local.steps;
    });
  }

  barrier.arrive_and_wait();
  const auto t0 = std::chrono::steady_clock::now();
  barrier.arrive_and_wait();
  const auto t1 = std::chrono::steady_clock::now();
  for (auto& th : threads) th.join();

  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.total_ops =
      static_cast<uint64_t>(cfg.threads) * cfg.ops_per_thread;
  return result;
}

}  // namespace skiptrie
