#include "workload/driver.h"

#include <sstream>

namespace skiptrie {

std::string WorkloadResult::summary() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << total_ops << " ops in " << seconds << "s = " << mops() << " Mops/s"
     << "; search steps/op " << search_steps_per_op()
     << "; total steps/op " << total_steps_per_op()
     << "; hops " << steps.node_hops << " probes " << steps.hash_probes
     << " back " << steps.back_steps << " prev " << steps.prev_steps
     << " restarts " << steps.restarts;
  return os.str();
}

}  // namespace skiptrie
