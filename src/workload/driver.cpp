#include "workload/driver.h"

#include <algorithm>
#include <sstream>

namespace skiptrie {

const char* op_type_name(OpType t) {
  switch (t) {
    case OpType::kInsert: return "insert";
    case OpType::kErase: return "erase";
    case OpType::kPredecessor: return "predecessor";
    case OpType::kLookup: return "lookup";
  }
  return "?";
}

namespace detail {

double percentile_ns(std::vector<uint64_t> samples, double q) {
  if (samples.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(samples.size()));
  if (idx >= samples.size()) idx = samples.size() - 1;
  std::nth_element(samples.begin(), samples.begin() + idx, samples.end());
  return static_cast<double>(samples[idx]);
}

}  // namespace detail

double WorkloadResult::latency_percentile_ns(double q) const {
  std::vector<uint64_t> all;
  all.reserve(latency_samples());
  for (const OpTypeStats& ts : by_type) {
    all.insert(all.end(), ts.latency_ns.begin(), ts.latency_ns.end());
  }
  return detail::percentile_ns(std::move(all), q);
}

double WorkloadResult::latency_percentile_ns(OpType t, double q) const {
  return detail::percentile_ns(of(t).latency_ns, q);
}

uint64_t WorkloadResult::latency_samples() const {
  uint64_t n = 0;
  for (const OpTypeStats& ts : by_type) n += ts.latency_ns.size();
  return n;
}

std::string WorkloadResult::summary() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << total_ops << " ops in " << seconds << "s = " << mops() << " Mops/s"
     << "; search steps/op " << search_steps_per_op()
     << "; total steps/op " << total_steps_per_op();
  if (latency_samples() > 0) {
    os.precision(0);
    os << "; p50 " << latency_percentile_ns(0.50) << "ns p99 "
       << latency_percentile_ns(0.99) << "ns";
    os.precision(2);
  }
  os << "; hops " << steps.node_hops << " (top " << steps.hops_top
     << " descent " << steps.hops_descent << ")"
     << " probes " << steps.hash_probes
     << " (lookups " << steps.probes_lookup << " chain " << steps.probes_chain
     << " binsearch " << steps.probes_binsearch << ")"
     << " back " << steps.back_steps << " prev " << steps.prev_steps
     << " restarts " << steps.restarts << " walk_fb " << steps.walk_fallbacks;
  const uint64_t fingered = steps.finger_hits + steps.finger_misses;
  if (fingered > 0) {
    os << "; finger " << steps.finger_hits << "/" << fingered << " hits ("
       << 100.0 * static_cast<double>(steps.finger_hits) /
              static_cast<double>(fingered)
       << "%) saved-levels " << steps.hops_finger_saved;
  }
  if (steps.batch_ops > 0) {
    const uint64_t warm = steps.cursor_reuses + steps.cursor_redescends;
    os << "; batch " << steps.batch_keys << " keys/" << steps.batch_ops
       << " calls, cursor " << steps.cursor_reuses << "/" << warm
       << " reuses";
    if (warm > 0) {
      os << " (" << 100.0 * static_cast<double>(steps.cursor_reuses) /
                       static_cast<double>(warm)
         << "%)";
    }
  }
  return os.str();
}

}  // namespace skiptrie
