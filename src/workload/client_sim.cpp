#include "workload/client_sim.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/spin_barrier.h"
#include "workload/distributions.h"

namespace skiptrie {

namespace {

// Scatter tenant ranks so the zipf head doesn't pile every hot tenant into
// the lowest key prefixes (= one shard).  Fibonacci-hash scramble, bijective
// on [0, tenants) after the mod only when tenants divides 2^64 — tenants is
// arbitrary here, so collisions are possible but harmless: this shapes load,
// it doesn't define correctness.
uint32_t scatter_rank(uint64_t rank, uint32_t tenants) {
  return static_cast<uint32_t>((rank * 0x9e3779b97f4a7c15ull) % tenants);
}

ServiceOp draw_op(const OpMix& mix, Xoshiro256& rng) {
  const double r = rng.next_double();
  if (r < mix.insert) return ServiceOp::kInsert;
  if (r < mix.insert + mix.erase) return ServiceOp::kErase;
  if (r < mix.insert + mix.erase + mix.predecessor) {
    return ServiceOp::kPredecessor;
  }
  return ServiceOp::kContains;
}

OpType op_type_of(ServiceOp op) {
  switch (op) {
    case ServiceOp::kInsert: return OpType::kInsert;
    case ServiceOp::kErase: return OpType::kErase;
    case ServiceOp::kPredecessor: return OpType::kPredecessor;
    case ServiceOp::kContains: return OpType::kLookup;
  }
  return OpType::kLookup;
}

}  // namespace

ClientSimResult run_client_sim(Service& svc, const ClientSimConfig& cfg) {
  const uint64_t tenants = std::max<uint32_t>(cfg.tenants, 1);
  const uint64_t span = std::max<uint64_t>(cfg.key_space / tenants, 1);

  // Prefill draws from the same tenant-skewed distribution as the timed
  // phase (a uniform prefill would make hot-tenant reads measure misses),
  // directly through the engine — no queueing.
  if (cfg.prefill > 0) {
    KeyGenerator tgen(KeyDist::kZipf, tenants, cfg.seed ^ 0x9e3779b9,
                      cfg.zipf_theta);
    Xoshiro256 kr(cfg.seed ^ 0x51ab5eedull);
    for (uint64_t i = 0; i < cfg.prefill; ++i) {
      const uint32_t tenant =
          scatter_rank(tgen.next(), static_cast<uint32_t>(tenants));
      svc.engine().insert(tenant * span + kr.next_below(span));
    }
  }

  ClientSimResult result;
  std::mutex agg_mu;
  SpinBarrier barrier(cfg.clients + 1);
  using Clock = std::chrono::steady_clock;
  Clock::time_point first_start = Clock::time_point::max();
  Clock::time_point last_end = Clock::time_point::min();

  std::vector<std::thread> clients;
  clients.reserve(cfg.clients);
  for (uint32_t t = 0; t < cfg.clients; ++t) {
    clients.emplace_back([&, t] {
      // Per-client streams: tenant skew, intra-tenant keys, op mix.
      KeyGenerator tgen(KeyDist::kZipf, tenants,
                        cfg.seed + 0x7717 * (t + 1), cfg.zipf_theta);
      Xoshiro256 kr(cfg.seed ^ (0xc11e27ull * (t + 1)));
      Xoshiro256 opr(cfg.seed ^ (0xabcdull * (t + 1)));
      ClientSimResult local;
      StepCounters& tls = tls_counters();

      const uint32_t burst = std::max<uint32_t>(cfg.burst, 1);
      std::vector<std::future<ServiceResult>> inflight;
      std::vector<std::vector<ServiceOp>> inflight_ops;
      inflight.reserve(burst);
      inflight_ops.reserve(burst);

      const auto drain = [&] {
        for (size_t r = 0; r < inflight.size(); ++r) {
          const ServiceResult sr = inflight[r].get();
          for (size_t j = 0; j < sr.results.size(); ++j) {
            const size_t k = static_cast<size_t>(op_type_of(inflight_ops[r][j]));
            local.op_counts[k]++;
            local.op_hits[k] += sr.results[j].ok ? 1 : 0;
          }
          local.ops += sr.results.size();
          local.requests++;
        }
        inflight.clear();
        inflight_ops.clear();
      };

      barrier.arrive_and_wait();
      const Clock::time_point my_start = Clock::now();
      const StepCounters before = tls;
      for (uint32_t r = 0; r < cfg.requests_per_client; ++r) {
        const uint32_t tenant =
            scatter_rank(tgen.next(), static_cast<uint32_t>(tenants));
        std::vector<ServiceOpItem> ops;
        std::vector<ServiceOp> kinds;
        ops.reserve(cfg.ops_per_request);
        kinds.reserve(cfg.ops_per_request);
        for (uint32_t j = 0; j < cfg.ops_per_request; ++j) {
          const ServiceOp op = draw_op(cfg.mix, opr);
          ops.push_back({op, tenant * span + kr.next_below(span)});
          kinds.push_back(op);
        }
        inflight.push_back(svc.submit(std::move(ops)));
        inflight_ops.push_back(std::move(kinds));
        if (inflight.size() >= burst) drain();
      }
      drain();
      local.client_steps = tls - before;
      const Clock::time_point my_end = Clock::now();
      barrier.arrive_and_wait();

      std::lock_guard<std::mutex> lk(agg_mu);
      if (my_start < first_start) first_start = my_start;
      if (my_end > last_end) last_end = my_end;
      result.requests += local.requests;
      result.ops += local.ops;
      for (size_t k = 0; k < kOpTypeCount; ++k) {
        result.op_counts[k] += local.op_counts[k];
        result.op_hits[k] += local.op_hits[k];
      }
      result.client_steps += local.client_steps;
    });
  }

  barrier.arrive_and_wait();  // start together
  barrier.arrive_and_wait();  // all clients done submitting and draining
  for (auto& th : clients) th.join();

  result.seconds = last_end > first_start
                       ? std::chrono::duration<double>(last_end - first_start)
                             .count()
                       : 0.0;
  return result;
}

}  // namespace skiptrie
