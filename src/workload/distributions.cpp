#include "workload/distributions.h"

#include <cassert>
#include <cmath>

namespace skiptrie {

const char* key_dist_name(KeyDist d) {
  switch (d) {
    case KeyDist::kUniform: return "uniform";
    case KeyDist::kZipf: return "zipf";
    case KeyDist::kClustered: return "clustered";
    case KeyDist::kSequential: return "sequential";
  }
  return "?";
}

KeyGenerator::KeyGenerator(KeyDist dist, uint64_t space, uint64_t seed,
                           double theta, uint32_t clusters,
                           uint64_t cluster_span, uint64_t cluster_seed)
    : dist_(dist),
      space_(space),
      rng_(seed),
      theta_(theta),
      cluster_span_(cluster_span < space ? cluster_span : space) {
  assert(space_ > 0);
  if (cluster_span_ == 0) cluster_span_ = 1;
  if (dist_ == KeyDist::kZipf) {
    // Gray et al. ("Quickly generating billion-record synthetic databases")
    // incremental zipf over a capped rank universe; ranks are then scattered
    // over the key space with a mix to avoid clustering at small keys.
    zipf_n_ = space_ < (1ull << 20) ? space_ : (1ull << 20);
    zetan_ = 0.0;
    for (uint64_t i = 1; i <= zipf_n_; ++i) {
      zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
    }
    alpha_ = 1.0 / (1.0 - theta_);
    const double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(zipf_n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }
  if (dist_ == KeyDist::kClustered) {
    Xoshiro256 center_rng(cluster_seed != 0 ? cluster_seed : seed);
    centers_.reserve(clusters);
    for (uint32_t i = 0; i < clusters; ++i) {
      centers_.push_back(center_rng.next_below(space_));
    }
  }
}

uint64_t KeyGenerator::next_zipf() {
  const double u = rng_.next_double();
  const double uz = u * zetan_;
  uint64_t rank;
  if (uz < 1.0) {
    rank = 1;
  } else if (uz < 1.0 + std::pow(0.5, theta_)) {
    rank = 2;
  } else {
    rank = 1 + static_cast<uint64_t>(
                   static_cast<double>(zipf_n_) *
                   std::pow(eta_ * u - eta_ + 1.0, alpha_));
    if (rank > zipf_n_) rank = zipf_n_;
  }
  // Scatter ranks over the key space deterministically.  The phase salt
  // (set_phase) re-permutes the rank→key map per drift phase; 0 leaves the
  // historical mapping untouched.
  return mix64(rank ^ phase_salt_) % space_;
}

uint64_t KeyGenerator::next() {
  switch (dist_) {
    case KeyDist::kUniform:
      return rng_.next_below(space_);
    case KeyDist::kZipf:
      return next_zipf();
    case KeyDist::kClustered: {
      // c < space_ and off < cluster_span_ <= space_, so the sum wraps at
      // most once; branch on the wrap instead of computing c + off, which
      // can overflow uint64 for centers near UINT64_MAX.
      const uint64_t c = centers_[rng_.next_below(centers_.size())];
      const uint64_t off = rng_.next_below(cluster_span_);
      return off >= space_ - c ? off - (space_ - c) : c + off;
    }
    case KeyDist::kSequential: {
      const uint64_t k = seq_++;
      return k % space_;
    }
  }
  return 0;
}

}  // namespace skiptrie
