// Key distributions for workloads and benchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace skiptrie {

enum class KeyDist : uint8_t {
  kUniform,     // uniform over [0, space)
  kZipf,        // skewed: rank-frequency ~ 1/rank^theta over shuffled ranks
  kClustered,   // dense runs around random cluster centers
  kSequential,  // monotonically increasing (stride 1, wrap-around)
};

const char* key_dist_name(KeyDist d);

class KeyGenerator {
 public:
  // space: keys are drawn from [0, space).  theta: zipf skew (0.99 typical).
  // clusters/cluster_span shape the clustered distribution.  cluster_seed
  // selects the cluster centers independently of the per-stream seed: two
  // generators with the same cluster_seed draw from the same clusters even
  // when their streams differ (a prefill pass and the timed threads must
  // agree on where the clusters are, or clustered read workloads measure
  // misses).  0 means "derive from seed" (each stream gets its own centers).
  KeyGenerator(KeyDist dist, uint64_t space, uint64_t seed,
               double theta = 0.99, uint32_t clusters = 64,
               uint64_t cluster_span = 1024, uint64_t cluster_seed = 0);

  uint64_t next();

  uint64_t space() const { return space_; }

  // Hot-set drift (schema v8).  The zipf generator scatters ranks over the
  // key space through a fixed mix; the phase salt enters that mix, so
  // changing it re-permutes which keys the low (hot) ranks land on while
  // keeping the rank-frequency law itself intact.  Salt 0 reproduces the
  // un-drifted stream bit-for-bit.  Every generator sharing a salt maps
  // ranks to the same keys, so workers and the prefill pass agree on the
  // hot set within a phase.  No effect on non-zipf distributions.
  void set_phase(uint64_t salt) { phase_salt_ = salt; }
  uint64_t phase() const { return phase_salt_; }

 private:
  uint64_t next_zipf();

  KeyDist dist_;
  uint64_t space_;
  Xoshiro256 rng_;
  // zipf state (Gray et al. quick approximation)
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  uint64_t zipf_n_;
  uint64_t phase_salt_ = 0;
  // clustered state
  std::vector<uint64_t> centers_;
  uint64_t cluster_span_;
  // sequential state
  uint64_t seq_ = 0;
};

}  // namespace skiptrie
