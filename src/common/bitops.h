// Bit and prefix arithmetic for the x-fast trie.
//
// Keys are B-bit integers (`B = Config::universe_bits`, 4..64) stored in the
// low B bits of a uint64_t.  Bit index i (0-based) counts from the most
// significant of the B bits, so bit 0 is the root branching decision of the
// prefix tree.  A prefix of length L is the top L bits of the key; it is
// encoded into a single uint64_t with a leading 1 ("1-prefixed" encoding) so
// that (bits, length) pairs of every length 0..63 map to distinct integers:
//
//   encode(key, L, B) = (1 << L) | (key >> (B - L))
//
// Trie prefixes always have L <= B-1 <= 63, so the encoding never overflows.
#pragma once

#include <cassert>
#include <cstdint>

namespace skiptrie {

// ceil(log2(v)) for v >= 1.  ceil_log2(1) == 0.
inline constexpr uint32_t ceil_log2(uint64_t v) {
  uint32_t r = 0;
  uint64_t p = 1;
  while (p < v) {
    p <<= 1;
    ++r;
  }
  return r;
}

// The i-th bit of `key` counting from the MSB of a B-bit universe.
inline uint64_t key_bit(uint64_t key, uint32_t i, uint32_t bits) {
  assert(i < bits);
  return (key >> (bits - 1 - i)) & 1ull;
}

// Encode the length-`len` prefix of `key` (see file comment).
inline uint64_t encode_prefix(uint64_t key, uint32_t len, uint32_t bits) {
  assert(len <= 63 && len < bits);
  if (len == 0) return 1ull;  // the root prefix (epsilon)
  return (1ull << len) | (key >> (bits - len));
}

// True iff the length-`len` prefix of `key` equals the prefix encoded by
// `encoded` (which must have been produced by encode_prefix with length len).
inline bool prefix_matches(uint64_t encoded, uint64_t key, uint32_t len,
                           uint32_t bits) {
  return encode_prefix(key, len, bits) == encoded;
}

// Length of the longest common prefix of x and y within a B-bit universe.
inline uint32_t lcp_length(uint64_t x, uint64_t y, uint32_t bits) {
  uint64_t diff = x ^ y;
  if (bits < 64) diff &= (1ull << bits) - 1;
  if (diff == 0) return bits;
  uint32_t highest = 63u - static_cast<uint32_t>(__builtin_clzll(diff));
  return bits - 1 - highest;
}

// Unsigned absolute difference, used by LowestAncestor's "best candidate"
// rule (paper Alg. 3 line 12).
inline uint64_t abs_diff(uint64_t a, uint64_t b) { return a > b ? a - b : b - a; }

// Mask of the low `bits` bits (bits == 64 -> all ones).
inline constexpr uint64_t universe_mask(uint32_t bits) {
  return bits >= 64 ? ~0ull : ((1ull << bits) - 1);
}

}  // namespace skiptrie
