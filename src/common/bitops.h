// Bit and prefix arithmetic for the x-fast trie.
//
// Keys are B-bit integers (`B = Config::universe_bits`, 4..W where W is the
// key-traits universe width, 64 or 128) stored in the low B bits of an ikey
// word.  Bit index i (0-based) counts from the most significant of the B
// bits, so bit 0 is the root branching decision of the prefix tree.  A
// prefix of length L is the top L bits of the key; it is encoded into a
// single ikey with a leading 1 ("1-prefixed" encoding) so that
// (bits, length) pairs of every length 0..W-1 map to distinct integers:
//
//   encode(key, L, B) = (1 << L) | (key >> (B - L))
//
// Trie prefixes always have L <= B-1 <= W-1, so the encoding never
// overflows the ikey word.
//
// The uint64_t functions are the seed fast path and are kept byte-for-byte
// as they were; the `ikey_*` function templates generalize the same
// arithmetic to any unsigned ikey word (uint64_t, unsigned __int128, or the
// portable Uint128 fallback below) for KeyTraits instantiations at W > 64.
#pragma once

#include <cassert>
#include <cstdint>

namespace skiptrie {

// ceil(log2(v)) for v >= 1.  ceil_log2(1) == 0.
inline constexpr uint32_t ceil_log2(uint64_t v) {
  uint32_t r = 0;
  uint64_t p = 1;
  while (p < v) {
    p <<= 1;
    ++r;
  }
  return r;
}

// The i-th bit of `key` counting from the MSB of a B-bit universe.
inline uint64_t key_bit(uint64_t key, uint32_t i, uint32_t bits) {
  assert(i < bits);
  return (key >> (bits - 1 - i)) & 1ull;
}

// Encode the length-`len` prefix of `key` (see file comment).
inline uint64_t encode_prefix(uint64_t key, uint32_t len, uint32_t bits) {
  assert(len <= 63 && len < bits);
  if (len == 0) return 1ull;  // the root prefix (epsilon)
  return (1ull << len) | (key >> (bits - len));
}

// True iff the length-`len` prefix of `key` equals the prefix encoded by
// `encoded` (which must have been produced by encode_prefix with length len).
inline bool prefix_matches(uint64_t encoded, uint64_t key, uint32_t len,
                           uint32_t bits) {
  return encode_prefix(key, len, bits) == encoded;
}

// Length of the longest common prefix of x and y within a B-bit universe.
inline uint32_t lcp_length(uint64_t x, uint64_t y, uint32_t bits) {
  uint64_t diff = x ^ y;
  if (bits < 64) diff &= (1ull << bits) - 1;
  if (diff == 0) return bits;
  uint32_t highest = 63u - static_cast<uint32_t>(__builtin_clzll(diff));
  return bits - 1 - highest;
}

// Unsigned absolute difference, used by LowestAncestor's "best candidate"
// rule (paper Alg. 3 line 12).
inline uint64_t abs_diff(uint64_t a, uint64_t b) { return a > b ? a - b : b - a; }

// Mask of the low `bits` bits (bits == 64 -> all ones).
inline constexpr uint64_t universe_mask(uint32_t bits) {
  return bits >= 64 ? ~0ull : ((1ull << bits) - 1);
}

// ---------------------------------------------------------------------------
// 128-bit ikey support (DESIGN.md §6).
//
// `u128` is the 128-bit ikey word: `unsigned __int128` where the compiler
// provides it, else the portable `Uint128` struct below.  Uint128 is always
// compiled (and unit-tested) so the fallback cannot rot on __int128 hosts.
// ---------------------------------------------------------------------------

// Portable 128-bit unsigned integer: exactly the operator set the engine
// needs on an ikey word (compare, add/sub, shift, bitwise, one division in
// DescentCursor::top_entry_usable).  Shift counts must be < 128.
struct Uint128 {
  uint64_t hi = 0;
  uint64_t lo = 0;

  constexpr Uint128() = default;
  constexpr Uint128(uint64_t v) : hi(0), lo(v) {}  // NOLINT: int-literal lift
  constexpr Uint128(uint64_t h, uint64_t l) : hi(h), lo(l) {}

  explicit constexpr operator uint64_t() const { return lo; }
  explicit constexpr operator uint32_t() const {
    return static_cast<uint32_t>(lo);
  }
  explicit constexpr operator bool() const { return (hi | lo) != 0; }

  friend constexpr bool operator==(Uint128 a, Uint128 b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend constexpr bool operator!=(Uint128 a, Uint128 b) { return !(a == b); }
  friend constexpr bool operator<(Uint128 a, Uint128 b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
  friend constexpr bool operator>(Uint128 a, Uint128 b) { return b < a; }
  friend constexpr bool operator<=(Uint128 a, Uint128 b) { return !(b < a); }
  friend constexpr bool operator>=(Uint128 a, Uint128 b) { return !(a < b); }

  friend constexpr Uint128 operator~(Uint128 a) { return {~a.hi, ~a.lo}; }
  friend constexpr Uint128 operator&(Uint128 a, Uint128 b) {
    return {a.hi & b.hi, a.lo & b.lo};
  }
  friend constexpr Uint128 operator|(Uint128 a, Uint128 b) {
    return {a.hi | b.hi, a.lo | b.lo};
  }
  friend constexpr Uint128 operator^(Uint128 a, Uint128 b) {
    return {a.hi ^ b.hi, a.lo ^ b.lo};
  }

  friend constexpr Uint128 operator+(Uint128 a, Uint128 b) {
    const uint64_t lo = a.lo + b.lo;
    return {a.hi + b.hi + (lo < a.lo ? 1u : 0u), lo};
  }
  friend constexpr Uint128 operator-(Uint128 a, Uint128 b) {
    return {a.hi - b.hi - (a.lo < b.lo ? 1u : 0u), a.lo - b.lo};
  }

  friend constexpr Uint128 operator<<(Uint128 a, uint32_t n) {
    if (n == 0) return a;
    if (n >= 64) return {a.lo << (n - 64), 0};
    return {(a.hi << n) | (a.lo >> (64 - n)), a.lo << n};
  }
  friend constexpr Uint128 operator>>(Uint128 a, uint32_t n) {
    if (n == 0) return a;
    if (n >= 64) return {0, a.hi >> (n - 64)};
    return {a.hi >> n, (a.hi << (64 - n)) | (a.lo >> n)};
  }

  // Schoolbook shift-subtract division; b must be nonzero.  Used once per
  // cursor top-entry gate, never on a hot search path, so O(128) is fine.
  friend constexpr Uint128 operator/(Uint128 a, Uint128 b) {
    Uint128 q{0, 0}, r{0, 0};
    for (int i = 127; i >= 0; --i) {
      r = r << 1;
      if (static_cast<uint64_t>((a >> static_cast<uint32_t>(i)).lo) & 1ull) {
        r.lo |= 1ull;
      }
      if (r >= b) {
        r = r - b;
        if (i >= 64) {
          q.hi |= 1ull << (i - 64);
        } else {
          q.lo |= 1ull << i;
        }
      }
    }
    return q;
  }
};

#if defined(__SIZEOF_INT128__)
#define SKIPTRIE_HAS_INT128 1
using u128 = unsigned __int128;
#else
#define SKIPTRIE_HAS_INT128 0
using u128 = Uint128;
#endif

// hi/lo/make accessors that work for both u128 representations (and are the
// only place the representation difference is visible).
inline constexpr uint64_t u128_hi(Uint128 v) { return v.hi; }
inline constexpr uint64_t u128_lo(Uint128 v) { return v.lo; }
inline constexpr Uint128 make_uint128(uint64_t hi, uint64_t lo) {
  return Uint128{hi, lo};
}
#if SKIPTRIE_HAS_INT128
inline constexpr uint64_t u128_hi(u128 v) {
  return static_cast<uint64_t>(v >> 64);
}
inline constexpr uint64_t u128_lo(u128 v) { return static_cast<uint64_t>(v); }
#endif
inline constexpr u128 make_u128(uint64_t hi, uint64_t lo) {
#if SKIPTRIE_HAS_INT128
  return (static_cast<u128>(hi) << 64) | lo;
#else
  return Uint128{hi, lo};
#endif
}

// Count of leading zeros of a nonzero 128-bit value.
inline uint32_t clz128(Uint128 x) {
  assert(x.hi != 0 || x.lo != 0);
  return x.hi != 0 ? static_cast<uint32_t>(__builtin_clzll(x.hi))
                   : 64u + static_cast<uint32_t>(__builtin_clzll(x.lo));
}
#if SKIPTRIE_HAS_INT128
inline uint32_t clz128(u128 x) {
  const uint64_t hi = u128_hi(x);
  return hi != 0 ? static_cast<uint32_t>(__builtin_clzll(hi))
                 : 64u + static_cast<uint32_t>(__builtin_clzll(u128_lo(x)));
}
#endif

// Index of the most significant set bit (0 = least significant); x nonzero.
inline uint32_t msb128(u128 x) { return 127u - clz128(x); }

// ---------------------------------------------------------------------------
// Width-generic ikey arithmetic.  `I` is uint64_t or u128; ikey_width<I>
// derives the word width from the type.  The uint64_t specializations
// compile to exactly the scalar functions above.
// ---------------------------------------------------------------------------

template <typename I>
inline constexpr uint32_t ikey_width = static_cast<uint32_t>(sizeof(I) * 8);

inline uint32_t ikey_clz(uint64_t x) {
  return static_cast<uint32_t>(__builtin_clzll(x));
}
inline uint32_t ikey_clz(Uint128 x) { return clz128(x); }
#if SKIPTRIE_HAS_INT128
inline uint32_t ikey_clz(u128 x) { return clz128(x); }
#endif

template <typename I>
inline constexpr I ikey_all_ones() {
  return ~I(0);
}

// The i-th bit of `key` counting from the MSB of a B-bit universe.
template <typename I>
inline uint64_t ikey_bit(I key, uint32_t i, uint32_t bits) {
  assert(i < bits);
  return static_cast<uint64_t>((key >> (bits - 1 - i)) & I(1));
}

// Encode the length-`len` prefix of `key` (see file comment).
template <typename I>
inline I ikey_encode_prefix(I key, uint32_t len, uint32_t bits) {
  assert(len <= ikey_width<I> - 1 && len < bits);
  if (len == 0) return I(1);  // the root prefix (epsilon)
  return (I(1) << len) | (key >> (bits - len));
}

template <typename I>
inline bool ikey_prefix_matches(I encoded, I key, uint32_t len,
                                uint32_t bits) {
  return ikey_encode_prefix(key, len, bits) == encoded;
}

// Length of the longest common prefix of x and y within a B-bit universe.
template <typename I>
inline uint32_t ikey_lcp_length(I x, I y, uint32_t bits) {
  I diff = x ^ y;
  if (bits < ikey_width<I>) diff = diff & ((I(1) << bits) - I(1));
  if (diff == I(0)) return bits;
  const uint32_t highest = ikey_width<I> - 1 - ikey_clz(diff);
  return bits - 1 - highest;
}

template <typename I>
inline I ikey_abs_diff(I a, I b) {
  return a > b ? a - b : b - a;
}

template <typename I>
inline constexpr I ikey_universe_mask(uint32_t bits) {
  return bits >= ikey_width<I> ? ikey_all_ones<I>()
                               : ((I(1) << bits) - I(1));
}

}  // namespace skiptrie
