// Pseudo-random number generation.
//
// splitmix64 is used for hashing and seeding; xoshiro256** is the workhorse
// generator for workloads and tower-height sampling.  Both are seedable and
// deterministic so tests and benchmarks are reproducible.
#pragma once

#include <cstdint>

namespace skiptrie {

// One splitmix64 step; also a good 64-bit integer mixer/hash.
uint64_t splitmix64(uint64_t& state);

// Stateless mix of a single value (finalizer of splitmix64).
inline uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Seed-stable tower height: a Geometric(1/2) draw in [0, cap] derived from
// (seed, ikey) alone — no thread-local state, no draw-order dependence.  Two
// runs with the same structure seed give every key the same tower height
// regardless of thread start order or operation interleaving, which is what
// makes step counts cell-comparable across suite runs with different axis
// compositions (ROADMAP "cross-run comparability").  Re-inserting an erased
// key redraws the same height; the heights across *distinct* keys are still
// i.i.d. fair-coin towers, which is all the skiplist analysis needs.
// Pre-mixed variant for the KeyTraits seam (DESIGN.md §6): `mixed` is the
// traits' height_mix(ikey) — for U64Traits exactly mix64(ikey), so
// deterministic_height(seed, ikey, cap) ==
// deterministic_height_mixed(seed, mix64(ikey), cap) bit for bit, and the
// u64 fast path's heights (hence step counts) are unchanged by the refactor.
inline uint32_t deterministic_height_mixed(uint64_t seed, uint64_t mixed,
                                           uint32_t cap) {
  uint64_t r = mix64(seed ^ mixed);
  uint32_t h = 0;
  while (h < cap && (r & 1ull)) {
    ++h;
    r >>= 1;
  }
  return h;
}

inline uint32_t deterministic_height(uint64_t seed, uint64_t ikey,
                                     uint32_t cap) {
  return deterministic_height_mixed(seed, mix64(ikey), cap);
}

class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed = 0x853c49e6748fea9bull);

  uint64_t next();

  // Uniform value in [0, bound).  bound must be > 0.
  uint64_t next_below(uint64_t bound);

  // Uniform double in [0, 1).
  double next_double();

  // Geometric(1/2) sample in [0, cap]: number of consecutive heads.
  // This is the skiplist tower-height draw H(x) from the paper, capped at
  // the truncated top level.
  uint32_t geometric_height(uint32_t cap);

 private:
  uint64_t s_[4];
};

}  // namespace skiptrie
