// Sense-reversing spin barrier for benchmark thread coordination.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/backoff.h"

namespace skiptrie {

class SpinBarrier {
 public:
  explicit SpinBarrier(uint32_t parties) : parties_(parties), waiting_(parties) {}

  void arrive_and_wait() {
    const uint64_t my_sense = sense_.load(std::memory_order_acquire);
    if (waiting_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      waiting_.store(parties_, std::memory_order_relaxed);
      sense_.fetch_add(1, std::memory_order_release);
      return;
    }
    Backoff bo;
    while (sense_.load(std::memory_order_acquire) == my_sense) bo.spin();
  }

 private:
  const uint32_t parties_;
  std::atomic<uint32_t> waiting_;
  std::atomic<uint64_t> sense_{0};
};

}  // namespace skiptrie
