#include "common/random.h"

namespace skiptrie {

uint64_t splitmix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

static inline uint64_t rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

Xoshiro256::Xoshiro256(uint64_t seed) {
  // Seed the 256-bit state from splitmix64 per the xoshiro authors' advice.
  uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

uint64_t Xoshiro256::next() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

uint64_t Xoshiro256::next_below(uint64_t bound) {
  // Lemire's multiply-shift rejection-free-enough bounded draw; the bias is
  // at most bound/2^64, negligible for workload generation.
  return static_cast<uint64_t>(
      (static_cast<__uint128_t>(next()) * bound) >> 64);
}

double Xoshiro256::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

uint32_t Xoshiro256::geometric_height(uint32_t cap) {
  // Count trailing heads in a 64-bit draw: P(h >= k) = 2^-k, exactly the
  // paper's fair-coin tower raising.  cap truncates at the skiplist top.
  uint64_t r = next();
  uint32_t h = 0;
  while (h < cap && (r & 1ull)) {
    ++h;
    r >>= 1;
    if (h % 64 == 0) r = next();  // practically unreachable; keeps it exact
  }
  return h;
}

}  // namespace skiptrie
