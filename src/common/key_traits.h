// KeyTraits: the universe a SkipTrie instantiation runs over (DESIGN.md §6).
//
// Every layer of the stack — x-fast trie prefix walks, split-ordered
// hashing, tower-height seeding, finger/cursor bracket ikeys, shard routing,
// batch sorting — is parameterized on one traits type that fixes the ikey
// word, the universe width W, and the bit/prefix/mix arithmetic on it.  Two
// instantiations ship:
//
//   U64Traits     W = 64.  The seed behavior, byte for byte: every static
//                 delegates to the scalar uint64_t helpers the code used
//                 before the refactor, so per-op step counts are pinned
//                 (tests/step_pinning_test.cpp) against the pre-traits tree.
//
//   Bytes16Traits W = 128.  Keys are 128-bit ikeys produced by the
//                 order-preserving codecs in common/key_codec.h (bounded
//                 byte strings <= 15 bytes, IPv6 / IPv4-mapped addresses).
//                 log log u grows from ~6 to ~7 — widening the universe is
//                 the honest route to byte-string keys (ISSUE 7; cf.
//                 Shafiei's non-blocking Patricia tries, PAPERS.md).
//
// The mixes return plain uint64_t: the split-ordered hash's so_key word and
// deterministic_height's bit stream stay 64-bit regardless of W.  For
// U64Traits both are mix64(x), which composed with deterministic_height's
// own mix64(seed ^ ·) reproduces the seed draw exactly.
#pragma once

#include <concepts>
#include <cstdint>

#include "common/bitops.h"
#include "common/random.h"

namespace skiptrie {

template <typename T>
concept KeyTraits = requires(typename T::key_type k, typename T::ikey_type ik,
                             uint32_t i, uint32_t bits) {
  requires std::totally_ordered<typename T::ikey_type>;
  { T::kMaxBits } -> std::convertible_to<uint32_t>;
  { T::kKeyKind } -> std::convertible_to<const char*>;
  { T::ikey_max() } -> std::same_as<typename T::ikey_type>;
  { T::bit(ik, i, bits) } -> std::same_as<uint64_t>;
  { T::encode_prefix(ik, i, bits) } -> std::same_as<typename T::ikey_type>;
  { T::prefix_matches(ik, ik, i, bits) } -> std::same_as<bool>;
  { T::common_prefix_len(ik, ik, bits) } -> std::same_as<uint32_t>;
  { T::abs_diff(ik, ik) } -> std::same_as<typename T::ikey_type>;
  { T::universe_mask(bits) } -> std::same_as<typename T::ikey_type>;
  { T::hash_mix(ik) } -> std::same_as<uint64_t>;
  { T::height_mix(ik) } -> std::same_as<uint64_t>;
  { T::low_u64(ik) } -> std::same_as<uint64_t>;
  { T::to_double(ik) } -> std::same_as<double>;
};

// W = 64: the original uint64_t universe.  Every member forwards to the
// scalar helpers in bitops.h so codegen on this path is identical to the
// pre-traits tree.
struct U64Traits {
  using key_type = uint64_t;
  using ikey_type = uint64_t;
  static constexpr uint32_t kMaxBits = 64;
  static constexpr const char* kKeyKind = "u64";

  static constexpr ikey_type ikey_max() { return UINT64_MAX; }
  static uint64_t bit(ikey_type k, uint32_t i, uint32_t bits) {
    return key_bit(k, i, bits);
  }
  static ikey_type encode_prefix(ikey_type k, uint32_t len, uint32_t bits) {
    return skiptrie::encode_prefix(k, len, bits);
  }
  static bool prefix_matches(ikey_type encoded, ikey_type k, uint32_t len,
                             uint32_t bits) {
    return skiptrie::prefix_matches(encoded, k, len, bits);
  }
  static uint32_t common_prefix_len(ikey_type a, ikey_type b, uint32_t bits) {
    return lcp_length(a, b, bits);
  }
  static ikey_type abs_diff(ikey_type a, ikey_type b) {
    return skiptrie::abs_diff(a, b);
  }
  static constexpr ikey_type universe_mask(uint32_t bits) {
    return skiptrie::universe_mask(bits);
  }
  // Split-ordered bucket hash (DESIGN.md §3.4) and tower-height stream
  // (§3.2): both exactly the seed's mix64.
  static uint64_t hash_mix(ikey_type x) { return mix64(x); }
  static uint64_t height_mix(ikey_type x) { return mix64(x); }
  static constexpr uint64_t low_u64(ikey_type x) { return x; }
  static double to_double(ikey_type x) { return static_cast<double>(x); }
};

// W = 128: byte-string / IPv6 keys pre-encoded into u128 ikeys by
// common/key_codec.h.  key_type is the encoded word itself — the codec is a
// boundary concern (examples, benches), not an engine concern.
struct Bytes16Traits {
  using key_type = u128;
  using ikey_type = u128;
  static constexpr uint32_t kMaxBits = 128;
  static constexpr const char* kKeyKind = "bytes16";

  static constexpr ikey_type ikey_max() { return ikey_all_ones<u128>(); }
  static uint64_t bit(ikey_type k, uint32_t i, uint32_t bits) {
    return ikey_bit(k, i, bits);
  }
  static ikey_type encode_prefix(ikey_type k, uint32_t len, uint32_t bits) {
    return ikey_encode_prefix(k, len, bits);
  }
  static bool prefix_matches(ikey_type encoded, ikey_type k, uint32_t len,
                             uint32_t bits) {
    return ikey_prefix_matches(encoded, k, len, bits);
  }
  static uint32_t common_prefix_len(ikey_type a, ikey_type b, uint32_t bits) {
    return ikey_lcp_length(a, b, bits);
  }
  static ikey_type abs_diff(ikey_type a, ikey_type b) {
    return ikey_abs_diff(a, b);
  }
  static constexpr ikey_type universe_mask(uint32_t bits) {
    return ikey_universe_mask<u128>(bits);
  }
  // Fold both halves through mix64 so every ikey bit reaches every hash /
  // height bit (a lo-only mix would collide all keys sharing low words).
  static uint64_t hash_mix(ikey_type x) {
    return mix64(u128_lo(x) ^ mix64(u128_hi(x)));
  }
  static uint64_t height_mix(ikey_type x) {
    return mix64(u128_lo(x) ^ mix64(u128_hi(x)));
  }
  static constexpr uint64_t low_u64(ikey_type x) { return u128_lo(x); }
  static double to_double(ikey_type x) {
    return static_cast<double>(u128_hi(x)) * 18446744073709551616.0 +
           static_cast<double>(u128_lo(x));
  }
};

static_assert(KeyTraits<U64Traits>);
static_assert(KeyTraits<Bytes16Traits>);

}  // namespace skiptrie
