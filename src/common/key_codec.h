// Order-preserving codecs into the 128-bit universe (Bytes16Traits,
// DESIGN.md §6).
//
// Bounded byte strings (length <= 15): the bytes pack big-endian,
// left-aligned, into the high 120 bits of the ikey; the low 8 bits hold the
// exact length.  Comparison of two encodings first compares the packed
// bytes (zero-padded on the right), and falls through to the length byte
// only when the padded bytes tie — which happens exactly when one string is
// the other extended by NUL bytes, where the shorter string is the
// lexicographically smaller.  Hence encode(a) < encode(b) iff a < b
// bytewise (pinned by tests/key_codec_test.cpp), and the length byte makes
// the encoding injective and exactly invertible.
//
// IPv6 / IPv4-mapped addresses: the raw 16 address bytes big-endian — the
// identity order on addresses.  A (prefix, len) route key for
// longest-prefix matching is the prefix's address bytes with the host bits
// zeroed; see examples/ip_router.cpp for the interval construction that
// turns predecessor queries into LPM.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/bitops.h"

namespace skiptrie {

// Longest byte string the bytes16 codec can carry: 120 bits of payload.
inline constexpr size_t kBytes16MaxLen = 15;

inline u128 encode_bytes16(const void* data, size_t len) {
  assert(len <= kBytes16MaxLen);
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t hi = 0, lo = 0;
  for (size_t i = 0; i < len && i < 8; ++i) {
    hi |= static_cast<uint64_t>(p[i]) << (56 - 8 * i);
  }
  for (size_t i = 8; i < len; ++i) {
    lo |= static_cast<uint64_t>(p[i]) << (120 - 8 * i);
  }
  lo |= static_cast<uint64_t>(len);
  return make_u128(hi, lo);
}

inline u128 encode_bytes16(std::string_view s) {
  return encode_bytes16(s.data(), s.size());
}

// Writes up to kBytes16MaxLen bytes into `out`; returns the decoded length.
inline size_t decode_bytes16(u128 ikey, void* out) {
  const uint64_t hi = u128_hi(ikey), lo = u128_lo(ikey);
  const size_t len = static_cast<size_t>(lo & 0xffull);
  assert(len <= kBytes16MaxLen);
  uint8_t* p = static_cast<uint8_t*>(out);
  for (size_t i = 0; i < len && i < 8; ++i) {
    p[i] = static_cast<uint8_t>(hi >> (56 - 8 * i));
  }
  for (size_t i = 8; i < len; ++i) {
    p[i] = static_cast<uint8_t>(lo >> (120 - 8 * i));
  }
  return len;
}

inline std::string decode_bytes16_str(u128 ikey) {
  char buf[kBytes16MaxLen];
  const size_t len = decode_bytes16(ikey, buf);
  return std::string(buf, len);
}

// --- IPv6 / IPv4-mapped -----------------------------------------------------

inline u128 encode_ipv6(const uint8_t addr[16]) {
  uint64_t hi = 0, lo = 0;
  for (int i = 0; i < 8; ++i) {
    hi = (hi << 8) | addr[i];
    lo = (lo << 8) | addr[8 + i];
  }
  return make_u128(hi, lo);
}

inline void decode_ipv6(u128 ikey, uint8_t out[16]) {
  const uint64_t hi = u128_hi(ikey), lo = u128_lo(ikey);
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<uint8_t>(hi >> (56 - 8 * i));
    out[8 + i] = static_cast<uint8_t>(lo >> (56 - 8 * i));
  }
}

// ::ffff:a.b.c.d — the IPv4-mapped IPv6 form (RFC 4291 §2.5.5.2), so v4 and
// v6 routes live in one 128-bit universe with v4 order preserved.
inline u128 encode_ipv4_mapped(uint32_t v4) {
  return make_u128(0, 0x0000ffff00000000ull | v4);
}

inline bool is_ipv4_mapped(u128 ikey) {
  return u128_hi(ikey) == 0 &&
         (u128_lo(ikey) >> 32) == 0x0000ffffull;
}

}  // namespace skiptrie
