#include "common/stats.h"

namespace skiptrie {

StepCounters& StepCounters::operator+=(const StepCounters& o) {
  node_hops += o.node_hops;
  hops_top += o.hops_top;
  hops_descent += o.hops_descent;
  finger_hits += o.finger_hits;
  finger_misses += o.finger_misses;
  hops_finger_saved += o.hops_finger_saved;
  hash_probes += o.hash_probes;
  probes_lookup += o.probes_lookup;
  probes_chain += o.probes_chain;
  probes_binsearch += o.probes_binsearch;
  hash_updates += o.hash_updates;
  cas_attempts += o.cas_attempts;
  cas_failures += o.cas_failures;
  dcss_attempts += o.dcss_attempts;
  dcss_guard_fails += o.dcss_guard_fails;
  dcss_helps += o.dcss_helps;
  back_steps += o.back_steps;
  prev_steps += o.prev_steps;
  restarts += o.restarts;
  walk_fallbacks += o.walk_fallbacks;
  trie_level_ops += o.trie_level_ops;
  retired_nodes += o.retired_nodes;
  bytes_touched += o.bytes_touched;
  chunk_scans += o.chunk_scans;
  chunk_splits += o.chunk_splits;
  chunk_merges += o.chunk_merges;
  cursor_reuses += o.cursor_reuses;
  cursor_redescends += o.cursor_redescends;
  batch_ops += o.batch_ops;
  batch_keys += o.batch_keys;
  shard_batches += o.shard_batches;
  service_requests += o.service_requests;
  service_subtasks += o.service_subtasks;
  queue_full_waits += o.queue_full_waits;
  queue_depth_sum += o.queue_depth_sum;
  queue_wait_ns += o.queue_wait_ns;
  adapt_checks += o.adapt_checks;
  promotions += o.promotions;
  demotions += o.demotions;
  return *this;
}

StepCounters StepCounters::operator-(const StepCounters& o) const {
  StepCounters r = *this;
  r.node_hops -= o.node_hops;
  r.hops_top -= o.hops_top;
  r.hops_descent -= o.hops_descent;
  r.finger_hits -= o.finger_hits;
  r.finger_misses -= o.finger_misses;
  r.hops_finger_saved -= o.hops_finger_saved;
  r.hash_probes -= o.hash_probes;
  r.probes_lookup -= o.probes_lookup;
  r.probes_chain -= o.probes_chain;
  r.probes_binsearch -= o.probes_binsearch;
  r.hash_updates -= o.hash_updates;
  r.cas_attempts -= o.cas_attempts;
  r.cas_failures -= o.cas_failures;
  r.dcss_attempts -= o.dcss_attempts;
  r.dcss_guard_fails -= o.dcss_guard_fails;
  r.dcss_helps -= o.dcss_helps;
  r.back_steps -= o.back_steps;
  r.prev_steps -= o.prev_steps;
  r.restarts -= o.restarts;
  r.walk_fallbacks -= o.walk_fallbacks;
  r.trie_level_ops -= o.trie_level_ops;
  r.retired_nodes -= o.retired_nodes;
  r.bytes_touched -= o.bytes_touched;
  r.chunk_scans -= o.chunk_scans;
  r.chunk_splits -= o.chunk_splits;
  r.chunk_merges -= o.chunk_merges;
  r.cursor_reuses -= o.cursor_reuses;
  r.cursor_redescends -= o.cursor_redescends;
  r.batch_ops -= o.batch_ops;
  r.batch_keys -= o.batch_keys;
  r.shard_batches -= o.shard_batches;
  r.service_requests -= o.service_requests;
  r.service_subtasks -= o.service_subtasks;
  r.queue_full_waits -= o.queue_full_waits;
  r.queue_depth_sum -= o.queue_depth_sum;
  r.queue_wait_ns -= o.queue_wait_ns;
  r.adapt_checks -= o.adapt_checks;
  r.promotions -= o.promotions;
  r.demotions -= o.demotions;
  return r;
}

StepCounters& tls_counters() {
  thread_local StepCounters counters;
  return counters;
}

}  // namespace skiptrie
