// Tagged 64-bit pointer words.
//
// Every mutable link in the SkipTrie (skiplist `next` words, top-level `prev`
// words, x-fast-trie child pointers, hash-list `next` words) is a single
// 64-bit word that packs a pointer together with up to two low tag bits:
//
//   bit 0 (kMark):  Harris-style logical-deletion mark.  A set mark on a
//                   node's `next` word means *the node holding the word* is
//                   logically deleted.  On a `prev` word it mirrors the
//                   owner's deletion so DCSS guards can observe
//                   "(prev, marked)" as one word (paper, Alg. 7 line 17).
//   bit 1 (kDesc):  the word currently holds a DCSS descriptor pointer
//                   instead of a value; readers must help (see dcss/dcss.h).
//
// All node types used with these words are allocated with alignment >= 8 so
// the two low bits of a real pointer are always zero.
#pragma once

#include <cstdint>

namespace skiptrie {

inline constexpr uint64_t kMark = 1ull;
inline constexpr uint64_t kDesc = 2ull;
inline constexpr uint64_t kTagMask = kMark | kDesc;

template <typename T>
inline uint64_t pack_ptr(T* p, uint64_t tags = 0) {
  return reinterpret_cast<uint64_t>(p) | tags;
}

template <typename T>
inline T* unpack_ptr(uint64_t w) {
  return reinterpret_cast<T*>(w & ~kTagMask);
}

inline bool is_marked(uint64_t w) { return (w & kMark) != 0; }
inline bool is_desc(uint64_t w) { return (w & kDesc) != 0; }
inline uint64_t with_mark(uint64_t w) { return w | kMark; }
inline uint64_t without_tags(uint64_t w) { return w & ~kTagMask; }
inline uint64_t tags_of(uint64_t w) { return w & kTagMask; }

}  // namespace skiptrie
