// Minimal streaming JSON writer for the benchmark emitters.
//
// The bench subsystem records every measured cell into a machine-readable
// BENCH_*.json (see README "Benchmarks"); this writer is the single place
// that knows how to produce valid JSON: string escaping, comma placement,
// and non-finite-double handling (NaN/inf become null, since JSON has no
// spelling for them).  Append-only: objects/arrays are opened and closed in
// stack order, values are written where a value is expected.  No DOM, no
// allocation beyond the output string.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace skiptrie {

class JsonWriter {
 public:
  JsonWriter() { stack_.push_back(Frame::kValue); }

  const std::string& str() const { return out_; }

  JsonWriter& begin_object() {
    comma();
    out_ += '{';
    stack_.push_back(Frame::kObjectFirst);
    return *this;
  }
  JsonWriter& end_object() {
    stack_.pop_back();
    out_ += '}';
    return *this;
  }
  JsonWriter& begin_array() {
    comma();
    out_ += '[';
    stack_.push_back(Frame::kArrayFirst);
    return *this;
  }
  JsonWriter& end_array() {
    stack_.pop_back();
    out_ += ']';
    return *this;
  }

  // Key inside an object; follow with exactly one value/container.
  JsonWriter& key(const char* k) {
    comma();
    append_string(k);
    out_ += ':';
    stack_.push_back(Frame::kValue);
    return *this;
  }

  JsonWriter& value(const char* v) {
    comma();
    append_string(v);
    return *this;
  }
  JsonWriter& value(const std::string& v) { return value(v.c_str()); }
  JsonWriter& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& value(uint64_t v) {
    comma();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
    out_ += buf;
    return *this;
  }
  JsonWriter& value(int64_t v) {
    comma();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out_ += buf;
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(uint32_t v) { return value(static_cast<uint64_t>(v)); }
  JsonWriter& value(double v) {
    comma();
    if (!std::isfinite(v)) {
      out_ += "null";
      return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out_ += buf;
    return *this;
  }

  // key+scalar shorthand.
  template <typename T>
  JsonWriter& kv(const char* k, T v) {
    key(k);
    return value(v);
  }

  // Raw newline between top-level-ish tokens; purely cosmetic (one cell per
  // line keeps the emitted file diffable).
  JsonWriter& newline() {
    out_ += '\n';
    return *this;
  }

 private:
  enum class Frame : uint8_t { kValue, kObjectFirst, kObjectNext, kArrayFirst, kArrayNext };

  // Emit a separator if the enclosing container already holds a member, and
  // advance the container's first/next state.
  void comma() {
    Frame& f = stack_.back();
    switch (f) {
      case Frame::kValue:
        stack_.pop_back();  // the pending key/value slot is being filled
        return;
      case Frame::kObjectFirst:
        f = Frame::kObjectNext;
        return;
      case Frame::kArrayFirst:
        f = Frame::kArrayNext;
        return;
      case Frame::kObjectNext:
      case Frame::kArrayNext:
        out_ += ',';
        return;
    }
  }

  void append_string(const char* s) {
    out_ += '"';
    for (const char* p = s; *p != '\0'; ++p) {
      const unsigned char c = static_cast<unsigned char>(*p);
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += static_cast<char>(c);
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<Frame> stack_;
};

}  // namespace skiptrie
