// Bounded exponential backoff for CAS retry loops.
//
// Contention loops in the trie and skiplist retry after a failed CAS/DCSS.
// A short spin with exponential growth (capped) reduces cache-line ping-pong
// without affecting lock-freedom (backoff only delays, never blocks).
#pragma once

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace skiptrie {

class Backoff {
 public:
  void spin() {
    for (uint32_t i = 0; i < limit_; ++i) cpu_relax();
    if (limit_ < kMaxSpin) limit_ <<= 1;
  }

  void reset() { limit_ = kMinSpin; }

  static void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#else
    asm volatile("" ::: "memory");
#endif
  }

 private:
  static constexpr uint32_t kMinSpin = 4;
  static constexpr uint32_t kMaxSpin = 1024;
  uint32_t limit_ = kMinSpin;
};

}  // namespace skiptrie
