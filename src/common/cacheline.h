// Cache-line padding helpers (avoid false sharing between per-thread slots).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace skiptrie {

inline constexpr size_t kCacheLine = 64;

// A T padded out to a full cache line.  T must fit in one line.
template <typename T>
struct alignas(kCacheLine) Padded {
  T value{};
  char pad[kCacheLine - (sizeof(T) % kCacheLine ? sizeof(T) % kCacheLine
                                                : kCacheLine)];
};

using PaddedAtomicU64 = Padded<std::atomic<uint64_t>>;

}  // namespace skiptrie
