// Per-thread operation step counters.
//
// The paper's headline result is a *step-complexity* bound
// (O(log log u + c_OI) expected amortized steps per operation), so the
// benchmark harness must be able to count steps, not just wall time.  Every
// potentially-shared-memory step of interest increments a thread-local
// counter; the harness snapshots counters around a measured phase and
// aggregates across threads.  Counting is branch-free increments on
// thread-local cache lines, cheap enough to leave enabled.
#pragma once

#include <cstdint>

namespace skiptrie {

struct StepCounters {
  uint64_t node_hops = 0;        // list-node traversal steps (all levels)
  uint64_t hash_probes = 0;      // prefix hash-table lookups
  uint64_t hash_updates = 0;     // prefix hash-table insert/delete attempts
  uint64_t cas_attempts = 0;     // structural CAS attempts
  uint64_t cas_failures = 0;     // failed structural CAS
  uint64_t dcss_attempts = 0;    // DCSS attempts (descriptor installs)
  uint64_t dcss_guard_fails = 0; // DCSS aborted because the guard mismatched
  uint64_t dcss_helps = 0;       // descriptors completed on behalf of others
  uint64_t back_steps = 0;       // back-pointer follows (marked-node recovery)
  uint64_t prev_steps = 0;       // prev-pointer follows (top-level walk)
  uint64_t restarts = 0;         // validation-triggered restarts from a head
  uint64_t trie_level_ops = 0;   // x-fast-trie per-level update iterations
  uint64_t retired_nodes = 0;    // nodes handed to reclamation

  StepCounters& operator+=(const StepCounters& o);
  StepCounters operator-(const StepCounters& o) const;

  // Steps in the sense of the paper's bound: shared-memory accesses made
  // while searching (hops + probes + guide-pointer follows).
  uint64_t search_steps() const {
    return node_hops + hash_probes + back_steps + prev_steps;
  }
  uint64_t total_steps() const {
    return search_steps() + hash_updates + cas_attempts + dcss_attempts +
           trie_level_ops;
  }
};

// The calling thread's counters.  Distinct threads get distinct instances.
StepCounters& tls_counters();

// Snapshot/restore helpers for measurement phases.
inline StepCounters snapshot_counters() { return tls_counters(); }

}  // namespace skiptrie
