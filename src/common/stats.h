// Per-thread operation step counters.
//
// The paper's headline result is a *step-complexity* bound
// (O(log log u + c_OI) expected amortized steps per operation), so the
// benchmark harness must be able to count steps, not just wall time.  Every
// potentially-shared-memory step of interest increments a thread-local
// counter; the harness snapshots counters around a measured phase and
// aggregates across threads.  Counting is branch-free increments on
// thread-local cache lines, cheap enough to leave enabled.
#pragma once

#include <cstdint>

namespace skiptrie {

struct StepCounters {
  uint64_t node_hops = 0;        // list-node traversal steps (all levels)
  // Fine-grained attribution of node_hops (see DESIGN.md §5.2).  Like the
  // probe attribution below, these do NOT enter search_steps()/
  // total_steps(): hops_top + hops_descent == node_hops always, and the
  // finger counters tally events/levels, not shared-memory steps.
  uint64_t hops_top = 0;         // node_hops incurred at the engine's top level
  uint64_t hops_descent = 0;     // node_hops incurred below the top level
  uint64_t finger_hits = 0;      // fingered descents entered below the fallback
                                 // start (bracket cache hit, DESIGN.md §3.6)
  uint64_t finger_misses = 0;    // fingered descents that used the fallback
  uint64_t hops_finger_saved = 0;// level searches skipped by finger hits
                                 // (top - entry level per hit): a lower bound
                                 // on the node hops the hit avoided
  uint64_t hash_probes = 0;      // hash-chain nodes visited (all find() calls)
  // Fine-grained attribution of hash_probes (see DESIGN.md §5.1).  These do
  // NOT enter search_steps()/total_steps() — they attribute work hash_probes
  // already counts, and adding them again would double count.  Note
  // probes_lookup counts lookup() calls only, while probes_chain covers
  // every find() caller (insert/erase paths too), so
  // probes_lookup + probes_chain == hash_probes only on read-only streams.
  uint64_t probes_lookup = 0;    // SplitOrderedMap::lookup() calls issued
  uint64_t probes_chain = 0;     // chain nodes visited beyond the first per
                                 // find(), any caller (constant-factor slack)
  uint64_t probes_binsearch = 0; // lookups issued by the x-fast binary
                                 // search over prefix lengths (~log B ideal)
  uint64_t hash_updates = 0;     // prefix hash-table insert/delete attempts
  uint64_t cas_attempts = 0;     // structural CAS attempts
  uint64_t cas_failures = 0;     // failed structural CAS
  uint64_t dcss_attempts = 0;    // DCSS attempts (descriptor installs)
  uint64_t dcss_guard_fails = 0; // DCSS aborted because the guard mismatched
  uint64_t dcss_helps = 0;       // descriptors completed on behalf of others
  uint64_t back_steps = 0;       // back-pointer follows (marked-node recovery)
  uint64_t prev_steps = 0;       // prev-pointer follows (top-level walk)
  uint64_t restarts = 0;         // validation-triggered restarts from a head
  uint64_t walk_fallbacks = 0;   // walk_left gave up (limit/dead-end) and
                                 // discarded its start hint for the top head
  uint64_t trie_level_ops = 0;   // x-fast-trie per-level update iterations
  uint64_t retired_nodes = 0;    // nodes handed to reclamation
  // Leaf-chunk attribution (schema v7, DESIGN.md §7.4).  bytes_touched is a
  // cache-line traffic model of the *list + leaf* layers: kCacheLine per
  // node hop / guide-pointer follow plus the lines a chunk scan actually
  // reads (hash-layer traffic is already a line count — hash_probes — and
  // is kept separate so the leaf-chunking delta stays directly readable).
  // Event/attribution counters: none of these enter search_steps()/
  // total_steps().
  uint64_t bytes_touched = 0;    // modeled cache-line bytes read by list/leaf
                                 // traversal (64 per hop/back/prev step plus
                                 // actual lines per chunk scan)
  uint64_t chunk_scans = 0;      // leaf-chunk in-array searches performed
  uint64_t chunk_splits = 0;     // leaf chunks split (full chunk, median cut)
  uint64_t chunk_merges = 0;     // leaf chunks drained and unlinked
  // Batched-operation attribution (schema v4, DESIGN.md §5.3).  Like the
  // probe/hop attribution these count events, not shared-memory steps, and
  // do NOT enter search_steps()/total_steps().
  uint64_t cursor_reuses = 0;     // warm DescentCursor seeks served from a
                                  // retained bracket (entered below the top)
  uint64_t cursor_redescends = 0; // warm seeks whose brackets all failed and
                                  // that re-ran the fingered/fallback entry
  uint64_t batch_ops = 0;         // batch API calls issued (any size)
  uint64_t batch_keys = 0;        // keys processed through the batch API
  // Sharded-engine / service attribution (schema v5, DESIGN.md §5.4).
  // Event counters again: they tally routing and queueing activity, never
  // shared-memory search steps, and do NOT enter search_steps()/
  // total_steps() — a ShardedEngine at shards=1 must report exactly the
  // unsharded engine's step counts.
  uint64_t shard_batches = 0;     // per-shard sub-batches executed by the
                                  // split/merge protocol (DESIGN.md §4.3);
                                  // equals batch calls issued at shards=1
  uint64_t service_requests = 0;  // requests submitted to a Service queue
  uint64_t service_subtasks = 0;  // per-shard subtasks those requests split
                                  // into (>= service_requests)
  uint64_t queue_full_waits = 0;  // submissions that blocked on a full
                                  // bounded queue before enqueueing
  uint64_t queue_depth_sum = 0;   // sum over enqueues of the queue depth
                                  // observed at enqueue (depth_sum /
                                  // service_subtasks = mean depth)
  uint64_t queue_wait_ns = 0;     // ns between a subtask's enqueue and a
                                  // worker dequeuing it
  // Adaptive-heights attribution (schema v8, DESIGN.md §8.4).  Event
  // counters: they tally policy activity, not shared-memory search steps,
  // and do NOT enter search_steps()/total_steps() — with adaptation off all
  // three are zero and every other counter matches the seed exactly.
  uint64_t adapt_checks = 0;      // sampled reads that fed the frequency
                                  // sketch and evaluated the thresholds
  uint64_t promotions = 0;        // towers raised above their deterministic
                                  // draw by the policy
  uint64_t demotions = 0;         // promoted towers swept back down to
                                  // their deterministic draw

  StepCounters& operator+=(const StepCounters& o);
  StepCounters operator-(const StepCounters& o) const;

  // Steps in the sense of the paper's bound: shared-memory accesses made
  // while searching (hops + probes + guide-pointer follows).
  uint64_t search_steps() const {
    return node_hops + hash_probes + back_steps + prev_steps;
  }
  uint64_t total_steps() const {
    return search_steps() + hash_updates + cas_attempts + dcss_attempts +
           trie_level_ops;
  }
};

// Cheap, always-current leaf-chunk totals (schema v7, DESIGN.md §7.4).
// Read from the chunk manager's atomic counters, so any thread may sample
// them mid-run — unlike structure_stats(), which walks the structure and is
// only meaningful at quiescence.  All zero when leaf chunking is off.
struct LeafLiveStats {
  uint64_t chunks = 0;    // live leaf chunks
  uint64_t keys = 0;      // keys currently indexed by those chunks
  uint32_t capacity = 0;  // key slots per chunk (traits-dependent)

  double avg_occupancy() const {
    const uint64_t slots = chunks * capacity;
    return slots == 0 ? 0.0 : static_cast<double>(keys) / slots;
  }
};

// Cheap, always-current structural totals (schema v8, DESIGN.md §8.4).
// Read from atomic counters maintained by the operation paths, so any
// thread may sample them mid-run — the driver's checkpoint seam uses this
// to chart adaptation speed (top-level population and promotion/demotion
// totals per run quarter).  Approximate under races by at most the number
// of in-flight operations; exact at quiescence.
struct StructureLiveStats {
  uint64_t keys = 0;        // current set size
  uint64_t top_count = 0;   // towers currently reaching the top level
  uint64_t promotions = 0;  // policy promotions since construction
  uint64_t demotions = 0;   // policy demotions since construction
};

// The calling thread's counters.  Distinct threads get distinct instances.
StepCounters& tls_counters();

// Snapshot/restore helpers for measurement phases.
inline StepCounters snapshot_counters() { return tls_counters(); }

}  // namespace skiptrie
