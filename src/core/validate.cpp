#include "core/validate.h"

#include <bit>
#include <iomanip>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/bitops.h"
#include "xfast/tree_node.h"

namespace skiptrie {

namespace {

template <typename Ikey>
std::string hex(Ikey v) {
  std::ostringstream os;
  os << "0x" << std::hex;
  if constexpr (sizeof(Ikey) > 8) {
    const uint64_t hi = u128_hi(v);
    const uint64_t lo = u128_lo(v);
    if (hi != 0) os << hi << std::setw(16) << std::setfill('0');
    os << lo;
  } else {
    os << static_cast<uint64_t>(v);
  }
  return os.str();
}

// Hash ikeys through the traits' own mix (u128 has no std::hash).
template <typename Traits>
struct IkeyHash {
  size_t operator()(typename Traits::ikey_type k) const {
    return static_cast<size_t>(Traits::hash_mix(k));
  }
};

}  // namespace

template <typename Traits>
std::vector<std::string> validate_structure(const BasicSkipTrie<Traits>& t) {
  using Ikey = typename Traits::ikey_type;
  using Node_t = NodeT<Ikey>;
  using IkeySet = std::unordered_set<Ikey, IkeyHash<Traits>>;

  std::vector<std::string> errors;
  auto fail = [&](const std::string& msg) { errors.push_back(msg); };

  const BasicSkipListEngine<Traits>& eng = t.engine();
  const uint32_t top = eng.top_level();
  const uint32_t bits = t.universe_bits();
  EbrDomain::Guard g(t.ebr());

  // Per-level sortedness + tower integrity.
  std::vector<IkeySet> level_keys(top + 1);
  for (uint32_t l = 0; l <= top; ++l) {
    Ikey prev = Ikey(0);
    for (Node_t* n = eng.first_at(l); n != nullptr; n = eng.next_at(n)) {
      const Ikey ik = n->ikey();
      if (ik <= prev) {
        fail("level " + std::to_string(l) + ": not strictly sorted at " +
             hex(ik));
      }
      prev = ik;
      if (n->level() != l) {
        fail("level " + std::to_string(l) + ": node " + hex(ik) +
             " has level field " + std::to_string(n->level()));
      }
      if (!level_keys[l].insert(ik).second) {
        fail("level " + std::to_string(l) + ": duplicate key " + hex(ik));
      }
      if (l > 0) {
        Node_t* d = n->down();
        if (d == nullptr || d->ikey() != ik || d->level() != l - 1) {
          fail("level " + std::to_string(l) + ": broken down link at " +
               hex(ik));
        }
        Node_t* r = n->root();
        if (r == nullptr || r->ikey() != ik || r->level() != 0) {
          fail("level " + std::to_string(l) + ": broken root link at " +
               hex(ik));
        }
      }
    }
  }
  // Towers must be supported below: a key at level l must exist at l-1.
  for (uint32_t l = 1; l <= top; ++l) {
    for (const Ikey& ik : level_keys[l]) {
      if (level_keys[l - 1].find(ik) == level_keys[l - 1].end()) {
        fail("key " + hex(ik) + " at level " + std::to_string(l) +
             " missing from level " + std::to_string(l - 1));
      }
    }
  }

  // Top-level prev pointers.  prev is a *guide*: it may lag behind inserts
  // and — in this C++ reproduction — may even name storage that was
  // recycled into a different (possibly larger-keyed) node after its old
  // target was deleted (DESIGN.md §3.3; the paper's GC would keep the old
  // node alive instead).  No ordering can therefore be asserted about the
  // target; traversals validate at use time and fall back to heads.  What
  // MUST hold quiescently: a live (unmarked) node's own prev word carries
  // no mark — the mark is only ever set by the node's deleter, after the
  // next-word mark.
  for (Node_t* n = eng.first_at(top); n != nullptr; n = eng.next_at(n)) {
    const uint64_t pv = n->prevw.load(std::memory_order_acquire);
    if (is_marked(pv)) {
      fail("top node " + hex(n->ikey()) + " unmarked but prev word marked");
    }
  }

  // Leaf-chunk structural invariants (DESIGN.md §7).  Chunks are a hint
  // index maintained post-linearization, so even quiescently a chunk may
  // hold stale entries (skipped maintenance) or miss keys — completeness
  // against the level-0 list is asserted only by leaf_chunk_test's
  // single-threaded cases.  What MUST hold: the chunk list is strictly
  // base-ordered starting at base 0, every chunk's occupied slots form a
  // sorted prefix of its bitmap, and every indexed key falls inside its
  // chunk's coverage.
  if (const auto* cm = eng.leaf_chunks(); cm != nullptr) {
    using Chunk = typename LeafChunkManager<Traits>::Chunk;
    bool first = true;
    Ikey prev_base = Ikey(0);
    Ikey prev_max = Ikey(0);  // largest key of the previous chunk
    uint32_t prev_id = 0;
    cm->for_each_chunk([&](const Chunk& ch) {
      const Ikey base = ch.base.load();
      if (first) {
        if (base != Ikey(0)) fail("head leaf chunk base is not 0");
        first = false;
      } else {
        if (base <= prev_base) {
          fail("leaf chunk " + std::to_string(ch.id) + ": base " + hex(base) +
               " not above predecessor " + hex(prev_base));
        }
        if (prev_max >= base) {
          fail("leaf chunk " + std::to_string(prev_id) + ": key " +
               hex(prev_max) + " at or above successor base " + hex(base));
        }
      }
      prev_base = base;
      prev_id = ch.id;
      prev_max = Ikey(0);
      const uint64_t occ = ch.occ.load(std::memory_order_relaxed);
      const uint32_t n = static_cast<uint32_t>(std::popcount(occ));
      if (n > Chunk::kKeys || occ != (uint64_t(1) << n) - 1) {
        fail("leaf chunk " + std::to_string(ch.id) +
             ": occupancy bitmap is not a prefix");
        return;
      }
      Ikey pk = Ikey(0);
      for (uint32_t i = 0; i < n; ++i) {
        const Ikey k = ch.keys[i].load();
        if (i > 0 && k <= pk) {
          fail("leaf chunk " + std::to_string(ch.id) +
               ": keys not strictly sorted at slot " + std::to_string(i));
        }
        pk = k;
        if (k < base) {
          fail("leaf chunk " + std::to_string(ch.id) + ": key " + hex(k) +
               " below chunk base " + hex(base));
        }
      }
      prev_max = pk;
    });
  }

  // Trie consistency: every entry's pointers are null or land on a live
  // top-level node matching the prefix.
  std::unordered_map<Ikey, const TreeNode*, IkeyHash<Traits>> entries;
  t.trie().map().for_each([&](Ikey k, uint64_t v) {
    entries.emplace(k, reinterpret_cast<const TreeNode*>(v));
  });
  for (const auto& [enc, tn] : entries) {
    // Decode the 1-prefixed encoding: length = index of leading 1.
    uint32_t len = Traits::kMaxBits - 1;
    while (len > 0 && (enc >> len) != Ikey(1)) --len;
    for (int d = 0; d < 2; ++d) {
      const uint64_t w = tn->ptrs[d].load(std::memory_order_acquire);
      Node_t* n = unpack_ptr<Node_t>(w);
      if (n == nullptr) continue;
      const Ikey ik = n->ikey();
      if (ik == Ikey(0) || ik == Traits::ikey_max() ||
          n->kind() != NodeKind::kInterior) {
        fail("trie entry " + hex(enc) + " dir " + std::to_string(d) +
             " points at a non-interior node");
        continue;
      }
      const Ikey key = ik - Ikey(1);
      if (len > 0 && Traits::encode_prefix(key, len, bits) != enc) {
        fail("trie entry " + hex(enc) + " dir " + std::to_string(d) +
             " points outside its prefix (key " + hex(key) + ")");
      }
      if (level_keys[top].find(ik) == level_keys[top].end()) {
        fail("trie entry " + hex(enc) + " dir " + std::to_string(d) +
             " points at key " + hex(key) + " not present at top level");
      }
    }
  }

  // Coverage: every top-level key's full prefix path must exist and cover
  // the key in its direction.
  for (const Ikey& ik : level_keys[top]) {
    const Ikey key = ik - Ikey(1);
    for (uint32_t len = 0; len < bits; ++len) {
      const Ikey enc = Traits::encode_prefix(key, len, bits);
      auto it = entries.find(enc);
      if (it == entries.end()) {
        fail("top key " + hex(key) + ": missing trie entry at length " +
             std::to_string(len));
        continue;
      }
      const uint64_t d = Traits::bit(key, len, bits);
      const uint64_t w = it->second->ptrs[d].load(std::memory_order_acquire);
      Node_t* n = unpack_ptr<Node_t>(w);
      if (n == nullptr) {
        fail("top key " + hex(key) + ": null trie pointer at length " +
             std::to_string(len));
        continue;
      }
      const Ikey ck = n->ikey();
      const bool covered = (d == 0) ? ck >= ik : ck <= ik;
      if (!covered) {
        fail("top key " + hex(key) + ": uncovered at length " +
             std::to_string(len) + " (candidate " + hex(ck - Ikey(1)) + ")");
      }
    }
  }

  return errors;
}

template std::vector<std::string> validate_structure<U64Traits>(
    const BasicSkipTrie<U64Traits>&);
template std::vector<std::string> validate_structure<Bytes16Traits>(
    const BasicSkipTrie<Bytes16Traits>&);

}  // namespace skiptrie
