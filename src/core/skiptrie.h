// SkipTrie — low-depth concurrent search without rebalancing.
//
// Public API of the data structure from Oshman & Shavit, PODC 2013: a
// lock-free, linearizable ordered set of B-bit integer keys supporting
//
//   insert(k)        expected amortized O(c · log log u)
//   erase(k)         expected amortized O(c · log log u)
//   predecessor(k)   expected amortized O(log log u + c) — largest key <= k
//   successor(k), strict_predecessor(k), contains(k)
//
// where u = 2^B is the universe size and c the contention (paper Thm. 4.3).
// Internally: a truncated lock-free skiplist of log log u levels whose
// top-level nodes are doubly linked and indexed by a concurrent x-fast trie
// over a split-ordered hash table; every operation's descent goes through a
// per-thread search finger (DESIGN.md §3.6) that lets repeated or skewed
// targets skip both the trie query and the upper levels.  See DESIGN.md
// for the full inventory.
//
// The structure is a template over KeyTraits (DESIGN.md §6):
// `using SkipTrie = BasicSkipTrie<U64Traits>` is the historical u64 set
// (B = 4..64, seed step counts pinned), while BasicSkipTrie<Bytes16Traits>
// runs the same algorithms over a 128-bit universe whose keys are
// order-preserving encodings of bounded byte strings / IPv6 addresses
// (common/key_codec.h); see examples/ip_router.cpp.
//
// Thread safety: all operations may be called concurrently from any number
// of threads (up to EbrDomain::kMaxThreads distinct threads over the
// structure's lifetime).  Destruction must be externally quiesced, like any
// concurrent container.
//
// Key range: [0, 2^B) for B < Traits::kMaxBits; at B = kMaxBits the two
// largest keys of the universe are reserved for sentinels.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "core/config.h"
#include "reclaim/arena.h"
#include "reclaim/ebr.h"
#include "skiplist/adaptive.h"
#include "skiplist/engine.h"
#include "xfast/xfast_trie.h"

namespace skiptrie {

template <typename Traits>
class BasicSkipTrie {
 public:
  using key_type = typename Traits::key_type;
  using Ikey = typename Traits::ikey_type;
  using Node_t = NodeT<Ikey>;
  using Engine = BasicSkipListEngine<Traits>;
  using Trie = BasicXFastTrie<Traits>;

  explicit BasicSkipTrie(const Config& cfg = Config{});
  ~BasicSkipTrie() = default;

  BasicSkipTrie(const BasicSkipTrie&) = delete;
  BasicSkipTrie& operator=(const BasicSkipTrie&) = delete;

  // Inserts key; false if already present.  Linearizes at the level-0 link
  // (or at an observation of the key being present).
  bool insert(key_type key);

  // Removes key; false if absent.  Linearizes at the level-0 mark.
  bool erase(key_type key);

  // Membership test (predecessor-query machinery, exact at level 0).
  bool contains(key_type key) const;

  // Largest key' <= key (the paper's predecessor(key), Alg. 5).
  std::optional<key_type> predecessor(key_type key) const;

  // Largest key' < key.
  std::optional<key_type> strict_predecessor(key_type key) const;

  // Smallest key' > key.
  std::optional<key_type> successor(key_type key) const;

  // --- Batched operations (DESIGN.md §3.7, src/core/batch.cpp) -----------
  // Each call sorts the keys and streams them through one DescentCursor:
  // one full descent for the first key, then every key enters at the lowest
  // level where the cursor's bracket still holds — skipping the x-fast
  // lowest_ancestor query and the upper-level walks entirely.  Results
  // (when non-null; length n) land in *input* order; the return value is
  // the number of true results (for predecessor_batch: keys that have a
  // predecessor).  Each key linearizes individually, exactly like the
  // single-key operation it shadows — a batch is a performance construct,
  // not an atomic multi-key transaction.  Duplicates are processed in input
  // order; with Config::use_cursor_batching off the calls degenerate to
  // per-key loops (identical results, ablation).
  size_t insert_batch(const key_type* keys, size_t n,
                      uint8_t* results = nullptr);
  size_t erase_batch(const key_type* keys, size_t n,
                     uint8_t* results = nullptr);
  size_t contains_batch(const key_type* keys, size_t n,
                        uint8_t* results = nullptr) const;
  size_t predecessor_batch(const key_type* keys, size_t n,
                           std::optional<key_type>* results = nullptr) const;

  size_t insert_batch(const std::vector<key_type>& keys,
                      uint8_t* results = nullptr) {
    return insert_batch(keys.data(), keys.size(), results);
  }
  size_t erase_batch(const std::vector<key_type>& keys,
                     uint8_t* results = nullptr) {
    return erase_batch(keys.data(), keys.size(), results);
  }
  size_t contains_batch(const std::vector<key_type>& keys,
                        uint8_t* results = nullptr) const {
    return contains_batch(keys.data(), keys.size(), results);
  }
  size_t predecessor_batch(const std::vector<key_type>& keys,
                           std::optional<key_type>* results = nullptr) const {
    return predecessor_batch(keys.data(), keys.size(), results);
  }

  // Smallest / largest key currently present.
  std::optional<key_type> min_key() const;
  std::optional<key_type> max_key_present() const;

  // Visit every key in [lo, hi] in ascending order.  Weakly consistent
  // under concurrency (like java.util.concurrent iterators): keys inserted
  // or removed during the traversal may or may not be observed, but every
  // key reported was present at some point during the call, in order.
  template <typename F>
  void for_each_in_range(key_type lo, key_type hi, F f) const {
    if (lo > hi) return;
    EbrDomain::Guard g(ebr_);
    const Ikey xlo = ikey_of(lo);
    // kRight exact exit (DESIGN.md §8.3): when lo itself is a promoted hot
    // key, the bracket's right side is its level-0 root — exactly where the
    // level-0 walk below starts either way.
    const typename Engine::Bracket b = locate(lo, xlo, LocateExact::kRight);
    const Ikey xhi = ikey_of(hi);
    for (Node_t* n = b.right;
         n != nullptr && n->kind() == NodeKind::kInterior && n->ikey() <= xhi;
         ) {
      // One read of the next word serves both the mark test and the advance:
      // re-reading would let a concurrent deleter mark the node between the
      // "unmarked" observation and the hop, reporting a key alongside a
      // next-pointer observed only after its node's deletion.
      const uint64_t w = dcss_read(n->next);
      if (!is_marked(w)) f(n->ikey() - Ikey(1));
      n = unpack_ptr<Node_t>(without_tags(w));
    }
  }

  // Number of keys in [lo, hi] (by traversal; weakly consistent).
  size_t count_range(key_type lo, key_type hi) const {
    size_t n = 0;
    for_each_in_range(lo, hi, [&n](key_type) { ++n; });
    return n;
  }

  // Approximate under concurrency; exact when quiescent.
  size_t size() const;

  uint32_t universe_bits() const { return cfg_.universe_bits; }
  key_type max_key() const;

  // --- Introspection for tests and benchmarks ---
  struct StructureStats {
    size_t keys = 0;              // interior nodes at level 0
    size_t level_counts[Engine::kMaxLevels + 1] = {};
    size_t top_count = 0;         // nodes at the top level
    size_t trie_entries = 0;      // prefix hash entries
    double avg_top_gap = 0.0;     // mean #keys strictly between top nodes
    size_t max_top_gap = 0;
    size_t arena_bytes = 0;
    size_t trie_bytes = 0;
    size_t hash_buckets = 0;      // split-ordered directory size
    size_t hash_dummies = 0;      // bucket dummy nodes spliced into the list
    double hash_load_factor = 0;  // trie_entries / hash_buckets (target <= 2)
    size_t leaf_chunks = 0;       // live leaf chunks (0 when chunking off)
    double avg_occupancy = 0;     // mean keys-per-chunk / capacity
  };
  // Quiescent-only walk of the structure.
  StructureStats structure_stats() const;

  // Cheap atomic leaf-chunk totals, safe to sample mid-run from any thread
  // (DESIGN.md §7.4; all-zero when Config::leaf_chunking is off).
  LeafLiveStats leaf_live_stats() const {
    const auto* cm = engine_.leaf_chunks();
    return cm != nullptr ? cm->live_stats() : LeafLiveStats{};
  }

  // Cheap atomic structural totals, safe to sample mid-run from any thread
  // (DESIGN.md §8.4): the driver's checkpoint seam charts adaptation speed
  // from these.  promotions/demotions stay zero when adaptation is off.
  StructureLiveStats structure_live_stats() const {
    StructureLiveStats s;
    s.keys = size();
    s.top_count = top_live_.load(std::memory_order_relaxed);
    if (adapt_ != nullptr) {
      s.promotions = adapt_->promotions();
      s.demotions = adapt_->demotions();
    }
    return s;
  }

  // The adaptation manager, nullptr when Config::adaptive_heights is off
  // (white-box tests).
  AdaptiveHeightManager* adaptive() const { return adapt_.get(); }

  // Internal components, exposed for white-box tests and benchmarks.
  Engine& engine() { return engine_; }
  const Engine& engine() const { return engine_; }
  Trie& trie() { return trie_; }
  const Trie& trie() const { return trie_; }
  EbrDomain& ebr() const { return ebr_; }
  const Config& config() const { return cfg_; }

 private:
  Ikey ikey_of(key_type key) const { return key + Ikey(1); }
  // Seed-stable tower height for ikey x (DESIGN.md §3.7): derived from
  // (cfg_.seed, x) alone, so step counts are cell-comparable across runs
  // regardless of thread start order.  The ikey folds through the traits'
  // height_mix — for U64Traits exactly the seed's draw.
  uint32_t tower_height(Ikey x) const;
  // The one fingered descent seam every read-path operation goes through
  // (DESIGN.md §3.6): a finger hit starts below the top and skips
  // lowest_ancestor entirely; a miss runs the x-fast pred_start and the
  // descent seeds the finger from it.  Must be called with ebr_ pinned.
  // `exact` selects the adaptive early exit the caller can consume
  // (DESIGN.md §8.3); it is forced to kNone while adaptation is off, so
  // the off configuration descends exactly like the seed.
  typename Engine::Bracket locate(key_type key, Ikey x,
                                  LocateExact exact = LocateExact::kNone) const;

  // --- Adaptive tower heights: policy side (DESIGN.md §8) -----------------
  // Sampling hook run by the single-key reads on the level-0 node they
  // observed: every 2^kSamplePeriodLog2-th read per thread feeds the
  // frequency sketch and, when the splay-list threshold for the tower's
  // current height is crossed, promotes the tower under the adapt latch.
  void maybe_adapt(Node_t* n) const;
  // Raise root's tower to `want` levels and publish the consequences
  // (x-fast prefixes on reaching the top, registry entry, counters).
  // Caller holds the adapt latch for the tower's fingerprint.
  void adapt_promote(Ikey x, Node_t* root, uint32_t want) const;
  // Scan a few promoted-registry slots for a cold tower and demote it back
  // to its deterministic draw (bounded amortized rotation: each promotion
  // pays for kDemoteScanPerPromote probes).
  void adapt_demote_scan() const;

  // Lazy x-fast start for the engine's cursor entry points: only invoked
  // when neither the cursor nor the finger has a usable bracket, so those
  // paths pay zero hash probes (DESIGN.md §3.6–§3.7).
  struct TrieStartEnv {
    Trie* trie;
    key_type key;
  };
  static Node_t* trie_start(void* env, Ikey x);

  // Post-descent bodies shared by the single-key and batched write paths:
  // size accounting plus the Alg. 6/7 trie sweeps (including the
  // CAS-fallback undone_top sweep, DESIGN.md §3.5(5)).
  bool finish_insert(key_type key, const typename Engine::InsertResult& r);
  bool finish_erase(key_type key, const typename Engine::EraseResult& r);

  Config cfg_;
  // Destruction order (reverse of declaration) matters: ebr_ must drain its
  // poison-and-recycle callbacks while arena_ is still alive, so arena_ is
  // declared first (destroyed last).
  mutable SlabArena arena_;
  mutable EbrDomain ebr_;
  DcssContext ctx_;
  mutable Engine engine_;
  mutable Trie trie_;
  // The adaptation policy state (DESIGN.md §8); null when
  // Config::adaptive_heights is off — every hook checks and the structure
  // then behaves exactly like the seed.
  std::unique_ptr<AdaptiveHeightManager> adapt_;
  std::atomic<int64_t> size_{0};
  // Towers currently at the top level (mid-run sampling; maintained by
  // finish_insert/finish_erase and the promote/demote wrappers).
  mutable std::atomic<uint64_t> top_live_{0};
};

// The historical u64 fast-path name.
using SkipTrie = BasicSkipTrie<U64Traits>;

}  // namespace skiptrie
