// Batched bulk-operation plumbing (DESIGN.md §3.7).
//
// The batch API's contract — on SkipTrie and the full-height baseline alike
// — is "one walk, many keys": sort the input, then stream the sorted keys
// through a single DescentCursor so each key after the first enters the
// descent at the lowest level where the cursor's bracket still holds.  This
// header holds the structure-independent half: the sorted iteration order
// (with an O(n) already-sorted fast path) and the batch attribution
// counters, both templated on the key word so every traits instantiation
// (uint64_t, u128) shares one implementation.  The per-structure halves
// live in src/core/batch.cpp (SkipTrie: trie fallback + Alg. 6/7 sweeps)
// and src/baseline/lockfree_skiplist.cpp (no trie).
//
// Results are reported in *input* order regardless of the internal
// processing order; duplicates are processed in input order (stable sort),
// so e.g. inserting the same key twice in one batch reports exactly one
// success, on the first occurrence.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/stats.h"

namespace skiptrie {
namespace batch_detail {

template <typename K>
inline bool is_sorted_keys(const K* keys, size_t n) {
  for (size_t i = 1; i < n; ++i) {
    if (keys[i - 1] > keys[i]) return false;
  }
  return true;
}

// Indices of `keys` in stable ascending key order.
template <typename K>
std::vector<uint32_t> sorted_order(const K* keys, size_t n) {
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  // Stable: duplicate keys keep their input order, so "first occurrence
  // wins" semantics hold for insert/erase result reporting.
  std::stable_sort(order.begin(), order.end(),
                   [keys](uint32_t a, uint32_t b) { return keys[a] < keys[b]; });
  return order;
}

// Drive `op(key, input_index)` over the keys in ascending order, tallying
// the batch attribution counters (steps.batch_ops/batch_keys).  Returns the
// number of ops that returned true.  `op` writes its own per-key result.
template <typename K, typename PerKey>
size_t for_each_sorted(const K* keys, size_t n, PerKey&& op) {
  auto& c = tls_counters();
  c.batch_ops++;
  c.batch_keys += n;
  size_t hits = 0;
  if (is_sorted_keys(keys, n)) {
    for (size_t i = 0; i < n; ++i) {
      if (op(keys[i], static_cast<uint32_t>(i))) ++hits;
    }
    return hits;
  }
  for (const uint32_t idx : sorted_order(keys, n)) {
    if (op(keys[idx], idx)) ++hits;
  }
  return hits;
}

}  // namespace batch_detail
}  // namespace skiptrie
