// SkipTrie configuration.
#pragma once

#include <cstdint>

#include "dcss/dcss.h"

namespace skiptrie {

struct Config {
  // B = log2 of the key universe size; keys live in [0, 2^B).  Bounded by
  // the traits' word width: 4..64 for U64Traits, 4..128 for Bytes16Traits
  // (DESIGN.md §6; the byte-string/IPv6 codecs emit into the full 128-bit
  // universe).  The truncated skiplist gets ceil(log2(B)) + 1 levels, so a
  // key reaches the top (and the x-fast trie) with probability
  // ~1/B = 1/log u.
  uint32_t universe_bits = 32;

  // Full DCSS (paper default) or the paper's plain-CAS fallback (§1): the
  // structure stays linearizable and lock-free either way; the fallback may
  // transiently leave pointers aimed at marked nodes (repaired lazily).
  DcssMode dcss_mode = DcssMode::kDcss;

  // Seed for the per-thread tower-height RNG (deterministic workloads can
  // fix this; threads still derive distinct streams).
  uint64_t seed = 0x5eed5eed5eed5eedull;

  // Maximum bucket count of the prefix hash table.
  size_t max_hash_buckets = 1u << 20;

  // Per-thread fingered descent (DESIGN.md §3.6).  Off = every operation
  // takes the x-fast pred_start path unconditionally (ablation/diagnosis).
  bool use_finger = true;

  // Batched operations stream sorted keys through one DescentCursor
  // (DESIGN.md §3.7).  Off = the batch API degenerates to a per-key loop
  // over the single-key operations (ablation/measurement; results are
  // identical either way).
  bool use_cursor_batching = true;

  // Cache-conscious leaf chunks (DESIGN.md §7): read descents terminate in a
  // sorted multi-key mini-array over level 0 instead of walking the low
  // levels node by node.  Off reproduces the seed layout and step counts
  // exactly (ablation; step_pinning_test pins its goldens with this off).
  // The compile-time default lets CI build a chunking-off matrix leg.
#ifdef SKIPTRIE_LEAF_CHUNKING_DEFAULT
  bool leaf_chunking = SKIPTRIE_LEAF_CHUNKING_DEFAULT;
#else
  bool leaf_chunking = true;
#endif

  // Distribution-adaptive tower heights (DESIGN.md §8): a sampled frequency
  // sketch promotes hot keys' towers through the insert-time raise path and
  // demotes cold promoted toppers through the delete-time sweep, so a hot
  // key's depth approaches O(1) for every thread (splay-list-style policy).
  // Off reproduces the seed layout and step counts exactly — heights stay
  // the pure deterministic Geometric(1/2) draw and reads never early-exit —
  // so step_pinning_test pins its goldens with this off.  The compile-time
  // default lets CI build an adaptation-off matrix leg.
#ifdef SKIPTRIE_ADAPTIVE_HEIGHTS_DEFAULT
  bool adaptive_heights = SKIPTRIE_ADAPTIVE_HEIGHTS_DEFAULT;
#else
  bool adaptive_heights = true;
#endif

  // Slab granularity of the node arena.
  size_t arena_blocks_per_slab = 4096;
};

}  // namespace skiptrie
