// SkipTrie batched operations (DESIGN.md §3.7): sort, then stream the keys
// through one DescentCursor.  Each key is processed under its own EBR pin
// and linearizes exactly like its single-key counterpart; between keys the
// cursor's retained nodes may be retired and recycled, which the reuse
// screen (cursor.cpp) tolerates by construction.
//
// Explicit instantiation note: skiptrie.cpp carries the class-level
// explicit instantiations of BasicSkipTrie (covering every member defined
// there); this TU instantiates only the four batch members it defines, at
// member-function granularity, so the two TUs never instantiate the same
// entity twice.
#include <algorithm>
#include <cassert>
#include <numeric>

#include "core/batch.h"
#include "core/skiptrie.h"
#include "skiplist/cursor.h"

namespace skiptrie {

template <typename Traits>
size_t BasicSkipTrie<Traits>::insert_batch(const key_type* keys, size_t n,
                                           uint8_t* results) {
  if (n == 0) return 0;
  if (!cfg_.use_cursor_batching) {
    return batch_detail::for_each_sorted(keys, n, [&](key_type k, uint32_t i) {
      const bool hit = insert(k);
      if (results != nullptr) results[i] = hit;
      return hit;
    });
  }
  BasicDescentCursor<Traits>& cur = engine_.cursor();
  return batch_detail::for_each_sorted(keys, n, [&](key_type k, uint32_t i) {
    assert(k <= max_key());
    EbrDomain::Guard g(ebr_);
    const Ikey x = ikey_of(k);
    TrieStartEnv env{&trie_, k};
    // cold_min_level = top: a batch keeps every retained row descent-fresh
    // (never a bare level head), so later keys of any tower height can
    // reuse brackets below their height (see cursor.h).
    const typename Engine::InsertResult r = engine_.cursor_insert(
        cur, x, tower_height(x), engine_.top_level(), &trie_start, &env);
    const bool hit = finish_insert(k, r);
    if (results != nullptr) results[i] = hit;
    return hit;
  });
}

template <typename Traits>
size_t BasicSkipTrie<Traits>::erase_batch(const key_type* keys, size_t n,
                                          uint8_t* results) {
  if (n == 0) return 0;
  if (!cfg_.use_cursor_batching) {
    return batch_detail::for_each_sorted(keys, n, [&](key_type k, uint32_t i) {
      const bool hit = erase(k);
      if (results != nullptr) results[i] = hit;
      return hit;
    });
  }
  BasicDescentCursor<Traits>& cur = engine_.cursor();
  return batch_detail::for_each_sorted(keys, n, [&](key_type k, uint32_t i) {
    assert(k <= max_key());
    EbrDomain::Guard g(ebr_);
    const Ikey x = ikey_of(k);
    TrieStartEnv env{&trie_, k};
    const typename Engine::EraseResult r =
        engine_.cursor_erase(cur, x, &trie_start, &env);
    const bool hit = finish_erase(k, r);
    if (results != nullptr) results[i] = hit;
    return hit;
  });
}

template <typename Traits>
size_t BasicSkipTrie<Traits>::contains_batch(const key_type* keys, size_t n,
                                             uint8_t* results) const {
  if (n == 0) return 0;
  if (!cfg_.use_cursor_batching) {
    return batch_detail::for_each_sorted(keys, n, [&](key_type k, uint32_t i) {
      const bool hit = contains(k);
      if (results != nullptr) results[i] = hit;
      return hit;
    });
  }
  BasicDescentCursor<Traits>& cur = engine_.cursor();
  return batch_detail::for_each_sorted(keys, n, [&](key_type k, uint32_t i) {
    assert(k <= max_key());
    EbrDomain::Guard g(ebr_);
    const Ikey x = ikey_of(k);
    TrieStartEnv env{&trie_, k};
    const typename Engine::Bracket b =
        engine_.cursor_descend(cur, x, &trie_start, &env);
    const bool hit = b.right->ikey() == x;
    if (results != nullptr) results[i] = hit;
    return hit;
  });
}

template <typename Traits>
size_t BasicSkipTrie<Traits>::predecessor_batch(
    const key_type* keys, size_t n, std::optional<key_type>* results) const {
  if (n == 0) return 0;
  if (!cfg_.use_cursor_batching) {
    return batch_detail::for_each_sorted(keys, n, [&](key_type k, uint32_t i) {
      const std::optional<key_type> p = predecessor(k);
      if (results != nullptr) results[i] = p;
      return p.has_value();
    });
  }
  BasicDescentCursor<Traits>& cur = engine_.cursor();
  return batch_detail::for_each_sorted(keys, n, [&](key_type k, uint32_t i) {
    assert(k <= max_key());
    EbrDomain::Guard g(ebr_);
    // Largest ikey <= ikey(k)  <=>  bracket left of x = ikey(k) + 1.
    const Ikey x = ikey_of(k) + Ikey(1);
    TrieStartEnv env{&trie_, k};
    const typename Engine::Bracket b =
        engine_.cursor_descend(cur, x, &trie_start, &env);
    std::optional<key_type> p;
    if (b.left->kind() == NodeKind::kInterior) p = b.left->ikey() - Ikey(1);
    if (results != nullptr) results[i] = p;
    return p.has_value();
  });
}

// Member-level explicit instantiations (see the note at the top).
template size_t BasicSkipTrie<U64Traits>::insert_batch(const uint64_t*,
                                                       size_t, uint8_t*);
template size_t BasicSkipTrie<U64Traits>::erase_batch(const uint64_t*, size_t,
                                                      uint8_t*);
template size_t BasicSkipTrie<U64Traits>::contains_batch(const uint64_t*,
                                                         size_t,
                                                         uint8_t*) const;
template size_t BasicSkipTrie<U64Traits>::predecessor_batch(
    const uint64_t*, size_t, std::optional<uint64_t>*) const;

template size_t BasicSkipTrie<Bytes16Traits>::insert_batch(
    const Bytes16Traits::key_type*, size_t, uint8_t*);
template size_t BasicSkipTrie<Bytes16Traits>::erase_batch(
    const Bytes16Traits::key_type*, size_t, uint8_t*);
template size_t BasicSkipTrie<Bytes16Traits>::contains_batch(
    const Bytes16Traits::key_type*, size_t, uint8_t*) const;
template size_t BasicSkipTrie<Bytes16Traits>::predecessor_batch(
    const Bytes16Traits::key_type*, size_t,
    std::optional<Bytes16Traits::key_type>*) const;

}  // namespace skiptrie
