// SkipTrie batched operations (DESIGN.md §3.7): sort, then stream the keys
// through one DescentCursor.  Each key is processed under its own EBR pin
// and linearizes exactly like its single-key counterpart; between keys the
// cursor's retained nodes may be retired and recycled, which the reuse
// screen (cursor.cpp) tolerates by construction.
#include <algorithm>
#include <cassert>
#include <numeric>

#include "core/batch.h"
#include "core/skiptrie.h"
#include "skiplist/cursor.h"

namespace skiptrie {

namespace batch_detail {

std::vector<uint32_t> sorted_order(const uint64_t* keys, size_t n) {
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  // Stable: duplicate keys keep their input order, so "first occurrence
  // wins" semantics hold for insert/erase result reporting.
  std::stable_sort(order.begin(), order.end(),
                   [keys](uint32_t a, uint32_t b) { return keys[a] < keys[b]; });
  return order;
}

}  // namespace batch_detail

size_t SkipTrie::insert_batch(const uint64_t* keys, size_t n,
                              uint8_t* results) {
  if (n == 0) return 0;
  if (!cfg_.use_cursor_batching) {
    return batch_detail::for_each_sorted(keys, n, [&](uint64_t k, uint32_t i) {
      const bool hit = insert(k);
      if (results != nullptr) results[i] = hit;
      return hit;
    });
  }
  DescentCursor& cur = engine_.cursor();
  return batch_detail::for_each_sorted(keys, n, [&](uint64_t k, uint32_t i) {
    assert(k <= max_key());
    EbrDomain::Guard g(ebr_);
    const uint64_t x = ikey_of(k);
    TrieStartEnv env{&trie_, k};
    // cold_min_level = top: a batch keeps every retained row descent-fresh
    // (never a bare level head), so later keys of any tower height can
    // reuse brackets below their height (see cursor.h).
    const SkipListEngine::InsertResult r = engine_.cursor_insert(
        cur, x, tower_height(x), engine_.top_level(), &trie_start, &env);
    const bool hit = finish_insert(k, r);
    if (results != nullptr) results[i] = hit;
    return hit;
  });
}

size_t SkipTrie::erase_batch(const uint64_t* keys, size_t n,
                             uint8_t* results) {
  if (n == 0) return 0;
  if (!cfg_.use_cursor_batching) {
    return batch_detail::for_each_sorted(keys, n, [&](uint64_t k, uint32_t i) {
      const bool hit = erase(k);
      if (results != nullptr) results[i] = hit;
      return hit;
    });
  }
  DescentCursor& cur = engine_.cursor();
  return batch_detail::for_each_sorted(keys, n, [&](uint64_t k, uint32_t i) {
    assert(k <= max_key());
    EbrDomain::Guard g(ebr_);
    const uint64_t x = ikey_of(k);
    TrieStartEnv env{&trie_, k};
    const SkipListEngine::EraseResult r =
        engine_.cursor_erase(cur, x, &trie_start, &env);
    const bool hit = finish_erase(k, r);
    if (results != nullptr) results[i] = hit;
    return hit;
  });
}

size_t SkipTrie::contains_batch(const uint64_t* keys, size_t n,
                                uint8_t* results) const {
  if (n == 0) return 0;
  if (!cfg_.use_cursor_batching) {
    return batch_detail::for_each_sorted(keys, n, [&](uint64_t k, uint32_t i) {
      const bool hit = contains(k);
      if (results != nullptr) results[i] = hit;
      return hit;
    });
  }
  DescentCursor& cur = engine_.cursor();
  return batch_detail::for_each_sorted(keys, n, [&](uint64_t k, uint32_t i) {
    assert(k <= max_key());
    EbrDomain::Guard g(ebr_);
    const uint64_t x = ikey_of(k);
    TrieStartEnv env{&trie_, k};
    const SkipListEngine::Bracket b =
        engine_.cursor_descend(cur, x, &trie_start, &env);
    const bool hit = b.right->ikey() == x;
    if (results != nullptr) results[i] = hit;
    return hit;
  });
}

size_t SkipTrie::predecessor_batch(const uint64_t* keys, size_t n,
                                   std::optional<uint64_t>* results) const {
  if (n == 0) return 0;
  if (!cfg_.use_cursor_batching) {
    return batch_detail::for_each_sorted(keys, n, [&](uint64_t k, uint32_t i) {
      const std::optional<uint64_t> p = predecessor(k);
      if (results != nullptr) results[i] = p;
      return p.has_value();
    });
  }
  DescentCursor& cur = engine_.cursor();
  return batch_detail::for_each_sorted(keys, n, [&](uint64_t k, uint32_t i) {
    assert(k <= max_key());
    EbrDomain::Guard g(ebr_);
    // Largest ikey <= ikey(k)  <=>  bracket left of x = ikey(k) + 1.
    const uint64_t x = ikey_of(k) + 1;
    TrieStartEnv env{&trie_, k};
    const SkipListEngine::Bracket b =
        engine_.cursor_descend(cur, x, &trie_start, &env);
    std::optional<uint64_t> p;
    if (b.left->kind() == NodeKind::kInterior) p = b.left->ikey() - 1;
    if (results != nullptr) results[i] = p;
    return p.has_value();
  });
}

}  // namespace skiptrie
