#include "core/skiptrie.h"

#include <cassert>

#include "common/bitops.h"
#include "common/random.h"

namespace skiptrie {

template <typename Traits>
auto BasicSkipTrie<Traits>::trie_start(void* env, Ikey x) -> Node_t* {
  auto* e = static_cast<TrieStartEnv*>(env);
  return e->trie->pred_start(e->key, x);
}

template <typename Traits>
uint32_t BasicSkipTrie<Traits>::tower_height(Ikey x) const {
  return deterministic_height_mixed(cfg_.seed, Traits::height_mix(x),
                                    engine_.top_level());
}

template <typename Traits>
BasicSkipTrie<Traits>::BasicSkipTrie(const Config& cfg)
    : cfg_(cfg),
      arena_(sizeof(Node_t), kCacheLine, cfg.arena_blocks_per_slab),
      ebr_(),
      ctx_{&ebr_, cfg.dcss_mode},
      engine_(ctx_, arena_, ceil_log2(cfg.universe_bits)),
      trie_(ctx_, engine_, cfg.universe_bits, cfg.max_hash_buckets) {
  assert(cfg.universe_bits >= 4 && cfg.universe_bits <= Traits::kMaxBits);
  engine_.set_finger_enabled(cfg.use_finger);
  engine_.enable_leaf_chunking(cfg.leaf_chunking);
  if (cfg.adaptive_heights) {
    adapt_ = std::make_unique<AdaptiveHeightManager>();
  }
}

template <typename Traits>
auto BasicSkipTrie<Traits>::locate(key_type key, Ikey x,
                                   LocateExact exact) const ->
    typename Engine::Bracket {
  TrieStartEnv env{&trie_, key};
  return engine_.fingered_descend(
      x, /*min_level=*/0, &trie_start, &env, /*hints=*/nullptr,
      adapt_ != nullptr ? exact : LocateExact::kNone);
}

template <typename Traits>
void BasicSkipTrie<Traits>::maybe_adapt(Node_t* n) const {
  AdaptiveHeightManager* am = adapt_.get();
  if (am == nullptr) return;
  uint64_t& tick = tls_adapt_tick();
  ++tick;
  if ((tick & ((1ull << AdaptiveHeightManager::kSamplePeriodLog2) - 1)) != 0) {
    return;  // hot path: one thread-local increment per read
  }
  if (n == nullptr || n->kind() != NodeKind::kInterior || n->level() != 0) {
    return;
  }
  auto& c = tls_counters();
  c.adapt_checks++;
  const Ikey x = n->ikey();
  if (x == Ikey(0) || x == Traits::ikey_max()) return;  // recycled/poisoned
  const uint64_t fp = Traits::height_mix(x);
  const uint32_t cnt = am->note(fp);
  const uint64_t tot = am->total();
  const uint32_t top = engine_.top_level();
  // The root's height byte is the current-height hint (node.h): reading it
  // screens out already-tall towers without probing the tower itself.
  const uint32_t cur_h = n->orig_height();
  if (cur_h > top) return;  // torn/poisoned meta — just a missed sample
  const uint32_t want =
      AdaptiveHeightManager::desired_height(cnt, tot, cur_h, top);
  if (want <= cur_h) return;
  if (!am->try_latch(fp)) return;  // another thread is adapting this stripe
  // Re-validate under the latch (the node may have been erased or recycled
  // since the read observed it); promote_tower re-checks all of this again
  // via pointer identity, so a stale pass here only costs steps.
  if (n->kind() == NodeKind::kInterior && n->level() == 0 && n->ikey() == x &&
      n->stopw.load(std::memory_order_relaxed) == 0 &&
      !is_marked(dcss_read(n->next))) {
    adapt_promote(x, n, want);
  }
  am->unlatch(fp);
}

template <typename Traits>
void BasicSkipTrie<Traits>::adapt_promote(Ikey x, Node_t* root,
                                          uint32_t want) const {
  const uint32_t base_h = tower_height(x);
  const typename Engine::PromoteResult pr =
      engine_.promote_tower(x, root, want);
  const key_type key = static_cast<key_type>(x - Ikey(1));
  if (pr.top != nullptr) {
    // Coverage invariant (DESIGN.md §3.4/§8.3): a tower reaching the top
    // level must be indexed by the x-fast trie, exactly as finish_insert
    // does for an insert-time raise.
    trie_.insert_prefixes(key, pr.top);
    top_live_.fetch_add(1, std::memory_order_relaxed);
  }
  if (pr.undone_top != nullptr) {
    // CAS-fallback top undo (DESIGN.md §3.5(5)): sweep then retire.
    trie_.remove_prefixes(key, pr.undone_top, nullptr);
    engine_.retire_node(pr.undone_top);
  }
  if (!pr.raised) return;
  root->set_height_hint(pr.new_height);
  adapt_->record_promoted(Traits::height_mix(x), root, base_h);
  adapt_->add_promotion();
  tls_counters().promotions++;
  // Each promotion pays for a bounded demotion scan (splay-list-style
  // amortized rotation): cold promoted towers get found without any
  // background thread.
  adapt_demote_scan();
}

template <typename Traits>
void BasicSkipTrie<Traits>::adapt_demote_scan() const {
  AdaptiveHeightManager* am = adapt_.get();
  AdaptiveHeightManager::Promoted cand;
  if (!am->next_demote_candidate(
          &cand, AdaptiveHeightManager::kDemoteScanPerPromote)) {
    return;
  }
  Node_t* root = static_cast<Node_t*>(cand.root);
  if (!am->try_latch(cand.fp)) return;  // may collide with the promote
                                        // latch we hold — skip, not block
  const Ikey x = root->ikey();
  const uint32_t top = engine_.top_level();
  // Typed validation of the opaque registry pointer: storage is type-stable
  // (DESIGN.md §3.3) so the reads are safe, and a recycled/re-keyed node
  // fails the fingerprint or kind/level screen and just drops the slot.
  const bool valid =
      root->kind() == NodeKind::kInterior && root->level() == 0 &&
      x != Ikey(0) && x != Traits::ikey_max() &&
      Traits::height_mix(x) == cand.fp &&
      !is_marked(dcss_read(root->next)) &&
      root->stopw.load(std::memory_order_relaxed) == 0 && cand.base_h < top;
  if (!valid) {
    am->drop_promoted(cand.root);
    am->unlatch(cand.fp);
    return;
  }
  const uint32_t cur_h = root->orig_height();
  if (cur_h <= cand.base_h || cur_h > top ||
      !AdaptiveHeightManager::is_cold(am->count_of(cand.fp), am->total(),
                                      cur_h, top)) {
    am->unlatch(cand.fp);
    return;
  }
  const key_type key = static_cast<key_type>(x - Ikey(1));
  const typename Engine::EraseResult dr =
      engine_.demote_tower(x, root, cand.base_h);
  if (dr.top != nullptr) {
    // Demote won the top mark: it owns the trie sweep (engine.h contract).
    trie_.remove_prefixes(key, dr.top, dr.top_left);
    top_live_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (dr.erased) {
    root->set_height_hint(cand.base_h);
    am->drop_promoted(cand.root);
    am->add_demotion();
    tls_counters().demotions++;
  }
  engine_.retire_owned(dr);
  am->unlatch(cand.fp);
}

template <typename Traits>
auto BasicSkipTrie<Traits>::max_key() const -> key_type {
  const Ikey mask = Traits::universe_mask(cfg_.universe_bits);
  return cfg_.universe_bits >= Traits::kMaxBits ? mask - Ikey(2) : mask;
}

template <typename Traits>
bool BasicSkipTrie<Traits>::finish_insert(
    key_type key, const typename Engine::InsertResult& r) {
  if (!r.inserted) return false;
  size_.fetch_add(1, std::memory_order_relaxed);
  if (r.top != nullptr) {
    trie_.insert_prefixes(key, r.top);
    top_live_.fetch_add(1, std::memory_order_relaxed);
  }
  if (r.undone_top != nullptr) {
    // CAS-fallback top-level undo (DESIGN.md §3.5(5)): the node was briefly
    // linked at the top, so a concurrent Alg. 7 swing may have installed it
    // into the trie.  Sweep before its storage can be recycled.
    trie_.remove_prefixes(key, r.undone_top, nullptr);
    engine_.retire_node(r.undone_top);
  }
  return true;
}

template <typename Traits>
bool BasicSkipTrie<Traits>::finish_erase(key_type key,
                                         const typename Engine::EraseResult& r) {
  if (!r.erased) return false;
  size_.fetch_sub(1, std::memory_order_relaxed);
  if (r.top != nullptr) {
    // Algorithm 7's trie sweep must finish before the tower's storage can
    // be recycled; only then retire the nodes we own.
    trie_.remove_prefixes(key, r.top, r.top_left);
    top_live_.fetch_sub(1, std::memory_order_relaxed);
  }
  engine_.retire_owned(r);
  return true;
}

template <typename Traits>
bool BasicSkipTrie<Traits>::insert(key_type key) {
  assert(key <= max_key());
  EbrDomain::Guard g(ebr_);
  const Ikey x = ikey_of(key);
  TrieStartEnv env{&trie_, key};
  const typename Engine::InsertResult r =
      engine_.fingered_insert(x, tower_height(x), &trie_start, &env);
  return finish_insert(key, r);
}

template <typename Traits>
bool BasicSkipTrie<Traits>::erase(key_type key) {
  assert(key <= max_key());
  EbrDomain::Guard g(ebr_);
  const Ikey x = ikey_of(key);
  TrieStartEnv env{&trie_, key};
  const typename Engine::EraseResult r =
      engine_.fingered_erase(x, &trie_start, &env);
  return finish_erase(key, r);
}

template <typename Traits>
bool BasicSkipTrie<Traits>::contains(key_type key) const {
  assert(key <= max_key());
  EbrDomain::Guard g(ebr_);
  const Ikey x = ikey_of(key);
  const typename Engine::Bracket b = locate(key, x, LocateExact::kRight);
  const bool found = b.right->ikey() == x;
  // Whether found at level 0 or via the exact exit, b.right is the target's
  // level-0 node — the sampled frequency signal (DESIGN.md §8.1).
  if (found) maybe_adapt(b.right);
  return found;
}

template <typename Traits>
auto BasicSkipTrie<Traits>::predecessor(key_type key) const
    -> std::optional<key_type> {
  assert(key <= max_key());
  EbrDomain::Guard g(ebr_);
  // Largest ikey <= ikey(key)  <=>  bracket left of x = ikey(key) + 1.
  const Ikey x = ikey_of(key) + Ikey(1);
  const typename Engine::Bracket b = locate(key, x, LocateExact::kLeft);
  if (b.left->kind() != NodeKind::kInterior) return std::nullopt;  // head
  // Sample the answer's tower: promoting it is what lets later queries in
  // this neighborhood take the kLeft exact exit (DESIGN.md §8.1).
  maybe_adapt(b.left->level() == 0 ? b.left : b.left->root());
  return b.left->ikey() - Ikey(1);
}

template <typename Traits>
auto BasicSkipTrie<Traits>::strict_predecessor(key_type key) const
    -> std::optional<key_type> {
  assert(key <= max_key());
  EbrDomain::Guard g(ebr_);
  const Ikey x = ikey_of(key);
  const typename Engine::Bracket b = locate(key, x, LocateExact::kLeft);
  if (b.left->kind() != NodeKind::kInterior) return std::nullopt;
  maybe_adapt(b.left->level() == 0 ? b.left : b.left->root());
  return b.left->ikey() - Ikey(1);
}

template <typename Traits>
auto BasicSkipTrie<Traits>::successor(key_type key) const
    -> std::optional<key_type> {
  assert(key <= max_key());
  EbrDomain::Guard g(ebr_);
  const Ikey x = ikey_of(key) + Ikey(1);  // first node with ikey >= ikey(key)+1
  const typename Engine::Bracket b = locate(key, x, LocateExact::kRight);
  if (b.right->kind() != NodeKind::kInterior) return std::nullopt;  // tail
  maybe_adapt(b.right->level() == 0 ? b.right : b.right->root());
  return b.right->ikey() - Ikey(1);
}

template <typename Traits>
auto BasicSkipTrie<Traits>::min_key() const -> std::optional<key_type> {
  EbrDomain::Guard g(ebr_);
  // First node with ikey >= 1, i.e. the smallest key.  No trie fallback:
  // pred_start(x=1) can only ever land on the head anyway.
  const typename Engine::Bracket b =
      engine_.fingered_descend(Ikey(1), /*min_level=*/0, nullptr, nullptr);
  if (b.right->kind() != NodeKind::kInterior) return std::nullopt;
  return b.right->ikey() - Ikey(1);
}

template <typename Traits>
auto BasicSkipTrie<Traits>::max_key_present() const
    -> std::optional<key_type> {
  return predecessor(max_key());
}

template <typename Traits>
size_t BasicSkipTrie<Traits>::size() const {
  // Counter updates are relaxed and happen after the operation linearizes,
  // so a reader racing an insert/erase pair may observe the decrement before
  // the increment: transiently negative, but never by more than the number
  // of threads with an erase in flight.  Saturate those windows to 0; a
  // deficit beyond the thread bound would be a real accounting bug (a lost
  // or double update), which the assert surfaces in debug builds instead of
  // silently clamping away.
  const int64_t s = size_.load(std::memory_order_relaxed);
  assert(s >= -static_cast<int64_t>(EbrDomain::kMaxThreads));
  return s > 0 ? static_cast<size_t>(s) : 0;
}

template <typename Traits>
auto BasicSkipTrie<Traits>::structure_stats() const -> StructureStats {
  EbrDomain::Guard g(ebr_);
  StructureStats s;
  const uint32_t top = engine_.top_level();
  for (uint32_t l = 0; l <= top; ++l) {
    size_t n = 0;
    for (Node_t* it = engine_.first_at(l); it != nullptr;
         it = engine_.next_at(it)) {
      ++n;
    }
    s.level_counts[l] = n;
  }
  s.keys = s.level_counts[0];
  s.top_count = s.level_counts[top];
  s.trie_entries = trie_.entry_count();
  s.arena_bytes = engine_.approx_bytes();
  s.trie_bytes = trie_.approx_bytes();
  s.hash_buckets = trie_.map().bucket_count();
  s.hash_dummies = trie_.map().dummy_count();
  s.hash_load_factor = trie_.map().load_factor();
  if (const auto* cm = engine_.leaf_chunks(); cm != nullptr) {
    // Walk the chunk list (quiescent, like the rest of this function) for
    // the structural view; occupancy uses the same definition as
    // LeafLiveStats but over the walked chunks.
    size_t chunks = 0, indexed = 0;
    cm->for_each_chunk([&](const auto& ch) {
      ++chunks;
      indexed += ch.count();
    });
    s.leaf_chunks = chunks;
    const size_t slots =
        chunks * LeafChunkManager<Traits>::Chunk::kKeys;
    s.avg_occupancy =
        slots > 0 ? static_cast<double>(indexed) / static_cast<double>(slots)
                  : 0.0;
  }

  // Gap statistics: number of level-0 keys strictly between consecutive
  // top-level nodes (the paper's "bucket" size, expected O(log u)).
  size_t gaps = 0, gap_total = 0, gap_cur = 0;
  Node_t* next_top = engine_.first_at(top);
  Ikey next_top_key =
      next_top != nullptr ? next_top->ikey() : Traits::ikey_max();
  for (Node_t* it = engine_.first_at(0); it != nullptr;
       it = engine_.next_at(it)) {
    if (it->ikey() >= next_top_key) {
      ++gaps;
      gap_total += gap_cur;
      if (gap_cur > s.max_top_gap) s.max_top_gap = gap_cur;
      gap_cur = 0;
      next_top = next_top != nullptr ? engine_.next_at(next_top) : nullptr;
      next_top_key =
          next_top != nullptr ? next_top->ikey() : Traits::ikey_max();
    } else {
      ++gap_cur;
    }
  }
  if (gap_cur > s.max_top_gap) s.max_top_gap = gap_cur;
  gap_total += gap_cur;
  s.avg_top_gap = gaps > 0 ? static_cast<double>(gap_total) /
                                 static_cast<double>(gaps + 1)
                           : static_cast<double>(gap_total);
  return s;
}

// Instantiates every member defined in this TU; the batch members are
// defined (and member-level instantiated) in batch.cpp.
template class BasicSkipTrie<U64Traits>;
template class BasicSkipTrie<Bytes16Traits>;

}  // namespace skiptrie
