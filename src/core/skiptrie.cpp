#include "core/skiptrie.h"

#include <cassert>

#include "common/bitops.h"
#include "common/random.h"

namespace skiptrie {

template <typename Traits>
auto BasicSkipTrie<Traits>::trie_start(void* env, Ikey x) -> Node_t* {
  auto* e = static_cast<TrieStartEnv*>(env);
  return e->trie->pred_start(e->key, x);
}

template <typename Traits>
uint32_t BasicSkipTrie<Traits>::tower_height(Ikey x) const {
  return deterministic_height_mixed(cfg_.seed, Traits::height_mix(x),
                                    engine_.top_level());
}

template <typename Traits>
BasicSkipTrie<Traits>::BasicSkipTrie(const Config& cfg)
    : cfg_(cfg),
      arena_(sizeof(Node_t), kCacheLine, cfg.arena_blocks_per_slab),
      ebr_(),
      ctx_{&ebr_, cfg.dcss_mode},
      engine_(ctx_, arena_, ceil_log2(cfg.universe_bits)),
      trie_(ctx_, engine_, cfg.universe_bits, cfg.max_hash_buckets) {
  assert(cfg.universe_bits >= 4 && cfg.universe_bits <= Traits::kMaxBits);
  engine_.set_finger_enabled(cfg.use_finger);
  engine_.enable_leaf_chunking(cfg.leaf_chunking);
}

template <typename Traits>
auto BasicSkipTrie<Traits>::locate(key_type key, Ikey x) const ->
    typename Engine::Bracket {
  TrieStartEnv env{&trie_, key};
  return engine_.fingered_descend(x, /*min_level=*/0, &trie_start, &env);
}

template <typename Traits>
auto BasicSkipTrie<Traits>::max_key() const -> key_type {
  const Ikey mask = Traits::universe_mask(cfg_.universe_bits);
  return cfg_.universe_bits >= Traits::kMaxBits ? mask - Ikey(2) : mask;
}

template <typename Traits>
bool BasicSkipTrie<Traits>::finish_insert(
    key_type key, const typename Engine::InsertResult& r) {
  if (!r.inserted) return false;
  size_.fetch_add(1, std::memory_order_relaxed);
  if (r.top != nullptr) {
    trie_.insert_prefixes(key, r.top);
  }
  if (r.undone_top != nullptr) {
    // CAS-fallback top-level undo (DESIGN.md §3.5(5)): the node was briefly
    // linked at the top, so a concurrent Alg. 7 swing may have installed it
    // into the trie.  Sweep before its storage can be recycled.
    trie_.remove_prefixes(key, r.undone_top, nullptr);
    engine_.retire_node(r.undone_top);
  }
  return true;
}

template <typename Traits>
bool BasicSkipTrie<Traits>::finish_erase(key_type key,
                                         const typename Engine::EraseResult& r) {
  if (!r.erased) return false;
  size_.fetch_sub(1, std::memory_order_relaxed);
  if (r.top != nullptr) {
    // Algorithm 7's trie sweep must finish before the tower's storage can
    // be recycled; only then retire the nodes we own.
    trie_.remove_prefixes(key, r.top, r.top_left);
  }
  engine_.retire_owned(r);
  return true;
}

template <typename Traits>
bool BasicSkipTrie<Traits>::insert(key_type key) {
  assert(key <= max_key());
  EbrDomain::Guard g(ebr_);
  const Ikey x = ikey_of(key);
  TrieStartEnv env{&trie_, key};
  const typename Engine::InsertResult r =
      engine_.fingered_insert(x, tower_height(x), &trie_start, &env);
  return finish_insert(key, r);
}

template <typename Traits>
bool BasicSkipTrie<Traits>::erase(key_type key) {
  assert(key <= max_key());
  EbrDomain::Guard g(ebr_);
  const Ikey x = ikey_of(key);
  TrieStartEnv env{&trie_, key};
  const typename Engine::EraseResult r =
      engine_.fingered_erase(x, &trie_start, &env);
  return finish_erase(key, r);
}

template <typename Traits>
bool BasicSkipTrie<Traits>::contains(key_type key) const {
  assert(key <= max_key());
  EbrDomain::Guard g(ebr_);
  const Ikey x = ikey_of(key);
  const typename Engine::Bracket b = locate(key, x);
  return b.right->ikey() == x;
}

template <typename Traits>
auto BasicSkipTrie<Traits>::predecessor(key_type key) const
    -> std::optional<key_type> {
  assert(key <= max_key());
  EbrDomain::Guard g(ebr_);
  // Largest ikey <= ikey(key)  <=>  bracket left of x = ikey(key) + 1.
  const Ikey x = ikey_of(key) + Ikey(1);
  const typename Engine::Bracket b = locate(key, x);
  if (b.left->kind() != NodeKind::kInterior) return std::nullopt;  // head
  return b.left->ikey() - Ikey(1);
}

template <typename Traits>
auto BasicSkipTrie<Traits>::strict_predecessor(key_type key) const
    -> std::optional<key_type> {
  assert(key <= max_key());
  EbrDomain::Guard g(ebr_);
  const Ikey x = ikey_of(key);
  const typename Engine::Bracket b = locate(key, x);
  if (b.left->kind() != NodeKind::kInterior) return std::nullopt;
  return b.left->ikey() - Ikey(1);
}

template <typename Traits>
auto BasicSkipTrie<Traits>::successor(key_type key) const
    -> std::optional<key_type> {
  assert(key <= max_key());
  EbrDomain::Guard g(ebr_);
  const Ikey x = ikey_of(key) + Ikey(1);  // first node with ikey >= ikey(key)+1
  const typename Engine::Bracket b = locate(key, x);
  if (b.right->kind() != NodeKind::kInterior) return std::nullopt;  // tail
  return b.right->ikey() - Ikey(1);
}

template <typename Traits>
auto BasicSkipTrie<Traits>::min_key() const -> std::optional<key_type> {
  EbrDomain::Guard g(ebr_);
  // First node with ikey >= 1, i.e. the smallest key.  No trie fallback:
  // pred_start(x=1) can only ever land on the head anyway.
  const typename Engine::Bracket b =
      engine_.fingered_descend(Ikey(1), /*min_level=*/0, nullptr, nullptr);
  if (b.right->kind() != NodeKind::kInterior) return std::nullopt;
  return b.right->ikey() - Ikey(1);
}

template <typename Traits>
auto BasicSkipTrie<Traits>::max_key_present() const
    -> std::optional<key_type> {
  return predecessor(max_key());
}

template <typename Traits>
size_t BasicSkipTrie<Traits>::size() const {
  // Counter updates are relaxed and happen after the operation linearizes,
  // so a reader racing an insert/erase pair may observe the decrement before
  // the increment: transiently negative, but never by more than the number
  // of threads with an erase in flight.  Saturate those windows to 0; a
  // deficit beyond the thread bound would be a real accounting bug (a lost
  // or double update), which the assert surfaces in debug builds instead of
  // silently clamping away.
  const int64_t s = size_.load(std::memory_order_relaxed);
  assert(s >= -static_cast<int64_t>(EbrDomain::kMaxThreads));
  return s > 0 ? static_cast<size_t>(s) : 0;
}

template <typename Traits>
auto BasicSkipTrie<Traits>::structure_stats() const -> StructureStats {
  EbrDomain::Guard g(ebr_);
  StructureStats s;
  const uint32_t top = engine_.top_level();
  for (uint32_t l = 0; l <= top; ++l) {
    size_t n = 0;
    for (Node_t* it = engine_.first_at(l); it != nullptr;
         it = engine_.next_at(it)) {
      ++n;
    }
    s.level_counts[l] = n;
  }
  s.keys = s.level_counts[0];
  s.top_count = s.level_counts[top];
  s.trie_entries = trie_.entry_count();
  s.arena_bytes = engine_.approx_bytes();
  s.trie_bytes = trie_.approx_bytes();
  s.hash_buckets = trie_.map().bucket_count();
  s.hash_dummies = trie_.map().dummy_count();
  s.hash_load_factor = trie_.map().load_factor();
  if (const auto* cm = engine_.leaf_chunks(); cm != nullptr) {
    // Walk the chunk list (quiescent, like the rest of this function) for
    // the structural view; occupancy uses the same definition as
    // LeafLiveStats but over the walked chunks.
    size_t chunks = 0, indexed = 0;
    cm->for_each_chunk([&](const auto& ch) {
      ++chunks;
      indexed += ch.count();
    });
    s.leaf_chunks = chunks;
    const size_t slots =
        chunks * LeafChunkManager<Traits>::Chunk::kKeys;
    s.avg_occupancy =
        slots > 0 ? static_cast<double>(indexed) / static_cast<double>(slots)
                  : 0.0;
  }

  // Gap statistics: number of level-0 keys strictly between consecutive
  // top-level nodes (the paper's "bucket" size, expected O(log u)).
  size_t gaps = 0, gap_total = 0, gap_cur = 0;
  Node_t* next_top = engine_.first_at(top);
  Ikey next_top_key =
      next_top != nullptr ? next_top->ikey() : Traits::ikey_max();
  for (Node_t* it = engine_.first_at(0); it != nullptr;
       it = engine_.next_at(it)) {
    if (it->ikey() >= next_top_key) {
      ++gaps;
      gap_total += gap_cur;
      if (gap_cur > s.max_top_gap) s.max_top_gap = gap_cur;
      gap_cur = 0;
      next_top = next_top != nullptr ? engine_.next_at(next_top) : nullptr;
      next_top_key =
          next_top != nullptr ? next_top->ikey() : Traits::ikey_max();
    } else {
      ++gap_cur;
    }
  }
  if (gap_cur > s.max_top_gap) s.max_top_gap = gap_cur;
  gap_total += gap_cur;
  s.avg_top_gap = gaps > 0 ? static_cast<double>(gap_total) /
                                 static_cast<double>(gaps + 1)
                           : static_cast<double>(gap_total);
  return s;
}

// Instantiates every member defined in this TU; the batch members are
// defined (and member-level instantiated) in batch.cpp.
template class BasicSkipTrie<U64Traits>;
template class BasicSkipTrie<Bytes16Traits>;

}  // namespace skiptrie
