// Structural validation (white-box invariants for tests).
//
// All checks require quiescence (no concurrent mutators); they walk raw
// chains and the prefix table and report human-readable violations.
// Templated over KeyTraits like the structure itself; explicit
// instantiations for both shipped traits live in validate.cpp.
#pragma once

#include <string>
#include <vector>

#include "core/skiptrie.h"

namespace skiptrie {

// Returns an empty vector when every invariant holds:
//  - every level list is strictly sorted by ikey and ends at the tail;
//  - every node at level l > 0 sits on a tower whose nodes share ikey/root
//    and whose root is present at level 0;
//  - every unmarked top-level node appears exactly once at the top level,
//    and its prev pointer (if set) names a node with a strictly smaller key;
//  - every trie child pointer either is null or points at a top-level node
//    whose key extends the prefix, and such a node is live;
//  - every key that reached the top level has its full prefix path in the
//    trie pointing to a covering node (coverage: pointers[0] >= key,
//    pointers[1] <= key within the prefix's subtree).
template <typename Traits>
std::vector<std::string> validate_structure(const BasicSkipTrie<Traits>& t);

}  // namespace skiptrie
