#include "baseline/lockfree_skiplist.h"

#include "common/random.h"

namespace skiptrie {

namespace {
Xoshiro256& baseline_rng(uint64_t seed) {
  thread_local uint64_t nonce = [] {
    static std::atomic<uint64_t> counter{0x1000};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }();
  thread_local Xoshiro256 rng(mix64(seed ^ mix64(nonce)));
  return rng;
}
}  // namespace

LockFreeSkipList::LockFreeSkipList(uint32_t levels, DcssMode mode,
                                   uint64_t seed, bool use_finger)
    : seed_(seed),
      arena_(sizeof(Node), kCacheLine, 4096),
      ebr_(),
      ctx_{&ebr_, mode},
      engine_(ctx_, arena_, levels) {
  engine_.set_finger_enabled(use_finger);
}

bool LockFreeSkipList::insert(uint64_t key) {
  EbrDomain::Guard g(ebr_);
  const uint64_t x = ikey_of(key);
  const uint32_t h =
      baseline_rng(seed_).geometric_height(engine_.top_level());
  // Null fallback = top-level head: the baseline has no trie, but it shares
  // the fingered entry points (DESIGN.md §3.6) so steps/op comparisons
  // against the SkipTrie isolate the paper's claim, not the finger.
  const auto r = engine_.fingered_insert(x, h, nullptr, nullptr);
  if (r.undone_top != nullptr) {
    // No trie indexes the baseline, so a CAS-fallback top-level undo needs
    // no sweep — just give the storage back.
    engine_.retire_node(r.undone_top);
  }
  if (r.inserted) size_.fetch_add(1, std::memory_order_relaxed);
  return r.inserted;
}

bool LockFreeSkipList::erase(uint64_t key) {
  EbrDomain::Guard g(ebr_);
  const uint64_t x = ikey_of(key);
  auto r = engine_.fingered_erase(x, nullptr, nullptr);
  if (!r.erased) return false;
  size_.fetch_sub(1, std::memory_order_relaxed);
  engine_.retire_owned(r);
  return true;
}

bool LockFreeSkipList::contains(uint64_t key) const {
  EbrDomain::Guard g(ebr_);
  const uint64_t x = ikey_of(key);
  const auto b = engine_.fingered_descend(x, 0, nullptr, nullptr);
  return b.right->ikey() == x;
}

std::optional<uint64_t> LockFreeSkipList::predecessor(uint64_t key) const {
  EbrDomain::Guard g(ebr_);
  const uint64_t x = ikey_of(key) + 1;
  const auto b = engine_.fingered_descend(x, 0, nullptr, nullptr);
  if (b.left->kind() != NodeKind::kInterior) return std::nullopt;
  return b.left->ikey() - 1;
}

std::optional<uint64_t> LockFreeSkipList::successor(uint64_t key) const {
  EbrDomain::Guard g(ebr_);
  const uint64_t x = ikey_of(key) + 1;
  const auto b = engine_.fingered_descend(x, 0, nullptr, nullptr);
  if (b.right->kind() != NodeKind::kInterior) return std::nullopt;
  return b.right->ikey() - 1;
}

size_t LockFreeSkipList::size() const {
  const int64_t s = size_.load(std::memory_order_relaxed);
  return s > 0 ? static_cast<size_t>(s) : 0;
}

}  // namespace skiptrie
