#include "baseline/lockfree_skiplist.h"

#include <cassert>

#include "common/random.h"
#include "core/batch.h"
#include "skiplist/cursor.h"

namespace skiptrie {

LockFreeSkipList::LockFreeSkipList(uint32_t levels, DcssMode mode,
                                   uint64_t seed, bool use_finger)
    : seed_(seed),
      arena_(sizeof(Node), kCacheLine, 4096),
      ebr_(),
      ctx_{&ebr_, mode},
      engine_(ctx_, arena_, levels) {
  engine_.set_finger_enabled(use_finger);
}

bool LockFreeSkipList::insert(uint64_t key) {
  EbrDomain::Guard g(ebr_);
  const uint64_t x = ikey_of(key);
  const uint32_t h = deterministic_height(seed_, x, engine_.top_level());
  // Null fallback = top-level head: the baseline has no trie, but it shares
  // the cursor entry points (DESIGN.md §3.6–§3.7) so steps/op comparisons
  // against the SkipTrie isolate the paper's claim, not the finger.
  const auto r = engine_.fingered_insert(x, h, nullptr, nullptr);
  if (r.undone_top != nullptr) {
    // No trie indexes the baseline, so a CAS-fallback top-level undo needs
    // no sweep — just give the storage back.
    engine_.retire_node(r.undone_top);
  }
  if (r.inserted) size_.fetch_add(1, std::memory_order_relaxed);
  return r.inserted;
}

bool LockFreeSkipList::erase(uint64_t key) {
  EbrDomain::Guard g(ebr_);
  const uint64_t x = ikey_of(key);
  auto r = engine_.fingered_erase(x, nullptr, nullptr);
  if (!r.erased) return false;
  size_.fetch_sub(1, std::memory_order_relaxed);
  engine_.retire_owned(r);
  return true;
}

bool LockFreeSkipList::contains(uint64_t key) const {
  EbrDomain::Guard g(ebr_);
  const uint64_t x = ikey_of(key);
  const auto b = engine_.fingered_descend(x, 0, nullptr, nullptr);
  return b.right->ikey() == x;
}

std::optional<uint64_t> LockFreeSkipList::predecessor(uint64_t key) const {
  EbrDomain::Guard g(ebr_);
  const uint64_t x = ikey_of(key) + 1;
  const auto b = engine_.fingered_descend(x, 0, nullptr, nullptr);
  if (b.left->kind() != NodeKind::kInterior) return std::nullopt;
  return b.left->ikey() - 1;
}

std::optional<uint64_t> LockFreeSkipList::successor(uint64_t key) const {
  EbrDomain::Guard g(ebr_);
  const uint64_t x = ikey_of(key) + 1;
  const auto b = engine_.fingered_descend(x, 0, nullptr, nullptr);
  if (b.right->kind() != NodeKind::kInterior) return std::nullopt;
  return b.right->ikey() - 1;
}

size_t LockFreeSkipList::size() const {
  const int64_t s = size_.load(std::memory_order_relaxed);
  return s > 0 ? static_cast<size_t>(s) : 0;
}

size_t LockFreeSkipList::insert_batch(const uint64_t* keys, size_t n,
                                      uint8_t* results) {
  if (n == 0) return 0;
  if (!cursor_batching_) {
    return batch_detail::for_each_sorted(keys, n, [&](uint64_t k, uint32_t i) {
      const bool hit = insert(k);
      if (results != nullptr) results[i] = hit;
      return hit;
    });
  }
  DescentCursor& cur = engine_.cursor();
  return batch_detail::for_each_sorted(keys, n, [&](uint64_t k, uint32_t i) {
    EbrDomain::Guard g(ebr_);
    const uint64_t x = ikey_of(k);
    const uint32_t h = deterministic_height(seed_, x, engine_.top_level());
    const auto r = engine_.cursor_insert(cur, x, h, engine_.top_level(),
                                         nullptr, nullptr);
    if (r.undone_top != nullptr) engine_.retire_node(r.undone_top);
    if (r.inserted) size_.fetch_add(1, std::memory_order_relaxed);
    if (results != nullptr) results[i] = r.inserted;
    return r.inserted;
  });
}

size_t LockFreeSkipList::erase_batch(const uint64_t* keys, size_t n,
                                     uint8_t* results) {
  if (n == 0) return 0;
  if (!cursor_batching_) {
    return batch_detail::for_each_sorted(keys, n, [&](uint64_t k, uint32_t i) {
      const bool hit = erase(k);
      if (results != nullptr) results[i] = hit;
      return hit;
    });
  }
  DescentCursor& cur = engine_.cursor();
  return batch_detail::for_each_sorted(keys, n, [&](uint64_t k, uint32_t i) {
    EbrDomain::Guard g(ebr_);
    const uint64_t x = ikey_of(k);
    auto r = engine_.cursor_erase(cur, x, nullptr, nullptr);
    if (r.erased) {
      size_.fetch_sub(1, std::memory_order_relaxed);
      engine_.retire_owned(r);
    }
    if (results != nullptr) results[i] = r.erased;
    return r.erased;
  });
}

size_t LockFreeSkipList::contains_batch(const uint64_t* keys, size_t n,
                                        uint8_t* results) const {
  if (n == 0) return 0;
  if (!cursor_batching_) {
    return batch_detail::for_each_sorted(keys, n, [&](uint64_t k, uint32_t i) {
      const bool hit = contains(k);
      if (results != nullptr) results[i] = hit;
      return hit;
    });
  }
  DescentCursor& cur = engine_.cursor();
  return batch_detail::for_each_sorted(keys, n, [&](uint64_t k, uint32_t i) {
    EbrDomain::Guard g(ebr_);
    const uint64_t x = ikey_of(k);
    const auto b = engine_.cursor_descend(cur, x, nullptr, nullptr);
    const bool hit = b.right->ikey() == x;
    if (results != nullptr) results[i] = hit;
    return hit;
  });
}

size_t LockFreeSkipList::predecessor_batch(
    const uint64_t* keys, size_t n, std::optional<uint64_t>* results) const {
  if (n == 0) return 0;
  if (!cursor_batching_) {
    return batch_detail::for_each_sorted(keys, n, [&](uint64_t k, uint32_t i) {
      const std::optional<uint64_t> p = predecessor(k);
      if (results != nullptr) results[i] = p;
      return p.has_value();
    });
  }
  DescentCursor& cur = engine_.cursor();
  return batch_detail::for_each_sorted(keys, n, [&](uint64_t k, uint32_t i) {
    EbrDomain::Guard g(ebr_);
    const uint64_t x = ikey_of(k) + 1;
    const auto b = engine_.cursor_descend(cur, x, nullptr, nullptr);
    std::optional<uint64_t> p;
    if (b.left->kind() == NodeKind::kInterior) p = b.left->ikey() - 1;
    if (results != nullptr) results[i] = p;
    return p.has_value();
  });
}

}  // namespace skiptrie
