// Full-height lock-free skiplist baseline.
//
// This is the paper's comparison class: "all concurrent search structures
// that support predecessor queries have had depth ... logarithmic in m"
// (§1).  We build it on the very same SkipListEngine as the SkipTrie's
// truncated skiplist — same listSearch, marks, back pointers and tower
// discipline — but with ~log2(m) levels and no x-fast trie: every search
// starts at the head of the highest level.  Benchmarks that compare
// steps/op between SkipTrie and this baseline therefore isolate exactly the
// paper's claim (log log u + c vs log m + c), not incidental implementation
// differences.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "reclaim/arena.h"
#include "reclaim/ebr.h"
#include "skiplist/engine.h"

namespace skiptrie {

class LockFreeSkipList {
 public:
  // levels: number of index levels; 20 supports ~2^20 keys at the usual
  // 1/2 promotion probability (depth log m).  use_finger mirrors
  // Config::use_finger so ablation runs can unfinger both structures —
  // comparing a fingered baseline against an unfingered SkipTrie would
  // conflate the finger's benefit with the trie's.
  explicit LockFreeSkipList(uint32_t levels = 20,
                            DcssMode mode = DcssMode::kDcss,
                            uint64_t seed = 0x5eed5eed5eed5eedull,
                            bool use_finger = true);

  bool insert(uint64_t key);
  bool erase(uint64_t key);
  bool contains(uint64_t key) const;
  std::optional<uint64_t> predecessor(uint64_t key) const;  // largest <= key
  std::optional<uint64_t> successor(uint64_t key) const;    // smallest > key

  // Batched operations (DESIGN.md §3.7): same contract as SkipTrie's —
  // sort, stream through one DescentCursor, results in input order, each
  // key linearizing individually.  Provided on the baseline so batched
  // steps/op comparisons isolate the paper's claim, like the single-key
  // seam does.
  size_t insert_batch(const uint64_t* keys, size_t n,
                      uint8_t* results = nullptr);
  size_t erase_batch(const uint64_t* keys, size_t n,
                     uint8_t* results = nullptr);
  size_t contains_batch(const uint64_t* keys, size_t n,
                        uint8_t* results = nullptr) const;
  size_t predecessor_batch(const uint64_t* keys, size_t n,
                           std::optional<uint64_t>* results = nullptr) const;

  size_t insert_batch(const std::vector<uint64_t>& keys,
                      uint8_t* results = nullptr) {
    return insert_batch(keys.data(), keys.size(), results);
  }
  size_t erase_batch(const std::vector<uint64_t>& keys,
                     uint8_t* results = nullptr) {
    return erase_batch(keys.data(), keys.size(), results);
  }
  size_t contains_batch(const std::vector<uint64_t>& keys,
                        uint8_t* results = nullptr) const {
    return contains_batch(keys.data(), keys.size(), results);
  }
  size_t predecessor_batch(const std::vector<uint64_t>& keys,
                           std::optional<uint64_t>* results = nullptr) const {
    return predecessor_batch(keys.data(), keys.size(), results);
  }

  // Mirrors Config::use_cursor_batching (ablation; not thread-safe against
  // concurrent operations).
  void set_cursor_batching(bool on) { cursor_batching_ = on; }

  size_t size() const;
  SkipListEngine& engine() { return engine_; }
  EbrDomain& ebr() const { return ebr_; }

 private:
  uint64_t ikey_of(uint64_t key) const { return key + 1; }

  uint64_t seed_;
  bool cursor_batching_ = true;
  mutable SlabArena arena_;
  mutable EbrDomain ebr_;
  DcssContext ctx_;
  mutable SkipListEngine engine_;
  std::atomic<int64_t> size_{0};
};

// Coarse reader-writer-locked std::map baseline (the "easy" comparator for
// single-thread sanity and contention contrast).
class LockedMap;

}  // namespace skiptrie
