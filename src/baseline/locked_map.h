// Reader-writer-locked std::map baseline.
//
// The "obvious" thread-safe ordered set: a balanced tree (log m depth)
// behind a shared_mutex.  Included so benchmarks can show both axes the
// paper motivates: search depth (log m vs log log u) and the collapse of
// lock-based structures under write contention.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>

namespace skiptrie {

class LockedMap {
 public:
  bool insert(uint64_t key) {
    std::unique_lock lk(mu_);
    return set_.insert({key, true}).second;
  }

  bool erase(uint64_t key) {
    std::unique_lock lk(mu_);
    return set_.erase(key) > 0;
  }

  bool contains(uint64_t key) const {
    std::shared_lock lk(mu_);
    return set_.find(key) != set_.end();
  }

  // Largest key' <= key.
  std::optional<uint64_t> predecessor(uint64_t key) const {
    std::shared_lock lk(mu_);
    auto it = set_.upper_bound(key);
    if (it == set_.begin()) return std::nullopt;
    --it;
    return it->first;
  }

  std::optional<uint64_t> successor(uint64_t key) const {
    std::shared_lock lk(mu_);
    auto it = set_.upper_bound(key);
    if (it == set_.end()) return std::nullopt;
    return it->first;
  }

  size_t size() const {
    std::shared_lock lk(mu_);
    return set_.size();
  }

 private:
  mutable std::shared_mutex mu_;
  std::map<uint64_t, bool> set_;
};

}  // namespace skiptrie
