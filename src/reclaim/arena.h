// Type-stable slab arena with per-thread free caches.
//
// Skiplist nodes are allocated here.  Storage handed out by the arena is
// never returned to the OS while the arena lives, so a stale guide pointer
// (back/prev — see DESIGN.md §3.3) always lands on memory that is still a
// valid object of the node type: the worst a reader can observe is a
// poisoned or recycled node, which traversal-level validation detects.
//
// Allocation fast path: pop from a thread-local cache (no synchronization).
// Slow path: grab a batch from the global spill list (spinlock) or bump-
// allocate a new slab.  recycle() pushes to the thread-local cache and
// spills batches when the cache overflows, so cross-thread free/alloc
// imbalance is bounded.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace skiptrie {

class SlabArena {
 public:
  // block_size: bytes per object (rounded up to alignment).
  // align: object alignment, power of two, >= 8.
  explicit SlabArena(size_t block_size, size_t align = 64,
                     size_t blocks_per_slab = 4096);
  ~SlabArena();

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  // Returns storage of block_size bytes.  Never nullptr.  If fresh is
  // non-null, *fresh is set to true when the block has never been handed
  // out before (callers placement-new only on fresh blocks; recycled blocks
  // still contain a live, poisoned object — see DESIGN.md §3.3).
  void* allocate(bool* fresh = nullptr);

  // Makes the block available for future allocate() calls.  The caller is
  // responsible for having poisoned/destroyed the object first.
  void recycle(void* p);

  size_t block_size() const { return block_size_; }
  // Total bytes reserved from the OS (live + free-cached), for space benches.
  size_t bytes_reserved() const {
    return bytes_reserved_.load(std::memory_order_relaxed);
  }
  // Blocks handed out minus blocks recycled (approximate live count).
  int64_t live_blocks() const {
    return allocated_.load(std::memory_order_relaxed) -
           recycled_.load(std::memory_order_relaxed);
  }

 private:
  struct ThreadCache {
    SlabArena* arena = nullptr;  // nulled if the arena dies first
    std::vector<void*> free_blocks;
    ~ThreadCache();
  };
  static constexpr size_t kCacheHigh = 128;  // spill half above this
  static constexpr size_t kBatch = 32;       // refill batch from global

  ThreadCache& cache();
  void* slow_allocate(ThreadCache& c, bool* fresh);
  void spill(ThreadCache& c);

  const size_t block_size_;
  const size_t align_;
  const size_t blocks_per_slab_;

  std::mutex mu_;                  // guards slabs_, global_free_, registered_
  std::vector<char*> slabs_;       // owned slab storage
  char* bump_ = nullptr;           // next unallocated byte in current slab
  char* bump_end_ = nullptr;
  std::vector<void*> global_free_;
  std::vector<ThreadCache*> registered_;

  std::atomic<size_t> bytes_reserved_{0};
  std::atomic<int64_t> allocated_{0};
  std::atomic<int64_t> recycled_{0};
};

}  // namespace skiptrie
