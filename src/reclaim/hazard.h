// Hazard-pointer reclamation domain (Michael 2004).
//
// Provided as the alternative safe-memory-reclamation substrate alongside
// EBR.  The SkipTrie itself uses EBR + the type-stable arena (guide pointers
// make per-pointer protection awkward, see DESIGN.md §3.3), but hazard
// pointers are the scheme the reproduction-calibration notes call out, and
// they are the right tool for pointer-at-a-time structures such as the
// split-ordered hash table when used standalone.  Fully implemented and
// tested; usable by downstream code via the public header.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/cacheline.h"

namespace skiptrie {

class HazardDomain {
 public:
  static constexpr uint32_t kMaxThreads = 192;
  static constexpr uint32_t kSlotsPerThread = 4;
  static constexpr size_t kScanThreshold = 64;

  HazardDomain() = default;
  ~HazardDomain();

  HazardDomain(const HazardDomain&) = delete;
  HazardDomain& operator=(const HazardDomain&) = delete;

  // Protect a pointer loaded from `src`: publishes the value in a hazard
  // slot and re-reads until the publication is consistent with the source.
  // Returns the protected value.
  template <typename T>
  T* protect(uint32_t slot, const std::atomic<T*>& src) {
    T* p = src.load(std::memory_order_acquire);
    for (;;) {
      set(slot, p);
      T* q = src.load(std::memory_order_acquire);
      if (q == p) return p;
      p = q;
    }
  }

  // Publish a raw pointer value in a hazard slot (caller validates).
  void set(uint32_t slot, const void* p);
  void clear(uint32_t slot);
  void clear_all();

  // Defer deletion of `ptr` until no hazard slot holds it.
  void retire(void* ptr, void (*fn)(void*, void*), void* ctx);

  template <typename T>
  void retire_delete(T* ptr) {
    retire(
        ptr, [](void* p, void*) { delete static_cast<T*>(p); }, nullptr);
  }

  // Reclaim whatever is reclaimable now (test hook / destructor path).
  void scan();

 private:
  struct Retired {
    void* ptr;
    void (*fn)(void*, void*);
    void* ctx;
  };
  struct ThreadState {
    HazardDomain* domain = nullptr;
    uint32_t base_slot = 0;  // first of kSlotsPerThread slots
    std::vector<Retired> retired;
    ~ThreadState();
  };

  ThreadState* thread_state();
  void scan(ThreadState* ts);
  void release(ThreadState* ts);

  Padded<std::atomic<const void*>> hazards_[kMaxThreads * kSlotsPerThread];
  std::atomic<uint32_t> thread_watermark_{0};
  std::mutex mu_;  // slot assignment + orphans + registry
  std::vector<uint32_t> free_threads_;
  std::vector<ThreadState*> registered_;
  std::vector<Retired> orphans_;
  bool free_threads_init_ = false;
};

}  // namespace skiptrie
