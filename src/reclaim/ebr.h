// Epoch-based reclamation (EBR).
//
// The paper's pseudocode assumes a garbage collector; in C++ we must decide
// when unlinked nodes can be reused.  Every public SkipTrie operation pins an
// epoch for its whole duration (a Guard).  A node retired in epoch e is only
// handed to its reclaimer once every pinned thread has observed an epoch
// >= e (two grace periods in the classic 3-epoch scheme), so any pointer a
// pinned thread loaded from a live chain stays dereferenceable until it
// unpins.
//
// Stale *guide* pointers (back/prev) can outlive this contract; the skiplist
// layers type-stable arena recycling on top (see reclaim/arena.h and
// DESIGN.md §3.3) so that even those dereferences stay memory-safe.
//
// Threads register implicitly on first use of a domain and may use any
// number of domains; per-domain thread state is found via a small
// thread-local registry.  Slot scanning is O(max registered threads).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/cacheline.h"

namespace skiptrie {

class EbrDomain;

namespace detail {

struct Retired {
  void* ptr;
  void (*fn)(void*, void*);  // (ptr, ctx)
  void* ctx;
  uint64_t epoch;
};

struct EbrThreadState {
  EbrDomain* domain = nullptr;  // nulled if the domain dies first
  uint32_t slot = 0;
  uint32_t pin_depth = 0;
  std::vector<Retired> retired;
  ~EbrThreadState();
};

}  // namespace detail

class EbrDomain {
 public:
  static constexpr uint32_t kMaxThreads = 192;
  // Try to advance/reclaim every this many retirements per thread.
  static constexpr size_t kScanThreshold = 64;

  EbrDomain();
  ~EbrDomain();

  EbrDomain(const EbrDomain&) = delete;
  EbrDomain& operator=(const EbrDomain&) = delete;

  // RAII pinned region; reentrant (nested guards share the outer pin).
  class Guard {
   public:
    explicit Guard(EbrDomain& d) : state_(d.thread_state()) { d.pin(state_); }
    ~Guard() { state_->domain->unpin(state_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    detail::EbrThreadState* state_;
  };

  // Defer `fn(ptr, ctx)` until the grace period passes.  Must be called with
  // the domain pinned by the calling thread.
  void retire(void* ptr, void (*fn)(void*, void*), void* ctx);

  // Convenience for delete-based reclamation.
  template <typename T>
  void retire_delete(T* ptr) {
    retire(
        ptr, [](void* p, void*) { delete static_cast<T*>(p); }, nullptr);
  }

  // Reclaim everything that is safe to reclaim right now (test/bench hook;
  // also used by destructors).  Not thread-safe against concurrent pins.
  void drain();

  uint64_t global_epoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }
  // Approximate count of callbacks still awaiting their grace period.
  size_t pending_retired() const;

 private:
  friend struct detail::EbrThreadState;

  detail::EbrThreadState* thread_state();
  void pin(detail::EbrThreadState* ts);
  void unpin(detail::EbrThreadState* ts);
  void try_advance_and_reclaim(detail::EbrThreadState* ts);
  bool all_quiescent_at(uint64_t epoch) const;
  void release_slot(detail::EbrThreadState* ts);

  std::atomic<uint64_t> global_epoch_{1};
  // Slot value: 0 when unpinned, otherwise (epoch << 1) | 1.
  Padded<std::atomic<uint64_t>> slots_[kMaxThreads];
  std::atomic<uint32_t> slot_watermark_{0};  // highest slot index ever used +1
  std::mutex slot_mu_;
  std::vector<uint32_t> free_slots_;
  std::vector<detail::EbrThreadState*> registered_;

  std::mutex orphan_mu_;
  std::vector<detail::Retired> orphans_;  // from exited threads
  std::atomic<size_t> orphan_count_{0};
};

}  // namespace skiptrie
