#include "reclaim/ebr.h"

#include <algorithm>
#include <cassert>

namespace skiptrie {

namespace detail {

// Thread-local registry mapping domains to this thread's state.  A plain
// vector with linear scan: programs use a handful of domains at most.
struct Registry {
  std::vector<EbrThreadState*> states;
  ~Registry() {
    for (auto* s : states) delete s;
  }
};

static Registry& tls_registry() {
  thread_local Registry r;
  return r;
}

EbrThreadState::~EbrThreadState() {
  // domain is nulled by ~EbrDomain if the domain died before this thread.
  if (domain != nullptr) domain->release_slot(this);
}

}  // namespace detail

EbrDomain::EbrDomain() {
  free_slots_.reserve(kMaxThreads);
  for (uint32_t i = kMaxThreads; i > 0; --i) free_slots_.push_back(i - 1);
}

EbrDomain::~EbrDomain() {
  drain();
  // Detach surviving thread states so their destructors don't touch us.
  // Any callbacks still pending at this point are executed now: the domain
  // dying asserts that no thread is pinned, so everything is reclaimable.
  std::lock_guard<std::mutex> lk(slot_mu_);
  for (auto* s : registered_) {
    for (auto& r : s->retired) r.fn(r.ptr, r.ctx);
    s->retired.clear();
    s->domain = nullptr;
  }
  registered_.clear();
  std::lock_guard<std::mutex> lk2(orphan_mu_);
  for (auto& r : orphans_) r.fn(r.ptr, r.ctx);
  orphans_.clear();
}

detail::EbrThreadState* EbrDomain::thread_state() {
  auto& reg = detail::tls_registry();
  for (auto* s : reg.states) {
    if (s->domain == this) return s;
  }
  auto* s = new detail::EbrThreadState();
  s->domain = this;
  {
    std::lock_guard<std::mutex> lk(slot_mu_);
    assert(!free_slots_.empty() && "too many threads for EbrDomain");
    s->slot = free_slots_.back();
    free_slots_.pop_back();
    registered_.push_back(s);
  }
  uint32_t wm = slot_watermark_.load(std::memory_order_relaxed);
  while (wm < s->slot + 1 &&
         !slot_watermark_.compare_exchange_weak(wm, s->slot + 1,
                                                std::memory_order_acq_rel)) {
  }
  reg.states.push_back(s);
  return s;
}

void EbrDomain::release_slot(detail::EbrThreadState* ts) {
  // Hand any still-pending retirements to the domain's orphan list so they
  // are reclaimed by other threads (or by drain()).
  if (!ts->retired.empty()) {
    std::lock_guard<std::mutex> lk(orphan_mu_);
    for (auto& r : ts->retired) orphans_.push_back(r);
    orphan_count_.store(orphans_.size(), std::memory_order_relaxed);
    ts->retired.clear();
  }
  slots_[ts->slot].value.store(0, std::memory_order_release);
  std::lock_guard<std::mutex> lk(slot_mu_);
  free_slots_.push_back(ts->slot);
  std::erase(registered_, ts);
}

void EbrDomain::pin(detail::EbrThreadState* ts) {
  if (ts->pin_depth++ > 0) return;
  auto& slot = slots_[ts->slot].value;
  uint64_t e = global_epoch_.load(std::memory_order_acquire);
  for (;;) {
    slot.store((e << 1) | 1, std::memory_order_seq_cst);
    const uint64_t e2 = global_epoch_.load(std::memory_order_seq_cst);
    if (e2 == e) return;  // our announcement is visible at epoch e == current
    e = e2;
  }
}

void EbrDomain::unpin(detail::EbrThreadState* ts) {
  assert(ts->pin_depth > 0);
  if (--ts->pin_depth > 0) return;
  slots_[ts->slot].value.store(0, std::memory_order_release);
}

void EbrDomain::retire(void* ptr, void (*fn)(void*, void*), void* ctx) {
  auto* ts = thread_state();
  assert(ts->pin_depth > 0 && "retire() requires a pinned Guard");
  ts->retired.push_back(detail::Retired{
      ptr, fn, ctx, global_epoch_.load(std::memory_order_acquire)});
  if (ts->retired.size() % kScanThreshold == 0) {
    try_advance_and_reclaim(ts);
  }
}

bool EbrDomain::all_quiescent_at(uint64_t epoch) const {
  const uint32_t wm = slot_watermark_.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < wm; ++i) {
    const uint64_t v = slots_[i].value.load(std::memory_order_seq_cst);
    if ((v & 1) != 0 && (v >> 1) < epoch) return false;
  }
  return true;
}

void EbrDomain::try_advance_and_reclaim(detail::EbrThreadState* ts) {
  const uint64_t e = global_epoch_.load(std::memory_order_acquire);
  if (all_quiescent_at(e)) {
    uint64_t expect = e;
    global_epoch_.compare_exchange_strong(expect, e + 1,
                                          std::memory_order_acq_rel);
  }
  // Entries retired at epoch r are safe once global >= r + 2: every thread
  // pinned when the entry was retired (epoch <= r+... conservatively r) has
  // since re-pinned at a later epoch or unpinned.
  const uint64_t now = global_epoch_.load(std::memory_order_acquire);
  auto& list = ts->retired;
  size_t kept = 0;
  for (size_t i = 0; i < list.size(); ++i) {
    if (list[i].epoch + 2 <= now) {
      list[i].fn(list[i].ptr, list[i].ctx);
    } else {
      list[kept++] = list[i];
    }
  }
  list.resize(kept);
  // Opportunistically adopt orphans when the backlog grows.
  if (orphan_count_.load(std::memory_order_relaxed) > 0 && list.size() < 8) {
    std::lock_guard<std::mutex> lk(orphan_mu_);
    size_t kept_o = 0;
    for (size_t i = 0; i < orphans_.size(); ++i) {
      if (orphans_[i].epoch + 2 <= now) {
        orphans_[i].fn(orphans_[i].ptr, orphans_[i].ctx);
      } else {
        orphans_[kept_o++] = orphans_[i];
      }
    }
    orphans_.resize(kept_o);
    orphan_count_.store(orphans_.size(), std::memory_order_relaxed);
  }
}

void EbrDomain::drain() {
  // Force epochs forward until everything pending is past its grace period.
  // Only callable when no thread is pinned (asserted via quiescence check).
  for (int i = 0; i < 4; ++i) {
    const uint64_t e = global_epoch_.load(std::memory_order_acquire);
    if (!all_quiescent_at(e)) return;  // someone is pinned; give up silently
    uint64_t expect = e;
    global_epoch_.compare_exchange_strong(expect, e + 1,
                                          std::memory_order_acq_rel);
  }
  const uint64_t now = global_epoch_.load(std::memory_order_acquire);
  auto& reg = detail::tls_registry();
  for (auto* s : reg.states) {
    if (s->domain != this) continue;
    for (auto& r : s->retired) {
      if (r.epoch + 2 <= now) r.fn(r.ptr, r.ctx);
    }
    std::erase_if(s->retired,
                  [now](const detail::Retired& r) { return r.epoch + 2 <= now; });
  }
  std::lock_guard<std::mutex> lk(orphan_mu_);
  for (auto& r : orphans_) {
    if (r.epoch + 2 <= now) r.fn(r.ptr, r.ctx);
  }
  std::erase_if(orphans_,
                [now](const detail::Retired& r) { return r.epoch + 2 <= now; });
  orphan_count_.store(orphans_.size(), std::memory_order_relaxed);
}

size_t EbrDomain::pending_retired() const {
  // Thread-local lists are not visible here; report orphans plus a marker.
  return orphan_count_.load(std::memory_order_relaxed);
}

}  // namespace skiptrie
