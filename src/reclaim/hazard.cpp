#include "reclaim/hazard.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <mutex>

namespace skiptrie {

HazardDomain::ThreadState::~ThreadState() {
  if (domain != nullptr) domain->release(this);
}

HazardDomain::~HazardDomain() {
  std::vector<ThreadState*> to_detach;
  {
    std::lock_guard<std::mutex> lk(mu_);
    to_detach = registered_;
    registered_.clear();
  }
  // No thread may be actively using the domain during destruction; every
  // retired object is therefore reclaimable.
  for (auto* s : to_detach) {
    for (auto& r : s->retired) r.fn(r.ptr, r.ctx);
    s->retired.clear();
    s->domain = nullptr;
  }
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& r : orphans_) r.fn(r.ptr, r.ctx);
  orphans_.clear();
}

HazardDomain::ThreadState* HazardDomain::thread_state() {
  thread_local std::vector<std::unique_ptr<ThreadState>> tls;
  for (auto& s : tls) {
    if (s->domain == this) return s.get();
  }
  auto s = std::make_unique<ThreadState>();
  s->domain = this;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!free_threads_init_) {
      for (uint32_t i = kMaxThreads; i > 0; --i) free_threads_.push_back(i - 1);
      free_threads_init_ = true;
    }
    assert(!free_threads_.empty() && "too many threads for HazardDomain");
    const uint32_t tid = free_threads_.back();
    free_threads_.pop_back();
    s->base_slot = tid * kSlotsPerThread;
    registered_.push_back(s.get());
    uint32_t wm = thread_watermark_.load(std::memory_order_relaxed);
    if (wm < tid + 1) thread_watermark_.store(tid + 1, std::memory_order_relaxed);
  }
  tls.push_back(std::move(s));
  return tls.back().get();
}

void HazardDomain::release(ThreadState* ts) {
  for (uint32_t i = 0; i < kSlotsPerThread; ++i) {
    hazards_[ts->base_slot + i].value.store(nullptr, std::memory_order_release);
  }
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& r : ts->retired) orphans_.push_back(r);
  ts->retired.clear();
  free_threads_.push_back(ts->base_slot / kSlotsPerThread);
  std::erase(registered_, ts);
}

void HazardDomain::set(uint32_t slot, const void* p) {
  auto* ts = thread_state();
  assert(slot < kSlotsPerThread);
  hazards_[ts->base_slot + slot].value.store(p, std::memory_order_seq_cst);
}

void HazardDomain::clear(uint32_t slot) {
  auto* ts = thread_state();
  assert(slot < kSlotsPerThread);
  hazards_[ts->base_slot + slot].value.store(nullptr,
                                             std::memory_order_release);
}

void HazardDomain::clear_all() {
  auto* ts = thread_state();
  for (uint32_t i = 0; i < kSlotsPerThread; ++i) {
    hazards_[ts->base_slot + i].value.store(nullptr,
                                            std::memory_order_release);
  }
}

void HazardDomain::retire(void* ptr, void (*fn)(void*, void*), void* ctx) {
  auto* ts = thread_state();
  ts->retired.push_back(Retired{ptr, fn, ctx});
  if (ts->retired.size() >= kScanThreshold) scan(ts);
}

void HazardDomain::scan() { scan(thread_state()); }

void HazardDomain::scan(ThreadState* ts) {
  // Snapshot all published hazards, then reclaim retired pointers that are
  // not protected.
  std::vector<const void*> protected_ptrs;
  const uint32_t wm = thread_watermark_.load(std::memory_order_acquire);
  protected_ptrs.reserve(wm * kSlotsPerThread);
  for (uint32_t i = 0; i < wm * kSlotsPerThread; ++i) {
    const void* p = hazards_[i].value.load(std::memory_order_seq_cst);
    if (p != nullptr) protected_ptrs.push_back(p);
  }
  std::sort(protected_ptrs.begin(), protected_ptrs.end());
  auto is_protected = [&](void* p) {
    return std::binary_search(protected_ptrs.begin(), protected_ptrs.end(),
                              static_cast<const void*>(p));
  };
  size_t kept = 0;
  for (size_t i = 0; i < ts->retired.size(); ++i) {
    if (is_protected(ts->retired[i].ptr)) {
      ts->retired[kept++] = ts->retired[i];
    } else {
      ts->retired[i].fn(ts->retired[i].ptr, ts->retired[i].ctx);
    }
  }
  ts->retired.resize(kept);
  // Adopt orphans from exited threads while we're at it.
  std::vector<Retired> adopted;
  {
    std::lock_guard<std::mutex> lk(mu_);
    adopted.swap(orphans_);
  }
  for (auto& r : adopted) {
    if (is_protected(r.ptr)) {
      ts->retired.push_back(r);
    } else {
      r.fn(r.ptr, r.ctx);
    }
  }
}

}  // namespace skiptrie
