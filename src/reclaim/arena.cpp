#include "reclaim/arena.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <memory>

namespace skiptrie {

SlabArena::ThreadCache::~ThreadCache() {
  // Return everything to the global list so other threads can reuse it.
  // arena may have been detached (set to nullptr) by ~SlabArena if the
  // arena died before this thread.
  if (arena == nullptr) return;
  std::lock_guard<std::mutex> lk(arena->mu_);
  for (void* p : free_blocks) arena->global_free_.push_back(p);
  free_blocks.clear();
  std::erase(arena->registered_, this);
}

SlabArena::SlabArena(size_t block_size, size_t align, size_t blocks_per_slab)
    : block_size_((block_size + align - 1) / align * align),
      align_(align),
      blocks_per_slab_(blocks_per_slab) {
  assert((align & (align - 1)) == 0 && align >= 8);
}

SlabArena::~SlabArena() {
  std::lock_guard<std::mutex> lk(mu_);
  // Detach surviving thread caches so their destructors don't touch us.
  for (ThreadCache* c : registered_) {
    c->arena = nullptr;
    c->free_blocks.clear();
  }
  registered_.clear();
  for (char* s : slabs_) std::free(s);
  slabs_.clear();
}

SlabArena::ThreadCache& SlabArena::cache() {
  thread_local std::vector<std::unique_ptr<ThreadCache>> tls;
  for (auto& c : tls) {
    if (c->arena == this) return *c;
  }
  tls.push_back(std::make_unique<ThreadCache>());
  ThreadCache* c = tls.back().get();
  c->arena = this;
  {
    std::lock_guard<std::mutex> lk(mu_);
    registered_.push_back(c);
  }
  return *c;
}

void* SlabArena::allocate(bool* fresh) {
  if (fresh != nullptr) *fresh = false;
  ThreadCache& c = cache();
  if (!c.free_blocks.empty()) {
    void* p = c.free_blocks.back();
    c.free_blocks.pop_back();
    allocated_.fetch_add(1, std::memory_order_relaxed);
    return p;
  }
  return slow_allocate(c, fresh);
}

void* SlabArena::slow_allocate(ThreadCache& c, bool* fresh) {
  std::lock_guard<std::mutex> lk(mu_);
  // Refill from the global free list first.
  if (!global_free_.empty()) {
    const size_t take = std::min(kBatch, global_free_.size());
    for (size_t i = 0; i < take; ++i) {
      c.free_blocks.push_back(global_free_.back());
      global_free_.pop_back();
    }
    void* p = c.free_blocks.back();
    c.free_blocks.pop_back();
    allocated_.fetch_add(1, std::memory_order_relaxed);
    return p;
  }
  // Bump-allocate; start a new slab when the current one is exhausted.
  if (bump_ == nullptr || bump_ + block_size_ > bump_end_) {
    const size_t bytes = block_size_ * blocks_per_slab_;
    char* slab = static_cast<char*>(std::aligned_alloc(align_, bytes));
    assert(slab != nullptr);
    slabs_.push_back(slab);
    bump_ = slab;
    bump_end_ = slab + bytes;
    bytes_reserved_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void* p = bump_;
  bump_ += block_size_;
  allocated_.fetch_add(1, std::memory_order_relaxed);
  if (fresh != nullptr) *fresh = true;
  return p;
}

void SlabArena::recycle(void* p) {
  ThreadCache& c = cache();
  c.free_blocks.push_back(p);
  recycled_.fetch_add(1, std::memory_order_relaxed);
  if (c.free_blocks.size() > kCacheHigh) spill(c);
}

void SlabArena::spill(ThreadCache& c) {
  std::lock_guard<std::mutex> lk(mu_);
  const size_t keep = kCacheHigh / 2;
  while (c.free_blocks.size() > keep) {
    global_free_.push_back(c.free_blocks.back());
    c.free_blocks.pop_back();
  }
}

}  // namespace skiptrie
