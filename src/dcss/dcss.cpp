#include "dcss/dcss.h"

#include <cassert>
#include <functional>

#include "common/stats.h"

namespace skiptrie {

namespace {

enum Outcome : uint32_t { kUndecided = 0, kSuccess = 1, kFail = 2 };

struct alignas(16) Descriptor {
  std::atomic<uint64_t>* target;
  uint64_t expected;
  uint64_t desired;
  std::atomic<uint64_t>* guard;
  uint64_t guard_expected;
  std::atomic<uint32_t> outcome{kUndecided};
};

// Logical value of a word that may hold a *settled* descriptor: read through
// decided descriptors (linearizes the read at the moment the outcome was
// loaded).  Used for failure witnesses, where an undecided descriptor's
// expected value is an acceptable answer.
uint64_t read_through(uint64_t w) {
  while (is_desc(w)) {
    auto* d = unpack_ptr<Descriptor>(w);
    const uint32_t out = d->outcome.load(std::memory_order_acquire);
    w = (out == kSuccess) ? d->desired : d->expected;
  }
  return w;
}

void help(Descriptor* d);

// Evaluate the logical value of d's guard word for d's decision.  A foreign
// UNDECIDED descriptor occupying the guard must not be read through blindly:
// with *crossed* guards — two DCSS operations each guarding the other's
// target, as in the trie's entry-kill protocol (condemn ptrs[0] guarded on
// ptrs[1]==0, vs. install into ptrs[1] guarded on ptrs[0]) — blind
// read-through lets BOTH decide success, writing a state neither guard
// permits.  Serialize by target-address order instead: complete the
// lower-target descriptor, force-abort the higher one.  A forced abort is a
// spurious DCSS failure, which is benign because guard_failed never carries
// semantic weight on its own: every caller either retries after re-reading
// the world (trie swings, raise_level re-checks stopw at its loop head) or
// was writing a best-effort guide (make_done) — and the strict ordering
// both breaks helping cycles and guarantees one of two crossed operations
// always wins.
uint64_t guard_value(Descriptor* d) {
  auto& c = tls_counters();
  for (;;) {
    const uint64_t w = d->guard->load(std::memory_order_seq_cst);
    if (!is_desc(w)) return w;
    auto* e = unpack_ptr<Descriptor>(w);
    const uint32_t out = e->outcome.load(std::memory_order_acquire);
    if (out != kUndecided) {
      return out == kSuccess ? e->desired : e->expected;
    }
    if (std::less<std::atomic<uint64_t>*>{}(e->target, d->target)) {
      c.dcss_helps++;
      help(e);  // strictly decreasing target addresses: no cycle
      continue;
    }
    c.dcss_helps++;  // settling e on its behalf, by aborting it
    uint32_t expect = kUndecided;
    e->outcome.compare_exchange_strong(expect, kFail,
                                       std::memory_order_acq_rel);
    // e is now settled either way; the next iteration reads its outcome.
  }
}

// Complete an installed descriptor: decide, then uninstall.  Idempotent and
// safe to run from any thread (helpers), as long as the caller is pinned so
// the descriptor memory is live.
void help(Descriptor* d) {
  uint32_t out = d->outcome.load(std::memory_order_acquire);
  if (out == kUndecided) {
    const uint64_t g = guard_value(d);
    const uint32_t decided = (g == d->guard_expected) ? kSuccess : kFail;
    uint32_t expect = kUndecided;
    d->outcome.compare_exchange_strong(expect, decided,
                                       std::memory_order_acq_rel);
    out = d->outcome.load(std::memory_order_acquire);
  }
  const uint64_t installed = pack_ptr(d, kDesc);
  const uint64_t final_value = (out == kSuccess) ? d->desired : d->expected;
  uint64_t expect = installed;
  d->target->compare_exchange_strong(expect, final_value,
                                     std::memory_order_seq_cst);
}

}  // namespace

uint64_t dcss_read(const std::atomic<uint64_t>& word) {
  for (;;) {
    const uint64_t w = word.load(std::memory_order_seq_cst);
    if (!is_desc(w)) return w;
    tls_counters().dcss_helps++;
    help(unpack_ptr<Descriptor>(w));
  }
}

bool counted_cas(std::atomic<uint64_t>& word, uint64_t expected,
                 uint64_t desired) {
  auto& c = tls_counters();
  c.cas_attempts++;
  uint64_t e = expected;
  if (word.compare_exchange_strong(e, desired, std::memory_order_seq_cst)) {
    return true;
  }
  c.cas_failures++;
  return false;
}

DcssResult dcss(const DcssContext& ctx, std::atomic<uint64_t>& target,
                uint64_t expected, uint64_t desired,
                std::atomic<uint64_t>& guard, uint64_t guard_expected) {
  // All DCSS-word values are tagged pointer words: bit 1 (kDesc) is
  // reserved for descriptors and must never appear in caller values.
  assert(!is_desc(expected) && !is_desc(desired) && !is_desc(guard_expected));
  auto& c = tls_counters();
  DcssResult r;

  if (ctx.mode == DcssMode::kCasFallback) {
    // The paper's fallback: drop the second guard, plain CAS.  Linearizable
    // and lock-free, but pointer swings onto freshly-marked nodes become
    // possible (they are repaired by later traversals).
    c.cas_attempts++;
    uint64_t e = expected;
    if (target.compare_exchange_strong(e, desired,
                                       std::memory_order_seq_cst)) {
      r.success = true;
      r.witness = expected;
      return r;
    }
    c.cas_failures++;
    r.witness = read_through(e);
    return r;
  }

  c.dcss_attempts++;
  auto* d = new Descriptor();
  d->target = &target;
  d->expected = expected;
  d->desired = desired;
  d->guard = &guard;
  d->guard_expected = guard_expected;

  const uint64_t installed = pack_ptr(d, kDesc);
  for (;;) {
    uint64_t e = expected;
    if (target.compare_exchange_strong(e, installed,
                                       std::memory_order_seq_cst)) {
      break;
    }
    if (is_desc(e)) {
      // Someone else's descriptor occupies the word: help it, then retry.
      c.dcss_helps++;
      help(unpack_ptr<Descriptor>(e));
      continue;
    }
    // Genuine value mismatch.
    delete d;  // never published, safe to free immediately
    r.witness = e;
    return r;
  }

  help(d);
  const bool ok = d->outcome.load(std::memory_order_acquire) == kSuccess;
  r.success = ok;
  r.guard_failed = !ok;
  r.witness = expected;
  if (!ok) c.dcss_guard_fails++;
  ctx.ebr->retire_delete(d);
  return r;
}

}  // namespace skiptrie
