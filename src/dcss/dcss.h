// Software DCSS (double-compare single-swap) built from CAS.
//
// The paper (§1, "On the choice of atomic primitives") uses
//   DCSS(X, old_X, new_X, Y, old_Y):  X <- new_X  iff  X == old_X && Y == old_Y
// to avoid swinging list/trie pointers onto nodes that are already marked for
// deletion: Y is a "guard" word (typically a node's next/prev/stop word) that
// is only compared, never written.
//
// No mainstream ISA exposes DCSS, so we implement the classic descriptor
// construction (Harris, Fraser & Pratt, "A practical multi-word
// compare-and-swap", DISC 2002):
//
//   1. install: CAS the target word from `expected` to a tagged descriptor
//      pointer (tag bit kDesc).
//   2. decide:  read the guard word; CAS the descriptor's `outcome` from
//      UNDECIDED to SUCCESS/FAIL (all helpers agree via this CAS).
//   3. uninstall: CAS the target from the descriptor back to `desired`
//      (on success) or `expected` (on failure).
//
// Readers of DCSS-capable words go through dcss_read(), which helps complete
// any installed descriptor, so the logical value of a word is always defined
// and the construction is lock-free.
//
// Guard words may themselves be DCSS targets (the paper guards on `next`
// words that other operations DCSS).  Unlike the original RDCSS we do not
// forbid this.  A decided descriptor found in a guard word is read through
// (`desired`/`expected` per its outcome).  An UNDECIDED descriptor must not
// be read through blindly — with crossed guards (two operations each
// guarding the other's target) both could decide success — so guard
// evaluation serializes by target-address order: it helps complete a
// lower-target descriptor and force-aborts a higher-target one (a spurious
// but benign failure; callers retry on guard_failed).  The strict order
// both prevents mutual-helping cycles and guarantees exactly one of two
// crossed operations wins.
//
// The paper proves the SkipTrie remains linearizable and lock-free when DCSS
// is replaced by plain CAS (dropping the guard).  DcssMode::kCasFallback
// selects exactly that, and is used by the A1 ablation benchmark.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/marked_ptr.h"
#include "reclaim/ebr.h"

namespace skiptrie {

enum class DcssMode : uint8_t {
  kDcss,         // full descriptor-based DCSS
  kCasFallback,  // plain CAS; guard ignored (paper's fallback)
};

struct DcssContext {
  EbrDomain* ebr;
  DcssMode mode = DcssMode::kDcss;
};

struct DcssResult {
  bool success = false;
  bool guard_failed = false;  // failed because the guard word mismatched
  uint64_t witness = 0;       // target's logical value observed on failure
};

// Perform DCSS on `target`.  expected/desired must be untagged-with-kDesc
// values (kMark is fine).  The calling thread must hold an EbrDomain::Guard
// on ctx.ebr for the duration of the enclosing operation.
DcssResult dcss(const DcssContext& ctx, std::atomic<uint64_t>& target,
                uint64_t expected, uint64_t desired,
                std::atomic<uint64_t>& guard, uint64_t guard_expected);

// Read the logical value of a DCSS-capable word, helping any installed
// descriptor to completion first.  Caller must be pinned.
uint64_t dcss_read(const std::atomic<uint64_t>& word);

// Plain structural CAS with step accounting (used where no guard is needed).
bool counted_cas(std::atomic<uint64_t>& word, uint64_t expected,
                 uint64_t desired);

}  // namespace skiptrie
