// Asynchronous batched front-end over the sharded engine (DESIGN.md §4.3).
//
// A Service owns a ShardedEngine plus one worker thread and one bounded
// MPSC subtask queue *per shard*.  Clients submit requests — each request a
// batch of (op, key) items — from any number of threads; the submitting
// thread splits the request by the routing rule (DESIGN.md §4.1) into one
// subtask per shard touched and enqueues each subtask on its shard's
// queue.  Queues are bounded (ServiceConfig::queue_capacity): a full queue
// blocks the submitter (counted in steps.queue_full_waits), which is the
// back-pressure that keeps a burst from buffering unboundedly.
//
// Each shard's worker drains its own queue only, so all mutations of shard
// s's SkipTrie made through the Service happen on one thread — per-shard
// execution is sequential while distinct shards run genuinely in parallel.
// (The SkipTrie itself stays fully concurrent; the Service adds no locks
// around it, and external threads may still read the engine directly.)
//
// A request completes when its last subtask finishes (atomic countdown);
// completion fulfills the std::future returned by submit(), or invokes the
// completion callback on the worker that finished last.  Results land in
// the request's *input* order regardless of shard interleaving.  Ops of one
// request on one shard execute in input order, flushed through the engine's
// batch API one same-op run at a time; ops of *different* requests
// interleave per shard in FIFO queue order.  Each op linearizes
// individually, exactly like a direct engine call — a request is a
// performance construct, not a transaction.
//
// Templated on KeyTraits like the engine below it (DESIGN.md §6): the op
// items, results and routing all run in the traits' key word, so a
// BasicService<Bytes16Traits> serves encoded byte-string/IPv6 keys through
// the identical queue protocol.  `Service` is the u64 alias.
//
// Queueing attribution (schema v5, DESIGN.md §5.4): submitters count
// service_requests / service_subtasks / queue_full_waits / queue_depth_sum;
// workers count queue_wait_ns plus all the engine counters their execution
// produces.  Worker-side counters are thread-local like everything else and
// are folded into a per-service sum readable after stop().
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "shard/sharded_engine.h"

namespace skiptrie {

enum class ServiceOp : uint8_t { kInsert = 0, kErase, kContains, kPredecessor };

template <typename Traits>
struct BasicServiceOpItem {
  ServiceOp op;
  typename Traits::key_type key;
};

// One per-op answer: `ok` is the boolean result (insert/erase success,
// membership, predecessor-exists); `value` is the predecessor answer.
template <typename Traits>
struct BasicOpResult {
  bool ok = false;
  std::optional<typename Traits::key_type> value;
};

template <typename Traits>
struct BasicServiceResult {
  // input order, one per submitted op
  std::vector<BasicOpResult<Traits>> results;
};

using ServiceOpItem = BasicServiceOpItem<U64Traits>;
using OpResult = BasicOpResult<U64Traits>;
using ServiceResult = BasicServiceResult<U64Traits>;

struct ServiceConfig {
  uint32_t shards = 1;      // power of two (ShardedEngine's rule)
  Config trie;              // per-shard SkipTrie config (full universe_bits)
  size_t queue_capacity = 1024;  // subtasks per shard queue before blocking
};

template <typename Traits>
class BasicService {
 public:
  using key_type = typename Traits::key_type;
  using OpItem = BasicServiceOpItem<Traits>;
  using Result = BasicServiceResult<Traits>;
  using Engine = BasicShardedEngine<Traits>;
  using Callback = std::function<void(Result)>;

  explicit BasicService(const ServiceConfig& cfg = ServiceConfig{});
  ~BasicService();  // stop()s

  BasicService(const BasicService&) = delete;
  BasicService& operator=(const BasicService&) = delete;

  // Submit a batch; the future is fulfilled by the worker that completes
  // the request's last subtask.  An empty batch completes immediately.
  std::future<Result> submit(std::vector<OpItem> ops);
  // Callback flavor: `cb` runs on the last-finishing worker thread (or the
  // submitting thread for an empty batch); it must not block on the queues
  // of the service that invoked it.
  void submit(std::vector<OpItem> ops, Callback cb);

  // Drain every queued subtask, join the workers, and fold their
  // thread-local counters into worker_counters().  Idempotent; implied by
  // destruction.  submit() must not be called after (or concurrently with)
  // stop().
  void stop();

  // Sum of the worker threads' StepCounters deltas.  Valid after stop().
  const StepCounters& worker_counters() const { return worker_counters_; }

  // The engine, for direct (non-queued) access: prefill, verification.
  Engine& engine() { return engine_; }
  const Engine& engine() const { return engine_; }
  const ServiceConfig& config() const { return cfg_; }

 private:
  struct RequestState {
    std::vector<OpItem> ops;
    std::vector<BasicOpResult<Traits>> results;
    std::atomic<uint32_t> pending{0};
    std::promise<Result> promise;
    bool has_promise = false;
    Callback cb;
  };
  struct SubTask {
    std::shared_ptr<RequestState> req;
    std::vector<uint32_t> idx;  // indices into req->ops, input order
    std::chrono::steady_clock::time_point enqueued;
  };
  struct ShardQueue {
    std::mutex mu;
    std::condition_variable not_full;
    std::condition_variable not_empty;
    std::deque<SubTask> q;
  };

  void submit_split(std::shared_ptr<RequestState> st);
  static void complete(RequestState& st);
  void run_subtask(const SubTask& t);
  void worker_loop(uint32_t shard);

  ServiceConfig cfg_;
  Engine engine_;
  std::vector<std::unique_ptr<ShardQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;
  std::mutex counters_mu_;
  StepCounters worker_counters_;
};

using Service = BasicService<U64Traits>;

}  // namespace skiptrie
