#include "service/service.h"

#include <cassert>

namespace skiptrie {

using Clock = std::chrono::steady_clock;

template <typename Traits>
BasicService<Traits>::BasicService(const ServiceConfig& cfg)
    : cfg_(cfg), engine_(cfg.shards, cfg.trie) {
  queues_.reserve(cfg.shards);
  workers_.reserve(cfg.shards);
  for (uint32_t s = 0; s < cfg.shards; ++s) {
    queues_.push_back(std::make_unique<ShardQueue>());
  }
  for (uint32_t s = 0; s < cfg.shards; ++s) {
    workers_.emplace_back([this, s] { worker_loop(s); });
  }
}

template <typename Traits>
BasicService<Traits>::~BasicService() {
  stop();
}

template <typename Traits>
void BasicService<Traits>::stop() {
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  for (auto& q : queues_) {
    std::lock_guard<std::mutex> lk(q->mu);
    q->not_empty.notify_all();
    q->not_full.notify_all();
  }
  for (auto& w : workers_) w.join();
}

template <typename Traits>
void BasicService<Traits>::complete(RequestState& st) {
  Result r;
  r.results = std::move(st.results);
  if (st.has_promise) {
    st.promise.set_value(std::move(r));
  } else if (st.cb) {
    st.cb(std::move(r));
  }
}

template <typename Traits>
auto BasicService<Traits>::submit(std::vector<OpItem> ops)
    -> std::future<Result> {
  auto st = std::make_shared<RequestState>();
  st->ops = std::move(ops);
  st->has_promise = true;
  std::future<Result> f = st->promise.get_future();
  submit_split(std::move(st));
  return f;
}

template <typename Traits>
void BasicService<Traits>::submit(std::vector<OpItem> ops, Callback cb) {
  auto st = std::make_shared<RequestState>();
  st->ops = std::move(ops);
  st->cb = std::move(cb);
  submit_split(std::move(st));
}

template <typename Traits>
void BasicService<Traits>::submit_split(std::shared_ptr<RequestState> st) {
  assert(!stopped_);
  auto& c = tls_counters();
  c.service_requests++;
  st->results.resize(st->ops.size());
  // Group op indices by home shard, preserving input order within each
  // group (the worker replays a group in index order, so one request's ops
  // on one shard execute exactly as submitted).
  std::vector<std::vector<uint32_t>> groups(engine_.shard_count());
  for (uint32_t i = 0; i < st->ops.size(); ++i) {
    groups[engine_.shard_of(st->ops[i].key)].push_back(i);
  }
  uint32_t nsub = 0;
  for (const auto& g : groups) nsub += g.empty() ? 0 : 1;
  if (nsub == 0) {  // empty request: complete on the submitting thread
    complete(*st);
    return;
  }
  st->pending.store(nsub, std::memory_order_relaxed);
  for (uint32_t s = 0; s < groups.size(); ++s) {
    if (groups[s].empty()) continue;
    SubTask t;
    t.req = st;
    t.idx = std::move(groups[s]);
    ShardQueue& q = *queues_[s];
    std::unique_lock<std::mutex> lk(q.mu);
    if (q.q.size() >= cfg_.queue_capacity) {
      c.queue_full_waits++;
      q.not_full.wait(lk, [&] {
        return q.q.size() < cfg_.queue_capacity ||
               stopping_.load(std::memory_order_acquire);
      });
    }
    t.enqueued = Clock::now();
    q.q.push_back(std::move(t));
    c.service_subtasks++;
    c.queue_depth_sum += q.q.size();
    q.not_empty.notify_one();
  }
}

template <typename Traits>
void BasicService<Traits>::run_subtask(const SubTask& t) {
  auto& ops = t.req->ops;
  auto& results = t.req->results;
  // Flush maximal same-op runs through the engine's batch API: every key of
  // a run lives on this worker's shard, so each flush is exactly one
  // sub-batch (one cursor stream) there, and results scatter back to the
  // request's input positions.
  std::vector<key_type> keys;
  std::vector<uint32_t> run;
  std::vector<uint8_t> r8;
  std::vector<std::optional<key_type>> rp;
  size_t i = 0;
  while (i < t.idx.size()) {
    const ServiceOp op = ops[t.idx[i]].op;
    keys.clear();
    run.clear();
    while (i < t.idx.size() && ops[t.idx[i]].op == op) {
      keys.push_back(ops[t.idx[i]].key);
      run.push_back(t.idx[i]);
      ++i;
    }
    const size_t n = keys.size();
    switch (op) {
      case ServiceOp::kInsert:
        r8.assign(n, 0);
        engine_.insert_batch(keys.data(), n, r8.data());
        for (size_t j = 0; j < n; ++j) results[run[j]] = {r8[j] != 0, {}};
        break;
      case ServiceOp::kErase:
        r8.assign(n, 0);
        engine_.erase_batch(keys.data(), n, r8.data());
        for (size_t j = 0; j < n; ++j) results[run[j]] = {r8[j] != 0, {}};
        break;
      case ServiceOp::kContains:
        r8.assign(n, 0);
        engine_.contains_batch(keys.data(), n, r8.data());
        for (size_t j = 0; j < n; ++j) results[run[j]] = {r8[j] != 0, {}};
        break;
      case ServiceOp::kPredecessor:
        rp.assign(n, std::nullopt);
        engine_.predecessor_batch(keys.data(), n, rp.data());
        for (size_t j = 0; j < n; ++j) {
          results[run[j]] = {rp[j].has_value(), rp[j]};
        }
        break;
    }
  }
  // acq_rel: the last subtask's completion must observe every other
  // subtask's result writes (release), and the completion path must see
  // them all (acquire) before moving the results out.
  if (t.req->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    complete(*t.req);
  }
}

template <typename Traits>
void BasicService<Traits>::worker_loop(uint32_t shard) {
  ShardQueue& q = *queues_[shard];
  auto& c = tls_counters();
  const StepCounters base = c;
  for (;;) {
    SubTask t;
    {
      std::unique_lock<std::mutex> lk(q.mu);
      q.not_empty.wait(lk, [&] {
        return !q.q.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (q.q.empty()) break;  // stopping and drained
      t = std::move(q.q.front());
      q.q.pop_front();
      q.not_full.notify_one();
    }
    c.queue_wait_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t.enqueued)
            .count());
    run_subtask(t);
  }
  std::lock_guard<std::mutex> lk(counters_mu_);
  worker_counters_ += c - base;
}

template class BasicService<U64Traits>;
template class BasicService<Bytes16Traits>;

}  // namespace skiptrie
