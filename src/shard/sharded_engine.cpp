#include "shard/sharded_engine.h"

#include <cassert>

#include "common/stats.h"
#include "core/batch.h"

namespace skiptrie {

namespace {

uint32_t log2_exact(uint32_t pow2) {
  uint32_t b = 0;
  while ((1u << b) < pow2) ++b;
  return b;
}

}  // namespace

template <typename Traits>
BasicShardedEngine<Traits>::BasicShardedEngine(uint32_t shards,
                                               const Config& cfg)
    : cfg_(cfg) {
  assert(shards >= 1 && (shards & (shards - 1)) == 0);
  shard_bits_ = log2_exact(shards);
  assert(shard_bits_ == 0 || cfg.universe_bits >= shard_bits_ + 4);
  low_bits_ = cfg.universe_bits - shard_bits_;
  low_mask_ = Traits::universe_mask(low_bits_);
  shards_.reserve(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    // Shard 0 at N=1 gets the caller's exact Config (pass-through); a real
    // split narrows each shard's universe to its low bits.  The seed is
    // shared: tower heights derive from (seed, low ikey), so a key's height
    // depends only on its shard-local identity and runs stay seed-stable.
    Config scfg = cfg;
    scfg.universe_bits = low_bits_;
    shards_.push_back(std::make_unique<Trie>(scfg));
  }
}

template <typename Traits>
auto BasicShardedEngine<Traits>::max_key() const -> key_type {
  const key_type mask = Traits::universe_mask(cfg_.universe_bits);
  return cfg_.universe_bits >= Traits::kMaxBits ? mask - key_type(2) : mask;
}

template <typename Traits>
auto BasicShardedEngine<Traits>::max_below(uint32_t s) const
    -> std::optional<key_type> {
  for (uint32_t t = s; t-- > 0;) {
    const std::optional<key_type> m = shards_[t]->max_key_present();
    if (m.has_value()) return global_key(t, *m);
  }
  return std::nullopt;
}

template <typename Traits>
auto BasicShardedEngine<Traits>::min_above(uint32_t s) const
    -> std::optional<key_type> {
  for (uint32_t t = s + 1; t < shards_.size(); ++t) {
    const std::optional<key_type> m = shards_[t]->min_key();
    if (m.has_value()) return global_key(t, *m);
  }
  return std::nullopt;
}

template <typename Traits>
auto BasicShardedEngine<Traits>::predecessor(key_type key) const
    -> std::optional<key_type> {
  assert(key <= max_key());
  const uint32_t s = shard_of(key);
  const std::optional<key_type> r = shards_[s]->predecessor(low_of(key));
  if (r.has_value()) return global_key(s, *r);
  return max_below(s);
}

template <typename Traits>
auto BasicShardedEngine<Traits>::strict_predecessor(key_type key) const
    -> std::optional<key_type> {
  assert(key <= max_key());
  const uint32_t s = shard_of(key);
  const std::optional<key_type> r = shards_[s]->strict_predecessor(low_of(key));
  if (r.has_value()) return global_key(s, *r);
  return max_below(s);
}

template <typename Traits>
auto BasicShardedEngine<Traits>::successor(key_type key) const
    -> std::optional<key_type> {
  assert(key <= max_key());
  const uint32_t s = shard_of(key);
  const std::optional<key_type> r = shards_[s]->successor(low_of(key));
  if (r.has_value()) return global_key(s, *r);
  return min_above(s);
}

template <typename Traits>
auto BasicShardedEngine<Traits>::min_key() const -> std::optional<key_type> {
  for (uint32_t t = 0; t < shards_.size(); ++t) {
    const std::optional<key_type> m = shards_[t]->min_key();
    if (m.has_value()) return global_key(t, *m);
  }
  return std::nullopt;
}

template <typename Traits>
auto BasicShardedEngine<Traits>::max_key_present() const
    -> std::optional<key_type> {
  return max_below(static_cast<uint32_t>(shards_.size()));
}

template <typename Traits>
size_t BasicShardedEngine<Traits>::size() const {
  size_t n = 0;
  for (const auto& s : shards_) n += s->size();
  return n;
}

namespace {

// Slice the batch's sorted iteration order into contiguous per-shard runs
// and hand each run — low keys in ascending order plus the original input
// indices — to `run`.  Top-bits routing sorts by (shard, low), so shard
// runs are contiguous in sorted order and each sub-batch arrives at its
// shard pre-sorted (O(n) fast path) with duplicate order preserved.
template <typename K, typename ShardOf, typename LowOf, typename Run>
void split_sorted(const K* keys, size_t n, ShardOf shard_of, LowOf low_of,
                  Run run) {
  const std::vector<uint32_t> order = batch_detail::sorted_order(keys, n);
  std::vector<K> low;
  std::vector<uint32_t> idx;
  size_t i = 0;
  while (i < n) {
    const uint32_t s =
        shard_of(keys[order.empty() ? i : order[i]]);
    low.clear();
    idx.clear();
    while (i < n) {
      const uint32_t j =
          static_cast<uint32_t>(order.empty() ? i : order[i]);
      if (shard_of(keys[j]) != s) break;
      low.push_back(low_of(keys[j]));
      idx.push_back(j);
      ++i;
    }
    run(s, low, idx);
  }
}

}  // namespace

template <typename Traits>
size_t BasicShardedEngine<Traits>::insert_batch(const key_type* keys, size_t n,
                                                uint8_t* results) {
  if (shard_bits_ == 0) {
    tls_counters().shard_batches++;
    return shards_[0]->insert_batch(keys, n, results);
  }
  size_t hits = 0;
  std::vector<uint8_t> scratch;
  split_sorted(
      keys, n, [this](key_type k) { return shard_of(k); },
      [this](key_type k) { return low_of(k); },
      [&](uint32_t s, const std::vector<key_type>& low,
          const std::vector<uint32_t>& idx) {
        tls_counters().shard_batches++;
        if (results == nullptr) {
          hits += shards_[s]->insert_batch(low.data(), low.size(), nullptr);
          return;
        }
        scratch.resize(low.size());
        hits += shards_[s]->insert_batch(low.data(), low.size(), scratch.data());
        for (size_t k = 0; k < idx.size(); ++k) results[idx[k]] = scratch[k];
      });
  return hits;
}

template <typename Traits>
size_t BasicShardedEngine<Traits>::erase_batch(const key_type* keys, size_t n,
                                               uint8_t* results) {
  if (shard_bits_ == 0) {
    tls_counters().shard_batches++;
    return shards_[0]->erase_batch(keys, n, results);
  }
  size_t hits = 0;
  std::vector<uint8_t> scratch;
  split_sorted(
      keys, n, [this](key_type k) { return shard_of(k); },
      [this](key_type k) { return low_of(k); },
      [&](uint32_t s, const std::vector<key_type>& low,
          const std::vector<uint32_t>& idx) {
        tls_counters().shard_batches++;
        if (results == nullptr) {
          hits += shards_[s]->erase_batch(low.data(), low.size(), nullptr);
          return;
        }
        scratch.resize(low.size());
        hits += shards_[s]->erase_batch(low.data(), low.size(), scratch.data());
        for (size_t k = 0; k < idx.size(); ++k) results[idx[k]] = scratch[k];
      });
  return hits;
}

template <typename Traits>
size_t BasicShardedEngine<Traits>::contains_batch(const key_type* keys,
                                                  size_t n,
                                                  uint8_t* results) const {
  if (shard_bits_ == 0) {
    tls_counters().shard_batches++;
    return shards_[0]->contains_batch(keys, n, results);
  }
  size_t hits = 0;
  std::vector<uint8_t> scratch;
  split_sorted(
      keys, n, [this](key_type k) { return shard_of(k); },
      [this](key_type k) { return low_of(k); },
      [&](uint32_t s, const std::vector<key_type>& low,
          const std::vector<uint32_t>& idx) {
        tls_counters().shard_batches++;
        if (results == nullptr) {
          hits += shards_[s]->contains_batch(low.data(), low.size(), nullptr);
          return;
        }
        scratch.resize(low.size());
        hits +=
            shards_[s]->contains_batch(low.data(), low.size(), scratch.data());
        for (size_t k = 0; k < idx.size(); ++k) results[idx[k]] = scratch[k];
      });
  return hits;
}

template <typename Traits>
size_t BasicShardedEngine<Traits>::predecessor_batch(
    const key_type* keys, size_t n, std::optional<key_type>* results) const {
  if (shard_bits_ == 0) {
    tls_counters().shard_batches++;
    return shards_[0]->predecessor_batch(keys, n, results);
  }
  size_t hits = 0;
  std::vector<std::optional<key_type>> scratch;
  // The cross-shard fallback is the same value for every empty-answer key
  // of one shard run, so it is resolved once per run, lazily.
  split_sorted(
      keys, n, [this](key_type k) { return shard_of(k); },
      [this](key_type k) { return low_of(k); },
      [&](uint32_t s, const std::vector<key_type>& low,
          const std::vector<uint32_t>& idx) {
        tls_counters().shard_batches++;
        scratch.assign(low.size(), std::nullopt);
        shards_[s]->predecessor_batch(low.data(), low.size(), scratch.data());
        bool fallback_known = false;
        std::optional<key_type> fallback;
        for (size_t k = 0; k < idx.size(); ++k) {
          std::optional<key_type> r;
          if (scratch[k].has_value()) {
            r = global_key(s, *scratch[k]);
          } else {
            if (!fallback_known) {
              fallback = max_below(s);
              fallback_known = true;
            }
            r = fallback;
          }
          if (r.has_value()) ++hits;
          if (results != nullptr) results[idx[k]] = r;
        }
      });
  return hits;
}

template <typename Traits>
auto BasicShardedEngine<Traits>::structure_stats() const ->
    typename Trie::StructureStats {
  typename Trie::StructureStats agg;
  double gap_weight = 0;  // top-gap sample count = per-shard top_count
  for (const auto& sp : shards_) {
    const typename Trie::StructureStats s = sp->structure_stats();
    agg.keys += s.keys;
    for (size_t l = 0; l <= BasicSkipListEngine<Traits>::kMaxLevels; ++l) {
      agg.level_counts[l] += s.level_counts[l];
    }
    agg.top_count += s.top_count;
    agg.trie_entries += s.trie_entries;
    agg.avg_top_gap += s.avg_top_gap * static_cast<double>(s.top_count);
    gap_weight += static_cast<double>(s.top_count);
    if (s.max_top_gap > agg.max_top_gap) agg.max_top_gap = s.max_top_gap;
    agg.arena_bytes += s.arena_bytes;
    agg.trie_bytes += s.trie_bytes;
    agg.hash_buckets += s.hash_buckets;
    agg.hash_dummies += s.hash_dummies;
    // Occupancy aggregates chunk-weighted (each shard's mean covers its own
    // chunk count).
    agg.avg_occupancy += s.avg_occupancy * static_cast<double>(s.leaf_chunks);
    agg.leaf_chunks += s.leaf_chunks;
  }
  if (agg.leaf_chunks > 0) {
    agg.avg_occupancy /= static_cast<double>(agg.leaf_chunks);
  }
  if (gap_weight > 0) agg.avg_top_gap /= gap_weight;
  agg.hash_load_factor =
      agg.hash_buckets > 0
          ? static_cast<double>(agg.trie_entries) /
                static_cast<double>(agg.hash_buckets)
          : 0.0;
  return agg;
}

template class BasicShardedEngine<U64Traits>;
template class BasicShardedEngine<Bytes16Traits>;

}  // namespace skiptrie
