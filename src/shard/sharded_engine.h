// Sharded SkipTrie engine (DESIGN.md §4.1, §4.3).
//
// Partitions the B-bit key universe by the top log2(N) bits into N
// independent SkipTrie shards.  Shard s owns exactly the keys whose top
// bits equal s and stores them *low-bits only* in a SkipTrie over a
// (B - log2 N)-bit universe, so every shard keeps the truncated-skiplist
// depth bound of its own (smaller) universe.  Each shard owns the full
// per-structure stack — SlabArena, EbrDomain, engine (and with it a unique
// finger/cursor owner id, hence per-shard thread-local finger and cursor
// state) — so shards share *no* mutable memory: operations on different
// shards never contend, which is what gives the service layer
// (src/service/) real parallelism to schedule onto.
//
// Routing (DESIGN.md §4.1): shard_of(k) = k >> (B - log2 N) and
// low_of(k) = k & (2^(B - log2 N) - 1); both are bijective on
// (shard, low) pairs, so no two distinct keys collide and every key has
// exactly one home.  N = 1 is a strict pass-through to one SkipTrie with
// the caller's exact Config — same step counts, same counters — which is
// how the shard_test pins equivalence and how bench cells at shards=1
// reproduce the unsharded engine.
//
// Like the whole stack below it, the engine is templated on KeyTraits
// (DESIGN.md §6): the routing shifts/masks run in the traits' ikey word, so
// a Bytes16Traits engine splits its 128-bit universe by the top bits of the
// *encoded* key (for the IPv6 codec that means the top address bytes —
// locality-preserving routing for free).  `ShardedEngine` remains the u64
// alias every existing caller compiles against.
//
// Single-key ordered queries fall back across shards: a predecessor query
// that comes up empty in its home shard takes the largest key of the
// nearest non-empty lower shard (symmetrically for successor).  Each
// probe is a linearizable query on one shard, but the composition is only
// sequentially consistent per operation — under concurrent writes to
// *other* shards the combined answer reflects a slightly earlier state of
// those shards, the same weak-consistency class as for_each_in_range.
// Quiescent answers are exact, which is what the tests rely on.
//
// Batched operations run the split/merge protocol (DESIGN.md §4.3): sort
// the batch (the PR 5 contract already does), slice the sorted stream
// into contiguous per-shard runs — the top-bits routing makes shard runs
// contiguous in sorted order for free — execute each run as one sub-batch
// on its shard (one DescentCursor stream per shard, already-sorted fast
// path, stable duplicate order preserved), and scatter results back to
// input positions.  Sub-batches are counted in steps.shard_batches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/config.h"
#include "core/skiptrie.h"

namespace skiptrie {

template <typename Traits>
class BasicShardedEngine {
 public:
  using key_type = typename Traits::key_type;
  using Trie = BasicSkipTrie<Traits>;

  // `shards` must be a power of two >= 1, small enough to leave each shard
  // a >= 4-bit low-key universe (the SkipTrie minimum).
  explicit BasicShardedEngine(uint32_t shards = 1, const Config& cfg = Config{});

  BasicShardedEngine(const BasicShardedEngine&) = delete;
  BasicShardedEngine& operator=(const BasicShardedEngine&) = delete;

  // --- Single-key operations (route by top bits) --------------------------
  bool insert(key_type key) { return shards_[shard_of(key)]->insert(low_of(key)); }
  bool erase(key_type key) { return shards_[shard_of(key)]->erase(low_of(key)); }
  bool contains(key_type key) const {
    return shards_[shard_of(key)]->contains(low_of(key));
  }
  std::optional<key_type> predecessor(key_type key) const;
  std::optional<key_type> strict_predecessor(key_type key) const;
  std::optional<key_type> successor(key_type key) const;
  std::optional<key_type> min_key() const;
  std::optional<key_type> max_key_present() const;

  // --- Batched operations (split/merge, DESIGN.md §4.3) --------------------
  // Same contract as SkipTrie: results (length n) in input order,
  // duplicates resolved in input order, return value = number of true
  // results.  At shards=1 these forward unmodified (zero-copy).
  size_t insert_batch(const key_type* keys, size_t n, uint8_t* results = nullptr);
  size_t erase_batch(const key_type* keys, size_t n, uint8_t* results = nullptr);
  size_t contains_batch(const key_type* keys, size_t n,
                        uint8_t* results = nullptr) const;
  size_t predecessor_batch(const key_type* keys, size_t n,
                           std::optional<key_type>* results = nullptr) const;

  size_t insert_batch(const std::vector<key_type>& keys,
                      uint8_t* results = nullptr) {
    return insert_batch(keys.data(), keys.size(), results);
  }
  size_t erase_batch(const std::vector<key_type>& keys,
                     uint8_t* results = nullptr) {
    return erase_batch(keys.data(), keys.size(), results);
  }
  size_t contains_batch(const std::vector<key_type>& keys,
                        uint8_t* results = nullptr) const {
    return contains_batch(keys.data(), keys.size(), results);
  }
  size_t predecessor_batch(const std::vector<key_type>& keys,
                           std::optional<key_type>* results = nullptr) const {
    return predecessor_batch(keys.data(), keys.size(), results);
  }

  // Approximate under concurrency; exact when quiescent.  Sum of shards.
  size_t size() const;

  uint32_t universe_bits() const { return cfg_.universe_bits; }
  // Largest *global* key this engine accepts: the unsharded SkipTrie's
  // max_key for the same Config.  (At B = W the two sentinel-reserved top
  // keys stay excluded even though a multi-shard split could physically
  // represent them — the sharded engine must accept exactly the unsharded
  // key range.)
  key_type max_key() const;

  uint32_t shard_count() const { return static_cast<uint32_t>(shards_.size()); }
  uint32_t shard_bits() const { return shard_bits_; }
  // Routing rule (public so tests can pin the bijection).  The shard index
  // always fits 32 bits (shard_bits_ <= 28: W - 4 low bits minimum), so the
  // shifted-down top word narrows losslessly through low_u64.
  uint32_t shard_of(key_type key) const {
    return shard_bits_ == 0
               ? 0u
               : static_cast<uint32_t>(Traits::low_u64(key >> low_bits_));
  }
  key_type low_of(key_type key) const {
    return shard_bits_ == 0 ? key : (key & low_mask_);
  }
  key_type global_key(uint32_t shard, key_type low) const {
    return shard_bits_ == 0 ? low
                            : ((key_type(shard) << low_bits_) | low);
  }

  // Shard access for tests, benchmarks, and the service layer.
  Trie& shard(size_t i) { return *shards_[i]; }
  const Trie& shard(size_t i) const { return *shards_[i]; }
  const Config& config() const { return cfg_; }

  // Quiescent-only aggregate over the per-shard structure walks: additive
  // fields (keys, level/top counts, trie entries, bytes, buckets) sum;
  // max_top_gap takes the max; load factor and avg_top_gap are recomputed
  // from the summed numerators/denominators.
  typename Trie::StructureStats structure_stats() const;

  // Mid-run-safe leaf-chunk totals: sum of the per-shard atomic counters
  // (DESIGN.md §7.4).  Capacity is traits-uniform across shards.
  LeafLiveStats leaf_live_stats() const {
    LeafLiveStats agg;
    for (const auto& sp : shards_) {
      const LeafLiveStats s = sp->leaf_live_stats();
      agg.chunks += s.chunks;
      agg.keys += s.keys;
      if (s.capacity != 0) agg.capacity = s.capacity;
    }
    return agg;
  }

  // Mid-run-safe structural totals: sum of the per-shard atomic counters
  // (DESIGN.md §8.4).  All fields are additive across shards.
  StructureLiveStats structure_live_stats() const {
    StructureLiveStats agg;
    for (const auto& sp : shards_) {
      const StructureLiveStats s = sp->structure_live_stats();
      agg.keys += s.keys;
      agg.top_count += s.top_count;
      agg.promotions += s.promotions;
      agg.demotions += s.demotions;
    }
    return agg;
  }

 private:
  Config cfg_;                  // the caller's config (full universe)
  uint32_t shard_bits_ = 0;     // log2(shard count)
  uint32_t low_bits_ = 0;       // universe_bits - shard_bits
  key_type low_mask_ = key_type(0);
  std::vector<std::unique_ptr<Trie>> shards_;

  // Largest global key in any shard strictly below `s`, or nullopt.
  std::optional<key_type> max_below(uint32_t s) const;
  // Smallest global key in any shard strictly above `s`, or nullopt.
  std::optional<key_type> min_above(uint32_t s) const;
};

using ShardedEngine = BasicShardedEngine<U64Traits>;

}  // namespace skiptrie
