// Sharded SkipTrie engine (DESIGN.md §4.1, §4.3).
//
// Partitions the B-bit key universe by the top log2(N) bits into N
// independent SkipTrie shards.  Shard s owns exactly the keys whose top
// bits equal s and stores them *low-bits only* in a SkipTrie over a
// (B - log2 N)-bit universe, so every shard keeps the truncated-skiplist
// depth bound of its own (smaller) universe.  Each shard owns the full
// per-structure stack — SlabArena, EbrDomain, engine (and with it a unique
// finger/cursor owner id, hence per-shard thread-local finger and cursor
// state) — so shards share *no* mutable memory: operations on different
// shards never contend, which is what gives the service layer
// (src/service/) real parallelism to schedule onto.
//
// Routing (DESIGN.md §4.1): shard_of(k) = k >> (B - log2 N) and
// low_of(k) = k & (2^(B - log2 N) - 1); both are bijective on
// (shard, low) pairs, so no two distinct keys collide and every key has
// exactly one home.  N = 1 is a strict pass-through to one SkipTrie with
// the caller's exact Config — same step counts, same counters — which is
// how the shard_test pins equivalence and how bench cells at shards=1
// reproduce the unsharded engine.
//
// Single-key ordered queries fall back across shards: a predecessor query
// that comes up empty in its home shard takes the largest key of the
// nearest non-empty lower shard (symmetrically for successor).  Each
// probe is a linearizable query on one shard, but the composition is only
// sequentially consistent per operation — under concurrent writes to
// *other* shards the combined answer reflects a slightly earlier state of
// those shards, the same weak-consistency class as for_each_in_range.
// Quiescent answers are exact, which is what the tests rely on.
//
// Batched operations run the split/merge protocol (DESIGN.md §4.3): sort
// the batch (the PR 5 contract already does), slice the sorted stream
// into contiguous per-shard runs — the top-bits routing makes shard runs
// contiguous in sorted order for free — execute each run as one sub-batch
// on its shard (one DescentCursor stream per shard, already-sorted fast
// path, stable duplicate order preserved), and scatter results back to
// input positions.  Sub-batches are counted in steps.shard_batches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/config.h"
#include "core/skiptrie.h"

namespace skiptrie {

class ShardedEngine {
 public:
  // `shards` must be a power of two >= 1, small enough to leave each shard
  // a >= 4-bit low-key universe (the SkipTrie minimum).
  explicit ShardedEngine(uint32_t shards = 1, const Config& cfg = Config{});

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // --- Single-key operations (route by top bits) --------------------------
  bool insert(uint64_t key) { return shards_[shard_of(key)]->insert(low_of(key)); }
  bool erase(uint64_t key) { return shards_[shard_of(key)]->erase(low_of(key)); }
  bool contains(uint64_t key) const {
    return shards_[shard_of(key)]->contains(low_of(key));
  }
  std::optional<uint64_t> predecessor(uint64_t key) const;
  std::optional<uint64_t> strict_predecessor(uint64_t key) const;
  std::optional<uint64_t> successor(uint64_t key) const;
  std::optional<uint64_t> min_key() const;
  std::optional<uint64_t> max_key_present() const;

  // --- Batched operations (split/merge, DESIGN.md §4.3) --------------------
  // Same contract as SkipTrie: results (length n) in input order,
  // duplicates resolved in input order, return value = number of true
  // results.  At shards=1 these forward unmodified (zero-copy).
  size_t insert_batch(const uint64_t* keys, size_t n, uint8_t* results = nullptr);
  size_t erase_batch(const uint64_t* keys, size_t n, uint8_t* results = nullptr);
  size_t contains_batch(const uint64_t* keys, size_t n,
                        uint8_t* results = nullptr) const;
  size_t predecessor_batch(const uint64_t* keys, size_t n,
                           std::optional<uint64_t>* results = nullptr) const;

  size_t insert_batch(const std::vector<uint64_t>& keys,
                      uint8_t* results = nullptr) {
    return insert_batch(keys.data(), keys.size(), results);
  }
  size_t erase_batch(const std::vector<uint64_t>& keys,
                     uint8_t* results = nullptr) {
    return erase_batch(keys.data(), keys.size(), results);
  }
  size_t contains_batch(const std::vector<uint64_t>& keys,
                        uint8_t* results = nullptr) const {
    return contains_batch(keys.data(), keys.size(), results);
  }
  size_t predecessor_batch(const std::vector<uint64_t>& keys,
                           std::optional<uint64_t>* results = nullptr) const {
    return predecessor_batch(keys.data(), keys.size(), results);
  }

  // Approximate under concurrency; exact when quiescent.  Sum of shards.
  size_t size() const;

  uint32_t universe_bits() const { return cfg_.universe_bits; }
  // Largest *global* key this engine accepts: the unsharded SkipTrie's
  // max_key for the same Config.  (At B = 64 the two sentinel-reserved top
  // keys stay excluded even though a multi-shard split could physically
  // represent them — the sharded engine must accept exactly the unsharded
  // key range.)
  uint64_t max_key() const;

  uint32_t shard_count() const { return static_cast<uint32_t>(shards_.size()); }
  uint32_t shard_bits() const { return shard_bits_; }
  // Routing rule (public so tests can pin the bijection).
  uint32_t shard_of(uint64_t key) const {
    return shard_bits_ == 0 ? 0u
                            : static_cast<uint32_t>(key >> low_bits_);
  }
  uint64_t low_of(uint64_t key) const {
    return shard_bits_ == 0 ? key : (key & low_mask_);
  }
  uint64_t global_key(uint32_t shard, uint64_t low) const {
    return shard_bits_ == 0 ? low
                            : ((static_cast<uint64_t>(shard) << low_bits_) | low);
  }

  // Shard access for tests, benchmarks, and the service layer.
  SkipTrie& shard(size_t i) { return *shards_[i]; }
  const SkipTrie& shard(size_t i) const { return *shards_[i]; }
  const Config& config() const { return cfg_; }

  // Quiescent-only aggregate over the per-shard structure walks: additive
  // fields (keys, level/top counts, trie entries, bytes, buckets) sum;
  // max_top_gap takes the max; load factor and avg_top_gap are recomputed
  // from the summed numerators/denominators.
  SkipTrie::StructureStats structure_stats() const;

 private:
  Config cfg_;                  // the caller's config (full universe)
  uint32_t shard_bits_ = 0;     // log2(shard count)
  uint32_t low_bits_ = 0;       // universe_bits - shard_bits
  uint64_t low_mask_ = 0;
  std::vector<std::unique_ptr<SkipTrie>> shards_;

  // Largest global key in any shard strictly below `s`, or nullopt.
  std::optional<uint64_t> max_below(uint32_t s) const;
  // Smallest global key in any shard strictly above `s`, or nullopt.
  std::optional<uint64_t> min_above(uint32_t s) const;
};

}  // namespace skiptrie
