// T5 — mixed-workload throughput across key distributions: the SkipTrie's
// probabilistic balancing needs no rebalancing, so skewed or clustered key
// patterns must not degrade it (the y-fast trie's bucket splits/merges are
// exactly what the paper eliminates).  Runs on the shared cell runner (so
// prefill now follows the configured distribution and hit rates are
// meaningful); `--out FILE` additionally emits the cells as JSON.
#include <cstdio>
#include <string>
#include <thread>

#include "bench_util.h"

using namespace skiptrie;
using namespace skiptrie::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const bool quick = args.has("--quick");
  const std::string out_path = args.get("--out");
  const uint32_t threads =
      quick ? 2u : std::max(2u, std::thread::hardware_concurrency());

  JsonWriter j;
  j.begin_object();
  write_suite_header(j, "bench_tab5_mixed", git_rev(args), quick);
  j.key("cells").begin_array();
  j.newline();

  header("T5: throughput by key distribution (balanced mix)");
  std::printf("%-12s %-12s %-10s %-12s %-12s %-12s\n", "structure", "dist",
              "Mops/s", "steps/op", "hit-rate", "backsteps/op");
  row_sep(80);
  for (const KeyDist d : all_dists()) {
    for (const char* structure : {"skiptrie", "skiplist"}) {
      CellSpec spec;
      spec.section = "tab5_mixed";
      spec.structure = structure;
      spec.mix_name = "balanced";
      spec.universe_bits = 32;
      spec.wc.threads = threads;
      spec.wc.ops_per_thread = quick ? 8000 : 40000;
      spec.wc.mix = OpMix::balanced();
      spec.wc.dist = d;
      spec.wc.key_space = 1u << 20;
      spec.wc.prefill = 1u << 14;
      const CellResult res = run_cell(spec);
      const WorkloadResult& r = res.r;
      const double hits = static_cast<double>(r.insert_hits + r.erase_hits +
                                              r.pred_hits + r.lookup_hits) /
                          r.total_ops;
      std::printf("%-12s %-12s %-10.3f %-12.1f %-12.3f %-12.4f\n", structure,
                  key_dist_name(d), r.mops(), r.search_steps_per_op(), hits,
                  static_cast<double>(r.steps.back_steps) / r.total_ops);
      write_cell(j, spec, res);
    }
  }

  j.end_array();
  j.end_object();
  j.newline();
  if (!out_path.empty() && !write_file(out_path, j.str())) return 1;

  std::printf(
      "\nPaper shape: SkipTrie does fewer search steps/op than the log-m\n"
      "skiplist across ALL distributions, with no rebalancing pathology on\n"
      "sequential/clustered keys.\n");
  return 0;
}
