// T5 — mixed-workload throughput across key distributions: the SkipTrie's
// probabilistic balancing needs no rebalancing, so skewed or clustered key
// patterns must not degrade it (the y-fast trie's bucket splits/merges are
// exactly what the paper eliminates).
#include <cstdio>
#include <thread>

#include "baseline/lockfree_skiplist.h"
#include "bench_util.h"
#include "core/skiptrie.h"
#include "workload/driver.h"

using namespace skiptrie;
using namespace skiptrie::bench;

int main() {
  const unsigned threads = std::max(2u, std::thread::hardware_concurrency());
  header("T5: throughput by key distribution (balanced mix)");
  std::printf("%-12s %-12s %-10s %-12s %-12s %-12s\n", "structure", "dist",
              "Mops/s", "steps/op", "hit-rate", "backsteps/op");
  row_sep(80);
  for (const KeyDist d : {KeyDist::kUniform, KeyDist::kZipf,
                          KeyDist::kClustered, KeyDist::kSequential}) {
    {
      Config cfg;
      cfg.universe_bits = 32;
      SkipTrie t(cfg);
      WorkloadConfig wc;
      wc.threads = threads;
      wc.ops_per_thread = 40000;
      wc.mix = OpMix::balanced();
      wc.dist = d;
      wc.key_space = 1u << 20;
      wc.prefill = 1u << 14;
      const auto r = run_workload(t, wc);
      const double hits = static_cast<double>(r.insert_hits + r.erase_hits +
                                              r.pred_hits + r.lookup_hits) /
                          r.total_ops;
      std::printf("%-12s %-12s %-10.3f %-12.1f %-12.3f %-12.4f\n", "skiptrie",
                  key_dist_name(d), r.mops(), r.search_steps_per_op(), hits,
                  static_cast<double>(r.steps.back_steps) / r.total_ops);
    }
    {
      LockFreeSkipList s(21);
      WorkloadConfig wc;
      wc.threads = threads;
      wc.ops_per_thread = 40000;
      wc.mix = OpMix::balanced();
      wc.dist = d;
      wc.key_space = 1u << 20;
      wc.prefill = 1u << 14;
      const auto r = run_workload(s, wc);
      std::printf("%-12s %-12s %-10.3f %-12.1f %-12s %-12.4f\n",
                  "skiplist-20", key_dist_name(d), r.mops(),
                  r.search_steps_per_op(), "-",
                  static_cast<double>(r.steps.back_steps) / r.total_ops);
    }
  }
  std::printf(
      "\nPaper shape: SkipTrie does fewer search steps/op than the log-m\n"
      "skiplist across ALL distributions, with no rebalancing pathology on\n"
      "sequential/clustered keys.\n");
  return 0;
}
