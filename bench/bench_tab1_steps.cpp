// T1 — the headline claim (Theorem 4.3 + §1 motivation): predecessor cost
// grows like log log u for the SkipTrie but like log m for classic
// structures.  With m = 2^20 and u = 2^32 the paper quotes depth 20 vs 5.
//
// We count *steps* (node hops + hash probes + guide-pointer follows, the
// currency of the paper's bound) per predecessor query as m grows, for the
// SkipTrie vs the full-height lock-free skiplist built on the same engine,
// plus wall-clock ns/op for both and for a locked std::map.
#include <cmath>
#include <cstdio>

#include "baseline/lockfree_skiplist.h"
#include "baseline/locked_map.h"
#include "bench_util.h"
#include "core/skiptrie.h"

using namespace skiptrie;
using namespace skiptrie::bench;

int main() {
  const uint32_t bits = 32;
  const size_t kQueries = 20000;
  header("T1: predecessor steps/op vs m (B=32): SkipTrie vs log-m baselines");
  std::printf("%-10s %-8s | %-12s %-10s | %-12s %-10s | %-10s | %-8s %-8s\n",
              "m", "log2(m)", "trie steps", "trie ns", "sl steps", "sl ns",
              "map ns", "loglogu", "ratio");
  row_sep(110);
  for (const size_t m :
       {size_t{1} << 10, size_t{1} << 12, size_t{1} << 14, size_t{1} << 16,
        size_t{1} << 18, size_t{1} << 20}) {
    Config cfg;
    cfg.universe_bits = bits;
    SkipTrie trie(cfg);
    LockFreeSkipList sl(static_cast<uint32_t>(std::log2(m)) + 2);
    LockedMap map;

    fill_distinct(trie, m, bits, 1);
    fill_distinct(sl, m, bits, 1);
    fill_distinct(map, m, bits, 1);

    const auto queries = random_queries(kQueries, bits, 99);
    const auto mt = measure_ops(queries, [&](uint64_t q) {
      volatile auto r = trie.predecessor(q).has_value();
      (void)r;
    });
    const auto ms = measure_ops(queries, [&](uint64_t q) {
      volatile auto r = sl.predecessor(q).has_value();
      (void)r;
    });
    const auto mm = measure_ops(queries, [&](uint64_t q) {
      volatile auto r = map.predecessor(q).has_value();
      (void)r;
    });
    std::printf(
        "%-10zu %-8.1f | %-12.1f %-10.0f | %-12.1f %-10.0f | %-10.0f | %-8u %-8.2f\n",
        m, std::log2(static_cast<double>(m)), mt.search_steps_per_op(),
        mt.ns_per_op, ms.search_steps_per_op(), ms.ns_per_op, mm.ns_per_op,
        ceil_log2(bits),
        ms.search_steps_per_op() / mt.search_steps_per_op());
  }
  std::printf(
      "\nPaper shape: trie steps stay ~flat in m (O(log log u)); skiplist\n"
      "steps grow ~linearly in log2(m); ratio widens with m (20/5 = 4x at\n"
      "m=2^20, u=2^32 in the paper's depth terms).\n");
  return 0;
}
