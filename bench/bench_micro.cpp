// Microbenchmarks for the core operations, on the shared runner/emitter.
//
// Complements the table benches (which report the paper's step counts) with
// tight wall-clock numbers per operation, sweeping the structure size, for
// SkipTrie and the full-height skiplist baseline; plus DCSS-vs-CAS-fallback
// insert/erase and a small concurrent predecessor sweep.  Emits
// BENCH_micro.json in the shared schema (micro cells + workload cells).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace skiptrie;
using namespace skiptrie::bench;

namespace {

constexpr uint32_t kBits = 32;

void micro_row(const char* name, uint64_t size, const Measured& m) {
  std::printf("%-28s %-10llu %-12.1f %-12.1f\n", name,
              static_cast<unsigned long long>(size), m.ns_per_op,
              m.search_steps_per_op());
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const bool quick = args.has("--quick");
  const std::string out_path = args.get("--out", "BENCH_micro.json");
  const size_t queries = quick ? 20000 : 200000;

  JsonWriter j;
  j.begin_object();
  write_suite_header(j, "bench_micro", git_rev(args), quick);
  j.key("cells").begin_array();
  j.newline();

  header("micro: single-threaded ns/op and steps/op (B=32)");
  std::printf("%-28s %-10s %-12s %-12s\n", "case", "size", "ns/op",
              "steps/op");
  row_sep(64);

  // Predecessor as the structure grows: the SkipTrie's depth is fixed by the
  // universe, the skiplist's by its contents.
  const std::vector<size_t> sizes =
      quick ? std::vector<size_t>{1 << 10, 1 << 14}
            : std::vector<size_t>{1 << 10, 1 << 12, 1 << 14, 1 << 16,
                                  1 << 18, 1 << 20};
  for (const size_t m : sizes) {
    const std::vector<uint64_t> q = random_queries(queries, kBits, 7);
    {
      Config cfg;
      cfg.universe_bits = kBits;
      SkipTrie t(cfg);
      fill_distinct(t, m, kBits, 1);
      const Measured r =
          measure_ops(q, [&](uint64_t k) { (void)t.predecessor(k); });
      micro_row("skiptrie/predecessor", m, r);
      write_micro_cell(j, "micro_pred_size", "predecessor", "skiptrie", m,
                       kBits, r);
    }
    {
      LockFreeSkipList s(skiplist_levels_for(m));
      fill_distinct(s, m, kBits, 1);
      const Measured r =
          measure_ops(q, [&](uint64_t k) { (void)s.predecessor(k); });
      micro_row("skiplist/predecessor", m, r);
      write_micro_cell(j, "micro_pred_size", "predecessor", "skiplist", m,
                       kBits, r);
    }
  }
  row_sep(64);

  // Contains and insert/erase churn, DCSS vs the paper's CAS fallback.
  {
    Config cfg;
    cfg.universe_bits = kBits;
    SkipTrie t(cfg);
    fill_distinct(t, 1 << 16, kBits, 2);
    const std::vector<uint64_t> q = random_queries(queries, kBits, 9);
    const Measured r = measure_ops(q, [&](uint64_t k) { (void)t.contains(k); });
    micro_row("skiptrie/contains", 1 << 16, r);
    write_micro_cell(j, "micro_ops", "contains", "skiptrie", 1 << 16, kBits, r);
  }
  for (const DcssMode mode : {DcssMode::kDcss, DcssMode::kCasFallback}) {
    Config cfg;
    cfg.universe_bits = kBits;
    cfg.dcss_mode = mode;
    SkipTrie t(cfg);
    fill_distinct(t, 1 << 14, kBits, 3);
    const std::vector<uint64_t> q = random_queries(queries, kBits, 11);
    const Measured r = measure_ops(q, [&](uint64_t k) {
      if (!t.insert(k)) t.erase(k);
    });
    const char* name = mode == DcssMode::kDcss ? "skiptrie/insert_erase"
                                               : "skiptrie/insert_erase_cas";
    micro_row(name, 1 << 14, r);
    write_micro_cell(j, "micro_ops",
                     mode == DcssMode::kDcss ? "insert_erase"
                                             : "insert_erase_cas_fallback",
                     "skiptrie", 1 << 14, kBits, r);
  }

  // Concurrent predecessor throughput via the shared workload runner.
  header("micro: concurrent predecessor (read-only, uniform)");
  std::printf("%-10s %-10s %-12s %-12s\n", "threads", "Mops/s", "steps/op",
              "p99 ns");
  row_sep(48);
  for (const uint32_t threads : {1u, 2u, 4u}) {
    CellSpec spec;
    spec.section = "micro_concurrent_pred";
    spec.structure = "skiptrie";
    spec.mix_name = "read_only";
    spec.universe_bits = kBits;
    spec.wc.threads = threads;
    spec.wc.ops_per_thread = (quick ? 10000u : 100000u) / threads;
    spec.wc.mix = OpMix::read_only();
    spec.wc.key_space = bench_key_space(kBits);
    spec.wc.prefill = 1 << 16;
    spec.wc.seed = 21 + threads;
    const CellResult res = run_cell(spec);
    std::printf("%-10u %-10.3f %-12.1f %-12.0f\n", threads, res.r.mops(),
                res.r.search_steps_per_op(),
                res.r.latency_percentile_ns(0.99));
    write_cell(j, spec, res);
  }

  j.end_array();
  j.end_object();
  j.newline();
  if (!write_file(out_path, j.str())) return 1;
  std::printf("\n-> %s\n", out_path.c_str());
  return 0;
}
