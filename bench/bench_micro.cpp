// Google-benchmark microbenchmarks for the core operations.
//
// Complements the table benches (which report the paper's step counts) with
// tight wall-clock numbers per operation, sweeping the structure size, for
// SkipTrie and the full-height skiplist baseline.
#include <benchmark/benchmark.h>

#include <cmath>

#include "baseline/lockfree_skiplist.h"
#include "bench_util.h"
#include "core/skiptrie.h"

using namespace skiptrie;
using namespace skiptrie::bench;

namespace {

constexpr uint32_t kBits = 32;

void BM_SkipTriePredecessor(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  Config cfg;
  cfg.universe_bits = kBits;
  SkipTrie t(cfg);
  fill_distinct(t, m, kBits, 1);
  Xoshiro256 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        t.predecessor(rng.next() & universe_mask(kBits)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkipTriePredecessor)->Range(1 << 10, 1 << 20);

void BM_SkipListPredecessor(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  LockFreeSkipList s(static_cast<uint32_t>(std::log2(m)) + 2);
  fill_distinct(s, m, kBits, 1);
  Xoshiro256 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s.predecessor(rng.next() & universe_mask(kBits)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkipListPredecessor)->Range(1 << 10, 1 << 20);

void BM_SkipTrieContains(benchmark::State& state) {
  Config cfg;
  cfg.universe_bits = kBits;
  SkipTrie t(cfg);
  fill_distinct(t, 1 << 16, kBits, 2);
  Xoshiro256 rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.contains(rng.next() & universe_mask(kBits)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkipTrieContains);

void BM_SkipTrieInsertErase(benchmark::State& state) {
  Config cfg;
  cfg.universe_bits = kBits;
  SkipTrie t(cfg);
  fill_distinct(t, 1 << 14, kBits, 3);
  Xoshiro256 rng(11);
  for (auto _ : state) {
    const uint64_t k = rng.next() & universe_mask(kBits);
    if (!t.insert(k)) t.erase(k);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkipTrieInsertErase);

void BM_SkipTrieInsertEraseCasFallback(benchmark::State& state) {
  Config cfg;
  cfg.universe_bits = kBits;
  cfg.dcss_mode = DcssMode::kCasFallback;
  SkipTrie t(cfg);
  fill_distinct(t, 1 << 14, kBits, 3);
  Xoshiro256 rng(11);
  for (auto _ : state) {
    const uint64_t k = rng.next() & universe_mask(kBits);
    if (!t.insert(k)) t.erase(k);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkipTrieInsertEraseCasFallback);

SkipTrie& shared_trie() {
  // Constructed once on first use (any thread; magic statics synchronize),
  // reused by every thread count, destroyed at process exit.
  static SkipTrie* t = [] {
    Config cfg;
    cfg.universe_bits = kBits;
    auto* p = new SkipTrie(cfg);
    fill_distinct(*p, 1 << 16, kBits, 4);
    return p;
  }();
  return *t;
}

void BM_SkipTrieConcurrentPred(benchmark::State& state) {
  SkipTrie& t = shared_trie();
  Xoshiro256 rng(21 + state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        t.predecessor(rng.next() & universe_mask(kBits)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkipTrieConcurrentPred)->Threads(1)->Threads(2)->Threads(4);

}  // namespace

BENCHMARK_MAIN();
