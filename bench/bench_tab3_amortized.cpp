// T3 — amortization of x-fast-trie maintenance (§1, §4.2):
//   * only ~1/log u of inserted keys rise to the top level and touch the
//     trie at all,
//   * each trie-touching insert/delete performs O(log u) hash updates,
//   * so the amortized trie cost per operation is O(1) hash updates.
#include <cstdio>

#include "bench_util.h"
#include "core/skiptrie.h"

using namespace skiptrie;
using namespace skiptrie::bench;

int main() {
  header("T3: amortized x-fast-trie maintenance cost");
  std::printf("%-6s %-8s %-10s %-12s %-14s %-14s %-16s\n", "B", "ops",
              "top keys", "rise rate", "1/B (expect)", "hash_upd/op",
              "upd/trie-op");
  row_sep(90);
  for (const uint32_t bits : {16u, 32u, 64u}) {
    // Keep the fill sparse in the universe so distinct draws stay cheap.
    const size_t m = bits == 16 ? (size_t{1} << 14) : (size_t{1} << 16);
    Config cfg;
    cfg.universe_bits = bits;
    SkipTrie t(cfg);

    tls_counters() = StepCounters{};
    Xoshiro256 rng(bits);
    std::vector<uint64_t> keys;
    keys.reserve(m);
    size_t inserted = 0;
    while (inserted < m) {
      const uint64_t k = rng.next() & universe_mask(bits);
      if (bits >= 64 && k > bench_max_key(bits)) continue;
      if (t.insert(k)) {
        keys.push_back(k);
        inserted++;
      }
    }
    const StepCounters ins = tls_counters();
    const auto s = t.structure_stats();
    const double rise = static_cast<double>(s.top_count) / m;

    tls_counters() = StepCounters{};
    for (const uint64_t k : keys) t.erase(k);
    const StepCounters del = tls_counters();

    const double upd_per_insert = static_cast<double>(ins.hash_updates) / m;
    const double upd_per_trie_insert =
        s.top_count ? static_cast<double>(ins.hash_updates) / s.top_count
                    : 0.0;
    std::printf("%-6u %-8s %-10zu %-12.4f %-14.4f %-14.3f %-16.1f\n", bits,
                "insert", s.top_count, rise, 1.0 / bits, upd_per_insert,
                upd_per_trie_insert);
    const double upd_per_erase = static_cast<double>(del.hash_updates) / m;
    std::printf("%-6u %-8s %-10s %-12s %-14s %-14.3f %-16s\n", bits, "erase",
                "-", "-", "-", upd_per_erase, "-");
    tls_counters() = StepCounters{};
  }
  std::printf(
      "\nPaper shape: rise rate ~1/B; hash updates per trie-touching insert\n"
      "~B (one per prefix level); amortized updates per op O(1) and shrinking\n"
      "relative to B as B grows.\n");
  return 0;
}
