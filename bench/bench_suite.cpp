// bench_suite — the unified benchmark driver.
//
// Sweeps {SkipTrie, lock-free skiplist baseline, locked std::map baseline}
// x thread counts x op mixes x key distributions x universe bits and emits
// every measured cell into a machine-readable BENCH_suite.json (schema in
// README "Benchmarks").  Two sections:
//
//   universe_scaling  single-threaded predecessor-only cells whose prefill
//                     grows with the universe (n ~ sqrt(u), capped): the
//                     paper's headline contrast — SkipTrie search steps
//                     track log log u while the skiplist baseline tracks
//                     log n.
//   grid              the full cross product at a fixed modest prefill:
//                     throughput, latency percentiles and step attribution
//                     under contention, skew and clustering.
//   batch             batched-op cells (DESIGN.md §3.7): single-threaded
//                     {skiptrie, skiplist} x {insert_only, lookup_only,
//                     balanced, write_heavy} x {uniform, zipf, clustered}
//                     x --batch-sizes at --batch-bits, same seed across
//                     batch sizes so cells run the same per-window
//                     (key, op) multiset and differ only in grouping (and
//                     the intra-window reordering grouping implies; see
//                     WorkloadConfig::batch_size) — the amortization read
//                     is hops+probes per key at batch_size = n vs 1.
//   bytes16           key-traits widening (DESIGN.md §6): the same u64 key
//                     stream run through the u64 fast path and through
//                     BasicSkipTrie<Bytes16Traits> (128-bit ikeys, keys
//                     spread order-preserving into the 120-bit encoded
//                     space).  Matched cells differ only in `key_kind`, so
//                     the step delta is the measured cost of W-widening —
//                     the log log u story's other direction.
//   leaf_ablation     leaf-chunk hint index on/off (DESIGN.md §7): matched
//                     single-threaded skiptrie cells — same seed, same
//                     stream — at 32 universe bits over {read_heavy,
//                     lookup_only} x {uniform, zipf}, differing only in
//                     `leaf_chunking`.  The acceptance read is the
//                     bytes_touched/op ratio off/on (target >= 1.3x) with
//                     hops_descent/op lower on the chunked side.
//   toplevel_ablation adaptive tower heights on/off (DESIGN.md §8): matched
//                     single-threaded skiptrie cells — same seed, same
//                     stream — at 32 universe bits over {read_heavy,
//                     lookup_only} x {uniform, zipf} (zipf additionally with
//                     hot-set drift), differing only in `adaptive_heights`.
//                     Finger and leaf chunking are pinned off so neither can
//                     short-circuit the descents being measured.  The
//                     acceptance read is (hops_top+hops_descent)/op off/on
//                     >= 1.15x on the zipf cells with bytes_touched/op lower
//                     on the adaptive side, and uniform cells within 5%.
//   service           the queued Service front-end (DESIGN.md §4.3) under
//                     the client simulator (hot-tenant zipf, bursty
//                     arrivals): --shards x client counts; steps merge the
//                     submit-side queue attribution with the worker-side
//                     engine counters.  The clients=1/shards=1 cell is
//                     deterministic in step counts (one FIFO worker) and
//                     sits inside the CI fatal gate; everything wider is
//                     report-only.
//
// Passing `sharded` in --structures runs the ShardedEngine through the
// plain workload driver in the grid (shards swept from --shards) — the
// apples-to-apples read of routing overhead vs the flat skiptrie.
//
// `--quick` shrinks every axis so the suite finishes in seconds; it is
// registered in ctest so the subsystem cannot bit-rot.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "service/service.h"
#include "workload/client_sim.h"

using namespace skiptrie;
using namespace skiptrie::bench;

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t comma = s.find(',', start);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::vector<uint32_t> split_csv_u32(const std::string& s) {
  std::vector<uint32_t> out;
  for (const std::string& tok : split_csv(s)) {
    out.push_back(static_cast<uint32_t>(std::strtoul(tok.c_str(), nullptr, 10)));
  }
  return out;
}

// Deterministic per-cell seed from the axis values alone, so re-runs (and
// runs of the same cell from different suite compositions) agree.
uint64_t cell_seed(uint32_t bits, uint32_t threads, size_t mix_idx,
                   size_t dist_idx, size_t structure_idx, uint32_t repeat) {
  return mix64(bits * 1000003ull + threads * 10007ull +
               (mix_idx + 1) * 1009ull + (dist_idx + 1) * 101ull +
               (structure_idx + 1) * 11ull + repeat + 1);
}

// Canonical structure id for seeding, independent of --structures order —
// and shared between "skiptrie" and "sharded" on purpose: matched cells
// then run the identical workload, so the sharded-vs-flat delta (zero at
// shards=1, pinned by tests/shard_test.cpp) is pure routing cost.
size_t structure_seed_idx(const std::string& s) {
  if (s == "skiptrie" || s == "sharded") return 0;
  if (s == "skiplist") return 1;
  return 2;  // locked_map
}

// Baselines have no height policy; their cells record adaptive_heights =
// false so they keep joining against pre-v8 files (which fill false).
bool structure_has_adaptation(const std::string& s) {
  return s == "skiptrie" || s == "sharded";
}

struct ScalingPoint {
  std::string structure;
  uint32_t bits = 0;
  uint64_t prefill = 0;
  double pred_steps_per_op = 0.0;
  uint32_t count = 0;
};

struct BatchPoint {
  std::string structure;
  std::string mix;
  std::string dist;
  uint32_t batch_size = 0;
  double hops_probes_per_key = 0.0;  // (node_hops + hash_probes) / keys
  double reuse_rate = 0.0;           // cursor_reuses / (reuses + redescends)
};

struct Bytes16Point {
  std::string mix;
  uint32_t threads = 0;
  double u64_steps = 0.0;      // search steps/op, u64 fast path
  double bytes16_steps = 0.0;  // search steps/op, 128-bit instantiation
  double ratio() const {
    return u64_steps > 0.0 ? bytes16_steps / u64_steps : 0.0;
  }
};

struct LeafPoint {
  std::string mix;
  std::string dist;
  double bytes_on = 0.0;        // bytes_touched / op, chunking on
  double bytes_off = 0.0;       // bytes_touched / op, chunking off
  double hops_descent_on = 0.0; // hops_descent / op, chunking on
  double hops_descent_off = 0.0;
  double chunk_scans_on = 0.0;  // chunk_scans / op, chunking on
  double final_occupancy = 0.0; // from the on-cell's leaf checkpoints
  double ratio() const { return bytes_on > 0.0 ? bytes_off / bytes_on : 0.0; }
};

struct ToplevelPoint {
  std::string mix;
  std::string dist;
  bool drift = false;
  double hops_on = 0.0;    // node_hops / op, adaptation on
  double hops_off = 0.0;   // node_hops / op, adaptation off
  double bytes_on = 0.0;   // bytes_touched / op, adaptation on
  double bytes_off = 0.0;
  uint64_t promotions = 0, demotions = 0;  // on-cell policy activity
  uint64_t final_top = 0;                  // on-cell final top population
  double ratio() const { return hops_on > 0.0 ? hops_off / hops_on : 0.0; }
};

struct ServicePoint {
  uint32_t shards = 0;
  uint32_t clients = 0;
  double mops = 0.0;
  double depth_per_sub = 0.0;    // queue_depth_sum / service_subtasks
  double wait_us_per_sub = 0.0;  // queue_wait_ns / service_subtasks / 1e3
};

// One service cell: same join keys as write_cell (section/structure/bits/
// threads/mix/dist/batch_size/shards/repeat) so compare_bench joins it; the
// payload merges submit-side (client) and execute-side (worker) counters.
void write_service_cell(JsonWriter& j, uint32_t bits, uint32_t shards,
                        const ClientSimConfig& cfg, const ClientSimResult& r,
                        const StepCounters& worker_steps) {
  StepCounters merged = r.client_steps;
  merged += worker_steps;
  const double ops = r.ops ? static_cast<double>(r.ops) : 1.0;
  j.begin_object();
  j.kv("section", "service");
  j.kv("structure", "service");
  j.kv("universe_bits", bits);
  j.kv("threads", cfg.clients);  // submitting clients ~ driver threads
  j.kv("mix", "balanced");
  j.kv("dist", "zipf");
  j.kv("batch_size", cfg.ops_per_request);
  j.kv("shards", shards);
  j.kv("key_kind", "u64");  // the service front-end runs the fast path
  j.kv("key_space", cfg.key_space);
  j.kv("prefill", cfg.prefill);
  j.kv("seed", cfg.seed);
  j.kv("repeat", 0u);
  j.kv("total_ops", r.ops);
  j.kv("requests", r.requests);
  j.kv("burst", cfg.burst);
  j.kv("tenants", cfg.tenants);
  j.kv("seconds", r.seconds);
  j.kv("mops", r.mops());
  j.key("steps_per_op").begin_object();
  j.kv("search", static_cast<double>(merged.search_steps()) / ops);
  j.kv("total", static_cast<double>(merged.total_steps()) / ops);
  j.end_object();
  j.key("steps");
  write_step_counters(j, merged);
  j.key("per_op").begin_object();
  for (size_t k = 0; k < kOpTypeCount; ++k) {
    if (r.op_counts[k] == 0) continue;
    j.key(op_type_name(static_cast<OpType>(k))).begin_object();
    j.kv("ops", r.op_counts[k]);
    j.kv("hits", r.op_hits[k]);
    j.end_object();
  }
  j.end_object();
  j.end_object();
  j.newline();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  if (args.has("--help")) {
    std::printf(
        "bench_suite [--quick] [--out FILE] [--git-rev REV]\n"
        "            [--repeat N]  (universe_scaling cells only; grid cells\n"
        "                           are single-sample by design)\n"
        "            [--structures a,b] [--threads 1,2,4,8] [--bits 16,24,32,64]\n"
        "            [--mixes read_only,...] [--dists uniform,...]\n"
        "            [--ops TOTAL_PER_CELL] [--prefill N] [--scaling-ops N]\n"
        "            [--batch-sizes 1,16,256] [--batch-bits B]\n"
        "            [--batch-space N] [--batch-prefill N]  (batch section)\n"
        "            [--bytes16-bits B] [--bytes16-threads 1,2]\n"
        "            [--bytes16-mixes a,b]  (bytes16 section)\n"
        "            [--shards 1,2,4] [--service-clients 1,2,4]\n"
        "            [--service-requests N] [--service-ops N]\n"
        "            [--service-burst N] [--service-prefill N]\n"
        "            [--service-bits B]  (service section)\n");
    return 0;
  }
  const bool quick = args.has("--quick");
  const std::string out_path =
      args.get("--out", quick ? "BENCH_suite_quick.json" : "BENCH_suite.json");
  const std::string rev = git_rev(args);
  const uint32_t repeats =
      static_cast<uint32_t>(args.get_u64("--repeat", quick ? 1 : 2));

  std::vector<std::string> structures =
      split_csv(args.get("--structures", "skiptrie,skiplist,locked_map"));
  std::vector<uint32_t> threads_axis =
      split_csv_u32(args.get("--threads", quick ? "1,2" : "1,2,4,8"));
  std::vector<uint32_t> bits_axis =
      split_csv_u32(args.get("--bits", quick ? "16,32" : "16,24,32,64"));
  std::vector<std::string> mix_names = split_csv(
      args.get("--mixes", quick ? "balanced" :
                                  "read_only,read_heavy,balanced,write_heavy"));
  std::vector<std::string> dist_names = split_csv(
      args.get("--dists",
               quick ? "uniform,zipf" : "uniform,zipf,clustered,sequential"));
  const uint64_t grid_ops = args.get_u64("--ops", quick ? 2000 : 24000);
  const uint64_t grid_prefill = args.get_u64("--prefill", quick ? 256 : 8192);
  const uint64_t scaling_ops = args.get_u64("--scaling-ops", quick ? 2000 : 30000);
  const uint32_t latency_every =
      static_cast<uint32_t>(args.get_u64("--latency-every", quick ? 16 : 64));
  std::vector<uint32_t> batch_sizes =
      split_csv_u32(args.get("--batch-sizes", quick ? "1,16" : "1,16,256"));
  const uint32_t batch_bits =
      static_cast<uint32_t>(args.get_u64("--batch-bits", 32));
  // The batch section's workload shape: a dense active key range (bulk
  // ingest / multi-get against a bounded ID space).  Cursor amortization is
  // governed by present-keys-per-batch-gap = n/batch_size — a *population*
  // ratio, not a key-space one — so the section keeps n modest; the sparse
  // full-universe regime is ROADMAP-documented rather than swept.
  const uint64_t batch_space = args.get_u64("--batch-space", 2048);
  const uint64_t batch_prefill = args.get_u64("--batch-prefill", 512);
  // Bytes16 section axes: the stream's universe bits (the wide trie itself
  // always runs the 120-bit spread universe), submitter threads and mixes.
  const uint32_t bytes16_bits =
      static_cast<uint32_t>(args.get_u64("--bytes16-bits", 32));
  std::vector<uint32_t> bytes16_threads =
      split_csv_u32(args.get("--bytes16-threads", quick ? "1" : "1,2"));
  std::vector<std::string> bytes16_mix_names = split_csv(
      args.get("--bytes16-mixes",
               quick ? "balanced" : "read_only,balanced,write_heavy"));
  // Service section axes.  Power-of-two shard counts only (routing is by
  // key prefix); the clients axis is separate from --threads because the
  // service adds a worker thread per shard on top of the submitters.
  std::vector<uint32_t> shards_axis =
      split_csv_u32(args.get("--shards", quick ? "1,2" : "1,2,4"));
  std::vector<uint32_t> service_clients =
      split_csv_u32(args.get("--service-clients", quick ? "1,2" : "1,2,4"));
  const uint32_t service_bits =
      static_cast<uint32_t>(args.get_u64("--service-bits", 20));
  const uint32_t service_requests = static_cast<uint32_t>(
      args.get_u64("--service-requests", quick ? 64 : 256));
  const uint32_t service_ops = static_cast<uint32_t>(
      args.get_u64("--service-ops", quick ? 16 : 32));
  const uint32_t service_burst =
      static_cast<uint32_t>(args.get_u64("--service-burst", 8));
  const uint64_t service_prefill =
      args.get_u64("--service-prefill", quick ? 256 : 4096);

  // Resolve named axes against the registries in bench_util.h; a token that
  // matches nothing is an error, not a silently shrunken sweep.
  std::vector<NamedMix> mixes;
  for (const std::string& name : mix_names) {
    bool found = false;
    for (const NamedMix& m : all_mixes()) {
      if (name == m.name) {
        mixes.push_back(m);
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr,
                   "bench_suite: unknown mix '%s' (read_only, read_heavy, "
                   "balanced, write_heavy)\n",
                   name.c_str());
      return 1;
    }
  }
  std::vector<KeyDist> dists;
  for (const std::string& name : dist_names) {
    bool found = false;
    for (const KeyDist d : all_dists()) {
      if (name == key_dist_name(d)) {
        dists.push_back(d);
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr,
                   "bench_suite: unknown dist '%s' (uniform, zipf, "
                   "clustered, sequential)\n",
                   name.c_str());
      return 1;
    }
  }
  for (const std::string& s : structures) {
    if (s != "skiptrie" && s != "skiplist" && s != "locked_map" &&
        s != "sharded") {
      std::fprintf(stderr,
                   "bench_suite: unknown structure '%s' (skiptrie, skiplist, "
                   "locked_map, sharded)\n",
                   s.c_str());
      return 1;
    }
  }
  for (const uint32_t t : threads_axis) {
    if (t == 0 || t > 256) {
      std::fprintf(stderr, "bench_suite: bad thread count %u\n", t);
      return 1;
    }
  }
  for (const uint32_t b : bits_axis) {
    if (b < 4 || b > 64) {
      std::fprintf(stderr, "bench_suite: universe bits must be 4..64\n");
      return 1;
    }
  }
  if (batch_bits < 4 || batch_bits > 64) {
    std::fprintf(stderr, "bench_suite: --batch-bits must be 4..64\n");
    return 1;
  }
  if (bytes16_bits < 4 || bytes16_bits > 64) {
    std::fprintf(stderr, "bench_suite: --bytes16-bits must be 4..64\n");
    return 1;
  }
  for (const uint32_t t : bytes16_threads) {
    if (t == 0 || t > 256) {
      std::fprintf(stderr, "bench_suite: bad bytes16 thread count %u\n", t);
      return 1;
    }
  }
  std::vector<NamedMix> bytes16_mixes;
  for (const std::string& name : bytes16_mix_names) {
    bool found = false;
    for (const NamedMix& m : all_mixes()) {
      if (name == m.name) {
        bytes16_mixes.push_back(m);
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "bench_suite: unknown bytes16 mix '%s'\n",
                   name.c_str());
      return 1;
    }
  }
  for (const uint32_t bs : batch_sizes) {
    if (bs == 0 || bs > (1u << 20)) {
      std::fprintf(stderr, "bench_suite: bad batch size %u\n", bs);
      return 1;
    }
  }
  for (const uint32_t s : shards_axis) {
    // Power of two, and small enough to leave each shard >= 4 universe bits.
    if (s == 0 || (s & (s - 1)) != 0 || s > (1u << 10) ||
        service_bits < 4 || (s > 1 && service_bits < ceil_log2(s) + 4)) {
      std::fprintf(stderr, "bench_suite: bad shard count %u for %u bits\n", s,
                   service_bits);
      return 1;
    }
  }
  for (const uint32_t c : service_clients) {
    if (c == 0 || c > 256) {
      std::fprintf(stderr, "bench_suite: bad service client count %u\n", c);
      return 1;
    }
  }
  if (mixes.empty() || dists.empty() || structures.empty() ||
      threads_axis.empty() || bits_axis.empty()) {
    std::fprintf(stderr, "bench_suite: empty axis\n");
    return 1;
  }

  JsonWriter j;
  j.begin_object();
  write_suite_header(j, "bench_suite", rev, quick);
  j.key("config").begin_object();
  j.kv("grid_ops_per_cell", grid_ops);
  j.kv("grid_prefill", grid_prefill);
  j.kv("scaling_ops", scaling_ops);
  // --repeat applies to the universe_scaling section (the headline numbers,
  // where run-to-run variance matters); grid cells are single-sample.
  j.kv("scaling_repeats", static_cast<uint64_t>(repeats));
  j.kv("latency_sample_every", static_cast<uint64_t>(latency_every));
  j.kv("batch_bits", batch_bits);
  j.kv("batch_space", batch_space);
  j.kv("batch_prefill", batch_prefill);
  j.key("batch_sizes").begin_array();
  for (const uint32_t bs : batch_sizes) j.value(static_cast<uint64_t>(bs));
  j.end_array();
  j.kv("bytes16_bits", bytes16_bits);
  j.key("bytes16_threads").begin_array();
  for (const uint32_t t : bytes16_threads) j.value(static_cast<uint64_t>(t));
  j.end_array();
  j.kv("service_bits", service_bits);
  j.kv("service_requests_per_client", static_cast<uint64_t>(service_requests));
  j.kv("service_ops_per_request", static_cast<uint64_t>(service_ops));
  j.kv("service_burst", static_cast<uint64_t>(service_burst));
  j.kv("service_prefill", service_prefill);
  j.key("shards").begin_array();
  for (const uint32_t s : shards_axis) j.value(static_cast<uint64_t>(s));
  j.end_array();
  j.end_object();
  j.key("cells").begin_array();
  j.newline();

  size_t cells_run = 0;
  const auto progress = [&cells_run](const char* section) {
    if (++cells_run % 32 == 0) {
      std::fprintf(stderr, "  ... %zu cells (%s)\n", cells_run, section);
    }
  };

  // --- Section 1: universe scaling -----------------------------------------
  // n grows with u (n ~ u^(1/2), capped at 2^17) so the skiplist baseline's
  // log n depth grows alongside the SkipTrie's log log u.
  std::vector<ScalingPoint> scaling;
  for (size_t si = 0; si < structures.size(); ++si) {
    const std::string& structure = structures[si];
    if (structure == "locked_map") continue;  // no step counters to compare
    for (const uint32_t bits : bits_axis) {
      const uint32_t prefill_pow =
          quick ? 8 : std::min(bits / 2 + 2, 17u);
      ScalingPoint pt;
      pt.structure = structure;
      pt.bits = bits;
      pt.prefill = 1ull << prefill_pow;
      for (uint32_t rep = 0; rep < repeats; ++rep) {
        CellSpec spec;
        spec.section = "universe_scaling";
        spec.structure = structure;
        spec.adaptive_heights = structure_has_adaptation(structure);
        spec.mix_name = "read_only";
        spec.universe_bits = bits;
        spec.repeat = rep;
        spec.wc.threads = 1;
        spec.wc.ops_per_thread = scaling_ops;
        spec.wc.mix = OpMix::read_only();
        spec.wc.dist = KeyDist::kUniform;
        spec.wc.key_space = bench_key_space(bits);
        spec.wc.prefill = pt.prefill;
        spec.wc.seed =
            cell_seed(bits, 1, 0, 0, structure_seed_idx(structure), rep);
        spec.wc.latency_sample_every = latency_every;
        const CellResult res = run_cell(spec);
        write_cell(j, spec, res);
        pt.pred_steps_per_op +=
            res.r.of(OpType::kPredecessor).search_steps_per_op();
        pt.count++;
        progress("universe_scaling");
      }
      pt.pred_steps_per_op /= pt.count > 0 ? pt.count : 1;
      scaling.push_back(pt);
    }
  }

  // --- Section 2: the full grid --------------------------------------------
  for (const uint32_t bits : bits_axis) {
    const uint64_t space = bench_key_space(bits);
    const uint64_t prefill = std::min<uint64_t>(grid_prefill, space / 2);
    for (size_t si = 0; si < structures.size(); ++si) {
      // "sharded" sweeps the shard axis; everything else runs at shards=1.
      // The cell seed ignores the shard count, so sharded cells at every N
      // replay the same workload as the flat skiptrie cell.
      const std::vector<uint32_t> cell_shards =
          structures[si] == "sharded" ? shards_axis
                                      : std::vector<uint32_t>{1};
      for (const uint32_t shards : cell_shards) {
        if (shards > 1 && bits < ceil_log2(shards) + 4) continue;
        for (const uint32_t threads : threads_axis) {
          for (size_t mi = 0; mi < mixes.size(); ++mi) {
            for (size_t di = 0; di < dists.size(); ++di) {
              CellSpec spec;
              spec.section = "grid";
              spec.structure = structures[si];
              spec.adaptive_heights = structure_has_adaptation(structures[si]);
              spec.mix_name = mixes[mi].name;
              spec.universe_bits = bits;
              spec.shards = shards;
              spec.wc.threads = threads;
              spec.wc.ops_per_thread =
                  std::max<uint64_t>(grid_ops / threads, 1);
              spec.wc.mix = mixes[mi].mix;
              spec.wc.dist = dists[di];
              spec.wc.key_space = space;
              spec.wc.prefill = prefill;
              spec.wc.seed = cell_seed(bits, threads, mi, di,
                                       structure_seed_idx(structures[si]), 0);
              spec.wc.latency_sample_every = latency_every;
              const CellResult res = run_cell(spec);
              write_cell(j, spec, res);
              progress("grid");
            }
          }
        }
      }
    }
  }

  // --- Section 3: batched ops ----------------------------------------------
  // One key stream per (structure, mix, dist) — the cell seed ignores
  // batch_size — regrouped at each batch size, so the per-key step deltas
  // measure batching (grouping plus the bounded intra-window reordering it
  // implies; see WorkloadConfig::batch_size).  Single-threaded: the
  // amortization claim is a step-count claim, and 1t cells are the
  // deterministic, CI-gated ones.
  std::vector<BatchPoint> batch_pts;
  {
    std::vector<std::string> batch_mix_names =
        quick ? std::vector<std::string>{"insert_only", "lookup_only"}
              : std::vector<std::string>{"insert_only", "lookup_only",
                                         "balanced", "write_heavy"};
    // clustered is the batch API's home turf (multi-get / range ingest:
    // sorted batch keys are adjacent at any population size); uniform and
    // zipf bound the scattered-key regimes.
    const std::vector<KeyDist> batch_dists = {
        KeyDist::kUniform, KeyDist::kZipf, KeyDist::kClustered};
    for (size_t si = 0; si < structures.size(); ++si) {
      const std::string& structure = structures[si];
      if (structure == "locked_map") continue;  // no batch API
      for (size_t mi = 0; mi < batch_mix_names.size(); ++mi) {
        const NamedMix* nm = nullptr;
        for (const NamedMix& m : all_mixes()) {
          if (batch_mix_names[mi] == m.name) nm = &m;
        }
        if (nm == nullptr) continue;  // unreachable: fixed registry names
        for (size_t di = 0; di < batch_dists.size(); ++di) {
          for (const uint32_t bs : batch_sizes) {
            CellSpec spec;
            spec.section = "batch";
            spec.structure = structure;
            spec.adaptive_heights = structure_has_adaptation(structure);
            spec.mix_name = nm->name;
            spec.universe_bits = batch_bits;
            spec.wc.threads = 1;
            spec.wc.ops_per_thread = grid_ops;
            spec.wc.mix = nm->mix;
            spec.wc.dist = batch_dists[di];
            spec.wc.key_space =
                std::min<uint64_t>(batch_space, bench_key_space(batch_bits));
            spec.wc.prefill = std::min<uint64_t>(batch_prefill,
                                                 spec.wc.key_space / 2);
            // Identical across batch sizes: same keys, same heights
            // (heights are seed-stable per key), different grouping only.
            spec.wc.seed = cell_seed(batch_bits, 1, mi + 64, di,
                                     structure_seed_idx(structure), 0);
            spec.wc.latency_sample_every = latency_every;
            spec.wc.batch_size = bs;
            const CellResult res = run_cell(spec);
            write_cell(j, spec, res);
            BatchPoint pt;
            pt.structure = structure;
            pt.mix = nm->name;
            pt.dist = key_dist_name(batch_dists[di]);
            pt.batch_size = bs;
            const uint64_t keys = res.r.total_ops;
            pt.hops_probes_per_key =
                keys ? static_cast<double>(res.r.steps.node_hops +
                                           res.r.steps.hash_probes) /
                           static_cast<double>(keys)
                     : 0.0;
            const uint64_t warm =
                res.r.steps.cursor_reuses + res.r.steps.cursor_redescends;
            pt.reuse_rate =
                warm ? static_cast<double>(res.r.steps.cursor_reuses) /
                           static_cast<double>(warm)
                     : 0.0;
            batch_pts.push_back(pt);
            progress("batch");
          }
        }
      }
    }
  }

  // --- Section 4: key-traits widening (u64 vs bytes16) ---------------------
  // Matched pairs: the cell seed ignores key_kind, so the u64 cell and the
  // bytes16 cell run the identical (key, op) stream; the bytes16 cell maps
  // it order-preserving into the 120-bit encoded universe.  Hit counts must
  // agree; the search-step ratio is the measured cost of W = 64 -> 128
  // (about log log 2^120 / log log u_stream more trie levels, DESIGN.md §6).
  std::vector<Bytes16Point> bytes16_pts;
  for (size_t mi = 0; mi < bytes16_mixes.size(); ++mi) {
    for (const uint32_t threads : bytes16_threads) {
      Bytes16Point pt;
      pt.mix = bytes16_mixes[mi].name;
      pt.threads = threads;
      for (const char* kind : {"u64", "bytes16"}) {
        CellSpec spec;
        spec.section = "bytes16";
        spec.structure = "skiptrie";
        spec.mix_name = bytes16_mixes[mi].name;
        spec.universe_bits = bytes16_bits;  // the *stream's* universe
        spec.key_kind = kind;
        spec.wc.threads = threads;
        spec.wc.ops_per_thread = std::max<uint64_t>(grid_ops / threads, 1);
        spec.wc.mix = bytes16_mixes[mi].mix;
        spec.wc.dist = KeyDist::kUniform;
        spec.wc.key_space = bench_key_space(bytes16_bits);
        spec.wc.prefill =
            std::min<uint64_t>(grid_prefill, spec.wc.key_space / 2);
        spec.wc.seed = cell_seed(bytes16_bits, threads, mi + 128, 0, 0, 0);
        spec.wc.latency_sample_every = latency_every;
        const CellResult res = run_cell(spec);
        write_cell(j, spec, res);
        if (spec.key_kind == "u64") {
          pt.u64_steps = res.r.search_steps_per_op();
        } else {
          pt.bytes16_steps = res.r.search_steps_per_op();
        }
        progress("bytes16");
      }
      bytes16_pts.push_back(pt);
    }
  }

  // --- Section 5: leaf-chunk ablation --------------------------------------
  // Matched single-threaded pairs: the cell seed ignores leaf_chunking, so
  // the on and off cells run the identical (key, op) stream against the
  // identical logical set — the level-0 list is authoritative either way
  // (DESIGN.md §7) — and the bytes_touched/op delta is pure leaf-layer
  // cache-traffic reduction.
  std::vector<LeafPoint> leaf_pts;
  {
    const std::vector<std::string> leaf_mix_names = {"read_heavy",
                                                     "lookup_only"};
    const std::vector<KeyDist> leaf_dists = {KeyDist::kUniform,
                                             KeyDist::kZipf};
    const uint32_t leaf_bits = 32;
    for (size_t mi = 0; mi < leaf_mix_names.size(); ++mi) {
      const NamedMix* nm = nullptr;
      for (const NamedMix& m : all_mixes()) {
        if (leaf_mix_names[mi] == m.name) nm = &m;
      }
      if (nm == nullptr) continue;  // unreachable: fixed registry names
      for (size_t di = 0; di < leaf_dists.size(); ++di) {
        LeafPoint pt;
        pt.mix = nm->name;
        pt.dist = key_dist_name(leaf_dists[di]);
        for (const bool chunking : {true, false}) {
          CellSpec spec;
          spec.section = "leaf_ablation";
          spec.structure = "skiptrie";
          spec.mix_name = nm->name;
          spec.universe_bits = leaf_bits;
          spec.leaf_chunking = chunking;
          spec.wc.threads = 1;
          spec.wc.ops_per_thread = grid_ops;
          spec.wc.mix = nm->mix;
          spec.wc.dist = leaf_dists[di];
          spec.wc.key_space = bench_key_space(leaf_bits);
          spec.wc.prefill =
              std::min<uint64_t>(grid_prefill, spec.wc.key_space / 2);
          // Identical for on and off: same keys, same heights, same set.
          spec.wc.seed = cell_seed(leaf_bits, 1, mi + 192, di, 0, 0);
          spec.wc.latency_sample_every = latency_every;
          const CellResult res = run_cell(spec);
          write_cell(j, spec, res);
          const double ops =
              res.r.total_ops ? static_cast<double>(res.r.total_ops) : 1.0;
          if (chunking) {
            pt.bytes_on = static_cast<double>(res.r.steps.bytes_touched) / ops;
            pt.hops_descent_on =
                static_cast<double>(res.r.steps.hops_descent) / ops;
            pt.chunk_scans_on =
                static_cast<double>(res.r.steps.chunk_scans) / ops;
            pt.final_occupancy = res.r.leaf.final_occupancy;
          } else {
            pt.bytes_off = static_cast<double>(res.r.steps.bytes_touched) / ops;
            pt.hops_descent_off =
                static_cast<double>(res.r.steps.hops_descent) / ops;
          }
          progress("leaf_ablation");
        }
        leaf_pts.push_back(pt);
      }
    }
  }

  // --- Section 5b: adaptive-height ablation --------------------------------
  // Matched single-threaded pairs: the cell seed ignores adaptive_heights,
  // so the on and off cells run the identical (key, op) stream against the
  // identical logical set.  Finger and leaf chunking are pinned off — a
  // finger hit enters below the top and a chunked read stops at the chunk
  // entry level, either of which would mask the descent hops the promoted
  // towers save (DESIGN.md §8.2).  Zipf cells additionally run a hot-set
  // drift variant (the demotion side's workout).
  std::vector<ToplevelPoint> toplevel_pts;
  {
    const std::vector<std::string> tl_mix_names = {"read_heavy",
                                                   "lookup_only"};
    const std::vector<KeyDist> tl_dists = {KeyDist::kUniform, KeyDist::kZipf};
    const uint32_t tl_bits = 32;
    // The promotion signal needs enough sampled reads to cross the count
    // floor on the hot heads, and enough prefill that a promoted tower has
    // descent levels to skip; at the quick axes (2000 ops / 256 prefill)
    // the ratio is real but under-resolved.  This section therefore always
    // runs the full-mode volume — 16 single-threaded cells, a few seconds —
    // so the quick file's toplevel_summary is comparable to the full one.
    const uint64_t tl_ops = std::max<uint64_t>(grid_ops, 24000);
    const uint64_t tl_prefill = std::max<uint64_t>(grid_prefill, 8192);
    for (size_t mi = 0; mi < tl_mix_names.size(); ++mi) {
      const NamedMix* nm = nullptr;
      for (const NamedMix& m : all_mixes()) {
        if (tl_mix_names[mi] == m.name) nm = &m;
      }
      if (nm == nullptr) continue;  // unreachable: fixed registry names
      for (size_t di = 0; di < tl_dists.size(); ++di) {
        for (const bool drift : {false, true}) {
          if (drift && tl_dists[di] != KeyDist::kZipf) continue;
          ToplevelPoint pt;
          pt.mix = nm->name;
          pt.dist = key_dist_name(tl_dists[di]);
          pt.drift = drift;
          for (const bool adaptive : {true, false}) {
            CellSpec spec;
            spec.section = "toplevel_ablation";
            spec.structure = "skiptrie";
            spec.mix_name = nm->name;
            spec.universe_bits = tl_bits;
            spec.leaf_chunking = false;
            spec.use_finger = false;
            spec.adaptive_heights = adaptive;
            spec.wc.threads = 1;
            spec.wc.ops_per_thread = tl_ops;
            spec.wc.mix = nm->mix;
            spec.wc.dist = tl_dists[di];
            spec.wc.zipf_drift = drift;
            spec.wc.key_space = bench_key_space(tl_bits);
            spec.wc.prefill =
                std::min<uint64_t>(tl_prefill, spec.wc.key_space / 2);
            // Identical for on and off: same keys, same base heights, same
            // set; the drift variant gets its own stream.
            spec.wc.seed =
                cell_seed(tl_bits, 1, mi + 224, di + (drift ? 8 : 0), 0, 0);
            spec.wc.latency_sample_every = latency_every;
            const CellResult res = run_cell(spec);
            write_cell(j, spec, res);
            const double ops =
                res.r.total_ops ? static_cast<double>(res.r.total_ops) : 1.0;
            if (adaptive) {
              pt.hops_on = static_cast<double>(res.r.steps.node_hops) / ops;
              pt.bytes_on =
                  static_cast<double>(res.r.steps.bytes_touched) / ops;
              pt.promotions = res.r.structure.final_promotions;
              pt.demotions = res.r.structure.final_demotions;
              pt.final_top = res.r.structure.final_top;
            } else {
              pt.hops_off = static_cast<double>(res.r.steps.node_hops) / ops;
              pt.bytes_off =
                  static_cast<double>(res.r.steps.bytes_touched) / ops;
            }
            progress("toplevel_ablation");
          }
          toplevel_pts.push_back(pt);
        }
      }
    }
  }

  // --- Section 6: service front-end ----------------------------------------
  // The client simulator against a live Service: per-shard queues + workers,
  // hot-tenant zipf traffic, bursty arrivals.  Each cell builds a fresh
  // Service (its workers die with it), runs the simulator, stops the
  // service, then merges submit-side and worker-side counters.  The
  // clients=1/shards=1 cell executes on one FIFO worker, so its step counts
  // are deterministic and CI-gated; queue_wait/depth are timing-bound and
  // stay outside the gated counter set everywhere.
  std::vector<ServicePoint> service_pts;
  for (const uint32_t shards : shards_axis) {
    for (const uint32_t clients : service_clients) {
      ServiceConfig scfg;
      scfg.shards = shards;
      scfg.trie.universe_bits = service_bits;
      Service svc(scfg);

      ClientSimConfig sim;
      sim.clients = clients;
      sim.requests_per_client = service_requests;
      sim.ops_per_request = service_ops;
      sim.burst = service_burst;
      sim.key_space = bench_key_space(service_bits);
      sim.prefill = std::min<uint64_t>(service_prefill, sim.key_space / 2);
      sim.seed = cell_seed(service_bits, clients, 0, 0, 97, shards);
      const ClientSimResult res = run_client_sim(svc, sim);
      svc.stop();
      const StepCounters workers = svc.worker_counters();
      write_service_cell(j, service_bits, shards, sim, res, workers);

      ServicePoint pt;
      pt.shards = shards;
      pt.clients = clients;
      pt.mops = res.mops();
      const StepCounters& cs = res.client_steps;
      const double subs =
          cs.service_subtasks ? static_cast<double>(cs.service_subtasks) : 1.0;
      pt.depth_per_sub = static_cast<double>(cs.queue_depth_sum) / subs;
      pt.wait_us_per_sub =
          static_cast<double>(workers.queue_wait_ns) / subs / 1e3;
      service_pts.push_back(pt);
      progress("service");
    }
  }

  j.end_array();

  // Scaling digest: the acceptance-criterion numbers, directly readable.
  j.key("scaling_summary").begin_array();
  for (const ScalingPoint& pt : scaling) {
    j.begin_object();
    j.kv("structure", pt.structure);
    j.kv("universe_bits", pt.bits);
    j.kv("prefill", pt.prefill);
    j.kv("pred_search_steps_per_op", pt.pred_steps_per_op);
    j.end_object();
  }
  j.end_array();

  // Batch digest: hops+probes per key by batch size (the amortization
  // acceptance read), plus the cursor reuse rate.
  j.key("batch_summary").begin_array();
  for (const BatchPoint& pt : batch_pts) {
    j.begin_object();
    j.kv("structure", pt.structure);
    j.kv("mix", pt.mix);
    j.kv("dist", pt.dist);
    j.kv("batch_size", pt.batch_size);
    j.kv("hops_probes_per_key", pt.hops_probes_per_key);
    j.kv("cursor_reuse_rate", pt.reuse_rate);
    j.end_object();
  }
  j.end_array();

  // Bytes16 digest: the W-widening step ratio per (mix, threads).
  j.key("bytes16_summary").begin_array();
  for (const Bytes16Point& pt : bytes16_pts) {
    j.begin_object();
    j.kv("mix", pt.mix);
    j.kv("threads", pt.threads);
    j.kv("u64_search_steps_per_op", pt.u64_steps);
    j.kv("bytes16_search_steps_per_op", pt.bytes16_steps);
    j.kv("widening_ratio", pt.ratio());
    j.end_object();
  }
  j.end_array();

  // Leaf digest: the chunking acceptance read — modeled cache-line bytes per
  // op with the hint index off vs on (ratio >= 1.3x is the v7 target), plus
  // the descent-hop reduction and in-chunk scan rate behind it.
  j.key("leaf_summary").begin_array();
  for (const LeafPoint& pt : leaf_pts) {
    j.begin_object();
    j.kv("structure", "skiptrie");
    j.kv("mix", pt.mix);
    j.kv("dist", pt.dist);
    j.kv("bytes_per_op_on", pt.bytes_on);
    j.kv("bytes_per_op_off", pt.bytes_off);
    j.kv("bytes_ratio_off_over_on", pt.ratio());
    j.kv("hops_descent_per_op_on", pt.hops_descent_on);
    j.kv("hops_descent_per_op_off", pt.hops_descent_off);
    j.kv("chunk_scans_per_op", pt.chunk_scans_on);
    j.kv("final_occupancy", pt.final_occupancy);
    j.end_object();
  }
  j.end_array();

  // Toplevel digest: the adaptation acceptance read — node hops per op with
  // the policy off vs on (>= 1.15x on zipf cells is the v8 target, uniform
  // within 5%), plus the policy activity behind it.
  j.key("toplevel_summary").begin_array();
  for (const ToplevelPoint& pt : toplevel_pts) {
    j.begin_object();
    j.kv("structure", "skiptrie");
    j.kv("mix", pt.mix);
    j.kv("dist", pt.dist);
    j.kv("zipf_drift", pt.drift);
    j.kv("hops_per_op_on", pt.hops_on);
    j.kv("hops_per_op_off", pt.hops_off);
    j.kv("hops_ratio_off_over_on", pt.ratio());
    j.kv("bytes_per_op_on", pt.bytes_on);
    j.kv("bytes_per_op_off", pt.bytes_off);
    j.kv("promotions", pt.promotions);
    j.kv("demotions", pt.demotions);
    j.kv("final_top", pt.final_top);
    j.end_object();
  }
  j.end_array();

  // Service digest: throughput and queueing pressure by (shards, clients).
  j.key("service_summary").begin_array();
  for (const ServicePoint& pt : service_pts) {
    j.begin_object();
    j.kv("shards", pt.shards);
    j.kv("clients", pt.clients);
    j.kv("mops", pt.mops);
    j.kv("queue_depth_per_subtask", pt.depth_per_sub);
    j.kv("queue_wait_us_per_subtask", pt.wait_us_per_sub);
    j.end_object();
  }
  j.end_array();
  j.kv("cells_total", static_cast<uint64_t>(cells_run));
  j.end_object();
  j.newline();

  if (!write_file(out_path, j.str())) return 1;

  header("bench_suite: universe scaling (predecessor search steps/op)");
  std::printf("%-10s %-8s %-10s %-14s\n", "structure", "bits", "prefill",
              "steps/op");
  row_sep(48);
  for (const ScalingPoint& pt : scaling) {
    std::printf("%-10s %-8u %-10llu %-14.1f\n", pt.structure.c_str(), pt.bits,
                static_cast<unsigned long long>(pt.prefill),
                pt.pred_steps_per_op);
  }
  if (!batch_pts.empty()) {
    header("bench_suite: batched ops (node_hops+probes per key)");
    std::printf("%-10s %-12s %-10s %-8s %-12s %-10s\n", "structure", "mix",
                "dist", "batch", "steps/key", "reuse");
    row_sep(68);
    for (const BatchPoint& pt : batch_pts) {
      std::printf("%-10s %-12s %-10s %-8u %-12.1f %-10.2f\n",
                  pt.structure.c_str(), pt.mix.c_str(), pt.dist.c_str(),
                  pt.batch_size, pt.hops_probes_per_key, pt.reuse_rate);
    }
  }
  if (!bytes16_pts.empty()) {
    header("bench_suite: key-traits widening (search steps/op, same stream)");
    std::printf("%-12s %-8s %-10s %-10s %-8s\n", "mix", "threads", "u64",
                "bytes16", "ratio");
    row_sep(52);
    for (const Bytes16Point& pt : bytes16_pts) {
      std::printf("%-12s %-8u %-10.1f %-10.1f %-8.2f\n", pt.mix.c_str(),
                  pt.threads, pt.u64_steps, pt.bytes16_steps, pt.ratio());
    }
  }
  if (!leaf_pts.empty()) {
    header("bench_suite: leaf chunking (modeled bytes/op, off vs on)");
    std::printf("%-12s %-10s %-10s %-10s %-8s %-10s %-10s\n", "mix", "dist",
                "bytes_on", "bytes_off", "ratio", "hd_on", "hd_off");
    row_sep(76);
    for (const LeafPoint& pt : leaf_pts) {
      std::printf("%-12s %-10s %-10.1f %-10.1f %-8.2f %-10.2f %-10.2f\n",
                  pt.mix.c_str(), pt.dist.c_str(), pt.bytes_on, pt.bytes_off,
                  pt.ratio(), pt.hops_descent_on, pt.hops_descent_off);
    }
  }
  if (!toplevel_pts.empty()) {
    header("bench_suite: adaptive heights (node hops/op, off vs on)");
    std::printf("%-12s %-10s %-6s %-10s %-10s %-8s %-8s %-8s %-8s\n", "mix",
                "dist", "drift", "hops_on", "hops_off", "ratio", "promo",
                "demo", "top");
    row_sep(88);
    for (const ToplevelPoint& pt : toplevel_pts) {
      std::printf(
          "%-12s %-10s %-6s %-10.1f %-10.1f %-8.2f %-8llu %-8llu %-8llu\n",
          pt.mix.c_str(), pt.dist.c_str(), pt.drift ? "yes" : "no",
          pt.hops_on, pt.hops_off, pt.ratio(),
          static_cast<unsigned long long>(pt.promotions),
          static_cast<unsigned long long>(pt.demotions),
          static_cast<unsigned long long>(pt.final_top));
    }
  }
  if (!service_pts.empty()) {
    header("bench_suite: service front-end (queued, worker-per-shard)");
    std::printf("%-8s %-8s %-10s %-12s %-14s\n", "shards", "clients", "mops",
                "depth/sub", "wait_us/sub");
    row_sep(56);
    for (const ServicePoint& pt : service_pts) {
      std::printf("%-8u %-8u %-10.2f %-12.2f %-14.1f\n", pt.shards,
                  pt.clients, pt.mops, pt.depth_per_sub, pt.wait_us_per_sub);
    }
  }

  std::printf("\n%zu cells -> %s\n", cells_run, out_path.c_str());
  std::printf(
      "Paper shape: SkipTrie steps track log log u across universe bits;\n"
      "the skiplist baseline tracks log n of its contents.\n");
  return 0;
}
