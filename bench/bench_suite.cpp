// bench_suite — the unified benchmark driver.
//
// Sweeps {SkipTrie, lock-free skiplist baseline, locked std::map baseline}
// x thread counts x op mixes x key distributions x universe bits and emits
// every measured cell into a machine-readable BENCH_suite.json (schema in
// README "Benchmarks").  Two sections:
//
//   universe_scaling  single-threaded predecessor-only cells whose prefill
//                     grows with the universe (n ~ sqrt(u), capped): the
//                     paper's headline contrast — SkipTrie search steps
//                     track log log u while the skiplist baseline tracks
//                     log n.
//   grid              the full cross product at a fixed modest prefill:
//                     throughput, latency percentiles and step attribution
//                     under contention, skew and clustering.
//
// `--quick` shrinks every axis so the suite finishes in seconds; it is
// registered in ctest so the subsystem cannot bit-rot.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace skiptrie;
using namespace skiptrie::bench;

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t comma = s.find(',', start);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::vector<uint32_t> split_csv_u32(const std::string& s) {
  std::vector<uint32_t> out;
  for (const std::string& tok : split_csv(s)) {
    out.push_back(static_cast<uint32_t>(std::strtoul(tok.c_str(), nullptr, 10)));
  }
  return out;
}

// Deterministic per-cell seed from the axis values alone, so re-runs (and
// runs of the same cell from different suite compositions) agree.
uint64_t cell_seed(uint32_t bits, uint32_t threads, size_t mix_idx,
                   size_t dist_idx, size_t structure_idx, uint32_t repeat) {
  return mix64(bits * 1000003ull + threads * 10007ull +
               (mix_idx + 1) * 1009ull + (dist_idx + 1) * 101ull +
               (structure_idx + 1) * 11ull + repeat + 1);
}

struct ScalingPoint {
  std::string structure;
  uint32_t bits = 0;
  uint64_t prefill = 0;
  double pred_steps_per_op = 0.0;
  uint32_t count = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  if (args.has("--help")) {
    std::printf(
        "bench_suite [--quick] [--out FILE] [--git-rev REV]\n"
        "            [--repeat N]  (universe_scaling cells only; grid cells\n"
        "                           are single-sample by design)\n"
        "            [--structures a,b] [--threads 1,2,4,8] [--bits 16,24,32,64]\n"
        "            [--mixes read_only,...] [--dists uniform,...]\n"
        "            [--ops TOTAL_PER_CELL] [--prefill N] [--scaling-ops N]\n");
    return 0;
  }
  const bool quick = args.has("--quick");
  const std::string out_path =
      args.get("--out", quick ? "BENCH_suite_quick.json" : "BENCH_suite.json");
  const std::string rev = git_rev(args);
  const uint32_t repeats =
      static_cast<uint32_t>(args.get_u64("--repeat", quick ? 1 : 2));

  std::vector<std::string> structures =
      split_csv(args.get("--structures", "skiptrie,skiplist,locked_map"));
  std::vector<uint32_t> threads_axis =
      split_csv_u32(args.get("--threads", quick ? "1,2" : "1,2,4,8"));
  std::vector<uint32_t> bits_axis =
      split_csv_u32(args.get("--bits", quick ? "16,32" : "16,24,32,64"));
  std::vector<std::string> mix_names = split_csv(
      args.get("--mixes", quick ? "balanced" :
                                  "read_only,read_heavy,balanced,write_heavy"));
  std::vector<std::string> dist_names = split_csv(
      args.get("--dists",
               quick ? "uniform,zipf" : "uniform,zipf,clustered,sequential"));
  const uint64_t grid_ops = args.get_u64("--ops", quick ? 2000 : 24000);
  const uint64_t grid_prefill = args.get_u64("--prefill", quick ? 256 : 8192);
  const uint64_t scaling_ops = args.get_u64("--scaling-ops", quick ? 2000 : 30000);
  const uint32_t latency_every =
      static_cast<uint32_t>(args.get_u64("--latency-every", quick ? 16 : 64));

  // Resolve named axes against the registries in bench_util.h; a token that
  // matches nothing is an error, not a silently shrunken sweep.
  std::vector<NamedMix> mixes;
  for (const std::string& name : mix_names) {
    bool found = false;
    for (const NamedMix& m : all_mixes()) {
      if (name == m.name) {
        mixes.push_back(m);
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr,
                   "bench_suite: unknown mix '%s' (read_only, read_heavy, "
                   "balanced, write_heavy)\n",
                   name.c_str());
      return 1;
    }
  }
  std::vector<KeyDist> dists;
  for (const std::string& name : dist_names) {
    bool found = false;
    for (const KeyDist d : all_dists()) {
      if (name == key_dist_name(d)) {
        dists.push_back(d);
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr,
                   "bench_suite: unknown dist '%s' (uniform, zipf, "
                   "clustered, sequential)\n",
                   name.c_str());
      return 1;
    }
  }
  for (const std::string& s : structures) {
    if (s != "skiptrie" && s != "skiplist" && s != "locked_map") {
      std::fprintf(stderr,
                   "bench_suite: unknown structure '%s' (skiptrie, skiplist, "
                   "locked_map)\n",
                   s.c_str());
      return 1;
    }
  }
  for (const uint32_t t : threads_axis) {
    if (t == 0 || t > 256) {
      std::fprintf(stderr, "bench_suite: bad thread count %u\n", t);
      return 1;
    }
  }
  for (const uint32_t b : bits_axis) {
    if (b < 4 || b > 64) {
      std::fprintf(stderr, "bench_suite: universe bits must be 4..64\n");
      return 1;
    }
  }
  if (mixes.empty() || dists.empty() || structures.empty() ||
      threads_axis.empty() || bits_axis.empty()) {
    std::fprintf(stderr, "bench_suite: empty axis\n");
    return 1;
  }

  JsonWriter j;
  j.begin_object();
  write_suite_header(j, "bench_suite", rev, quick);
  j.key("config").begin_object();
  j.kv("grid_ops_per_cell", grid_ops);
  j.kv("grid_prefill", grid_prefill);
  j.kv("scaling_ops", scaling_ops);
  // --repeat applies to the universe_scaling section (the headline numbers,
  // where run-to-run variance matters); grid cells are single-sample.
  j.kv("scaling_repeats", static_cast<uint64_t>(repeats));
  j.kv("latency_sample_every", static_cast<uint64_t>(latency_every));
  j.end_object();
  j.key("cells").begin_array();
  j.newline();

  size_t cells_run = 0;
  const auto progress = [&cells_run](const char* section) {
    if (++cells_run % 32 == 0) {
      std::fprintf(stderr, "  ... %zu cells (%s)\n", cells_run, section);
    }
  };

  // --- Section 1: universe scaling -----------------------------------------
  // n grows with u (n ~ u^(1/2), capped at 2^17) so the skiplist baseline's
  // log n depth grows alongside the SkipTrie's log log u.
  std::vector<ScalingPoint> scaling;
  for (size_t si = 0; si < structures.size(); ++si) {
    const std::string& structure = structures[si];
    if (structure == "locked_map") continue;  // no step counters to compare
    for (const uint32_t bits : bits_axis) {
      const uint32_t prefill_pow =
          quick ? 8 : std::min(bits / 2 + 2, 17u);
      ScalingPoint pt;
      pt.structure = structure;
      pt.bits = bits;
      pt.prefill = 1ull << prefill_pow;
      for (uint32_t rep = 0; rep < repeats; ++rep) {
        CellSpec spec;
        spec.section = "universe_scaling";
        spec.structure = structure;
        spec.mix_name = "read_only";
        spec.universe_bits = bits;
        spec.repeat = rep;
        spec.wc.threads = 1;
        spec.wc.ops_per_thread = scaling_ops;
        spec.wc.mix = OpMix::read_only();
        spec.wc.dist = KeyDist::kUniform;
        spec.wc.key_space = bench_key_space(bits);
        spec.wc.prefill = pt.prefill;
        spec.wc.seed = cell_seed(bits, 1, 0, 0, si, rep);
        spec.wc.latency_sample_every = latency_every;
        const CellResult res = run_cell(spec);
        write_cell(j, spec, res);
        pt.pred_steps_per_op +=
            res.r.of(OpType::kPredecessor).search_steps_per_op();
        pt.count++;
        progress("universe_scaling");
      }
      pt.pred_steps_per_op /= pt.count > 0 ? pt.count : 1;
      scaling.push_back(pt);
    }
  }

  // --- Section 2: the full grid --------------------------------------------
  for (const uint32_t bits : bits_axis) {
    const uint64_t space = bench_key_space(bits);
    const uint64_t prefill = std::min<uint64_t>(grid_prefill, space / 2);
    for (size_t si = 0; si < structures.size(); ++si) {
      for (const uint32_t threads : threads_axis) {
        for (size_t mi = 0; mi < mixes.size(); ++mi) {
          for (size_t di = 0; di < dists.size(); ++di) {
            CellSpec spec;
            spec.section = "grid";
            spec.structure = structures[si];
            spec.mix_name = mixes[mi].name;
            spec.universe_bits = bits;
            spec.wc.threads = threads;
            spec.wc.ops_per_thread = std::max<uint64_t>(grid_ops / threads, 1);
            spec.wc.mix = mixes[mi].mix;
            spec.wc.dist = dists[di];
            spec.wc.key_space = space;
            spec.wc.prefill = prefill;
            spec.wc.seed = cell_seed(bits, threads, mi, di, si, 0);
            spec.wc.latency_sample_every = latency_every;
            const CellResult res = run_cell(spec);
            write_cell(j, spec, res);
            progress("grid");
          }
        }
      }
    }
  }

  j.end_array();

  // Scaling digest: the acceptance-criterion numbers, directly readable.
  j.key("scaling_summary").begin_array();
  for (const ScalingPoint& pt : scaling) {
    j.begin_object();
    j.kv("structure", pt.structure);
    j.kv("universe_bits", pt.bits);
    j.kv("prefill", pt.prefill);
    j.kv("pred_search_steps_per_op", pt.pred_steps_per_op);
    j.end_object();
  }
  j.end_array();
  j.kv("cells_total", static_cast<uint64_t>(cells_run));
  j.end_object();
  j.newline();

  if (!write_file(out_path, j.str())) return 1;

  header("bench_suite: universe scaling (predecessor search steps/op)");
  std::printf("%-10s %-8s %-10s %-14s\n", "structure", "bits", "prefill",
              "steps/op");
  row_sep(48);
  for (const ScalingPoint& pt : scaling) {
    std::printf("%-10s %-8u %-10llu %-14.1f\n", pt.structure.c_str(), pt.bits,
                static_cast<unsigned long long>(pt.prefill),
                pt.pred_steps_per_op);
  }
  std::printf("\n%zu cells -> %s\n", cells_run, out_path.c_str());
  std::printf(
      "Paper shape: SkipTrie steps track log log u across universe bits;\n"
      "the skiplist baseline tracks log n of its contents.\n");
  return 0;
}
