// Shared helpers for the benchmark binaries: table printing, deterministic
// fills, and step-counter measurement around operation batches.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common/bitops.h"
#include "common/random.h"
#include "common/stats.h"

namespace skiptrie::bench {

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void row_sep(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

// Largest key usable in a B-bit universe (B=64 reserves two sentinels).
inline uint64_t bench_max_key(uint32_t bits) {
  const uint64_t mask = universe_mask(bits);
  return bits >= 64 ? mask - 2 : mask;
}

// Insert `m` distinct uniform keys drawn from a B-bit universe; returns
// them.  m must be at most the universe size.
template <typename Set>
std::vector<uint64_t> fill_distinct(Set& set, size_t m, uint32_t bits,
                                    uint64_t seed) {
  Xoshiro256 rng(seed);
  std::set<uint64_t> keys;
  const uint64_t maxk = bench_max_key(bits);
  while (keys.size() < m) {
    const uint64_t k = rng.next() & universe_mask(bits);
    if (k > maxk) continue;
    if (keys.insert(k).second) set.insert(k);
  }
  return std::vector<uint64_t>(keys.begin(), keys.end());
}

struct Measured {
  double ns_per_op = 0.0;
  StepCounters steps;
  uint64_t ops = 0;

  double per_op(uint64_t v) const {
    return ops ? static_cast<double>(v) / static_cast<double>(ops) : 0.0;
  }
  double search_steps_per_op() const { return per_op(steps.search_steps()); }
};

// Measure fn(key) over `queries` keys, collecting wall time and counters.
template <typename F>
Measured measure_ops(const std::vector<uint64_t>& queries, F fn) {
  Measured m;
  tls_counters() = StepCounters{};
  const auto t0 = std::chrono::steady_clock::now();
  for (const uint64_t q : queries) fn(q);
  const auto t1 = std::chrono::steady_clock::now();
  m.steps = tls_counters();
  m.ops = queries.size();
  m.ns_per_op = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                static_cast<double>(queries.size() ? queries.size() : 1);
  tls_counters() = StepCounters{};
  return m;
}

inline std::vector<uint64_t> random_queries(size_t n, uint32_t bits,
                                            uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<uint64_t> q(n);
  const uint64_t maxk = bench_max_key(bits);
  for (auto& v : q) {
    do {
      v = rng.next() & universe_mask(bits);
    } while (v > maxk);
  }
  return q;
}

}  // namespace skiptrie::bench
