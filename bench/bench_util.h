// Shared infrastructure for the benchmark binaries.
//
// Three layers:
//   1. Table helpers + single-threaded measurement (header/row_sep,
//      fill_distinct, measure_ops) used by the paper-table benches.
//   2. A shared cell runner: CellSpec names {structure, universe bits,
//      WorkloadConfig}; run_cell() constructs the structure, drives
//      run_workload, and collects quiescent structure stats.
//   3. A shared JSON emitter producing the BENCH_*.json schema documented in
//      README "Benchmarks": suite header (schema version, git rev, host),
//      then one record per measured cell.
// Every bench binary that records data routes through 2+3 so all emitted
// files share one schema and one set of workload semantics.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <set>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#endif

#include "baseline/lockfree_skiplist.h"
#include "baseline/locked_map.h"
#include "common/bitops.h"
#include "common/json.h"
#include "common/key_traits.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/skiptrie.h"
#include "shard/sharded_engine.h"
#include "workload/driver.h"

namespace skiptrie::bench {

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void row_sep(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

// Largest key usable in a B-bit universe (B=64 reserves two sentinels).
inline uint64_t bench_max_key(uint32_t bits) {
  const uint64_t mask = universe_mask(bits);
  return bits >= 64 ? mask - 2 : mask;
}

// Key-generator space covering the whole B-bit universe.
inline uint64_t bench_key_space(uint32_t bits) {
  return bench_max_key(bits) + 1;
}

// Insert `m` distinct uniform keys drawn from a B-bit universe; returns
// them.  m must be at most the universe size.
template <typename Set>
std::vector<uint64_t> fill_distinct(Set& set, size_t m, uint32_t bits,
                                    uint64_t seed) {
  Xoshiro256 rng(seed);
  std::set<uint64_t> keys;
  const uint64_t maxk = bench_max_key(bits);
  while (keys.size() < m) {
    const uint64_t k = rng.next() & universe_mask(bits);
    if (k > maxk) continue;
    if (keys.insert(k).second) set.insert(k);
  }
  return std::vector<uint64_t>(keys.begin(), keys.end());
}

struct Measured {
  double ns_per_op = 0.0;
  StepCounters steps;
  uint64_t ops = 0;

  double per_op(uint64_t v) const {
    return ops ? static_cast<double>(v) / static_cast<double>(ops) : 0.0;
  }
  double search_steps_per_op() const { return per_op(steps.search_steps()); }
};

// Measure fn(key) over `queries` keys, collecting wall time and counters.
template <typename F>
Measured measure_ops(const std::vector<uint64_t>& queries, F fn) {
  Measured m;
  tls_counters() = StepCounters{};
  const auto t0 = std::chrono::steady_clock::now();
  for (const uint64_t q : queries) fn(q);
  const auto t1 = std::chrono::steady_clock::now();
  m.steps = tls_counters();
  m.ops = queries.size();
  m.ns_per_op = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                static_cast<double>(queries.size() ? queries.size() : 1);
  tls_counters() = StepCounters{};
  return m;
}

inline std::vector<uint64_t> random_queries(size_t n, uint32_t bits,
                                            uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<uint64_t> q(n);
  const uint64_t maxk = bench_max_key(bits);
  for (auto& v : q) {
    do {
      v = rng.next() & universe_mask(bits);
    } while (v > maxk);
  }
  return q;
}

// ---------------------------------------------------------------------------
// Flag parsing (tiny: --flag or --flag=value / --flag value).

class Args {
 public:
  Args(int argc, char** argv) : argv_(argv, argv + argc) {}

  bool has(const char* flag) const {
    for (const std::string& a : argv_) {
      if (a == flag || a.rfind(std::string(flag) + "=", 0) == 0) return true;
    }
    return false;
  }

  std::string get(const char* flag, const std::string& def = "") const {
    const std::string prefix = std::string(flag) + "=";
    for (size_t i = 1; i < argv_.size(); ++i) {
      if (argv_[i].rfind(prefix, 0) == 0) return argv_[i].substr(prefix.size());
      // Space-separated form; a following "--..." is the next flag, not a
      // value ("--out --quick" must not create a file named --quick).
      if (argv_[i] == flag && i + 1 < argv_.size() &&
          argv_[i + 1].rfind("--", 0) != 0) {
        return argv_[i + 1];
      }
    }
    return def;
  }

  uint64_t get_u64(const char* flag, uint64_t def) const {
    const std::string v = get(flag);
    return v.empty() ? def : std::strtoull(v.c_str(), nullptr, 10);
  }

 private:
  std::vector<std::string> argv_;
};

// ---------------------------------------------------------------------------
// Named axes.

struct NamedMix {
  const char* name;
  OpMix mix;
};

inline const std::vector<NamedMix>& all_mixes() {
  static const std::vector<NamedMix> mixes = {
      {"read_only", OpMix::read_only()},
      {"read_heavy", OpMix::read_heavy()},
      {"balanced", OpMix::balanced()},
      {"write_heavy", OpMix::write_heavy()},
      // Single-op-type mixes used by the batched section (bulk load /
      // multi-get shapes); resolvable from --mixes everywhere.
      {"insert_only", OpMix::insert_only()},
      {"lookup_only", OpMix::lookup_only()},
  };
  return mixes;
}

inline const std::vector<KeyDist>& all_dists() {
  static const std::vector<KeyDist> dists = {
      KeyDist::kUniform, KeyDist::kZipf, KeyDist::kClustered,
      KeyDist::kSequential};
  return dists;
}

// ---------------------------------------------------------------------------
// Shared cell runner.

struct CellSpec {
  std::string section;            // e.g. "grid", "universe_scaling"
  std::string structure;          // "skiptrie" | "skiplist" | "locked_map"
  std::string mix_name = "balanced";
  uint32_t universe_bits = 32;
  uint32_t shards = 1;            // "sharded"/"service" cells only (v5 axis)
  // Key-traits instantiation driving the cell (v6 axis, DESIGN.md §6):
  // "u64" is the fast path; "bytes16" runs the same u64 key stream through
  // BasicSkipTrie<Bytes16Traits> via an order-preserving spread into the
  // 120-bit encoded space, so the cell delta is pure W-widening cost.
  std::string key_kind = "u64";
  // Leaf-chunk hint index on/off (v7 axis, DESIGN.md §7).  Default on — the
  // shipped Config default; older files join as leaf_chunking = true.
  bool leaf_chunking = true;
  // Adaptive tower heights on/off (v8 axis, DESIGN.md §8).  Default on —
  // the shipped Config default.  Pre-v8 files join as false: adaptation did
  // not exist then, so off is the behavior-accurate fill (suites set it to
  // false explicitly on baseline structures, which have no height policy).
  bool adaptive_heights = true;
  // Finger cache on/off.  Report-only, not a join axis: it is constant
  // within every section — only toplevel_ablation turns it off, so the
  // finger cannot short-circuit the descents whose hop delta that section
  // measures (DESIGN.md §8.2).
  bool use_finger = true;
  uint32_t repeat = 0;            // repeat index within identical specs
  WorkloadConfig wc;
};

struct CellResult {
  WorkloadResult r;
  bool has_structure_stats = false;
  SkipTrie::StructureStats stats;   // skiptrie only, quiescent post-run walk
  uint32_t skiplist_levels = 0;     // skiplist only
};

// Skiplist baseline sized for its contents: ~log2(n) index levels.
inline uint32_t skiplist_levels_for(uint64_t n) {
  return ceil_log2(n < 2 ? 2 : n) + 2;
}

// Drives the 128-bit instantiation with the driver's u64 key stream via the
// order-preserving injection k -> k << 56 (recoverable by >> 56): the wide
// trie then holds keys in a 120-bit universe whose order matches the u64
// stream exactly, so hit counts agree with the matched u64 cell and every
// step delta is W-widening cost (deeper prefix walks, wider compares), not
// workload drift.  No batch API on purpose — HasBatchApi fails and batched
// configs fall back to the per-key loop.
class Bytes16WorkloadAdapter {
 public:
  static constexpr uint32_t kSpread = 56;
  static constexpr uint32_t kUniverseBits = 64 + kSpread;

  explicit Bytes16WorkloadAdapter(bool leaf_chunking = true,
                                  bool adaptive_heights = true,
                                  bool use_finger = true)
      : trie_([&] {
          Config c;
          c.universe_bits = kUniverseBits;
          c.leaf_chunking = leaf_chunking;
          c.adaptive_heights = adaptive_heights;
          c.use_finger = use_finger;
          return c;
        }()) {}

  bool insert(uint64_t k) { return trie_.insert(wide(k)); }
  bool erase(uint64_t k) { return trie_.erase(wide(k)); }
  bool contains(uint64_t k) const { return trie_.contains(wide(k)); }
  std::optional<uint64_t> predecessor(uint64_t k) const {
    const auto p = trie_.predecessor(wide(k));
    if (!p) return std::nullopt;
    return static_cast<uint64_t>(*p >> kSpread);
  }

  const BasicSkipTrie<Bytes16Traits>& trie() const { return trie_; }

 private:
  static u128 wide(uint64_t k) { return u128(k) << kSpread; }
  BasicSkipTrie<Bytes16Traits> trie_;
};

inline CellResult run_cell(const CellSpec& spec) {
  CellResult res;
  if (spec.structure == "skiptrie" && spec.key_kind == "bytes16") {
    Bytes16WorkloadAdapter a(spec.leaf_chunking, spec.adaptive_heights,
                             spec.use_finger);
    res.r = run_workload(a, spec.wc);
    // The wide trie's StructureStats is a distinct nested type (deeper
    // level_counts); copy the scalar fields the emitter reports.
    const auto st = a.trie().structure_stats();
    res.stats.keys = st.keys;
    res.stats.top_count = st.top_count;
    res.stats.trie_entries = st.trie_entries;
    res.stats.avg_top_gap = st.avg_top_gap;
    res.stats.max_top_gap = st.max_top_gap;
    res.stats.arena_bytes = st.arena_bytes;
    res.stats.trie_bytes = st.trie_bytes;
    res.stats.hash_buckets = st.hash_buckets;
    res.stats.hash_dummies = st.hash_dummies;
    res.stats.hash_load_factor = st.hash_load_factor;
    res.stats.leaf_chunks = st.leaf_chunks;
    res.stats.avg_occupancy = st.avg_occupancy;
    res.has_structure_stats = true;
  } else if (spec.structure == "skiptrie") {
    Config cfg;
    cfg.universe_bits = spec.universe_bits;
    cfg.leaf_chunking = spec.leaf_chunking;
    cfg.adaptive_heights = spec.adaptive_heights;
    cfg.use_finger = spec.use_finger;
    SkipTrie t(cfg);
    res.r = run_workload(t, spec.wc);
    res.stats = t.structure_stats();  // quiescent: workers joined
    res.has_structure_stats = true;
  } else if (spec.structure == "sharded") {
    Config cfg;
    cfg.universe_bits = spec.universe_bits;
    cfg.leaf_chunking = spec.leaf_chunking;
    cfg.adaptive_heights = spec.adaptive_heights;
    cfg.use_finger = spec.use_finger;
    ShardedEngine e(spec.shards, cfg);
    res.r = run_workload(e, spec.wc);
    res.stats = e.structure_stats();  // aggregated across shards
    res.has_structure_stats = true;
  } else if (spec.structure == "skiplist") {
    res.skiplist_levels = skiplist_levels_for(spec.wc.prefill);
    LockFreeSkipList s(res.skiplist_levels);
    res.r = run_workload(s, spec.wc);
  } else if (spec.structure == "locked_map") {
    LockedMap m;
    res.r = run_workload(m, spec.wc);
  } else {
    std::fprintf(stderr, "unknown structure '%s'\n", spec.structure.c_str());
    std::abort();
  }
  return res;
}

// ---------------------------------------------------------------------------
// Shared JSON emitter (schema documented in README "Benchmarks").

inline std::string iso8601_utc_now() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

// Git revision for provenance: flag wins, then $SKIPTRIE_GIT_REV (set by
// tools/run_bench.sh), then "unknown".
inline std::string git_rev(const Args& args) {
  std::string rev = args.get("--git-rev");
  if (rev.empty()) {
    const char* env = std::getenv("SKIPTRIE_GIT_REV");
    rev = env != nullptr ? env : "unknown";
  }
  return rev;
}

// Opens nothing; writes the suite-level provenance keys into the (already
// open) top-level object.
// Schema history:
//   v1  initial unified schema (PR 2).
//   v2  probe attribution: steps.{probes_lookup, probes_chain,
//       probes_binsearch, walk_fallbacks}; structure_stats.{hash_buckets,
//       hash_dummies, hash_load_factor}.  Purely additive — v1 consumers
//       keep working on every key they knew about.
//   v3  hop attribution + fingered descent (PR 4): steps.{hops_top,
//       hops_descent, finger_hits, finger_misses, hops_finger_saved}.
//       hops_top + hops_descent == node_hops; the finger counters tally
//       descents/levels, not shared-memory steps (DESIGN.md §5.2).
//       Purely additive again.
//   v4  batched ops + descent cursor (PR 5): cells gain the `batch_size`
//       axis (default 1 — older files join as batch_size = 1) and
//       steps.{cursor_reuses, cursor_redescends, batch_ops, batch_keys}
//       (DESIGN.md §5.3; event counters, not shared-memory steps); a new
//       "batch" section sweeps batch sizes.  Purely additive again.
//   v5  sharded engine + service front-end (PR 6): cells gain the `shards`
//       axis (default 1 — older files join as shards = 1) and
//       steps.{shard_batches, service_requests, service_subtasks,
//       queue_full_waits, queue_depth_sum, queue_wait_ns} (DESIGN.md §5.4;
//       event counters, not shared-memory steps); a new "service" section
//       runs the client simulator against the queued Service front-end,
//       and run_cell grows a "sharded" structure (ShardedEngine under the
//       plain workload driver).  Purely additive again.
//   v6  key-traits generalization (PR 7, DESIGN.md §6): cells gain the
//       `key_kind` axis ("u64" | "bytes16"; default "u64" — older files
//       join as key_kind = "u64") naming the KeyTraits instantiation that
//       ran the cell, and a new "bytes16" section replays matched u64 key
//       streams through BasicSkipTrie<Bytes16Traits> (128-bit ikeys) so the
//       u64-vs-bytes16 cell delta isolates W-widening cost.  Purely
//       additive again.
//   v7  cache-conscious leaf chunks (PR 8, DESIGN.md §7): cells gain the
//       `leaf_chunking` axis (default true — older files join as
//       leaf_chunking = true and lack the new counters entirely, so
//       pre-v7 joins treat them as report-only) and
//       steps.{bytes_touched, chunk_scans, chunk_splits, chunk_merges}
//       (DESIGN.md §7.4; bytes_touched models list+leaf cache-line traffic,
//       all four are event counters outside search/total steps);
//       structure_stats gains {leaf_chunks, avg_occupancy}; cells gain a
//       `leaf_checkpoints` object (25/50/75% mid-run samples + final) and a
//       new "leaf_ablation" section sweeps chunking on/off.  Purely
//       additive again.
//   v8  distribution-adaptive tower heights (DESIGN.md §8): cells gain the
//       `adaptive_heights` axis (default false on join — pre-v8 files ran
//       without the policy, so off is the behavior-accurate fill) and the
//       `zipf_drift` axis (default false — the v8 hot-set drift mode), plus
//       report-only `use_finger`; steps gains {adapt_checks, promotions,
//       demotions} (DESIGN.md §8.4; event counters outside search/total
//       steps and excluded from rate gating — policy activity scales with
//       skew, not with code quality); structure_stats gains `level_counts`
//       (the tower-height histogram the policy reshapes); cells gain a
//       `structure_checkpoints` object (25/50/75% mid-run samples + final)
//       and a new "toplevel_ablation" section sweeps adaptation on/off on
//       matched zipf/uniform cells.  Purely additive again.
inline void write_suite_header(JsonWriter& j, const char* suite,
                               const std::string& rev, bool quick) {
  j.kv("schema_version", 8);
  j.kv("suite", suite);
  j.kv("git_rev", rev);
  j.kv("timestamp_utc", iso8601_utc_now());
  j.kv("quick", quick);
  j.key("host").begin_object();
  j.kv("hardware_threads",
       static_cast<uint64_t>(std::thread::hardware_concurrency()));
#if defined(__unix__) || defined(__APPLE__)
  struct utsname un{};
  if (uname(&un) == 0) {
    j.kv("os", un.sysname).kv("release", un.release).kv("machine", un.machine);
  }
#endif
#if defined(__clang__)
  j.kv("compiler", "clang " __clang_version__);
#elif defined(__GNUC__)
  j.kv("compiler", "gcc " __VERSION__);
#endif
#if defined(NDEBUG)
  j.kv("assertions", false);
#else
  j.kv("assertions", true);
#endif
  j.end_object();
}

inline void write_step_counters(JsonWriter& j, const StepCounters& s) {
  j.begin_object();
  j.kv("node_hops", s.node_hops);
  j.kv("hops_top", s.hops_top);
  j.kv("hops_descent", s.hops_descent);
  j.kv("finger_hits", s.finger_hits);
  j.kv("finger_misses", s.finger_misses);
  j.kv("hops_finger_saved", s.hops_finger_saved);
  j.kv("hash_probes", s.hash_probes);
  j.kv("probes_lookup", s.probes_lookup);
  j.kv("probes_chain", s.probes_chain);
  j.kv("probes_binsearch", s.probes_binsearch);
  j.kv("hash_updates", s.hash_updates);
  j.kv("cas_attempts", s.cas_attempts);
  j.kv("cas_failures", s.cas_failures);
  j.kv("dcss_attempts", s.dcss_attempts);
  j.kv("dcss_guard_fails", s.dcss_guard_fails);
  j.kv("dcss_helps", s.dcss_helps);
  j.kv("back_steps", s.back_steps);
  j.kv("prev_steps", s.prev_steps);
  j.kv("restarts", s.restarts);
  j.kv("walk_fallbacks", s.walk_fallbacks);
  j.kv("trie_level_ops", s.trie_level_ops);
  j.kv("retired_nodes", s.retired_nodes);
  j.kv("bytes_touched", s.bytes_touched);
  j.kv("chunk_scans", s.chunk_scans);
  j.kv("chunk_splits", s.chunk_splits);
  j.kv("chunk_merges", s.chunk_merges);
  j.kv("cursor_reuses", s.cursor_reuses);
  j.kv("cursor_redescends", s.cursor_redescends);
  j.kv("batch_ops", s.batch_ops);
  j.kv("batch_keys", s.batch_keys);
  j.kv("shard_batches", s.shard_batches);
  j.kv("service_requests", s.service_requests);
  j.kv("service_subtasks", s.service_subtasks);
  j.kv("queue_full_waits", s.queue_full_waits);
  j.kv("queue_depth_sum", s.queue_depth_sum);
  j.kv("queue_wait_ns", s.queue_wait_ns);
  j.kv("adapt_checks", s.adapt_checks);
  j.kv("promotions", s.promotions);
  j.kv("demotions", s.demotions);
  j.end_object();
}

// One record per measured cell; keys stable across suites so files from two
// revisions can be joined on (section, structure, universe_bits, threads,
// mix, dist, batch_size, shards, key_kind, leaf_chunking, adaptive_heights,
// zipf_drift, repeat).
inline void write_cell(JsonWriter& j, const CellSpec& spec,
                       const CellResult& res) {
  const WorkloadResult& r = res.r;
  j.begin_object();
  j.kv("section", spec.section);
  j.kv("structure", spec.structure);
  j.kv("universe_bits", spec.universe_bits);
  j.kv("threads", spec.wc.threads);
  j.kv("mix", spec.mix_name);
  j.kv("dist", key_dist_name(spec.wc.dist));
  j.kv("batch_size", spec.wc.batch_size);
  j.kv("shards", spec.shards);
  j.kv("key_kind", spec.key_kind);
  j.kv("leaf_chunking", spec.leaf_chunking);
  j.kv("adaptive_heights", spec.adaptive_heights);
  j.kv("zipf_drift", spec.wc.zipf_drift);
  j.kv("use_finger", spec.use_finger);
  j.kv("key_space", spec.wc.key_space);
  j.kv("prefill", spec.wc.prefill);
  j.kv("seed", spec.wc.seed);
  j.kv("repeat", spec.repeat);
  j.kv("total_ops", r.total_ops);
  j.kv("seconds", r.seconds);
  j.kv("mops", r.mops());
  j.key("latency_ns").begin_object();
  j.kv("p50", r.latency_percentile_ns(0.50));
  j.kv("p99", r.latency_percentile_ns(0.99));
  j.kv("samples", r.latency_samples());
  j.end_object();
  j.key("steps_per_op").begin_object();
  j.kv("search", r.search_steps_per_op());
  j.kv("total", r.total_steps_per_op());
  j.end_object();
  j.key("steps");
  write_step_counters(j, r.steps);
  j.key("per_op").begin_object();
  for (size_t k = 0; k < kOpTypeCount; ++k) {
    const OpType t = static_cast<OpType>(k);
    const OpTypeStats& ts = r.of(t);
    if (ts.ops == 0) continue;
    j.key(op_type_name(t)).begin_object();
    j.kv("ops", ts.ops);
    j.kv("hits", ts.hits);
    j.kv("search_steps_per_op", ts.search_steps_per_op());
    j.kv("p50_ns", r.latency_percentile_ns(t, 0.50));
    j.kv("p99_ns", r.latency_percentile_ns(t, 0.99));
    j.end_object();
  }
  j.end_object();
  if (res.has_structure_stats) {
    const SkipTrie::StructureStats& st = res.stats;
    j.key("structure_stats").begin_object();
    j.kv("keys", static_cast<uint64_t>(st.keys));
    j.kv("top_count", static_cast<uint64_t>(st.top_count));
    j.kv("trie_entries", static_cast<uint64_t>(st.trie_entries));
    j.kv("avg_top_gap", st.avg_top_gap);
    j.kv("max_top_gap", static_cast<uint64_t>(st.max_top_gap));
    j.kv("arena_bytes", static_cast<uint64_t>(st.arena_bytes));
    j.kv("trie_bytes", static_cast<uint64_t>(st.trie_bytes));
    j.kv("hash_buckets", static_cast<uint64_t>(st.hash_buckets));
    j.kv("hash_dummies", static_cast<uint64_t>(st.hash_dummies));
    j.kv("hash_load_factor", st.hash_load_factor);
    j.kv("leaf_chunks", static_cast<uint64_t>(st.leaf_chunks));
    j.kv("avg_occupancy", st.avg_occupancy);
    // Tower-height histogram (v8): level_counts[l] = towers whose current
    // height is exactly l.  Trimmed at the highest populated level; empty
    // for bytes16 cells (their adapter copies scalar fields only, the wide
    // trie's histogram has a different depth).
    size_t top_lvl = 0;
    for (size_t l = 0; l <= SkipTrie::Engine::kMaxLevels; ++l) {
      if (st.level_counts[l] != 0) top_lvl = l + 1;
    }
    j.key("level_counts").begin_array();
    for (size_t l = 0; l < top_lvl; ++l) {
      j.value(static_cast<uint64_t>(st.level_counts[l]));
    }
    j.end_array();
    j.end_object();
  }
  if (r.leaf.samples > 0) {
    j.key("leaf_checkpoints").begin_object();
    j.kv("samples", r.leaf.samples);
    j.kv("min_chunks", r.leaf.min_chunks);
    j.kv("max_chunks", r.leaf.max_chunks);
    j.kv("final_chunks", r.leaf.final_chunks);
    j.kv("min_occupancy", r.leaf.min_occupancy);
    j.kv("max_occupancy", r.leaf.max_occupancy);
    j.kv("final_occupancy", r.leaf.final_occupancy);
    j.end_object();
  }
  if (r.structure.samples > 0) {
    j.key("structure_checkpoints").begin_object();
    j.kv("samples", r.structure.samples);
    j.kv("min_top", r.structure.min_top);
    j.kv("max_top", r.structure.max_top);
    j.kv("final_top", r.structure.final_top);
    j.kv("final_keys", r.structure.final_keys);
    j.kv("final_promotions", r.structure.final_promotions);
    j.kv("final_demotions", r.structure.final_demotions);
    j.end_object();
  }
  if (spec.structure == "skiplist") {
    j.kv("skiplist_levels", res.skiplist_levels);
  }
  j.end_object();
  j.newline();
}

// Single-threaded micro measurement record (measure_ops-based benches).
inline void write_micro_cell(JsonWriter& j, const char* section,
                             const char* name, const char* structure,
                             uint64_t size, uint32_t bits, const Measured& m) {
  j.begin_object();
  j.kv("section", section);
  j.kv("name", name);
  j.kv("structure", structure);
  j.kv("universe_bits", bits);
  j.kv("key_kind", "u64");  // micro benches all run the fast path
  j.kv("size", size);
  j.kv("ops", m.ops);
  j.kv("ns_per_op", m.ns_per_op);
  j.kv("search_steps_per_op", m.search_steps_per_op());
  j.key("steps");
  write_step_counters(j, m.steps);
  j.end_object();
  j.newline();
}

inline bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  const size_t n = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return n == content.size();
}

}  // namespace skiptrie::bench
