// T2 — dependence on the universe size: predecessor cost should scale with
// log log u (the binary search over prefix lengths does ceil(log2 B) hash
// lookups), not with log u or log m.
#include <cstdio>

#include "bench_util.h"
#include "core/skiptrie.h"

using namespace skiptrie;
using namespace skiptrie::bench;

int main() {
  const size_t kQueries = 20000;
  header("T2: predecessor cost vs universe bits B (fixed m)");
  std::printf("%-6s %-8s %-10s %-14s %-14s %-12s %-10s\n", "B", "m",
              "loglogu", "hash probes", "search steps", "ns/op",
              "levels");
  row_sep(90);
  for (const uint32_t bits : {8u, 16u, 24u, 32u, 48u, 64u}) {
    // Keep m constant where the universe allows; B=8 only holds 2^8 keys.
    const size_t m = bits == 8 ? 128 : (size_t{1} << 16);
    Config cfg;
    cfg.universe_bits = bits;
    SkipTrie t(cfg);
    fill_distinct(t, m, bits, bits * 31 + 5);
    const auto queries = random_queries(kQueries, bits, 7);
    const auto r = measure_ops(queries, [&](uint64_t q) {
      volatile auto v = t.predecessor(q).has_value();
      (void)v;
    });
    std::printf("%-6u %-8zu %-10u %-14.2f %-14.1f %-12.0f %-10u\n", bits, m,
                ceil_log2(bits), r.per_op(r.steps.hash_probes),
                r.search_steps_per_op(), r.ns_per_op, ceil_log2(bits) + 1);
  }
  std::printf(
      "\nPaper shape: hash probes and steps grow ~log log u (double-log in\n"
      "the universe), i.e. roughly +1 probe level when B doubles; note the\n"
      "m=2^16 rows differ only via B.\n");
  return 0;
}
