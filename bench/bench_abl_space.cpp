// A2 — space accounting: the SkipTrie uses O(m) space (§1): the truncated
// skiplist is O(m) nodes, and the x-fast trie holds ~m/log u keys times
// log u prefixes = O(m) hash entries.  Bytes/key must stay flat as m grows.
#include <cstdio>

#include "bench_util.h"
#include "core/skiptrie.h"

using namespace skiptrie;
using namespace skiptrie::bench;

int main() {
  header("A2: space per key vs m (B=32)");
  std::printf("%-10s %-12s %-12s %-12s %-12s %-12s\n", "m", "arena B/key",
              "trie B/key", "total B/key", "nodes/key", "trie entries/key");
  row_sep(80);
  for (const size_t m : {size_t{1} << 12, size_t{1} << 14, size_t{1} << 16,
                         size_t{1} << 18}) {
    Config cfg;
    cfg.universe_bits = 32;
    SkipTrie t(cfg);
    fill_distinct(t, m, 32, m ^ 0xabcd);
    const auto s = t.structure_stats();
    size_t nodes = 0;
    for (uint32_t l = 0; l <= ceil_log2(32); ++l) nodes += s.level_counts[l];
    std::printf("%-10zu %-12.1f %-12.1f %-12.1f %-12.3f %-12.4f\n", m,
                static_cast<double>(s.arena_bytes) / m,
                static_cast<double>(s.trie_bytes) / m,
                static_cast<double>(s.arena_bytes + s.trie_bytes) / m,
                static_cast<double>(nodes) / m,
                static_cast<double>(s.trie_entries) / m);
  }
  std::printf(
      "\nPaper shape: every column flat in m (space O(m)); nodes/key ~2\n"
      "(geometric towers), trie entries/key ~ (log u)/(log u) = O(1).\n");
  return 0;
}
