// T4 — the "+ c" term: throughput and steps/op as thread count and write
// share grow.  The paper charges extra steps to overlapping operations
// (overlapping-interval contention); empirically, steps/op should rise
// gently with contention while throughput scales with threads.
#include <cstdio>
#include <thread>

#include "baseline/lockfree_skiplist.h"
#include "baseline/locked_map.h"
#include "bench_util.h"
#include "core/skiptrie.h"
#include "workload/driver.h"

using namespace skiptrie;
using namespace skiptrie::bench;

namespace {

template <typename Set>
void run_rows(const char* name, Set& make_set_tag, uint32_t max_threads);

struct MixRow {
  const char* name;
  OpMix mix;
};

}  // namespace

int main() {
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  const MixRow mixes[] = {
      {"read-only ", OpMix::read_only()},
      {"read-heavy", OpMix::read_heavy()},
      {"balanced  ", OpMix::balanced()},
      {"write-heavy", OpMix::write_heavy()},
  };

  header("T4: contention scaling (threads x mix), B=32, prefill 2^15");
  std::printf("%-12s %-12s %-8s %-10s %-12s %-12s %-10s\n", "structure",
              "mix", "threads", "Mops/s", "steps/op", "cas-fail/op",
              "restarts/op");
  row_sep(90);

  for (unsigned threads = 1; threads <= hw * 2; threads *= 2) {
    for (const auto& mr : mixes) {
      {
        Config cfg;
        cfg.universe_bits = 32;
        SkipTrie t(cfg);
        WorkloadConfig wc;
        wc.threads = threads;
        wc.ops_per_thread = 60000 / threads + 1;
        wc.mix = mr.mix;
        wc.key_space = 1u << 22;
        wc.prefill = 1u << 15;
        wc.seed = threads * 17 + 1;
        const auto r = run_workload(t, wc);
        std::printf("%-12s %-12s %-8u %-10.3f %-12.1f %-12.3f %-10.4f\n",
                    "skiptrie", mr.name, threads, r.mops(),
                    r.search_steps_per_op(),
                    static_cast<double>(r.steps.cas_failures) / r.total_ops,
                    static_cast<double>(r.steps.restarts) / r.total_ops);
      }
      {
        LockedMap m;
        WorkloadConfig wc;
        wc.threads = threads;
        wc.ops_per_thread = 60000 / threads + 1;
        wc.mix = mr.mix;
        wc.key_space = 1u << 22;
        wc.prefill = 1u << 15;
        wc.seed = threads * 17 + 1;
        const auto r = run_workload(m, wc);
        std::printf("%-12s %-12s %-8u %-10.3f %-12s %-12s %-10s\n",
                    "locked-map", mr.name, threads, r.mops(), "-", "-", "-");
      }
    }
    row_sep(90);
  }
  std::printf(
      "\nPaper shape: lock-free SkipTrie throughput scales with threads and\n"
      "degrades gracefully as the write share rises; steps/op grows only\n"
      "mildly with contention (the +c_OI term).  The coarse-locked map\n"
      "collapses under write contention.\n");
  return 0;
}
