// T4 — the "+ c" term: throughput and steps/op as thread count and write
// share grow.  The paper charges extra steps to overlapping operations
// (overlapping-interval contention); empirically, steps/op should rise
// gently with contention while throughput scales with threads.  Runs on the
// shared cell runner; `--out FILE` additionally emits the cells as JSON.
#include <cstdio>
#include <string>
#include <thread>

#include "bench_util.h"

using namespace skiptrie;
using namespace skiptrie::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const bool quick = args.has("--quick");
  const std::string out_path = args.get("--out");
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());

  JsonWriter j;
  j.begin_object();
  write_suite_header(j, "bench_tab4_contention", git_rev(args), quick);
  j.key("cells").begin_array();
  j.newline();

  header("T4: contention scaling (threads x mix), B=32, prefill 2^15");
  std::printf("%-12s %-12s %-8s %-10s %-12s %-12s %-10s\n", "structure",
              "mix", "threads", "Mops/s", "steps/op", "cas-fail/op",
              "restarts/op");
  row_sep(90);

  const uint32_t max_threads = quick ? 2u : hw * 2;
  for (uint32_t threads = 1; threads <= max_threads; threads *= 2) {
    for (const NamedMix& mr : all_mixes()) {
      for (const char* structure : {"skiptrie", "locked_map"}) {
        CellSpec spec;
        spec.section = "tab4_contention";
        spec.structure = structure;
        spec.mix_name = mr.name;
        spec.universe_bits = 32;
        spec.wc.threads = threads;
        spec.wc.ops_per_thread = (quick ? 8000u : 60000u) / threads + 1;
        spec.wc.mix = mr.mix;
        spec.wc.key_space = 1u << 22;
        spec.wc.prefill = 1u << 15;
        spec.wc.seed = threads * 17 + 1;
        const CellResult res = run_cell(spec);
        const WorkloadResult& r = res.r;
        if (std::string(structure) == "skiptrie") {
          std::printf("%-12s %-12s %-8u %-10.3f %-12.1f %-12.3f %-10.4f\n",
                      structure, mr.name, threads, r.mops(),
                      r.search_steps_per_op(),
                      static_cast<double>(r.steps.cas_failures) / r.total_ops,
                      static_cast<double>(r.steps.restarts) / r.total_ops);
        } else {
          std::printf("%-12s %-12s %-8u %-10.3f %-12s %-12s %-10s\n",
                      structure, mr.name, threads, r.mops(), "-", "-", "-");
        }
        write_cell(j, spec, res);
      }
    }
    row_sep(90);
  }

  j.end_array();
  j.end_object();
  j.newline();
  if (!out_path.empty() && !write_file(out_path, j.str())) return 1;

  std::printf(
      "\nPaper shape: lock-free SkipTrie throughput scales with threads and\n"
      "degrades gracefully as the write share rises; steps/op grows only\n"
      "mildly with contention (the +c_OI term).  The coarse-locked map\n"
      "collapses under write contention.\n");
  return 0;
}
