// A1 — DCSS-vs-CAS ablation (§1 "On the choice of atomic primitives").
//
// The paper proves linearizability and lock-freedom survive replacing every
// DCSS with a plain CAS (dropping the guard); only the amortized performance
// argument needs the guard, because the guard is what prevents pointer
// swings onto freshly-marked nodes.  This bench runs identical write-heavy
// workloads in both modes and reports throughput plus the guard statistics
// (how often the DCSS guard actually fired — each firing is a swing onto a
// dying node that the CAS fallback would have permitted).
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "core/skiptrie.h"
#include "workload/driver.h"

using namespace skiptrie;
using namespace skiptrie::bench;

int main() {
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  header("A1: DCSS vs CAS-fallback ablation (write-heavy)");
  std::printf("%-12s %-8s %-10s %-12s %-14s %-16s %-14s\n", "mode",
              "threads", "Mops/s", "steps/op", "dcss/op", "guard-fail/op",
              "helps/op");
  row_sep(92);
  for (const DcssMode mode : {DcssMode::kDcss, DcssMode::kCasFallback}) {
    for (unsigned threads = 1; threads <= hw * 2; threads *= 2) {
      Config cfg;
      cfg.universe_bits = 32;
      cfg.dcss_mode = mode;
      SkipTrie t(cfg);
      WorkloadConfig wc;
      wc.threads = threads;
      wc.ops_per_thread = 50000 / threads + 1;
      wc.mix = OpMix::write_heavy();
      wc.key_space = 1u << 16;  // small space: high delete/insert overlap
      wc.prefill = 1u << 14;
      wc.seed = 5;
      const auto r = run_workload(t, wc);
      std::printf("%-12s %-8u %-10.3f %-12.1f %-14.4f %-16.5f %-14.5f\n",
                  mode == DcssMode::kDcss ? "dcss" : "cas-fallback", threads,
                  r.mops(), r.search_steps_per_op(),
                  static_cast<double>(r.steps.dcss_attempts) / r.total_ops,
                  static_cast<double>(r.steps.dcss_guard_fails) / r.total_ops,
                  static_cast<double>(r.steps.dcss_helps) / r.total_ops);
    }
  }
  std::printf(
      "\nPaper shape: both modes are correct; CAS fallback avoids descriptor\n"
      "overhead but loses the guard (guard-fail/op counts the dying-node\n"
      "swings DCSS prevented).  Throughputs should be within a small factor,\n"
      "supporting the paper's 'fall back to CAS after aborts' design.\n");
  return 0;
}
