// F1 — Figure 1 reproduction: structural shape of the SkipTrie.
//
// The paper's Figure 1 shows a truncated skiplist of log log u levels whose
// top-level nodes feed an x-fast trie.  The quantitative claims behind the
// picture (§1 "The SkipTrie"):
//   * a key reaches the top level with probability 1/log u, so the top
//     holds ~m/log u keys,
//   * the expected number of keys between two top-level keys ("bucket
//     size") is O(log u),
//   * total space is O(m).
// This bench fills the structure and prints those quantities per universe.
#include <cstdio>

#include "bench_util.h"
#include "core/skiptrie.h"

using namespace skiptrie;
using namespace skiptrie::bench;

int main() {
  header("F1: SkipTrie structure vs Figure 1 (density, buckets, space)");
  std::printf("%-6s %-8s %-10s %-12s %-10s %-10s %-10s %-12s %-12s\n", "B",
              "m", "top_cnt", "m/B(expect)", "ratio", "avg_gap", "max_gap",
              "bytes/key", "trie_entries");
  row_sep();
  for (const uint32_t bits : {16u, 32u, 64u}) {
    for (const size_t m : {size_t{4096}, size_t{32768}}) {
      Config cfg;
      cfg.universe_bits = bits;
      SkipTrie t(cfg);
      fill_distinct(t, m, bits, /*seed=*/bits * 1000003 + m);
      const auto s = t.structure_stats();
      const double expect_top = static_cast<double>(m) / bits;
      const double bytes_per_key =
          static_cast<double>(s.arena_bytes + s.trie_bytes) /
          static_cast<double>(m);
      std::printf("%-6u %-8zu %-10zu %-12.1f %-10.2f %-10.1f %-10zu %-12.1f %-12zu\n",
                  bits, m, s.top_count, expect_top,
                  static_cast<double>(s.top_count) / expect_top,
                  s.avg_top_gap, s.max_top_gap, bytes_per_key,
                  s.trie_entries);
    }
  }
  std::printf(
      "\nPaper expectation: ratio ~1.0 (top density 1/log u), avg_gap ~log u,\n"
      "bytes/key O(1) in m (space O(m)).\n");

  header("F1b: per-level occupancy (geometric thinning, B=32, m=32768)");
  {
    Config cfg;
    cfg.universe_bits = 32;
    SkipTrie t(cfg);
    fill_distinct(t, 32768, 32, 42);
    const auto s = t.structure_stats();
    std::printf("%-8s %-10s %-14s\n", "level", "nodes", "vs half-below");
    row_sep(40);
    for (uint32_t l = 0; l <= ceil_log2(32); ++l) {
      const double ratio =
          l == 0 ? 1.0
                 : static_cast<double>(s.level_counts[l]) /
                       (static_cast<double>(s.level_counts[l - 1]) / 2.0);
      std::printf("%-8u %-10zu %-14.2f\n", l, s.level_counts[l], ratio);
    }
    std::printf("(each level should hold ~1/2 the level below: ratio ~1.0)\n");
  }
  return 0;
}
