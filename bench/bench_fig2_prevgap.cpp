// F2 — Figure 2 reproduction: backward gaps in the top-level list.
//
// The paper's Figure 2 shows the doubly-linked list mid-insert: 7.prev
// still names 1 while the forward chain is 1->2->3->5->7.  The paper argues
// (choice (2), §1) that such gaps are transient, only cost reads, and are
// repaired when the lagging insert completes.  This bench measures, under
// concurrent insert churn, the distribution of the *backward gap*: for a
// top-level node u, the number of forward hops from u.prev back to u.
// It also demonstrates the deterministic Fig. 2 state and its repair.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/skiptrie.h"

using namespace skiptrie;
using namespace skiptrie::bench;

int main() {
  header("F2a: deterministic Figure 2 state (1,7 + stalled insert of 5)");
  {
    SlabArena arena(sizeof(Node), kCacheLine, 1024);
    EbrDomain ebr;
    DcssContext ctx{&ebr, DcssMode::kDcss};
    SkipListEngine eng(ctx, arena, 2);
    EbrDomain::Guard g(ebr);
    auto ins = [&](uint64_t k) {
      return eng.insert(k + 1, eng.head(2), 2).top;
    };
    Node* n1 = ins(1);
    Node* n7 = ins(7);
    // Stalled insert of 5: forward link only.
    auto r5 = eng.insert(5 + 1, eng.head(2), 1);
    Node* top5 = eng.make_node(5 + 1, 2, 2, eng.first_at(1), r5.root);
    auto b = eng.list_search(5 + 1, eng.head(2), 2);
    top5->next.store(pack_ptr(b.right), std::memory_order_relaxed);
    counted_cas(b.left->next, pack_ptr(b.right), pack_ptr(top5));
    ins(2);
    ins(3);
    // Count the backward gap at node 7 (paper: 3 nodes: 2, 3, 5).
    Node* p = unpack_ptr<Node>(dcss_read(n7->prevw));
    int gap = 0;
    for (Node* c = unpack_ptr<Node>(dcss_read(p->next)); c != n7;
         c = unpack_ptr<Node>(dcss_read(c->next))) {
      ++gap;
    }
    std::printf("backward gap at 7 while insert(5) stalled: %d (paper: 3)\n",
                gap);
    eng.fix_prev(n1, top5);
    eng.fix_prev(top5, n7);
    p = unpack_ptr<Node>(dcss_read(n7->prevw));
    std::printf("after insert(5) completes, 7.prev -> key %llu (paper: 5)\n",
                static_cast<unsigned long long>(p->ikey() - 1));
  }

  header("F2b: backward-gap distribution under concurrent insert churn");
  {
    Config cfg;
    cfg.universe_bits = 32;
    SkipTrie t(cfg);
    // Prefill so the top level is populated before sampling begins.
    {
      Xoshiro256 rng(99);
      for (int i = 0; i < 200000; ++i) t.insert(rng.next() & universe_mask(32));
    }
    std::atomic<bool> stop{false};
    const unsigned writers =
        std::max(1u, std::thread::hardware_concurrency() - 1);
    std::vector<std::thread> ws;
    for (unsigned w = 0; w < writers; ++w) {
      ws.emplace_back([&, w] {
        Xoshiro256 rng(w + 7);
        while (!stop.load(std::memory_order_acquire)) {
          t.insert(rng.next() & universe_mask(32));
        }
      });
    }
    // Sample backward gaps at random top-level nodes while churn runs.
    std::vector<uint64_t> hist(8, 0);
    uint64_t samples = 0;
    {
      auto& eng = t.engine();
      const uint32_t top = eng.top_level();
      for (int round = 0; round < 200; ++round) {
        EbrDomain::Guard g(t.ebr());
        for (Node* n = eng.first_at(top); n != nullptr; n = eng.next_at(n)) {
          const uint64_t pv = dcss_read(n->prevw);
          Node* p = unpack_ptr<Node>(pv);
          if (p == nullptr || is_marked(pv)) continue;
          // forward hops from p to n (bounded scan)
          uint64_t gap = 0;
          Node* c = p;
          while (c != nullptr && c != n && gap < hist.size() - 1) {
            c = unpack_ptr<Node>(without_tags(dcss_read(c->next)));
            ++gap;
          }
          if (c != n && gap >= hist.size() - 1) gap = hist.size() - 1;
          hist[gap]++;
          samples++;
        }
      }
    }
    stop.store(true, std::memory_order_release);
    for (auto& w : ws) w.join();
    std::printf("%-10s %-12s %-10s\n", "gap", "count", "fraction");
    row_sep(40);
    for (size_t gp = 0; gp < hist.size(); ++gp) {
      if (hist[gp] == 0) continue;
      std::printf("%-10s %-12llu %-10.4f\n",
                  gp + 1 == hist.size() ? (std::to_string(gp) + "+").c_str()
                                        : std::to_string(gp).c_str(),
                  static_cast<unsigned long long>(hist[gp]),
                  static_cast<double>(hist[gp]) /
                      static_cast<double>(samples ? samples : 1));
    }
    std::printf(
        "(gap 1 = prev exactly adjacent; larger gaps are the transient\n"
        " Fig. 2 states; the paper predicts they are rare and shallow)\n");
  }
  return 0;
}
